"""Every example script runs to completion (their asserts are the checks)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_three():
    assert len(EXAMPLES) >= 3, EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / f"{name}.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"
