"""Concurrency stress: streams, tasks and interop objects under load.

These tests exercise the schedulers with enough simultaneous work to
surface ordering races that single-shot tests miss.
"""

import threading
import time

import numpy as np
import pytest

from repro import ompx, openmp
from repro.gpu import Stream, get_device
from repro.openmp.task import DependType, TaskRuntime


class TestStreamStress:
    def test_many_streams_many_ops(self, nvidia):
        n_streams, ops = 8, 50
        streams = [Stream(nvidia, name=f"stress-{i}") for i in range(n_streams)]
        logs = [[] for _ in range(n_streams)]
        try:
            for i, stream in enumerate(streams):
                for j in range(ops):
                    stream.enqueue(lambda i=i, j=j: logs[i].append(j))
            for stream in streams:
                stream.synchronize()
            for log in logs:
                assert log == list(range(ops))  # per-stream FIFO preserved
        finally:
            for stream in streams:
                stream.close()

    def test_event_chain_across_streams(self, nvidia):
        """A ring of cross-stream waits resolves in order."""
        streams = [Stream(nvidia, name=f"ring-{i}") for i in range(4)]
        order = []
        lock = threading.Lock()
        try:
            prev_event = None
            for i, stream in enumerate(streams):
                if prev_event is not None:
                    stream.wait_event(prev_event)
                stream.enqueue(lambda i=i: (time.sleep(0.005), lock.acquire(),
                                            order.append(i), lock.release()))
                prev_event = stream.record_event()
            for stream in streams:
                stream.synchronize()
            assert order == [0, 1, 2, 3]
        finally:
            for stream in streams:
                stream.close()


class TestTaskStress:
    def test_long_dependency_chain(self):
        runtime = TaskRuntime(num_helpers=4)
        try:
            loc = np.zeros(1)
            log = []
            for i in range(100):
                runtime.submit(lambda i=i: log.append(i),
                               depends=[(DependType.INOUT, loc)])
            runtime.taskwait()
            assert log == list(range(100))
        finally:
            runtime.shutdown()

    def test_fan_out_fan_in(self):
        runtime = TaskRuntime(num_helpers=8)
        try:
            src = np.zeros(1)
            sinks = [np.zeros(1) for _ in range(16)]
            total = np.zeros(1)
            log = []
            lock = threading.Lock()

            runtime.submit(lambda: log.append("root"), depends=[(DependType.OUT, src)])
            for sink in sinks:
                runtime.submit(
                    lambda s=sink: (time.sleep(0.001), lock.acquire(),
                                    log.append("mid"), lock.release()),
                    depends=[(DependType.IN, src), (DependType.OUT, sink)],
                )
            runtime.submit(
                lambda: log.append("join"),
                depends=[(DependType.IN, s) for s in sinks] + [(DependType.OUT, total)],
            )
            runtime.taskwait()
            assert log[0] == "root" and log[-1] == "join"
            assert log.count("mid") == 16
        finally:
            runtime.shutdown()

    def test_interleaved_submissions_from_threads(self):
        """Concurrent submitters against one location stay serialized."""
        runtime = TaskRuntime(num_helpers=4)
        try:
            loc = np.zeros(1)
            counter = {"value": 0, "max_in_flight": 0}
            gate = threading.Lock()

            def task():
                with gate:
                    counter["value"] += 1
                    counter["max_in_flight"] = max(counter["max_in_flight"], 1)

            def submitter():
                for _ in range(25):
                    runtime.submit(task, depends=[(DependType.INOUT, loc)])

            threads = [threading.Thread(target=submitter) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            runtime.taskwait()
            assert counter["value"] == 100
        finally:
            runtime.shutdown()


class TestInteropStress:
    def test_many_regions_through_one_interop(self, nvidia):
        obj = openmp.interop_init(targetsync=True, device=nvidia)
        runtime = TaskRuntime(num_helpers=4)
        d = nvidia.allocator.malloc(8)
        try:
            for _ in range(40):
                ompx.target_teams_bare(
                    nvidia, 1, 4,
                    lambda x: x.atomic_add(x.array(d, 1, np.int64), 0, 1)
                    if x.thread_id_x() == 0 else None,
                    nowait=True,
                    depend=[(DependType.INTEROPOBJ, obj)],
                    task_runtime=runtime,
                )
            runtime.taskwait([(DependType.INTEROPOBJ, obj)])
            out = np.zeros(1, dtype=np.int64)
            nvidia.allocator.memcpy_d2h(out, d)
            assert out[0] == 40
        finally:
            nvidia.allocator.free(d)
            openmp.interop_destroy(obj)
            runtime.shutdown()

    def test_two_interops_interleaved(self, nvidia):
        a = openmp.interop_init(device=nvidia)
        b = openmp.interop_init(device=nvidia)
        runtime = TaskRuntime(num_helpers=4)
        logs = {"a": [], "b": []}
        try:
            for i in range(10):
                for tag, obj in (("a", a), ("b", b)):
                    ompx.target_teams_bare(
                        nvidia, 1, 1,
                        lambda x, tag=tag, i=i: logs[tag].append(i),
                        nowait=True,
                        depend=[(DependType.INTEROPOBJ, obj)],
                        task_runtime=runtime,
                    )
            runtime.taskwait()
            assert logs["a"] == list(range(10))  # per-stream order
            assert logs["b"] == list(range(10))
        finally:
            openmp.interop_destroy(a)
            openmp.interop_destroy(b)
            runtime.shutdown()
