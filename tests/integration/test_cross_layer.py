"""Cross-layer integration: one logic, four programming models, same bits."""

import numpy as np
import pytest

from repro import cuda, hip, ompx, openmp
from repro.gpu import get_device
from repro.openmp.data import data_environment
from repro.port import port_kernel


@pytest.fixture(autouse=True)
def clean_env():
    yield
    for ordinal in (0, 1):
        data_environment(get_device(ordinal)).reset()


N = 512
BLOCK = 64


def reference() -> np.ndarray:
    data = np.arange(N, dtype=np.float64)
    return np.sqrt(data) * 2 + 1


@cuda.kernel(sync_free=True)
def compute_cuda(t, src, dst, n):
    import math

    i = t.blockIdx.x * t.blockDim.x + t.threadIdx.x
    if i < n:
        s = t.array(src, n, np.float64)
        d = t.array(dst, n, np.float64)
        d[i] = math.sqrt(s[i]) * 2 + 1


@ompx.bare_kernel(sync_free=True)
def compute_ompx(x, src, dst, n):
    import math

    i = x.block_id_x() * x.block_dim_x() + x.thread_id_x()
    if i < n:
        s = x.array(src, n, np.float64)
        d = x.array(dst, n, np.float64)
        d[i] = math.sqrt(s[i]) * 2 + 1


def run_cuda_version() -> np.ndarray:
    cuda.cudaSetDevice(0)
    data = np.arange(N, dtype=np.float64)
    d_src = cuda.cudaMalloc(data.nbytes)
    d_dst = cuda.cudaMalloc(data.nbytes)
    cuda.cudaMemcpy(d_src, data, data.nbytes, cuda.cudaMemcpyHostToDevice)
    cuda.launch(compute_cuda, N // BLOCK, BLOCK, (d_src, d_dst, N), device=get_device(0))
    out = np.zeros(N)
    cuda.cudaMemcpy(out, d_dst, out.nbytes, cuda.cudaMemcpyDeviceToHost)
    cuda.cudaFree(d_src)
    cuda.cudaFree(d_dst)
    return out


def run_hip_version() -> np.ndarray:
    data = np.arange(N, dtype=np.float64)
    d_src = hip.hipMalloc(data.nbytes)
    d_dst = hip.hipMalloc(data.nbytes)
    hip.hipMemcpy(d_src, data, data.nbytes, hip.hipMemcpyHostToDevice)
    # the same kernel object runs under HIP — it is textually CUDA
    hip.hipLaunchKernelGGL(compute_cuda, N // BLOCK, BLOCK, 0, None, d_src, d_dst, N)
    hip.hipDeviceSynchronize()
    out = np.zeros(N)
    hip.hipMemcpy(out, d_dst, out.nbytes, hip.hipMemcpyDeviceToHost)
    hip.hipFree(d_src)
    hip.hipFree(d_dst)
    return out


def run_ompx_version(device) -> np.ndarray:
    data = np.arange(N, dtype=np.float64)
    d_src = ompx.ompx_malloc(data.nbytes, device)
    d_dst = ompx.ompx_malloc(data.nbytes, device)
    ompx.ompx_memcpy(d_src, data, data.nbytes, device)
    ompx.target_teams_bare(device, N // BLOCK, BLOCK, compute_ompx, (d_src, d_dst, N))
    out = np.zeros(N)
    ompx.ompx_memcpy(out, d_dst, out.nbytes, device)
    ompx.ompx_free(d_src, device)
    ompx.ompx_free(d_dst, device)
    return out


def run_omp_version(device) -> np.ndarray:
    data = np.arange(N, dtype=np.float64)
    out = np.zeros(N)

    def vbody(idx, acc):
        acc.mapped(out)[idx] = np.sqrt(acc.mapped(data)[idx]) * 2 + 1

    openmp.target_teams_distribute_parallel_for(
        device, N, vector_body=vbody, thread_limit=BLOCK,
        maps=[(data, "to"), (out, "from")],
    )
    return out


class TestFourVersionsAgree:
    def test_cuda(self):
        assert np.allclose(run_cuda_version(), reference())

    def test_hip(self):
        assert np.allclose(run_hip_version(), reference())

    @pytest.mark.parametrize("ordinal", [0, 1], ids=["a100", "mi250"])
    def test_ompx(self, ordinal):
        assert np.allclose(run_ompx_version(get_device(ordinal)), reference())

    @pytest.mark.parametrize("ordinal", [0, 1], ids=["a100", "mi250"])
    def test_omp(self, ordinal):
        assert np.allclose(run_omp_version(get_device(ordinal)), reference())

    def test_ported_kernel_matches_handwritten_port(self, nvidia):
        """port_kernel(cuda) and the hand-written ompx kernel agree."""
        ported = port_kernel(compute_cuda)
        data = np.arange(N, dtype=np.float64)
        d_src = nvidia.allocator.malloc(data.nbytes)
        d_dst = nvidia.allocator.malloc(data.nbytes)
        nvidia.allocator.memcpy_h2d(d_src, data)
        ompx.target_teams_bare(nvidia, N // BLOCK, BLOCK, ported, (d_src, d_dst, N))
        out = np.zeros(N)
        nvidia.allocator.memcpy_d2h(out, d_dst)
        assert np.allclose(out, reference())
        for p in (d_src, d_dst):
            nvidia.allocator.free(p)


class TestMappedDataThroughBareRegions:
    def test_map_clause_composition(self, nvidia):
        """Directive-style data management + bare-kernel execution."""
        a = np.arange(64, dtype=np.float64)
        b = np.zeros(64)
        with openmp.TargetData(nvidia, [(a, "to"), (b, "from")]) as region:
            d_a = region.device_ptr(a)
            d_b = region.device_ptr(b)

            def k(x):
                i = x.global_thread_id_x()
                if i < 64:
                    x.array(d_b, 64, np.float64)[i] = x.array(d_a, 64, np.float64)[i] ** 2

            ompx.target_teams_bare(nvidia, 2, 32, k)
        assert np.allclose(b, a**2)

    def test_update_between_kernels(self, nvidia):
        data = np.ones(16)
        with openmp.TargetData(nvidia, [(data, "tofrom")]) as region:
            env = openmp.data_environment(nvidia)
            ptr = region.device_ptr(data)

            def double(x):
                i = x.global_thread_id_x()
                if i < 16:
                    x.array(ptr, 16, np.float64)[i] *= 2

            ompx.target_teams_bare(nvidia, 1, 16, double)
            env.update_from(data)
            assert (data == 2).all()
            data[:] = 10
            env.update_to(data)
            ompx.target_teams_bare(nvidia, 1, 16, double)
        assert (data == 20).all()


class TestAsyncPipeline:
    def test_figure5_flow_end_to_end(self, nvidia):
        """interop init -> nowait bare region in stream -> taskwait."""
        obj = openmp.interop_init(targetsync=True, device=nvidia)
        runtime = openmp.default_task_runtime()
        d = nvidia.allocator.malloc(8 * 8)

        def writer(value):
            def region(x):
                if x.thread_id_x() == 0:
                    arr = x.array(d, 8, np.float64)
                    arr[:] = arr + value
            return region

        for value in (1.0, 10.0, 100.0):
            ompx.target_teams_bare(
                nvidia, 1, 4, writer(value), nowait=True,
                depend=[("interopobj", obj)],
            )
        runtime.taskwait([("interopobj", obj)])
        out = np.zeros(8)
        nvidia.allocator.memcpy_d2h(out, d)
        assert (out == 111.0).all()
        openmp.interop_destroy(obj)
        nvidia.allocator.free(d)
