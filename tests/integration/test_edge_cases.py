"""Cross-cutting edge cases and failure-injection paths."""

import numpy as np
import pytest

from repro import cuda, hip, ompx, openmp
from repro.errors import AppError, LaunchError, OutOfMemoryError
from repro.gpu import LaunchConfig, get_device, launch_kernel


class TestGuardRails:
    def test_cooperative_engine_refuses_paper_scale(self, nvidia):
        with pytest.raises(LaunchError, match="guard rail"):
            launch_kernel(LaunchConfig.create(100_000, 256), lambda ctx: None, (), nvidia)

    def test_map_engine_refuses_paper_scale(self, nvidia):
        kernel = lambda ctx: None  # noqa: E731
        kernel.sync_free = True
        with pytest.raises(LaunchError, match="guard rail"):
            launch_kernel(LaunchConfig.create(524_288, 256), kernel, (), nvidia
            )

    def test_apps_functional_params_stay_under_guard(self):
        from repro.apps import ALL_APPS

        for app_cls in ALL_APPS:
            params = app_cls.functional_params()
            app = app_cls()
            teams, block = app.launch_geometry(params)
            assert teams * block < 2_000_000, app_cls.name


class TestErrorPropagationThroughLayers:
    def test_kernel_oom_surfaces_from_cuda_launch(self, nvidia):
        @cuda.kernel(sync_free=True)
        def greedy(t):
            t.ctx.device.allocator.malloc(1 << 50)

        cuda.launch(greedy, 1, 1, (), device=nvidia)
        with pytest.raises(Exception) as excinfo:
            cuda.cudaDeviceSynchronize()
        assert "OutOfMemory" in repr(excinfo.value) or "queued work failed" in str(excinfo.value)

    def test_kernel_index_error_surfaces_from_bare_region(self, nvidia):
        d = nvidia.allocator.malloc(8)

        def bad(x):
            x.array(d, 100, np.float64)  # overruns the 8-byte allocation

        with pytest.raises(LaunchError, match="overruns"):
            ompx.target_teams_bare(nvidia, 1, 1, bad)
        nvidia.allocator.free(d)

    def test_map_clause_error_leaves_environment_clean(self, nvidia):
        env = openmp.data_environment(nvidia)
        before = env.num_present
        bad_maps = [(np.zeros(4), "sideways")]
        with pytest.raises(Exception):
            openmp.target_teams_distribute_parallel_for(
                nvidia, 4, lambda i, acc: None, maps=bad_maps
            )
        assert env.num_present == before

    def test_region_exception_still_unmaps(self, nvidia):
        env = openmp.data_environment(nvidia)
        data = np.zeros(4)

        def explode(i, acc):
            raise RuntimeError("body failure")

        with pytest.raises(RuntimeError):
            openmp.target_teams_distribute_parallel_for(
                nvidia, 4, explode, maps=[(data, "tofrom")]
            )
        assert not env.is_present(data)


class TestHipMatchParity:
    def test_match_any_on_wavefront64(self, amd):
        results = {}

        @hip.kernel
        def k(t):
            results[t.laneid] = t.match_any_sync(hip.FULL_MASK, t.laneid % 2)

        hip.launch(k, 1, 64, ())
        hip.hipDeviceSynchronize()
        evens = sum(1 << i for i in range(0, 64, 2))
        assert results[0] == evens


class TestMultiDimBlocksCooperative:
    def test_barrier_across_2d_block(self, nvidia):
        """Barriers must count every thread of a 2-D block."""
        d = nvidia.allocator.malloc(8)

        def kernel(ctx, out):
            shared = ctx.shared_array("acc", 1, np.int64)
            ctx.atomic.add(shared, 0, 1)
            ctx.sync_threads()
            if ctx.flat_thread_id == 0:
                ctx.deref(out, 1, np.int64)[0] = shared[0]

        launch_kernel(LaunchConfig.create(1, (8, 4)), kernel, (d,), nvidia)
        out = np.zeros(1, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d)
        assert out[0] == 32
        nvidia.allocator.free(d)

    def test_warps_span_2d_blocks_in_flat_order(self, nvidia):
        seen = {}

        def kernel(ctx):
            seen[(ctx.thread_idx.x, ctx.thread_idx.y)] = (ctx.warp_id, ctx.lane_id)

        launch_kernel(LaunchConfig.create(1, (16, 4)), kernel, (), nvidia)
        # flat id = y*16 + x; warp 0 covers y in {0,1}, warp 1 covers y in {2,3}
        assert seen[(0, 0)] == (0, 0)
        assert seen[(15, 1)] == (0, 31)
        assert seen[(0, 2)] == (1, 0)


class TestDefaultTaskRuntimeSingleton:
    def test_same_instance(self):
        a = openmp.default_task_runtime()
        b = openmp.default_task_runtime()
        assert a is b

    def test_concurrent_access_is_single_instance(self):
        import threading

        results = []

        def grab():
            results.append(openmp.default_task_runtime())

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(map(id, results))) == 1
