"""Shared guard rails for the tuning tests.

A leaked process-wide tuning session would silently turn every later
test into a tuned run (and leak plan-cache writes into ``~/.cache``), so
each test here runs under an autouse fixture that uninstalls whatever
session it left behind.
"""

from __future__ import annotations

import pytest

from repro import tune


@pytest.fixture(autouse=True)
def no_session_leaks():
    assert tune.active_session() is None, "a previous test leaked a session"
    yield
    tune.set_session(None)
