"""PlanCache durability contract: versioning, corruption, atomicity, merge."""

import json
import os

import pytest

from repro.errors import PlanCacheError, ReproError, TuneError
from repro.tune import SCHEMA_VERSION, Plan, PlanCache, default_cache_dir

pytestmark = pytest.mark.tune


def make_plan(engine="vector", **flags):
    return Plan(engine=engine, grid=(4, 1, 1), block=(64, 1, 1),
                shared_bytes=0, flags=flags)


class TestPlanRecord:
    def test_json_round_trip(self):
        plan = make_plan(searched=True, best_ns=1234)
        again = Plan.from_json(json.loads(json.dumps(plan.to_json())))
        assert again == plan

    def test_geometry_coerced_to_int_tuples(self):
        obj = {"engine": "map", "grid": [2.0, 1, 1], "block": ["8", 1, 1]}
        plan = Plan.from_json(obj)
        assert plan.grid == (2, 1, 1)
        assert plan.block == (8, 1, 1)
        assert plan.shared_bytes == 0
        assert plan.flags == {}


class TestBasicStore:
    def test_put_get_save_load(self, tmp_path):
        cache = PlanCache(str(tmp_path))
        assert len(cache) == 0
        cache.put("k1", make_plan())
        assert cache.get("k1") == make_plan()
        assert "k1" in cache
        assert cache.keys() == ["k1"]
        cache.save()

        fresh = PlanCache(str(tmp_path))
        assert fresh.get("k1") == make_plan()
        assert len(fresh) == 1

    def test_get_none_key_is_safe(self, tmp_path):
        cache = PlanCache(str(tmp_path))
        assert cache.get(None) is None

    def test_clean_cache_save_is_a_no_op(self, tmp_path):
        cache = PlanCache(str(tmp_path))
        cache.save()
        assert not os.path.exists(cache.path)

    def test_cache_dir_created_lazily_on_save(self, tmp_path):
        target = tmp_path / "nested" / "plans"
        cache = PlanCache(str(target))
        cache.put("k", make_plan())
        cache.save()
        assert (target / "plans.json").is_file()

    def test_default_cache_dir_respects_xdg(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == str(tmp_path / "repro" / "tune")

    def test_clear_empties_and_marks_dirty(self, tmp_path):
        cache = PlanCache(str(tmp_path))
        cache.put("k", make_plan())
        cache.save()
        cache.clear()
        cache.save()
        assert len(PlanCache(str(tmp_path))) == 0


class TestMisuse:
    def test_cache_path_that_is_a_file_is_refused(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("hello")
        with pytest.raises(PlanCacheError, match="not a directory"):
            PlanCache(str(blocker))

    def test_misuse_error_is_a_tune_and_repro_error(self):
        assert issubclass(PlanCacheError, TuneError)
        assert issubclass(PlanCacheError, ReproError)

    @pytest.mark.parametrize("bad", ["", None, 42, ("a",)])
    def test_non_string_or_empty_keys_are_refused(self, tmp_path, bad):
        cache = PlanCache(str(tmp_path))
        with pytest.raises(PlanCacheError, match="non-empty strings"):
            cache.put(bad, make_plan())


class TestCorruptionIsAWarningNotAnError:
    """Satellite: a stale/corrupt cache must never take down a run."""

    def _seed_file(self, tmp_path, text):
        path = tmp_path / "plans.json"
        path.write_text(text)
        return path

    def test_garbage_bytes_warn_and_rebuild(self, tmp_path):
        self._seed_file(tmp_path, "\x00\xff this is not json {{{")
        with pytest.warns(RuntimeWarning, match="rebuilt"):
            cache = PlanCache(str(tmp_path))
        assert len(cache) == 0
        cache.put("k", make_plan())
        cache.save()
        assert PlanCache(str(tmp_path)).get("k") == make_plan()

    def test_truncated_json_warns_and_rebuilds(self, tmp_path):
        cache = PlanCache(str(tmp_path))
        cache.put("k", make_plan())
        cache.save()
        full = (tmp_path / "plans.json").read_text()
        self._seed_file(tmp_path, full[: len(full) // 2])
        with pytest.warns(RuntimeWarning, match="rebuilt"):
            reopened = PlanCache(str(tmp_path))
        assert len(reopened) == 0

    def test_schema_mismatch_discards_wholesale(self, tmp_path):
        payload = {
            "schema": SCHEMA_VERSION + 1,
            "plans": {"k": make_plan().to_json()},
        }
        self._seed_file(tmp_path, json.dumps(payload))
        with pytest.warns(RuntimeWarning, match="schema"):
            cache = PlanCache(str(tmp_path))
        assert len(cache) == 0

    def test_wrong_shape_top_level_warns(self, tmp_path):
        self._seed_file(tmp_path, json.dumps(["not", "a", "mapping"]))
        with pytest.warns(RuntimeWarning):
            cache = PlanCache(str(tmp_path))
        assert len(cache) == 0

    def test_malformed_plan_record_warns(self, tmp_path):
        payload = {"schema": SCHEMA_VERSION, "plans": {"k": {"engine": "map"}}}
        self._seed_file(tmp_path, json.dumps(payload))
        with pytest.warns(RuntimeWarning, match="malformed"):
            cache = PlanCache(str(tmp_path))
        assert len(cache) == 0

    def test_corrupt_file_is_replaced_by_next_save(self, tmp_path):
        self._seed_file(tmp_path, "garbage")
        with pytest.warns(RuntimeWarning):
            cache = PlanCache(str(tmp_path))
        cache.put("k", make_plan())
        cache.save()
        raw = json.loads((tmp_path / "plans.json").read_text())
        assert raw["schema"] == SCHEMA_VERSION
        assert "k" in raw["plans"]


class TestAtomicityAndMerge:
    def test_save_leaves_no_temp_droppings(self, tmp_path):
        cache = PlanCache(str(tmp_path))
        cache.put("k", make_plan())
        cache.save()
        assert os.listdir(tmp_path) == ["plans.json"]

    def test_saved_file_is_always_parseable(self, tmp_path):
        cache = PlanCache(str(tmp_path))
        for i in range(5):
            cache.put(f"k{i}", make_plan(searched=True, index=i))
            cache.save()
            raw = json.loads((tmp_path / "plans.json").read_text())
            assert len(raw["plans"]) == i + 1

    def test_merge_on_save_keeps_both_writers(self, tmp_path):
        # Two sessions share one cache dir but tune different kernels —
        # the slower saver must not clobber the faster one's plans.
        a = PlanCache(str(tmp_path))
        b = PlanCache(str(tmp_path))
        a.put("from-a", make_plan("vector"))
        b.put("from-b", make_plan("map"))
        a.save()
        b.save()
        merged = PlanCache(str(tmp_path))
        assert merged.get("from-a").engine == "vector"
        assert merged.get("from-b").engine == "map"

    def test_identical_keys_last_writer_wins(self, tmp_path):
        a = PlanCache(str(tmp_path))
        b = PlanCache(str(tmp_path))
        a.put("k", make_plan("vector"))
        b.put("k", make_plan("wave"))
        a.save()
        b.save()
        assert PlanCache(str(tmp_path)).get("k").engine == "wave"
