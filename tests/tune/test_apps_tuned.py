"""Bit-identity acceptance: --tune changes timings, never checksums."""

import numpy as np
import pytest

from repro import tune
from repro.apps import ALL_APPS, ExecutionConfig, run
from repro.gpu.device import get_device
from repro.openmp.data import data_environment

pytestmark = pytest.mark.tune


@pytest.fixture(autouse=True)
def clean_env():
    yield
    for ordinal in (0, 1):
        data_environment(get_device(ordinal)).reset()


@pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda a: a.name)
def test_tuned_run_is_bit_identical(app_cls, tmp_path):
    """All six apps: warm-cache --tune output equals untuned output."""
    app = app_cls()
    untuned = run(app)
    tuned = run(app, tune=True, tune_cache=str(tmp_path))
    assert app.verify(tuned, app.functional_params())
    # Bit-identical, not approximately equal: tuning only picks among
    # the PR-1-equivalent engines and never re-shapes a launch.
    assert np.array_equal(np.asarray(tuned.output), np.asarray(untuned.output))
    assert tuned.checksum == untuned.checksum
    session = tuned.tune_session
    assert session is not None
    counters = session.counters()
    assert counters["tune_misses"] + counters["tune_hits"] > 0

    # Warm second run from the persisted cache: zero tuning launches.
    warm = run(app, tune=True, tune_cache=str(tmp_path))
    assert warm.checksum == untuned.checksum
    warm_counters = warm.tune_session.counters()
    assert warm_counters["tune_searches"] == 0
    assert warm_counters["tune_misses"] == 0


def test_run_reuses_an_externally_owned_session(tmp_path):
    app = ALL_APPS[-1]()  # stencil1d: the cheapest app
    with tune.tuning(str(tmp_path)) as session:
        result = run(app, tune=True)
        assert result.tune_session is session
        assert tune.active_session() is session  # run() did not disable it
    assert tune.active_session() is None


def test_untuned_run_attaches_no_session():
    app = ALL_APPS[-1]()
    result = run(app)
    assert result.tune_session is None
    assert tune.active_session() is None


def test_tuned_sharded_run_composes_with_the_pool(tmp_path):
    # --tune --devices 2: pool workers resolve engines through the same
    # session; per-device-spec keys mean a uniform pool shares plans.
    app = ALL_APPS[-1]()
    plain = run(app, devices=2)
    tuned = run(app, devices=2, tune=True, tune_cache=str(tmp_path))
    assert tuned.checksum == plain.checksum
    counters = tuned.tune_session.counters()
    assert counters["tune_promotes"] >= 1


def test_tuned_resilient_run_composes(tmp_path):
    app = ALL_APPS[-1]()
    plain = run(app)
    tuned = run(app, resilient=True, devices=2, tune=True,
                tune_cache=str(tmp_path))
    assert tuned.checksum == plain.checksum


def test_execution_config_carries_the_tune_fields(tmp_path):
    config = ExecutionConfig(tune=True, tune_cache=str(tmp_path))
    result = run(ALL_APPS[-1](), config)
    assert result.tune_session is not None
    assert result.tune_session.cache.cache_dir == str(tmp_path)
