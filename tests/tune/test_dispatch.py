"""The launch fast path: sessions, counters, persistence, composition."""

import functools

import numpy as np
import pytest

from repro import faults, trace, tune
from repro import ompx
from repro.errors import TuneError
from repro.gpu.device import A100_SPEC, MI250_SPEC, get_device
from repro.gpu.launch import LaunchConfig, launch_kernel
from repro.sched import DevicePool

pytestmark = pytest.mark.tune

N = 256
CONFIG = LaunchConfig.create(4, 64)


@ompx.bare_kernel(sync_free=True)
def double_up(x, ptr, n):
    i = x.global_thread_id_x()
    if i < n:
        x.array(ptr, n, np.float64)[i] *= 2.0


@ompx.bare_kernel(sync_free=True)
def warm_probe(x, bias):
    # Pure compute, no memory arguments: safe to measure on any device.
    i = x.global_thread_id_x()
    t = i * 2 + bias
    del t


@pytest.fixture
def device():
    return get_device(0)


@pytest.fixture
def buf(device):
    ptr = device.allocator.malloc(N * 8)
    device.allocator.memcpy_h2d(ptr, np.arange(N, dtype=np.float64))
    yield ptr
    device.allocator.free(ptr)


def read_buf(device, ptr):
    out = np.zeros(N)
    device.allocator.memcpy_d2h(out, ptr)
    return out


class TestSessionLifecycle:
    def test_enable_twice_is_refused(self, tmp_path):
        tune.enable(str(tmp_path))
        try:
            with pytest.raises(TuneError, match="already active"):
                tune.enable(str(tmp_path))
        finally:
            tune.disable()

    def test_disable_returns_and_uninstalls(self, tmp_path):
        session = tune.enable(str(tmp_path))
        assert tune.active_session() is session
        assert tune.disable() is session
        assert tune.active_session() is None
        assert tune.disable() is None

    def test_tuning_context_reuses_an_active_session(self, tmp_path):
        with tune.tuning(str(tmp_path)) as outer:
            with tune.tuning("/nonexistent-ignored") as inner:
                assert inner is outer
            assert tune.active_session() is outer
        assert tune.active_session() is None


class TestLaunchFastPath:
    def test_miss_search_promote_then_hit(self, tmp_path, device, buf):
        with tune.tuning(str(tmp_path)) as session:
            launch_kernel(CONFIG, double_up.entry, (buf, N), device)
            first = session.counters()
            assert first["tune_misses"] == 1
            assert first["tune_searches"] == 1
            assert first["tune_promotes"] == 1
            assert first["tune_hits"] == 0

            launch_kernel(CONFIG, double_up.entry, (buf, N), device)
            second = session.counters()
            assert second["tune_hits"] == 1
            assert second["tune_searches"] == 1  # no re-search
        # Both launches really ran (probes were rolled back, real
        # launches were not): 2 doublings.
        assert np.array_equal(read_buf(device, buf), np.arange(N) * 4.0)

    def test_tuned_output_is_bit_identical(self, tmp_path, device, buf):
        launch_kernel(CONFIG, double_up.entry, (buf, N), device)
        untuned = read_buf(device, buf)
        device.allocator.memcpy_h2d(buf, np.arange(N, dtype=np.float64))
        with tune.tuning(str(tmp_path)):
            launch_kernel(CONFIG, double_up.entry, (buf, N), device)
        assert np.array_equal(read_buf(device, buf), untuned)

    def test_second_session_reuses_the_persisted_cache(self, tmp_path, device, buf):
        # The acceptance criterion: a fresh session (a second process,
        # modulo the interpreter) performs ZERO tuning launches.
        with tune.tuning(str(tmp_path)):
            launch_kernel(CONFIG, double_up.entry, (buf, N), device)
        with tune.tuning(str(tmp_path)) as warm:
            launch_kernel(CONFIG, double_up.entry, (buf, N), device)
            counters = warm.counters()
        assert counters["tune_hits"] == 1
        assert counters["tune_misses"] == 0
        assert counters["tune_searches"] == 0
        assert counters["tune_promotes"] == 0

    def test_engine_pin_bypasses_the_session(self, tmp_path, device, buf):
        pinned = LaunchConfig.create(4, 64, engine="block-thread")
        with tune.tuning(str(tmp_path)) as session:
            launch_kernel(pinned, double_up.entry, (buf, N), device)
            assert all(v == 0 for v in session.counters().values())

    def test_unidentifiable_kernel_counts_uncacheable(self, tmp_path, device, buf):
        opaque = functools.partial(double_up.entry)
        with tune.tuning(str(tmp_path)) as session:
            launch_kernel(CONFIG, opaque, (buf, N), device)
            assert session.counters()["tune_uncacheable"] == 1
            assert len(session.cache) == 0
        assert np.array_equal(read_buf(device, buf), np.arange(N) * 2.0)

    def test_dispatch_overhead_is_profiled(self, tmp_path, device, buf):
        with tune.tuning(str(tmp_path)) as session:
            launch_kernel(CONFIG, double_up.entry, (buf, N), device)
            launch_kernel(CONFIG, double_up.entry, (buf, N), device)
            summary = session.overhead.summary()
        assert summary["launches"] == 2
        assert summary["mean_us"] > 0
        assert summary["max_us"] >= summary["min_us"]

    def test_no_session_means_no_overhead_tracking(self, device, buf):
        assert tune.active_session() is None
        launch_kernel(CONFIG, double_up.entry, (buf, N), device)  # plain run


class TestTraceIntegration:
    def test_counters_mirror_into_the_tracer(self, tmp_path, device, buf):
        tracer = trace.enable()
        try:
            with tune.tuning(str(tmp_path)):
                launch_kernel(CONFIG, double_up.entry, (buf, N), device)
                launch_kernel(CONFIG, double_up.entry, (buf, N), device)
            counters = tracer.counters
        finally:
            trace.disable()
        assert counters["tune_misses"] == 1
        assert counters["tune_searches"] == 1
        assert counters["tune_promotes"] == 1
        assert counters["tune_hits"] == 1

    def test_search_probes_appear_as_tune_spans(self, tmp_path, device, buf):
        tracer = trace.enable()
        try:
            with tune.tuning(str(tmp_path)):
                launch_kernel(CONFIG, double_up.entry, (buf, N), device)
            spans = [s for s in tracer.spans if s.cat == "tune"]
            predictions = [p for p in tracer.predictions if "tune_engine" in p]
        finally:
            trace.disable()
        assert spans, "expected tune:probe:* spans in the trace"
        assert any("double_up" in s.name for s in spans)
        # Every candidate got a ranked prediction record for the
        # predicted-vs-observed join.
        assert {p["tune_engine"] for p in predictions} >= {"block-thread", "map"}


class TestFaultComposition:
    def test_active_fault_plan_skips_the_search(self, tmp_path, device, buf):
        # Probe launches would consume injection triggers and desync the
        # seeded replay, so the derived plan is cached unsearched.
        with tune.tuning(str(tmp_path)) as session:
            with faults.inject("malloc:oom@999"):
                launch_kernel(CONFIG, double_up.entry, (buf, N), device)
            counters = session.counters()
            assert counters["tune_misses"] == 1
            assert counters["tune_searches"] == 0
            assert counters["tune_promotes"] == 1
            key = session.cache.keys()[0]
            plan = session.cache.get(key)
        assert plan.flags["searched"] is False
        assert "fault" in plan.flags["reason"]


class TestPoolWarm:
    def test_warm_tunes_once_per_distinct_spec(self, tmp_path):
        specs = [A100_SPEC, MI250_SPEC, MI250_SPEC]
        with DevicePool(3, specs=specs) as pool:
            distinct = pool.distinct_specs()
            assert len(distinct) == 2
            with tune.tuning(str(tmp_path)) as session:
                plans = tune.warm(pool, warm_probe.entry, CONFIG, (1,))
                assert set(plans) == {d.spec.name for d in distinct}
                assert session.counters()["tune_promotes"] == 2
                # Every pool device now dispatches from the cache.
                for device in pool.devices:
                    engine, _ = session.resolve(
                        warm_probe.entry, CONFIG, (1,), device)
                    assert engine is not None
                hits = session.counters()["tune_hits"]
                assert hits == len(pool.devices)

    def test_warm_requires_a_session(self):
        with DevicePool(1) as pool:
            with pytest.raises(TuneError, match="active tuning session"):
                tune.warm(pool, warm_probe.entry, CONFIG, (1,))

    def test_uniform_pool_specs_share_one_plan(self, tmp_path):
        with DevicePool(2, specs=[MI250_SPEC, MI250_SPEC]) as pool:
            assert len(pool.distinct_specs()) == 1
            with tune.tuning(str(tmp_path)) as session:
                tune.warm(pool, warm_probe.entry, CONFIG, (1,))
                assert session.counters()["tune_searches"] == 1
