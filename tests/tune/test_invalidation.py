"""Cache invalidation: plans never outlive what they were tuned against."""

import numpy as np
import pytest

from repro import ompx, tune
from repro.gpu.device import get_device
from repro.gpu.launch import LaunchConfig, launch_kernel

pytestmark = pytest.mark.tune

N = 128
CONFIG = LaunchConfig.create(2, 64)


@ompx.bare_kernel(sync_free=True)
def stamp(x, ptr, n):
    i = x.global_thread_id_x()
    if i < n:
        x.array(ptr, n, np.float64)[i] = i


def make_buf(device):
    ptr = device.allocator.malloc(N * 8)
    device.allocator.memcpy_h2d(ptr, np.zeros(N))
    return ptr


class TestDeviceSpecInvalidation:
    def test_a_different_spec_re_tunes(self, tmp_path):
        nvidia, amd = get_device(0), get_device(1)
        assert nvidia.spec != amd.spec
        b0, b1 = make_buf(nvidia), make_buf(amd)
        try:
            with tune.tuning(str(tmp_path)) as session:
                launch_kernel(CONFIG, stamp.entry, (b0, N), nvidia)
                launch_kernel(CONFIG, stamp.entry, (b1, N), amd)
                counters = session.counters()
                # The A100 plan is invisible on the MI250: two misses,
                # two searches, two distinct cache entries.
                assert counters["tune_misses"] == 2
                assert counters["tune_searches"] == 2
                assert counters["tune_hits"] == 0
                assert len(session.cache) == 2
                keys = session.cache.keys()
                assert any(nvidia.spec.name in k for k in keys)
                assert any(amd.spec.name in k for k in keys)
        finally:
            nvidia.allocator.free(b0)
            amd.allocator.free(b1)

    def test_each_spec_then_hits_its_own_plan(self, tmp_path):
        nvidia, amd = get_device(0), get_device(1)
        b0, b1 = make_buf(nvidia), make_buf(amd)
        try:
            with tune.tuning(str(tmp_path)):
                launch_kernel(CONFIG, stamp.entry, (b0, N), nvidia)
                launch_kernel(CONFIG, stamp.entry, (b1, N), amd)
            with tune.tuning(str(tmp_path)) as warm:
                launch_kernel(CONFIG, stamp.entry, (b0, N), nvidia)
                launch_kernel(CONFIG, stamp.entry, (b1, N), amd)
                assert warm.counters()["tune_hits"] == 2
                assert warm.counters()["tune_searches"] == 0
        finally:
            nvidia.allocator.free(b0)
            amd.allocator.free(b1)


class TestToolchainInvalidation:
    def test_a_bumped_toolchain_re_tunes_everything(self, tmp_path):
        device = get_device(0)
        buf = make_buf(device)
        try:
            with tune.tuning(str(tmp_path)):
                launch_kernel(CONFIG, stamp.entry, (buf, N), device)
            # Same cache dir, new stack version: the old plan must not
            # be visible (it is an artifact of the stack that made it).
            with tune.tuning(str(tmp_path), toolchain="repro-9.9.9+plan9") as bumped:
                launch_kernel(CONFIG, stamp.entry, (buf, N), device)
                counters = bumped.counters()
                assert counters["tune_hits"] == 0
                assert counters["tune_misses"] == 1
                assert counters["tune_searches"] == 1
                # Both generations coexist in the file; nothing is lost.
                bumped.save()
        finally:
            device.allocator.free(buf)
        assert len(tune.PlanCache(str(tmp_path))) == 2

    def test_same_toolchain_still_hits(self, tmp_path):
        device = get_device(0)
        buf = make_buf(device)
        try:
            with tune.tuning(str(tmp_path), toolchain="repro-9.9.9+plan9"):
                launch_kernel(CONFIG, stamp.entry, (buf, N), device)
            with tune.tuning(str(tmp_path), toolchain="repro-9.9.9+plan9") as again:
                launch_kernel(CONFIG, stamp.entry, (buf, N), device)
                assert again.counters()["tune_hits"] == 1
        finally:
            device.allocator.free(buf)


class TestGeometryInvalidation:
    def test_a_different_block_shape_is_a_new_problem(self, tmp_path):
        device = get_device(0)
        buf = make_buf(device)
        try:
            with tune.tuning(str(tmp_path)) as session:
                launch_kernel(LaunchConfig.create(2, 64), stamp.entry,
                              (buf, N), device)
                launch_kernel(LaunchConfig.create(1, 128), stamp.entry,
                              (buf, N), device)
                assert session.counters()["tune_misses"] == 2
                assert len(session.cache) == 2
        finally:
            device.allocator.free(buf)
