"""Plan-cache keys: identity, fingerprints, and what changes them."""

import dataclasses
import functools

import pytest

from repro import __version__, ompx
from repro.gpu.device import A100_SPEC, MI250_SPEC
from repro.gpu.launch import LaunchConfig
from repro.tune import (
    device_fingerprint,
    kernel_identity,
    plan_cache_key,
    toolchain_version,
)

pytestmark = pytest.mark.tune


def saxpy_like(x, out, n):
    i = x.global_thread_id_x()
    if i < n:
        out[i] = out[i] + 1.0


def saxpy_variant(x, out, n):
    i = x.global_thread_id_x()
    if i < n:
        out[i] = out[i] + 2.0


class TestToolchainVersion:
    def test_carries_package_version_and_plan_revision(self):
        version = toolchain_version()
        assert __version__ in version
        assert "plan" in version


class TestKernelIdentity:
    def test_stable_and_memoized(self):
        assert kernel_identity(saxpy_like) == kernel_identity(saxpy_like)
        assert "saxpy_like" in kernel_identity(saxpy_like)

    def test_sees_through_the_bare_kernel_wrappers(self):
        # The launch path receives the ompx entry adapter, not the raw
        # function; both must resolve to the *function's* identity so a
        # plan tuned through one front end is visible to another.
        bare = ompx.bare_kernel(sync_free=True)(saxpy_like)
        assert kernel_identity(bare) == kernel_identity(saxpy_like)
        assert kernel_identity(bare.entry) == kernel_identity(saxpy_like)

    def test_source_hash_distinguishes_bodies(self):
        # Editing a kernel body must invalidate its cached plans even
        # though nothing else about the launch changed.
        a = kernel_identity(saxpy_like)
        b = kernel_identity(saxpy_variant)
        assert a != b
        assert a.split("#")[1] != b.split("#")[1]

    def test_unidentifiable_callables_return_none(self):
        partial = functools.partial(saxpy_like)
        assert kernel_identity(partial) is None


class TestDeviceFingerprint:
    def test_distinct_specs_never_share(self):
        assert device_fingerprint(A100_SPEC) != device_fingerprint(MI250_SPEC)

    def test_fingerprint_is_memoized_and_stable(self):
        assert device_fingerprint(A100_SPEC) == device_fingerprint(A100_SPEC)
        assert device_fingerprint(A100_SPEC).startswith(A100_SPEC.name + "@")

    def test_reparameterized_spec_changes_fingerprint(self):
        # Same name, one architectural field recalibrated: plans must
        # not transfer (the spec digest covers every field, not the name).
        recal = dataclasses.replace(A100_SPEC, max_threads_per_sm=1536)
        assert device_fingerprint(recal) != device_fingerprint(A100_SPEC)
        assert recal.name == A100_SPEC.name


class TestPlanCacheKey:
    def _key(self, kernel=saxpy_like, grid=(4, 1, 1), block=(64, 1, 1),
             shared=0, spec=A100_SPEC, toolchain=None):
        return plan_cache_key(kernel, grid, block, shared, spec,
                              toolchain=toolchain)

    def test_key_is_deterministic(self):
        assert self._key() == self._key()

    def test_geometry_is_part_of_the_problem_statement(self):
        base = self._key()
        assert self._key(grid=(8, 1, 1)) != base
        assert self._key(block=(128, 1, 1)) != base
        assert self._key(shared=1024) != base

    def test_key_accepts_dim3_geometry(self):
        config = LaunchConfig.create((4, 1, 1), (64, 1, 1))
        assert plan_cache_key(
            saxpy_like, config.grid, config.block, 0, A100_SPEC
        ) == self._key()

    def test_device_and_toolchain_segment_the_cache(self):
        base = self._key()
        assert self._key(spec=MI250_SPEC) != base
        assert self._key(toolchain="repro-0.0.0+plan0") != base

    def test_unidentifiable_kernel_yields_no_key(self):
        assert self._key(kernel=functools.partial(saxpy_like)) is None
