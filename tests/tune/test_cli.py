"""The --tune / --tune-cache CLI flags and their composition surface."""

import pytest

from repro import tune
from repro.apps import Stencil1D, VersionLabel, XSBench
from repro.apps.__main__ import main
from repro.gpu import get_device
from repro.trace.export import validate_chrome_trace

pytestmark = pytest.mark.tune

APPS = {"xsbench": XSBench, "stencil1d": Stencil1D}


def _expected_checksum(key):
    app = APPS[key]()
    params = app.functional_params()
    return app.run_single(VersionLabel.OMPX, params, get_device(0)).checksum


@pytest.mark.parametrize("key", sorted(APPS))
def test_tune_run_matches_untuned_checksum(key, tmp_path, capsys):
    code = main([key, "--run", "--tune", "--tune-cache", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert f"checksum = {_expected_checksum(key):.6f}" in out
    assert "verification PASSED" in out
    # The tune summary printed, pointing at the requested cache dir.
    assert "tune:" in out
    assert str(tmp_path) in out
    assert tune.active_session() is None  # the CLI cleaned up


def test_second_invocation_is_all_hits(tmp_path, capsys):
    main(["stencil1d", "--run", "--tune", "--tune-cache", str(tmp_path)])
    capsys.readouterr()
    code = main(["stencil1d", "--run", "--tune", "--tune-cache", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0, out
    # Warm cache: zero searches, zero misses — only hits.
    assert "0 search(es)" in out
    assert "0 miss(es)" in out
    assert "verification PASSED" in out


@pytest.mark.parametrize("key", sorted(APPS))
def test_tune_serve_resilient_devices_compose(key, tmp_path, capsys):
    # The acceptance composition: --tune --serve --resilient --devices 2.
    code = main([
        key, "--tune", "--tune-cache", str(tmp_path),
        "--serve", "--resilient", "--devices", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert f"checksum = {_expected_checksum(key):.6f}" in out
    assert "tune:" in out
    assert tune.active_session() is None


def test_tune_trace_compose(tmp_path, capsys):
    trace_path = tmp_path / "tuned.json"
    code = main([
        "stencil1d", "--run", "--tune", "--tune-cache", str(tmp_path),
        "--trace", str(trace_path),
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "tune:" in out
    events = validate_chrome_trace(trace_path)
    assert events


def test_tune_resilient_faulted_run_still_passes(tmp_path, capsys):
    # Searches are suppressed under an active fault plan, so the seeded
    # fault replay stays deterministic and recovery still heals the run.
    code = main([
        "xsbench", "--run", "--tune", "--tune-cache", str(tmp_path),
        "--resilient", "--devices", "2",
        "--faults", "launch:kernel_fault@1 device=1;seed=9",
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert f"checksum = {_expected_checksum('xsbench'):.6f}" in out
    assert "0 search(es)" in out
