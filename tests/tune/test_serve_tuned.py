"""Serving-tier tuning: tenants share one session and reuse its plans."""

import numpy as np
import pytest

from repro import ompx, tune
from repro.gpu.launch import LaunchConfig
from repro.serve import KernelService

pytestmark = pytest.mark.tune

CONFIG = LaunchConfig.create(2, 32)


@ompx.bare_kernel(sync_free=True)
def served(x, bias):
    i = x.global_thread_id_x()
    t = i + bias
    del t


class TestServiceTuning:
    def test_service_owns_and_tears_down_its_session(self, tmp_path):
        service = KernelService(devices=1, dispatchers=1, tune=True,
                                tune_cache=str(tmp_path))
        try:
            assert tune.active_session() is not None
        finally:
            service.close()
        assert tune.active_session() is None

    def test_tenants_share_one_plan(self, tmp_path):
        with KernelService(devices=1, dispatchers=1, tune=True,
                           tune_cache=str(tmp_path)) as service:
            alice = service.session("alice")
            bob = service.session("bob")
            alice.run(served.entry, CONFIG, 1, label="a")
            bob.run(served.entry, CONFIG, 2, label="b")
            stats = service.stats()
            counters = stats["tune"]["counters"]
            # Plans are keyed on (kernel, shape, spec) — not the tenant —
            # so bob dispatches from alice's search.
            assert counters["tune_searches"] == 1
            assert counters["tune_hits"] >= 1
            assert "tune:" in service.summary()
        # The cache was persisted at close: a later service is all hits.
        with KernelService(devices=1, dispatchers=1, tune=True,
                           tune_cache=str(tmp_path)) as warm_service:
            carol = warm_service.session("carol")
            carol.run(served.entry, CONFIG, 3, label="c")
            warm = warm_service.stats()["tune"]["counters"]
            assert warm["tune_searches"] == 0
            assert warm["tune_hits"] == 1

    def test_service_reuses_an_external_session(self, tmp_path):
        with tune.tuning(str(tmp_path)) as session:
            with KernelService(devices=1, dispatchers=1, tune=True) as service:
                tenant = service.session("t0")
                tenant.run(served.entry, CONFIG, 1)
                assert service.stats()["tune"]["counters"]["tune_promotes"] == 1
            # The service must not tear down a session it does not own.
            assert tune.active_session() is session
        assert tune.active_session() is None

    def test_untuned_service_reports_no_tune_stats(self):
        with KernelService(devices=1, dispatchers=1) as service:
            tenant = service.session("t0")
            tenant.run(served.entry, CONFIG, 1)
            assert "tune" not in service.stats()

    def test_tuned_app_submission_round_trips(self, tmp_path):
        from repro.apps import Stencil1D

        app = Stencil1D()
        with KernelService(devices=2, dispatchers=1, tune=True,
                           tune_cache=str(tmp_path)) as service:
            tenant = service.session("t0")
            result = tenant.run_app(app)
            assert app.verify(result, app.functional_params())
