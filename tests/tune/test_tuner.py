"""Autotuner: candidate enumeration, prediction, side-effect-free search."""

import numpy as np
import pytest

from repro import ompx
from repro.errors import TuneError
from repro.gpu.device import get_device
from repro.gpu.launch import LaunchConfig
from repro.tune import ENGINE_PRIORS, Autotuner
from repro.tune.tuner import searchable_args

pytestmark = pytest.mark.tune

N = 256


@ompx.bare_kernel(sync_free=True)
def add_one(x, ptr, n):
    i = x.global_thread_id_x()
    if i < n:
        x.array(ptr, n, np.float64)[i] += 1.0


@ompx.bare_kernel(sync_free=True)
def scale_all(x, ptr, n):
    # Branch-free body (grid x block == n exactly): the static analysis
    # proves this one vectorizable, unlike the guarded kernels below.
    i = x.global_thread_id_x()
    a = x.array(ptr, n, np.float64)
    a[i] = a[i] * 2.0


@ompx.bare_kernel()
def with_barrier(x, ptr, n):
    i = x.global_thread_id_x()
    x.sync_threads()
    if i < n:
        x.array(ptr, n, np.float64)[i] += 1.0


@ompx.bare_kernel(sync_free=True, vectorize=False)
def pinned_scalar(x, ptr, n):
    i = x.global_thread_id_x()
    if i < n:
        x.array(ptr, n, np.float64)[i] += 1.0


@pytest.fixture
def device():
    return get_device(0)


@pytest.fixture
def buf(device):
    ptr = device.allocator.malloc(N * 8)
    device.allocator.memcpy_h2d(ptr, np.arange(N, dtype=np.float64))
    yield ptr
    device.allocator.free(ptr)


def config(grid=4, block=64):
    return LaunchConfig.create(grid, block)


class TestConstruction:
    @pytest.mark.parametrize("budget", [0, -3])
    def test_budget_must_be_positive(self, budget):
        with pytest.raises(TuneError, match="budget"):
            Autotuner(budget=budget)

    def test_register_assumption_must_be_positive(self):
        with pytest.raises(TuneError, match="registers"):
            Autotuner(registers_per_thread=0)


class TestCandidates:
    def test_sync_free_vectorizable_kernel_gets_every_engine(self, device):
        names = Autotuner().candidates(scale_all.entry, config(), device)
        assert set(names) == {"block-thread", "map", "vector", "wave"}

    def test_guarded_kernel_keeps_the_scalar_engines(self, device):
        # The `if i < n` bound check defeats lane batching, so only the
        # scalar engines remain candidates.
        names = Autotuner().candidates(add_one.entry, config(), device)
        assert set(names) == {"block-thread", "map"}

    def test_barrier_kernel_is_cooperative_only(self, device):
        names = Autotuner().candidates(with_barrier.entry, config(), device)
        assert names == ["block-thread"]

    def test_vectorize_false_pins_the_scalar_engines(self, device):
        names = Autotuner().candidates(pinned_scalar.entry, config(), device)
        assert "vector" not in names
        assert "wave" not in names
        assert "block-thread" in names

    def test_thread_guard_rails_filter_by_size(self, device):
        # 40960 blocks x 1024 threads = ~42M: beyond the cooperative
        # (2M) and map (20M) rails, still inside the lane-batched ones.
        huge = config(grid=40960, block=1024)
        names = Autotuner().candidates(scale_all.entry, huge, device)
        assert "block-thread" not in names
        assert "map" not in names
        assert {"vector", "wave"} <= set(names)


class TestPrediction:
    def test_order_is_deterministic_for_a_seed(self, device):
        names = Autotuner().candidates(add_one.entry, config(), device)
        first = Autotuner(seed=7).predicted_order(
            add_one.entry, config(), device, names)
        second = Autotuner(seed=7).predicted_order(
            add_one.entry, config(), device, names)
        assert first == second

    def test_priors_dominate_at_equal_occupancy(self, device):
        names = ["block-thread", "map", "vector", "wave"]
        ordered = Autotuner().predicted_order(
            add_one.entry, config(), device, names)
        assert [name for name, _ in ordered] == sorted(
            names, key=lambda n: -ENGINE_PRIORS[n])

    def test_scores_are_positive_and_sorted(self, device):
        names = Autotuner().candidates(add_one.entry, config(), device)
        ordered = Autotuner().predicted_order(
            add_one.entry, config(), device, names)
        scores = [score for _, score in ordered]
        assert all(s > 0 for s in scores)
        assert scores == sorted(scores, reverse=True)


class TestSearch:
    def test_winner_is_a_legal_engine_with_measurements(self, device, buf):
        cfg = config()
        plan = Autotuner().search(add_one.entry, cfg, (buf, N), device)
        assert plan.engine in Autotuner().candidates(add_one.entry, cfg, device)
        assert plan.flags["searched"] is True
        assert plan.flags["measured"] >= 2
        assert plan.flags["best_ns"] > 0
        assert plan.grid == cfg.grid.as_tuple()
        assert plan.block == cfg.block.as_tuple()

    def test_probes_leave_device_memory_untouched(self, device, buf):
        # add_one is non-idempotent: if any probe's writes leaked, the
        # buffer would show +1 per measured candidate.
        before = np.zeros(N)
        device.allocator.memcpy_d2h(before, buf)
        Autotuner().search(add_one.entry, config(), (buf, N), device)
        after = np.zeros(N)
        device.allocator.memcpy_d2h(after, buf)
        assert np.array_equal(before, after)

    def test_budget_bounds_the_probe_count(self, device, buf):
        plan = Autotuner(budget=2).search(
            add_one.entry, config(), (buf, N), device)
        assert plan.flags["measured"] == 2

    def test_single_candidate_commits_unmeasured(self, device, buf):
        plan = Autotuner().search(with_barrier.entry, config(), (buf, N), device)
        assert plan.engine == "block-thread"
        assert plan.flags["candidates"] == 1
        assert plan.flags["measured"] == 0

    def test_raw_ndarray_arguments_are_restored_too(self, device):
        host = np.arange(N, dtype=np.float64)

        @ompx.bare_kernel(sync_free=True)
        def bump_host(x, arr, n):
            i = x.global_thread_id_x()
            if i < n:
                arr[i] += 1.0

        Autotuner().search(bump_host.entry, config(), (host, N), device)
        assert np.array_equal(host, np.arange(N, dtype=np.float64))


class TestSearchableArgs:
    def test_snapshotable_values_pass(self, device, buf):
        assert searchable_args(
            (None, True, 3, 2.5, 1j, "s", b"b", buf,
             np.arange(4), np.float64(2.0), (1, [2, buf])))

    @pytest.mark.parametrize("opaque", [object(), {"a": 1}, print, iter(())])
    def test_opaque_values_disable_the_search(self, opaque):
        assert not searchable_args((1, opaque))
        assert not searchable_args(([opaque],))
