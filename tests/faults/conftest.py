"""Fixtures for the fault-injection / sanitizer tests.

Devices are process-wide singletons, and several tests here deliberately
poison a context or tear its allocator down.  Every test in this package
therefore runs against a device that is reset before *and* after, so no
sticky error or half-freed allocation leaks into the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.gpu.device import get_device


@pytest.fixture
def clean_device():
    """Device 0 (the A100), reset on entry and exit."""
    device = get_device(0)
    device.reset()
    yield device
    device.reset()
