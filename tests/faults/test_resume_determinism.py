"""FaultPlan cursors: a restored plan fires the remaining triggers
byte-identically to an uninterrupted one.

This is the determinism contract behind checkpoint/resume: snapshots
carry ``plan.snapshot_cursor()``, and a resumed run restores it before
re-entering the instrumented call stream — so ``@N``, ``every=`` and
``p=`` triggers land on exactly the calls they would have hit had the
process never died.
"""

import numpy as np
import pytest

from repro import faults
from repro.errors import FaultSpecError, OutOfMemoryError
from repro.faults import FaultPlan

pytestmark = [pytest.mark.faults, pytest.mark.ckpt]


def _fire_pattern(plan, site, count, start=1, **context):
    """Which call indices in [start, start+count) produce an effect."""
    hits = []
    for n in range(start, start + count):
        if plan.fire(site, **context):
            hits.append(n)
    return hits


class TestCursorRoundTrip:
    def test_nth_trigger_survives_a_mid_stream_restore(self):
        spec = "malloc:oom@5;seed=1"
        first = FaultPlan.parse(spec)
        for _ in range(3):  # calls 1..3: no fire
            first.fire("malloc")
        cursor = first.snapshot_cursor()

        resumed = FaultPlan.parse(spec)
        resumed.restore_cursor(cursor)
        resumed.fire("malloc")  # call 4: still quiet
        with pytest.raises(OutOfMemoryError) as ei:
            resumed.fire("malloc")  # call 5: the @5 trigger
        assert getattr(ei.value, "injected", False)
        assert resumed.fired == 1

    def test_every_trigger_continues_its_cadence(self):
        spec = "memcpy:truncate,every=3,bytes=4;seed=1"
        uninterrupted = FaultPlan.parse(spec)
        expected = _fire_pattern(uninterrupted, "memcpy", 12)
        assert expected == [3, 6, 9, 12]

        first = FaultPlan.parse(spec)
        prefix = _fire_pattern(first, "memcpy", 4)
        resumed = FaultPlan.parse(spec)
        resumed.restore_cursor(first.snapshot_cursor())
        tail = _fire_pattern(resumed, "memcpy", 8, start=5)
        assert prefix + tail == expected

    def test_probability_trigger_replays_the_rng_stream(self):
        spec = "memcpy:truncate,p=0.5,bytes=1;seed=42"
        uninterrupted = FaultPlan.parse(spec)
        expected = _fire_pattern(uninterrupted, "memcpy", 40)
        assert expected  # a meaningless pattern would prove nothing
        for cut in (1, 7, 23):
            first = FaultPlan.parse(spec)
            prefix = _fire_pattern(first, "memcpy", cut)
            resumed = FaultPlan.parse(spec)
            resumed.restore_cursor(first.snapshot_cursor())
            tail = _fire_pattern(resumed, "memcpy", 40 - cut, start=cut + 1)
            assert prefix + tail == expected, f"diverged at cut={cut}"

    def test_log_sequence_numbers_continue(self):
        spec = "memcpy:truncate,every=2,bytes=1;seed=1"
        first = FaultPlan.parse(spec)
        _fire_pattern(first, "memcpy", 4)  # fires at 2 and 4
        resumed = FaultPlan.parse(spec)
        resumed.restore_cursor(first.snapshot_cursor())
        _fire_pattern(resumed, "memcpy", 2, start=5)  # fires at 6
        assert [entry[0] for entry in resumed.log] == [0, 1, 2]

    def test_cursor_is_json_safe(self):
        """Cursors ride inside pickled snapshots today, but the rebuild
        tolerates a JSON round trip (lists for tuples)."""
        import json

        spec = "memcpy:truncate,p=0.5,bytes=1;seed=9"
        first = FaultPlan.parse(spec)
        _fire_pattern(first, "memcpy", 10)
        cursor = json.loads(json.dumps(first.snapshot_cursor()))
        resumed = FaultPlan.parse(spec)
        resumed.restore_cursor(cursor)
        twin = FaultPlan.parse(spec)
        _fire_pattern(twin, "memcpy", 10)
        assert _fire_pattern(resumed, "memcpy", 10, start=11) == _fire_pattern(
            twin, "memcpy", 10, start=11
        )


class TestCursorValidation:
    def test_wrong_seed_is_rejected(self):
        cursor = FaultPlan.parse("malloc:oom@5;seed=1").snapshot_cursor()
        with pytest.raises(FaultSpecError, match="seed"):
            FaultPlan.parse("malloc:oom@5;seed=2").restore_cursor(cursor)

    def test_wrong_rules_are_rejected(self):
        cursor = FaultPlan.parse("malloc:oom@5;seed=1").snapshot_cursor()
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("malloc:oom@6;seed=1").restore_cursor(cursor)


class TestIntegratedResume:
    def test_checkpointed_resume_replays_the_remaining_triggers(self, tmp_path):
        """Kill a checkpointed run mid-chain under an effects-only fault
        plan; the resumed run's fault log must extend the snapshot's
        cursor into *exactly* the uninterrupted run's log."""
        from repro.apps import XSBench
        from repro.ckpt import CheckpointSession, run_checkpointed
        from repro.gpu.device import get_device
        from repro.sched import DevicePool

        app = XSBench()
        params = app.functional_params()
        spec = "launch:delay,every=2,delay=0;seed=3"
        clean = app.run_single("ompx", params, get_device(0))

        # Uninterrupted checkpointed run (serial: 1 device, waves of 1).
        with faults.inject(spec) as plan:
            with DevicePool(1) as pool:
                session = CheckpointSession(str(tmp_path / "a"), every=1)
                uninterrupted = run_checkpointed(
                    app, "ompx", params, pool, session, shards=4
                )
            expected_log = list(plan.log)
        assert plan.fired >= 1  # the plan must actually matter
        assert np.array_equal(uninterrupted.output, clean.output)

        class _Boom(Exception):
            pass

        def crash(step, path):
            if step == 2:
                raise _Boom("killed after snapshot 2")

        directory = str(tmp_path / "b")
        with faults.inject(spec):
            with DevicePool(1) as pool:
                crashed = CheckpointSession(directory, on_commit=crash)
                with pytest.raises(_Boom):
                    run_checkpointed(
                        app, "ompx", params, pool, crashed, shards=4
                    )

        # Fresh process: fresh plan instance, cursor restored from disk.
        with faults.inject(spec) as replay:
            with DevicePool(1) as pool:
                resumed_session = CheckpointSession(directory)
                resumed = run_checkpointed(
                    app, "ompx", params, pool, resumed_session, resume=True
                )
            assert list(replay.log) == expected_log
        assert np.array_equal(resumed.output, clean.output)
        assert resumed_session.stats["steps_skipped"] == 2
