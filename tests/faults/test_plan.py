"""FaultPlan / FaultRule: spec parsing, triggers, deterministic replay."""

import pytest

from repro.errors import (
    FaultSpecError,
    GpuError,
    InvalidPointerError,
    OutOfMemoryError,
)
from repro.faults import SITES, FaultPlan, FaultRule

pytestmark = pytest.mark.faults


class TestRuleParsing:
    def test_minimal_rule(self):
        rule = FaultRule.parse("malloc:oom")
        assert rule.site == "malloc"
        assert rule.action == "oom"
        assert rule.nth is None and rule.every is None

    def test_nth_trigger(self):
        assert FaultRule.parse("malloc:oom@3").nth == 3

    def test_every_and_max(self):
        rule = FaultRule.parse("enqueue:delay,every=2,max=5,delay=0.01")
        assert rule.every == 2
        assert rule.max_fires == 5
        assert rule.payload_dict() == {"delay": "0.01"}

    def test_probability(self):
        assert FaultRule.parse("malloc:oom,p=0.25").probability == 0.25

    def test_match_keys_separated_from_payload(self):
        rule = FaultRule.parse(
            "launch:kernel_fault,kernel=stencil,block=2,after_barriers=1"
        )
        assert dict(rule.match) == {"kernel": "stencil"}
        assert rule.payload_dict() == {"block": "2", "after_barriers": "1"}

    def test_key_round_trips_the_shape(self):
        rule = FaultRule.parse("memcpy:truncate@2,bytes=16")
        assert rule.key == "memcpy:truncate@2,bytes=16"

    @pytest.mark.parametrize("bad", [
        "malloc",                      # no action
        "malloc:",                     # empty action
        "frobnicate:oom",              # unknown site
        "malloc:truncate",             # action not valid for site
        "malloc:oom@x",                # non-integer nth
        "malloc:oom@0",                # nth < 1
        "malloc:oom,every=0",          # every < 1
        "malloc:oom,p=1.5",            # probability out of range
        "malloc:oom,p=abc",            # non-float probability
        "malloc:oom,keynovalue",       # option without '='
    ])
    def test_bad_rules_raise_fault_spec_error(self, bad):
        with pytest.raises(FaultSpecError):
            FaultRule.parse(bad)


class TestPlanParsing:
    def test_seed_and_multiple_rules(self):
        plan = FaultPlan.parse("seed=42;malloc:oom@3;memcpy:truncate@2,bytes=16")
        assert plan.seed == 42
        assert len(plan.rules) == 2
        assert plan.rules[0].site == "malloc"
        assert plan.rules[1].site == "memcpy"

    def test_empty_spec_rejected(self):
        with pytest.raises(FaultSpecError, match="no rules"):
            FaultPlan.parse("seed=7")

    def test_bad_seed_rejected(self):
        with pytest.raises(FaultSpecError, match="seed"):
            FaultPlan.parse("seed=banana;malloc:oom")

    def test_all_documented_sites_parse(self):
        for site in SITES:
            spec = {
                "malloc": "malloc:oom",
                "free": "free:invalid_pointer",
                "memcpy": "memcpy:truncate",
                "memset": "memset:error",
                "launch": "launch:kernel_fault",
                "enqueue": "enqueue:abort",
                "checkpoint_write": "checkpoint_write:corrupt",
                "checkpoint_read": "checkpoint_read:truncate",
            }[site]
            assert FaultPlan.parse(spec).rules[0].site == site


class TestFiring:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan.parse("malloc:oom@3")
        for i in (1, 2):
            assert plan.fire("malloc", size=i) == {}
        with pytest.raises(OutOfMemoryError) as ei:
            plan.fire("malloc", size=3)
        assert getattr(ei.value, "injected", False)
        # Subsequent matches do not re-fire an @N rule.
        assert plan.fire("malloc", size=4) == {}
        assert plan.fired == 1

    def test_every_k_with_max(self):
        plan = FaultPlan.parse("memcpy:truncate,every=2,max=2,bytes=4")
        effects = [plan.fire("memcpy", size=100) for _ in range(8)]
        truncated = [e for e in effects if "truncate_bytes" in e]
        assert len(truncated) == 2          # max=2 caps an every-2 rule
        assert truncated[0]["truncate_bytes"] == 4

    def test_truncate_defaults_to_half(self):
        plan = FaultPlan.parse("memcpy:truncate@1")
        assert plan.fire("memcpy", size=100)["truncate_bytes"] == 50

    def test_match_keys_filter_context(self):
        plan = FaultPlan.parse("launch:kernel_fault,kernel=boom")
        assert plan.fire("launch", kernel="fine") == {}
        effects = plan.fire("launch", kernel="boom")
        assert effects["kernel_fault"]["message"]

    def test_kernel_fault_is_an_effect_not_a_raise(self):
        # The fault must fire inside the kernel on engine threads; firing
        # at the instrumentation point would bypass the poison path.
        plan = FaultPlan.parse("launch:kernel_fault,block=2,after_barriers=1")
        effects = plan.fire("launch", kernel="k")
        assert effects["kernel_fault"] == {
            "block": 2, "after_barriers": 1,
            "message": "[injected] kernel_fault at launch call #1",
        }

    def test_delay_effects_accumulate(self):
        plan = FaultPlan.parse("enqueue:delay,delay=0.01;enqueue:delay,delay=0.02")
        assert plan.fire("enqueue", op="x")["delay_s"] == pytest.approx(0.03)

    def test_abort_raises_gpu_error(self):
        plan = FaultPlan.parse("enqueue:abort")
        with pytest.raises(GpuError) as ei:
            plan.fire("enqueue", op="memcpy")
        assert getattr(ei.value, "injected", False)

    def test_invalid_pointer_action(self):
        plan = FaultPlan.parse("free:invalid_pointer@1")
        with pytest.raises(InvalidPointerError):
            plan.fire("free", ptr="0x1000")

    def test_custom_message_payload(self):
        plan = FaultPlan.parse("malloc:oom@1,message=synthetic ENOMEM")
        with pytest.raises(OutOfMemoryError, match="synthetic ENOMEM"):
            plan.fire("malloc", size=1)


def _drive(plan, calls=300):
    """Replay a fixed synthetic workload against a plan; record everything."""
    events = []
    for i in range(calls):
        try:
            effects = plan.fire("malloc", device=0, size=i)
            events.append(("ok", tuple(sorted(effects.items()))))
        except OutOfMemoryError as exc:
            events.append(("oom", str(exc)))
        try:
            effects = plan.fire("memcpy", device=0, size=64, direction="h2d")
            events.append(("copy", tuple(sorted(effects.items()))))
        except GpuError as exc:
            events.append(("copy-err", str(exc)))
    return events


class TestDeterministicReplay:
    SPEC = "seed=123;malloc:oom,p=0.2;memcpy:truncate,p=0.1;memcpy:error,p=0.05"

    def test_same_spec_same_seed_replays_byte_identically(self):
        a, b = FaultPlan.parse(self.SPEC), FaultPlan.parse(self.SPEC)
        assert _drive(a) == _drive(b)
        assert a.log == b.log
        assert repr(a.log).encode() == repr(b.log).encode()
        assert a.summary() == b.summary()
        assert a.fired > 0  # the probabilistic rules really did fire

    def test_reset_rearms_an_identical_replay(self):
        plan = FaultPlan.parse(self.SPEC)
        first_events, first_log = _drive(plan), list(plan.log)
        plan.reset()
        assert plan.log == []
        assert _drive(plan) == first_events
        assert plan.log == first_log

    def test_different_seed_diverges(self):
        a = FaultPlan.parse("seed=1;malloc:oom,p=0.3")
        b = FaultPlan.parse("seed=2;malloc:oom,p=0.3")
        assert _drive(a) != _drive(b)

    def test_summary_names_every_fired_fault(self):
        plan = FaultPlan.parse("malloc:oom@2")
        _drive(plan, calls=3)
        assert "1 fault(s) injected (seed=0)" in plan.summary()
        assert "malloc:oom" in plan.summary()
