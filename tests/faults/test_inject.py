"""faults.inject(): activation scoping and real call-site integration."""

import time

import numpy as np
import pytest

import repro.trace as trace
from repro import faults
from repro.errors import FaultSpecError, GpuError, OutOfMemoryError
from repro.gpu.stream import Stream

pytestmark = pytest.mark.faults


class TestActivation:
    def test_inactive_by_default(self):
        assert faults.active_plan() is None
        assert faults.fire("malloc", size=1) == {}

    def test_spec_string_is_parsed(self):
        with faults.inject("malloc:oom@1") as plan:
            assert faults.active_plan() is plan
            assert plan.rules[0].site == "malloc"
        assert faults.active_plan() is None

    def test_seed_override(self):
        plan = faults.FaultPlan.parse("seed=1;malloc:oom,p=0.5")
        with faults.inject(plan, seed=99) as active:
            assert active.seed == 99

    def test_no_nesting(self):
        with faults.inject("malloc:oom@1"):
            with pytest.raises(FaultSpecError, match="does not nest"):
                with faults.inject("malloc:oom@1"):
                    pass  # pragma: no cover
        assert faults.active_plan() is None

    def test_deactivated_even_after_error(self):
        with pytest.raises(ValueError):
            with faults.inject("malloc:oom@1"):
                raise ValueError("body blew up")
        assert faults.active_plan() is None


class TestAllocatorIntegration:
    def test_oom_on_nth_malloc(self, clean_device):
        with faults.inject("malloc:oom@2") as plan:
            first = clean_device.allocator.malloc(64)      # survives
            with pytest.raises(OutOfMemoryError) as ei:
                clean_device.allocator.malloc(64)
        assert getattr(ei.value, "injected", False)
        assert plan.fired == 1
        assert plan.log[0][1] == "malloc"
        clean_device.allocator.free(first)

    def test_memcpy_truncation(self, clean_device):
        src = np.full(16, 0xAB, dtype=np.uint8)
        ptr = clean_device.allocator.malloc(src.nbytes)
        with faults.inject("memcpy:truncate@1,bytes=8,direction=h2d"):
            clean_device.allocator.memcpy_h2d(ptr, src)
        out = np.zeros_like(src)
        clean_device.allocator.memcpy_d2h(out, ptr)
        assert (out[:8] == 0xAB).all()
        assert (out[8:] == 0).all()        # truncated tail never arrived
        clean_device.allocator.free(ptr)

    def test_direction_match_key_spares_other_directions(self, clean_device):
        src = np.ones(16, dtype=np.uint8)
        ptr = clean_device.allocator.malloc(src.nbytes)
        with faults.inject("memcpy:truncate,bytes=0,direction=d2h") as plan:
            clean_device.allocator.memcpy_h2d(ptr, src)    # unaffected
            out = np.zeros_like(src)
            clean_device.allocator.memcpy_d2h(out, ptr)    # fully truncated
        assert (out == 0).all()
        assert plan.fired == 1
        clean_device.allocator.free(ptr)


class TestStreamIntegration:
    def test_enqueue_delay_occupies_the_stream(self, clean_device):
        stream = Stream(clean_device, name="delayed")
        try:
            with faults.inject("enqueue:delay,delay=0.05"):
                start = time.perf_counter()
                stream.enqueue(lambda: None)
                stream.synchronize()
                elapsed = time.perf_counter() - start
            assert elapsed >= 0.04
        finally:
            stream.close()

    def test_enqueue_abort_refuses_on_the_host_thread(self, clean_device):
        stream = Stream(clean_device, name="aborted")
        try:
            with faults.inject("enqueue:abort,stream=aborted"):
                with pytest.raises(GpuError) as ei:
                    stream.enqueue(lambda: None)
            assert getattr(ei.value, "injected", False)
            stream.synchronize()   # nothing was queued; stream stays healthy
        finally:
            stream.close()


class TestTraceIntegration:
    def test_fired_faults_emit_trace_spans(self, clean_device):
        tracer = trace.enable()
        try:
            with faults.inject("malloc:oom@1"):
                with pytest.raises(OutOfMemoryError):
                    clean_device.allocator.malloc(32)
        finally:
            trace.disable()
        fault_spans = [s for s in tracer.spans if s.cat == "fault"]
        assert len(fault_spans) == 1
        assert fault_spans[0].name == "fault:malloc:oom"
        assert tracer.counters["faults_injected"] == 1
