"""Sticky device contexts: the CUDA error model, end to end.

Acceptance criterion for the fault framework: a kernel fault injected
into an ``ompx_bare`` launch poisons the device context, all four front
ends (CUDA, HIP, OpenMP ``target``, ompx) observe the *same* sticky
error on their next call, and ``ompx_device_reset()`` recovers.
"""

import numpy as np
import pytest

from repro import cuda, faults, hip
from repro.errors import (
    KernelFault,
    LaunchError,
    OutOfMemoryError,
    StickyContextError,
)
from repro.gpu import LaunchConfig, get_device, launch_kernel
from repro.ompx import (
    bare_kernel,
    ompx_device_reset,
    ompx_device_synchronize,
    ompx_malloc,
    target_teams_bare,
)
from repro.openmp.target import target_teams_distribute_parallel_for

pytestmark = pytest.mark.faults


@bare_kernel
def boom(x):
    pass  # the injected fault fires before/instead of the body


@cuda.kernel
def cuda_noop(t):
    pass


@hip.kernel
def hip_noop(t):
    pass


@bare_kernel
def ompx_noop(x):
    pass


class TestStickyAcrossFrontEnds:
    def test_fault_poisons_all_front_ends_until_reset(self, clean_device):
        device = clean_device

        # 1. A kernel fault injected into an ompx_bare launch.
        with faults.inject("launch:kernel_fault,kernel=boom"):
            with pytest.raises(LaunchError) as ei:
                target_teams_bare(device, 1, 32, boom)
        fault = ei.value.__cause__
        assert isinstance(fault, KernelFault)
        assert fault.injected
        assert fault.kernel == "boom"
        assert device.is_poisoned
        assert device.sticky_error is fault

        # 2. Every front end now reports the same sticky error.
        observed = []
        with pytest.raises(StickyContextError) as e:
            cuda.launch(cuda_noop, 1, 32, device=device)
        observed.append(e.value)
        with pytest.raises(StickyContextError) as e:
            hip.launch(hip_noop, 1, 32, device=device)
        observed.append(e.value)
        with pytest.raises(StickyContextError) as e:
            target_teams_distribute_parallel_for(
                device, 8, body=lambda i, acc: None
            )
        observed.append(e.value)
        with pytest.raises(StickyContextError) as e:
            target_teams_bare(device, 1, 32, ompx_noop)
        observed.append(e.value)
        for sticky in observed:
            assert sticky.device == device.ordinal
            assert sticky.original is fault
            assert sticky.__cause__ is fault
            assert "ompx_device_reset" in str(sticky)

        # 3. Host APIs on the poisoned device report it too.
        with pytest.raises(StickyContextError):
            ompx_malloc(64, device)
        with pytest.raises(StickyContextError):
            ompx_device_synchronize(device)

        # 4. Reset recovers; every front end launches cleanly again.
        ompx_device_reset(device)
        assert not device.is_poisoned
        assert device.sticky_error is None
        cuda.launch(cuda_noop, 1, 32, device=device)
        cuda.cudaDeviceSynchronize()
        hip.launch(hip_noop, 1, 32, device=device)
        device.synchronize()
        target_teams_distribute_parallel_for(device, 8, body=lambda i, acc: None)
        report = target_teams_bare(device, 1, 32, ompx_noop)
        assert report is not None

    def test_first_fault_wins(self, clean_device):
        first = KernelFault("first", kernel="a")
        second = KernelFault("second", kernel="b")
        clean_device.poison(first)
        clean_device.poison(second)
        assert clean_device.sticky_error is first

    def test_other_devices_unaffected(self, clean_device):
        other = get_device(1)
        clean_device.poison(KernelFault("boom"))
        ptr = other.allocator.malloc(64)   # device 1 keeps working
        other.allocator.free(ptr)
        assert not other.is_poisoned

    def test_organic_kernel_exception_does_not_poison(self, clean_device):
        # Ordinary kernel-body exceptions stay launch-local (the PR 2
        # behaviour); only KernelFault-class causes are sticky.
        def bad(ctx):
            raise ValueError("plain bug")

        bad.vectorize = False
        with pytest.raises(LaunchError):
            launch_kernel(LaunchConfig.create(1, 1), bad, (), clean_device)
        assert not clean_device.is_poisoned


class TestBlockSelectiveBarrierFault:
    def test_fault_after_barrier_in_selected_block(self, clean_device):
        # All threads of block 1 must raise *after* the first barrier
        # completes, so the cooperative engine cannot deadlock on
        # fault-induced barrier divergence.
        crossed = []

        def coop(ctx):
            ctx.sync_threads()
            crossed.append(int(ctx.flat_block_id))
            ctx.sync_threads()

        coop.vectorize = False
        spec = "launch:kernel_fault,kernel=coop,block=1,after_barriers=1"
        with faults.inject(spec):
            with pytest.raises(LaunchError) as ei:
                launch_kernel(LaunchConfig.create(4, 4), coop, (), clean_device)
        fault = ei.value.__cause__
        assert isinstance(fault, KernelFault)
        assert fault.block == 1
        assert clean_device.is_poisoned

    def test_unselected_blocks_unaffected_when_no_block_matches(self, clean_device):
        with faults.inject("launch:kernel_fault,kernel=nomatch"):
            stats = launch_kernel(
                LaunchConfig.create(2, 4), lambda ctx: None, (), clean_device
            )
        assert stats.threads_run == 8
        assert not clean_device.is_poisoned


class TestResetSemantics:
    def test_reset_drops_allocations(self, clean_device):
        ptr = clean_device.allocator.malloc(64)
        clean_device.reset()
        out = np.zeros(64, dtype=np.uint8)
        from repro.errors import InvalidPointerError

        with pytest.raises(InvalidPointerError):
            clean_device.allocator.memcpy_d2h(out, ptr)

    def test_reset_analogue_spellings(self, clean_device):
        clean_device.poison(KernelFault("x"))
        cuda.cudaDeviceReset()            # current CUDA device is ordinal 0
        assert not clean_device.is_poisoned

        clean_device.poison(KernelFault("y"))
        ompx_device_reset(clean_device)
        assert not clean_device.is_poisoned

        amd = get_device(1)
        amd.poison(KernelFault("z"))
        try:
            hip.hipDeviceReset()          # current HIP device is ordinal 1
            assert not amd.is_poisoned
        finally:
            amd.reset()

    def test_injected_oom_is_not_sticky(self, clean_device):
        # Allocation failure is an ordinary, recoverable error on real
        # GPUs — it must not poison the context.
        with faults.inject("malloc:oom@1"):
            with pytest.raises(OutOfMemoryError):
                clean_device.allocator.malloc(64)
        assert not clean_device.is_poisoned
        ptr = clean_device.allocator.malloc(64)
        clean_device.allocator.free(ptr)
