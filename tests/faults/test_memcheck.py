"""The memcheck sanitizer: OOB detection, leaks, and free diagnostics."""

import numpy as np
import pytest

from repro import faults
from repro.errors import (
    FaultSpecError,
    InvalidPointerError,
    LaunchError,
    MemcheckError,
)
from repro.gpu import LaunchConfig, launch_kernel

pytestmark = pytest.mark.faults


def _oob_store_kernel(ctx, out_ptr):
    view = ctx.deref(out_ptr, 4, np.float64)
    # Index 64 is far past the 4-element view: silently dropped without
    # the sanitizer, a MemcheckError under it.
    ctx.store(view, 64, 1.0)


_oob_store_kernel.sync_free = True
_oob_store_kernel.vectorize = False


class TestOobStore:
    def test_oob_store_names_address_allocation_and_kernel(self, clean_device):
        ptr = clean_device.allocator.malloc(4 * 8)
        with faults.memcheck() as mc:
            with pytest.raises(LaunchError) as ei:
                launch_kernel(
                    LaunchConfig.create(1, 1), _oob_store_kernel, (ptr,),
                    clean_device,
                )
        cause = ei.value.__cause__
        assert isinstance(cause, MemcheckError)
        # Acceptance criterion: offending address + allocation + kernel name.
        assert cause.kernel == "_oob_store_kernel"
        assert cause.address == ptr.address + 64 * 8
        text = str(cause)
        assert f"0x{cause.address:x}" in text
        assert "allocated at" in text
        assert "32 B" in text
        assert mc.report.oob_stores == 1
        # An OOB access is a kernel fault: the context is poisoned exactly
        # as it would be on hardware (clean_device resets it afterwards).
        assert clean_device.is_poisoned

    def test_oob_store_is_silently_dropped_without_sanitizer(self, clean_device):
        ptr = clean_device.allocator.malloc(4 * 8)
        stats = launch_kernel(
            LaunchConfig.create(1, 1), _oob_store_kernel, (ptr,), clean_device
        )
        assert stats is not None
        assert not clean_device.is_poisoned
        clean_device.allocator.free(ptr)

    def test_masked_out_oob_store_is_not_flagged(self):
        checker = faults.Memcheck()
        view = np.zeros(4)
        checker.check_store(view, 99, mask=False)       # inactive lane
        checker.check_store(view, np.array([1, 99]),
                            np.array([True, False]))    # lane 99 masked out
        assert checker.report.clean

    def test_vector_lane_oob_reports_first_bad_lane(self):
        checker = faults.Memcheck()
        view = np.zeros(8)
        with pytest.raises(MemcheckError, match="index 12"):
            checker.check_store(view, np.array([1, 12, 30]), True)
        assert checker.report.oob_stores == 1


class TestLoads:
    def test_oob_load_allowed_by_default(self):
        # load(view, i, fill=) is *specified* to return fill out of range;
        # vector tail lanes rely on it, so the default sanitizer allows it.
        checker = faults.Memcheck()
        checker.check_load(np.zeros(4), 99)
        assert checker.report.clean

    def test_check_loads_flags_oob_reads(self):
        checker = faults.Memcheck(check_loads=True)
        with pytest.raises(MemcheckError, match="out-of-bounds load"):
            checker.check_load(np.zeros(4), 99)
        assert checker.report.oob_loads == 1


class TestTeardownReport:
    def test_leaked_allocation_reported_with_site(self, clean_device):
        with faults.memcheck() as mc:
            kept = clean_device.allocator.malloc(128)
            freed = clean_device.allocator.malloc(64)
            clean_device.allocator.free(freed)
        assert len(mc.report.leaks) == 1
        ordinal, base, size, site = mc.report.leaks[0]
        assert (ordinal, base, size) == (0, kept.address, 128)
        assert "test_memcheck.py" in site
        assert "leak: 128 B" in mc.report.summary()
        clean_device.allocator.free(kept)

    def test_preexisting_allocations_are_not_leaks(self, clean_device):
        before = clean_device.allocator.malloc(256)
        with faults.memcheck() as mc:
            pass
        assert mc.report.leaks == []
        assert mc.report.clean
        assert mc.report.summary() == "memcheck: no errors"
        clean_device.allocator.free(before)

    def test_double_free_noted_in_report(self, clean_device):
        ptr = clean_device.allocator.malloc(32)
        with faults.memcheck() as mc:
            clean_device.allocator.free(ptr)
            with pytest.raises(InvalidPointerError):
                clean_device.allocator.free(ptr)
        assert len(mc.report.double_frees) == 1
        assert "double free" in mc.report.double_frees[0]
        assert not mc.report.clean

    def test_bad_free_noted_in_report(self, clean_device):
        ptr = clean_device.allocator.malloc(32)
        with faults.memcheck() as mc:
            with pytest.raises(InvalidPointerError):
                clean_device.allocator.free(ptr + 8)
        assert len(mc.report.bad_frees) == 1
        assert not mc.report.clean
        clean_device.allocator.free(ptr)


class TestScoping:
    def test_memcheck_does_not_nest(self):
        with faults.memcheck():
            with pytest.raises(FaultSpecError, match="does not nest"):
                with faults.memcheck():
                    pass  # pragma: no cover
        assert faults.get_memcheck() is None

    def test_host_backed_array_violation_still_reports(self):
        checker = faults.Memcheck()
        with pytest.raises(MemcheckError, match="host-backed"):
            checker.check_store(np.zeros(4), 10, True)
