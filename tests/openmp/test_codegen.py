"""The LLVM OpenMP codegen model: modes, globalization, documented defects."""

import pytest

from repro.errors import CompileError
from repro.openmp.codegen import CodegenInfo, ExecMode, RegionTraits, lower_region


class TestBareLowering:
    def test_bare_has_no_runtime(self):
        info = lower_region(RegionTraits(style="bare"))
        assert info.mode == ExecMode.BARE
        assert not info.runtime_init
        assert not info.state_machine
        assert info.globalized_heap_bytes == 0
        assert info.heap_to_shared_bytes == 0
        assert info.register_overhead == 0
        assert info.is_bare

    def test_bare_keeps_requested_thread_limit(self):
        info = lower_region(RegionTraits(style="bare", requested_thread_limit=256))
        assert info.effective_thread_limit == 256


class TestSpmdLowering:
    def test_spmd_amenable_region(self):
        info = lower_region(RegionTraits(style="worksharing", spmd_amenable=True))
        assert info.mode == ExecMode.SPMD
        assert info.runtime_init
        assert not info.state_machine
        assert info.register_overhead > 0

    def test_spmd_register_overhead_below_generic(self):
        spmd = lower_region(RegionTraits(spmd_amenable=True))
        generic = lower_region(RegionTraits(spmd_amenable=False))
        assert spmd.register_overhead < generic.register_overhead
        assert spmd.binary_overhead_bytes < generic.binary_overhead_bytes


class TestGenericLowering:
    def test_non_spmd_is_generic(self):
        info = lower_region(RegionTraits(spmd_amenable=False))
        assert info.mode == ExecMode.GENERIC

    def test_rewritable_state_machine_removed(self):
        info = lower_region(
            RegionTraits(spmd_amenable=False, state_machine_rewritable=True)
        )
        assert not info.state_machine

    def test_unrewritable_state_machine_survives(self):
        """The Stencil 1D situation (§4.2.6)."""
        info = lower_region(
            RegionTraits(spmd_amenable=False, state_machine_rewritable=False)
        )
        assert info.state_machine


class TestGlobalization:
    def test_small_locals_move_to_shared(self):
        """The RSBench heap-to-shared case (§4.2.2): 2 KB fits the budget."""
        info = lower_region(RegionTraits(escaping_local_bytes=2048))
        assert info.heap_to_shared_bytes == 2048
        assert info.globalized_heap_bytes == 0

    def test_large_locals_stay_on_heap(self):
        info = lower_region(RegionTraits(escaping_local_bytes=64 * 1024))
        assert info.heap_to_shared_bytes == 0
        assert info.globalized_heap_bytes == 64 * 1024

    def test_optimization_can_be_disabled(self):
        """The ablation knob: CGO'22 heap-to-shared off."""
        info = lower_region(
            RegionTraits(escaping_local_bytes=2048), optimize_heap_to_shared=False
        )
        assert info.heap_to_shared_bytes == 0
        assert info.globalized_heap_bytes == 2048

    def test_bare_never_globalizes(self):
        info = lower_region(RegionTraits(style="bare", escaping_local_bytes=2048))
        assert info.globalized_heap_bytes == 0
        assert info.heap_to_shared_bytes == 0


class TestThreadLimitBug:
    def test_bug_collapses_to_one_warp(self):
        """The Adam defect (§4.2.5)."""
        info = lower_region(
            RegionTraits(requested_thread_limit=256, thread_limit_bug=True)
        )
        assert info.effective_thread_limit == 32

    def test_bug_forces_generic_mode(self):
        info = lower_region(RegionTraits(spmd_amenable=True, thread_limit_bug=True))
        assert info.mode == ExecMode.GENERIC

    def test_bug_without_request_defaults_to_warp(self):
        info = lower_region(RegionTraits(thread_limit_bug=True))
        assert info.effective_thread_limit == 32

    def test_no_bug_keeps_request(self):
        info = lower_region(RegionTraits(requested_thread_limit=256))
        assert info.effective_thread_limit == 256


class TestValidation:
    def test_unknown_style_rejected(self):
        with pytest.raises(CompileError):
            RegionTraits(style="baroque")

    def test_negative_locals_rejected(self):
        with pytest.raises(CompileError):
            RegionTraits(escaping_local_bytes=-1)

    def test_device_fn_calls_inflate_binary(self):
        plain = lower_region(RegionTraits())
        with_calls = lower_region(RegionTraits(device_fn_calls=3))
        assert with_calls.binary_overhead_bytes > plain.binary_overhead_bytes
