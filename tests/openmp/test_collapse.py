"""The collapse(n) worksharing construct."""

import numpy as np
import pytest

from repro.errors import OpenMPError
from repro.openmp import target_teams_distribute_parallel_for_collapse
from repro.openmp.data import data_environment


@pytest.fixture(autouse=True)
def clean_env(nvidia):
    yield
    data_environment(nvidia).reset()


class TestCollapse:
    def test_2d_vector_body_covers_nest(self, nvidia):
        out = np.zeros((7, 9))

        def vbody(i, j, acc):
            acc.mapped(out)[i, j] = i * 100 + j

        target_teams_distribute_parallel_for_collapse(
            nvidia, (7, 9), vector_body=vbody, thread_limit=8,
            maps=[(out, "from")],
        )
        expected = np.arange(7)[:, None] * 100 + np.arange(9)[None, :]
        assert np.array_equal(out, expected)

    def test_2d_scalar_body(self, nvidia):
        out = np.zeros((4, 4))

        def body(i, j, acc):
            acc.mapped(out)[i, j] = i - j

        target_teams_distribute_parallel_for_collapse(
            nvidia, (4, 4), body, thread_limit=4, maps=[(out, "from")]
        )
        assert np.array_equal(out, np.arange(4)[:, None] - np.arange(4)[None, :])

    def test_3d_nest(self, nvidia):
        out = np.zeros((3, 4, 5))

        def vbody(i, j, k, acc):
            acc.mapped(out)[i, j, k] = i * 100 + j * 10 + k

        target_teams_distribute_parallel_for_collapse(
            nvidia, (3, 4, 5), vector_body=vbody, thread_limit=16,
            maps=[(out, "from")],
        )
        i, j, k = np.meshgrid(np.arange(3), np.arange(4), np.arange(5), indexing="ij")
        assert np.array_equal(out, i * 100 + j * 10 + k)

    def test_every_iteration_exactly_once(self, nvidia):
        counts = np.zeros((5, 6))

        def vbody(i, j, acc):
            view = acc.mapped(counts)
            np.add.at(view, (i, j), 1)

        target_teams_distribute_parallel_for_collapse(
            nvidia, (5, 6), vector_body=vbody, num_teams=4, thread_limit=4,
            maps=[(counts, "tofrom")],
        )
        assert (counts == 1).all()

    def test_zero_extent_runs_nothing(self, nvidia):
        hits = []
        target_teams_distribute_parallel_for_collapse(
            nvidia, (0, 5), lambda i, j, acc: hits.append((i, j))
        )
        assert hits == []

    def test_validation(self, nvidia):
        with pytest.raises(OpenMPError):
            target_teams_distribute_parallel_for_collapse(nvidia, (), lambda acc: None)
        with pytest.raises(OpenMPError):
            target_teams_distribute_parallel_for_collapse(
                nvidia, (2, -1), lambda i, j, acc: None
            )
        with pytest.raises(OpenMPError, match="exactly one"):
            target_teams_distribute_parallel_for_collapse(nvidia, (2, 2))

    def test_report_propagates(self, nvidia):
        report = target_teams_distribute_parallel_for_collapse(
            nvidia, (8, 8), vector_body=lambda i, j, acc: None, thread_limit=16
        )
        assert report.codegen.mode == "spmd"
        assert report.grid >= 1
