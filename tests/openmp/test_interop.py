"""Interop objects: init/use/destroy and the property-query API."""

import pytest

from repro.errors import InteropError
from repro.gpu.stream import Stream
from repro.openmp.interop import (
    interop_destroy,
    interop_init,
    interop_use,
    omp_get_interop_int,
    omp_get_interop_ptr,
    omp_get_interop_str,
    omp_interop_none,
)


class TestLifecycle:
    def test_none_sentinel(self):
        assert omp_interop_none is None

    def test_init_creates_stream(self, nvidia):
        obj = interop_init(targetsync=True, device=nvidia)
        try:
            assert isinstance(obj.targetsync, Stream)
            assert not obj.is_destroyed
        finally:
            interop_destroy(obj)

    def test_init_requires_targetsync(self, nvidia):
        with pytest.raises(InteropError, match="targetsync"):
            interop_init(targetsync=False, device=nvidia)

    def test_use_synchronizes(self, nvidia):
        obj = interop_init(device=nvidia)
        try:
            log = []
            obj.targetsync.enqueue(lambda: log.append(1))
            interop_use(obj)
            assert log == [1]
        finally:
            interop_destroy(obj)

    def test_destroy_drains_then_closes(self, nvidia):
        obj = interop_init(device=nvidia)
        log = []
        obj.targetsync.enqueue(lambda: log.append("work"))
        interop_destroy(obj)
        assert log == ["work"]
        assert obj.is_destroyed

    def test_use_after_destroy_rejected(self, nvidia):
        obj = interop_init(device=nvidia)
        interop_destroy(obj)
        with pytest.raises(InteropError, match="destroy"):
            obj.targetsync

    def test_double_destroy_is_noop(self, nvidia):
        obj = interop_init(device=nvidia)
        interop_destroy(obj)
        interop_destroy(obj)


class TestPropertyQueries:
    def test_device_num(self, amd):
        obj = interop_init(device=amd)
        try:
            assert omp_get_interop_int(obj, "device_num") == amd.ordinal
        finally:
            interop_destroy(obj)

    def test_targetsync_ptr(self, nvidia):
        obj = interop_init(device=nvidia)
        try:
            assert omp_get_interop_ptr(obj, "targetsync") is obj.targetsync
        finally:
            interop_destroy(obj)

    def test_vendor_string(self, nvidia, amd):
        for device, vendor in ((nvidia, "nvidia"), (amd, "amd")):
            obj = interop_init(device=device)
            try:
                assert omp_get_interop_str(obj, "vendor") == vendor
            finally:
                interop_destroy(obj)

    def test_unknown_properties_rejected(self, nvidia):
        obj = interop_init(device=nvidia)
        try:
            with pytest.raises(InteropError):
                omp_get_interop_int(obj, "nope")
            with pytest.raises(InteropError):
                omp_get_interop_ptr(obj, "nope")
            with pytest.raises(InteropError):
                omp_get_interop_str(obj, "nope")
        finally:
            interop_destroy(obj)
