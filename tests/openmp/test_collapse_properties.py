"""Property tests for the collapse construct: full, exactly-once coverage."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import get_device
from repro.openmp import target_teams_distribute_parallel_for_collapse
from repro.openmp.data import data_environment


@settings(max_examples=25, deadline=None)
@given(
    extents=st.lists(st.integers(1, 9), min_size=1, max_size=3),
    num_teams=st.one_of(st.none(), st.integers(1, 7)),
    thread_limit=st.sampled_from([1, 3, 8, 32]),
)
def test_collapse_covers_every_cell_exactly_once(extents, num_teams, thread_limit):
    device = get_device(0)
    counts = np.zeros(tuple(extents))

    def vbody(*args):
        acc = args[-1]
        idx = args[:-1]
        np.add.at(acc.mapped(counts), idx, 1)

    try:
        target_teams_distribute_parallel_for_collapse(
            device, extents, vector_body=vbody,
            num_teams=num_teams, thread_limit=thread_limit,
            maps=[(counts, "tofrom")],
        )
        assert (counts == 1).all()
    finally:
        data_environment(device).reset()


@settings(max_examples=20, deadline=None)
@given(extents=st.lists(st.integers(1, 6), min_size=2, max_size=2))
def test_collapse_scalar_body_matches_nested_loops(extents):
    device = get_device(0)
    rows, cols = extents
    out = np.zeros((rows, cols))

    def body(i, j, acc):
        acc.mapped(out)[i, j] = i * 1000 + j

    try:
        target_teams_distribute_parallel_for_collapse(
            device, (rows, cols), body, thread_limit=4, maps=[(out, "from")]
        )
        expected = np.arange(rows)[:, None] * 1000 + np.arange(cols)[None, :]
        assert np.array_equal(out, expected)
    finally:
        data_environment(device).reset()
