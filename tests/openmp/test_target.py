"""Classic target regions: worksharing coverage, SIMT style, nowait."""

import numpy as np
import pytest

from repro.errors import OpenMPError
from repro.openmp import (
    TaskRuntime,
    target,
    target_teams_distribute_parallel_for,
    target_teams_parallel,
)
from repro.openmp.codegen import RegionTraits
from repro.openmp.data import data_environment


@pytest.fixture(autouse=True)
def clean_env(nvidia, amd):
    yield
    data_environment(nvidia).reset()
    data_environment(amd).reset()


class TestSerialTarget:
    def test_serial_region_sees_device_copies(self, nvidia):
        a = np.arange(4, dtype=np.float64)
        b = np.zeros(4)

        def region(acc):
            acc.mapped(b)[:] = acc.mapped(a) * 3

        report = target(nvidia, region, maps=[(a, "to"), (b, "from")])
        assert np.array_equal(b, a * 3)
        assert report.grid == 1 and report.block == 1

    def test_nowait_defers(self, nvidia):
        runtime = TaskRuntime(num_helpers=2)
        try:
            hits = []
            task = target(
                nvidia, lambda acc: hits.append(1), nowait=True, task_runtime=runtime
            )
            task.wait(2)
            runtime.taskwait()
            assert hits == [1]
        finally:
            runtime.shutdown()


class TestWorksharing:
    def test_every_iteration_once_scalar_body(self, nvidia):
        n = 101  # deliberately not a multiple of anything
        out = np.zeros(n)

        def body(i, acc):
            acc.mapped(out)[i] += 1

        target_teams_distribute_parallel_for(
            nvidia, n, body, thread_limit=16, maps=[(out, "tofrom")]
        )
        assert (out == 1).all()

    def test_every_iteration_once_vector_body(self, nvidia):
        n = 1000
        out = np.zeros(n)

        def vbody(idx, acc):
            acc.mapped(out)[idx] += idx

        target_teams_distribute_parallel_for(
            nvidia, n, vector_body=vbody, num_teams=7, thread_limit=64,
            maps=[(out, "tofrom")],
        )
        assert np.array_equal(out, np.arange(n, dtype=np.float64))

    def test_zero_trip_count(self, nvidia):
        report = target_teams_distribute_parallel_for(
            nvidia, 0, vector_body=lambda idx, acc: None
        )
        assert report.grid >= 1

    def test_negative_trip_count_rejected(self, nvidia):
        with pytest.raises(OpenMPError):
            target_teams_distribute_parallel_for(nvidia, -1, lambda i, acc: None)

    def test_exactly_one_body_required(self, nvidia):
        with pytest.raises(OpenMPError, match="exactly one"):
            target_teams_distribute_parallel_for(nvidia, 4)
        with pytest.raises(OpenMPError, match="exactly one"):
            target_teams_distribute_parallel_for(
                nvidia, 4, lambda i, acc: None, vector_body=lambda idx, acc: None
            )

    def test_stale_host_until_from_transfer(self, nvidia):
        """Writes inside the region hit the device copy, not the host."""
        out = np.zeros(8)
        env = data_environment(nvidia)
        env.begin([(out, "alloc")])  # outer region holds it present
        target_teams_distribute_parallel_for(
            nvidia, 8, vector_body=lambda idx, acc: acc.mapped(out).__setitem__(idx, 5.0),
            maps=[(out, "from")],
        )
        # refcount never reached zero: host must still be stale
        assert not out.any()
        env.end([(out, "from")])
        assert (out == 5.0).all()

    def test_thread_limit_bug_shrinks_block(self, nvidia):
        report = target_teams_distribute_parallel_for(
            nvidia, 64, vector_body=lambda idx, acc: None,
            thread_limit=256,
            traits=RegionTraits(requested_thread_limit=256, thread_limit_bug=True),
        )
        assert report.block == 32

    def test_report_carries_codegen(self, nvidia):
        report = target_teams_distribute_parallel_for(
            nvidia, 16, vector_body=lambda idx, acc: None, thread_limit=8
        )
        assert report.codegen.mode == "spmd"
        assert report.codegen.runtime_init


class TestSimtStyle:
    def test_figure3_region(self, nvidia):
        """The paper's Figure 3: explicit indices, groupprivate, barrier."""
        n = 64
        a = np.arange(n, dtype=np.float64)
        b = np.zeros(n)

        def region(omp, acc):
            shared = omp.groupprivate("shared", 32, np.float64)
            tid = omp.omp_get_thread_num()
            if tid == 0:
                shared[:] = 1.0
            omp.barrier()
            i = omp.omp_get_team_num() * omp.omp_get_team_size() + tid
            if i < n:
                acc.mapped(b)[i] = acc.mapped(a)[i] + shared[tid]

        report = target_teams_parallel(
            nvidia, 2, 32, region, maps=[(a, "to"), (b, "from")]
        )
        assert np.array_equal(b, a + 1)
        assert report.stats.threads_run == 64

    def test_omp_thread_queries(self, nvidia):
        seen = []

        def region(omp):
            if omp.omp_get_thread_num() == 0:
                seen.append(
                    (omp.omp_get_num_teams(), omp.omp_get_num_threads(),
                     omp.omp_get_team_num())
                )

        target_teams_parallel(nvidia, 3, 8, region)
        assert sorted(seen) == [(3, 8, 0), (3, 8, 1), (3, 8, 2)]

    def test_multidim_rejected_without_extension(self, nvidia):
        """§2.3: classic OpenMP has no multi-dimensional launches."""
        with pytest.raises(OpenMPError, match="ompx"):
            target_teams_parallel(nvidia, (2, 2), 8, lambda omp: None)
        with pytest.raises(OpenMPError, match="ompx"):
            target_teams_parallel(nvidia, 2, (8, 8), lambda omp: None)

    def test_bare_traits_rejected(self, nvidia):
        with pytest.raises(OpenMPError, match="ompx"):
            target_teams_parallel(
                nvidia, 1, 8, lambda omp: None, traits=RegionTraits(style="bare")
            )

    def test_nowait_simt(self, nvidia):
        runtime = TaskRuntime(num_helpers=2)
        try:
            hits = []

            def region(omp):
                if omp.omp_get_thread_num() == 0 and omp.omp_get_team_num() == 0:
                    hits.append(1)

            task = target_teams_parallel(
                nvidia, 1, 4, region, nowait=True, task_runtime=runtime
            )
            task.wait(2)
            assert hits == [1]
        finally:
            runtime.shutdown()
