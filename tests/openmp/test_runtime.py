"""Host-side OpenMP runtime API (device queries, ICVs)."""

import pytest

from repro.errors import GpuError
from repro.openmp.runtime import (
    omp_get_default_device,
    omp_get_initial_device,
    omp_get_num_devices,
    omp_set_default_device,
)


class TestDeviceQueries:
    def test_default_devices_registered(self):
        # A100 + the MI250's two GCDs (each GCD is an OpenMP device)
        # + the Intel XeHPC stack
        assert omp_get_num_devices() == 4

    def test_initial_device_is_host(self):
        assert omp_get_initial_device() == -1

    def test_default_device(self):
        assert omp_get_default_device() == 0

    def test_set_default_device(self):
        omp_set_default_device(1)
        try:
            assert omp_get_default_device() == 1
        finally:
            omp_set_default_device(0)

    def test_set_invalid_device(self):
        with pytest.raises(GpuError):
            omp_set_default_device(5)
        assert omp_get_default_device() == 0  # unchanged after failure
