"""Device data environment: map semantics, refcounting, target APIs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.gpu import get_device
from repro.openmp.data import (
    DeviceDataEnvironment,
    MapType,
    TargetData,
    data_environment,
    omp_target_alloc,
    omp_target_free,
    omp_target_is_present,
    omp_target_memcpy,
)


@pytest.fixture
def env(nvidia):
    environment = data_environment(nvidia)
    yield environment
    environment.reset()


class TestStructuredMapping:
    def test_map_to_transfers_on_entry(self, env):
        host = np.arange(10, dtype=np.float64)
        maps = [(host, MapType.TO)]
        env.begin(maps)
        device_view = env.device.allocator.view(env.lookup(host), 10, np.float64)
        assert np.array_equal(device_view, host)
        env.end(maps)

    def test_map_from_transfers_on_exit(self, env):
        host = np.zeros(4)
        maps = [(host, MapType.FROM)]
        env.begin(maps)
        env.device.allocator.view(env.lookup(host), 4, np.float64)[:] = 3.5
        env.end(maps)
        assert (host == 3.5).all()

    def test_map_alloc_transfers_nothing(self, env):
        host = np.full(4, 7.0)
        maps = [(host, MapType.ALLOC)]
        env.begin(maps)
        device_view = env.device.allocator.view(env.lookup(host), 4, np.float64)
        assert not device_view.any()  # fresh zeroed device memory
        env.end(maps)
        assert (host == 7.0).all()  # host untouched

    def test_tofrom_roundtrip(self, env):
        host = np.arange(6, dtype=np.float64)
        maps = [(host, MapType.TOFROM)]
        env.begin(maps)
        env.device.allocator.view(env.lookup(host), 6, np.float64)[:] += 1
        env.end(maps)
        assert np.array_equal(host, np.arange(6) + 1)

    def test_presence_refcounting(self, env):
        """Inner map of a present variable transfers nothing (OpenMP rule)."""
        host = np.arange(4, dtype=np.float64)
        outer = [(host, MapType.TOFROM)]
        env.begin(outer)
        env.device.allocator.view(env.lookup(host), 4, np.float64)[:] = 99.0
        # inner `map(to:)` must NOT overwrite the modified device copy
        inner = [(host, MapType.TO)]
        env.begin(inner)
        assert env.refcount(host) == 2
        device_view = env.device.allocator.view(env.lookup(host), 4, np.float64)
        assert (device_view == 99.0).all()
        env.end(inner)
        assert env.refcount(host) == 1
        assert not (host == 99.0).any()  # inner end: refcount 2->1, no copy back
        env.end(outer)
        assert (host == 99.0).all()  # outer end: 1->0, from-transfer happens

    def test_unmatched_end_rejected(self, env):
        host = np.zeros(2)
        with pytest.raises(MappingError, match="unmatched"):
            env.end([(host, MapType.TO)])

    def test_noncontiguous_rejected(self, env):
        host = np.zeros((4, 4))[:, ::2]
        with pytest.raises(MappingError, match="contiguous"):
            env.begin([(host, MapType.TO)])

    def test_non_array_rejected(self, env):
        with pytest.raises(MappingError, match="NumPy"):
            env.begin([([1, 2, 3], MapType.TO)])

    def test_bad_map_type(self, env):
        with pytest.raises(MappingError, match="map type"):
            env.begin([(np.zeros(1), "sideways")])

    def test_lookup_unmapped(self, env):
        with pytest.raises(MappingError, match="not mapped"):
            env.lookup(np.zeros(3))


class TestUnstructuredMapping:
    def test_enter_exit_data(self, env):
        host = np.arange(5, dtype=np.float64)
        env.enter_data([(host, MapType.TO)])
        assert env.is_present(host)
        env.device.allocator.view(env.lookup(host), 5, np.float64)[:] = 1.0
        env.exit_data([(host, MapType.FROM)])
        assert (host == 1.0).all()
        assert not env.is_present(host)

    def test_enter_rejects_from(self, env):
        with pytest.raises(MappingError):
            env.enter_data([(np.zeros(1), MapType.FROM)])

    def test_exit_release_no_transfer(self, env):
        host = np.full(3, 5.0)
        env.enter_data([(host, MapType.TO)])
        env.device.allocator.view(env.lookup(host), 3, np.float64)[:] = -1
        env.exit_data([(host, MapType.RELEASE)])
        assert (host == 5.0).all()
        assert not env.is_present(host)

    def test_exit_delete_forces_removal(self, env):
        host = np.zeros(2)
        env.enter_data([(host, MapType.TO)])
        env.enter_data([(host, MapType.TO)])  # refcount 2
        env.exit_data([(host, MapType.DELETE)])
        assert not env.is_present(host)

    def test_exit_delete_of_absent_is_noop(self, env):
        env.exit_data([(np.zeros(1), MapType.DELETE)])

    def test_exit_of_absent_rejected(self, env):
        with pytest.raises(MappingError, match="not present"):
            env.exit_data([(np.zeros(1), MapType.FROM)])


class TestTargetUpdate:
    def test_update_to(self, env):
        host = np.arange(4, dtype=np.float64)
        env.begin([(host, MapType.TO)])
        host[:] = 100.0
        env.update_to(host)
        device_view = env.device.allocator.view(env.lookup(host), 4, np.float64)
        assert (device_view == 100.0).all()
        env.end([(host, MapType.TO)])

    def test_update_from(self, env):
        host = np.zeros(4)
        env.begin([(host, MapType.TO)])
        env.device.allocator.view(env.lookup(host), 4, np.float64)[:] = 8.0
        env.update_from(host)
        assert (host == 8.0).all()
        env.end([(host, MapType.TO)])


class TestTargetDataContextManager:
    def test_with_statement(self, nvidia):
        a = np.arange(8, dtype=np.float64)
        b = np.zeros(8)
        with TargetData(nvidia, [(a, MapType.TO), (b, MapType.FROM)]) as region:
            env = data_environment(nvidia)
            av = nvidia.allocator.view(region.device_ptr(a), 8, np.float64)
            bv = nvidia.allocator.view(region.device_ptr(b), 8, np.float64)
            bv[:] = av * 2
        assert np.array_equal(b, a * 2)
        assert not data_environment(nvidia).is_present(a)


class TestTargetApis:
    def test_alloc_memcpy_free(self, nvidia):
        host = np.arange(10, dtype=np.int32)
        ptr = omp_target_alloc(host.nbytes, nvidia)
        omp_target_memcpy(ptr, host, host.nbytes, dst_device=nvidia)
        out = np.zeros_like(host)
        omp_target_memcpy(out, ptr, host.nbytes, src_device=nvidia)
        assert np.array_equal(out, host)
        omp_target_free(ptr, nvidia)

    def test_memcpy_with_offsets(self, nvidia):
        host = np.arange(16, dtype=np.uint8)
        ptr = omp_target_alloc(16, nvidia)
        omp_target_memcpy(ptr, host, 8, dst_offset=8, src_offset=0, dst_device=nvidia)
        out = np.zeros(16, dtype=np.uint8)
        omp_target_memcpy(out, ptr, 16, src_device=nvidia)
        assert np.array_equal(out[8:], host[:8])
        assert not out[:8].any()
        omp_target_free(ptr, nvidia)

    def test_cross_device_memcpy(self, nvidia, amd):
        host = np.arange(8, dtype=np.float64)
        src = omp_target_alloc(host.nbytes, nvidia)
        dst = omp_target_alloc(host.nbytes, amd)
        omp_target_memcpy(src, host, host.nbytes, dst_device=nvidia)
        omp_target_memcpy(dst, src, host.nbytes, dst_device=amd, src_device=nvidia)
        out = np.zeros_like(host)
        omp_target_memcpy(out, dst, host.nbytes, src_device=amd)
        assert np.array_equal(out, host)
        omp_target_free(src, nvidia)
        omp_target_free(dst, amd)

    def test_host_to_host(self):
        src = np.arange(8, dtype=np.uint8)
        dst = np.zeros(8, dtype=np.uint8)
        omp_target_memcpy(dst, src, 8)
        assert np.array_equal(dst, src)

    def test_device_ptr_needs_device_arg(self, nvidia):
        ptr = omp_target_alloc(8, nvidia)
        with pytest.raises(MappingError, match="dst_device"):
            omp_target_memcpy(ptr, np.zeros(1), 8)
        omp_target_free(ptr, nvidia)

    def test_is_present(self, nvidia):
        env = data_environment(nvidia)
        host = np.zeros(4)
        assert not omp_target_is_present(host, nvidia)
        env.begin([(host, MapType.TO)])
        assert omp_target_is_present(host, nvidia)
        env.end([(host, MapType.TO)])


class TestRefcountProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["to", "from", "tofrom", "alloc"]), min_size=1, max_size=6))
    def test_nested_begin_end_always_balances(self, kinds):
        """Any properly nested sequence of data regions leaves the
        environment empty and the allocator with no leaked entries."""
        device = get_device(0)
        env = DeviceDataEnvironment(device)
        host = np.arange(4, dtype=np.float64)
        stack = []
        for kind in kinds:
            maps = [(host, kind)]
            env.begin(maps)
            stack.append(maps)
        assert env.refcount(host) == len(kinds)
        while stack:
            env.end(stack.pop())
        assert env.num_present == 0
