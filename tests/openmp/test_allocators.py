"""OpenMP allocators: predefined handles, traits, space mapping."""

import numpy as np
import pytest

from repro.errors import OpenMPError, OutOfMemoryError
from repro.gpu.device import Device, DeviceSpec, Vendor
from repro.openmp.allocators import (
    Allocator,
    MemSpace,
    omp_alloc,
    omp_const_mem_alloc,
    omp_default_mem_alloc,
    omp_destroy_allocator,
    omp_free,
    omp_high_bw_mem_alloc,
    omp_init_allocator,
    omp_large_cap_mem_alloc,
    omp_low_lat_mem_alloc,
    omp_pteam_mem_alloc,
    omp_thread_mem_alloc,
)


class TestPredefinedAllocators:
    def test_default_allocates_device_global(self, nvidia):
        ptr = omp_alloc(128, omp_default_mem_alloc, nvidia)
        assert ptr and ptr.device_ordinal == nvidia.ordinal
        view = nvidia.allocator.view(ptr, 128, np.uint8)
        assert not view.any()
        omp_free(ptr, omp_default_mem_alloc, nvidia)

    @pytest.mark.parametrize("allocator", [
        omp_large_cap_mem_alloc, omp_high_bw_mem_alloc,
    ], ids=lambda a: a.name)
    def test_global_spaces_work(self, nvidia, allocator):
        ptr = omp_alloc(64, allocator, nvidia)
        assert ptr
        omp_free(ptr, allocator, nvidia)

    def test_const_space_rejected_at_runtime(self, nvidia):
        with pytest.raises(OpenMPError, match="host-initialized"):
            omp_alloc(64, omp_const_mem_alloc, nvidia)

    def test_low_lat_space_is_device_side_only(self, nvidia):
        with pytest.raises(OpenMPError, match="shared memory"):
            omp_alloc(64, omp_low_lat_mem_alloc, nvidia)

    def test_pteam_rejected_on_host(self, nvidia):
        with pytest.raises(OpenMPError, match="groupprivate"):
            omp_alloc(64, omp_pteam_mem_alloc, nvidia)

    def test_thread_scoped_rejected_on_host(self, nvidia):
        with pytest.raises(OpenMPError, match="thread-private"):
            omp_alloc(64, omp_thread_mem_alloc, nvidia)

    def test_free_null_noop(self, nvidia):
        from repro.gpu.memory import DevicePointer

        omp_free(DevicePointer(nvidia.ordinal, 0), device=nvidia)

    def test_negative_size(self, nvidia):
        with pytest.raises(OpenMPError):
            omp_alloc(-1, device=nvidia)


class TestTraits:
    def test_unknown_trait_rejected(self):
        with pytest.raises(OpenMPError, match="unknown allocator trait"):
            Allocator("bad", MemSpace.DEFAULT, {"colour": "blue"})

    def test_bad_alignment_rejected(self):
        with pytest.raises(OpenMPError, match="power of two"):
            Allocator("bad", MemSpace.DEFAULT, {"alignment": 48})

    def test_bad_fallback_rejected(self):
        with pytest.raises(OpenMPError, match="fallback"):
            Allocator("bad", MemSpace.DEFAULT, {"fallback": "explode"})

    def test_alignment_honoured(self, nvidia):
        allocator = omp_init_allocator(MemSpace.DEFAULT, {"alignment": 256})
        ptr = omp_alloc(64, allocator, nvidia)
        assert ptr.address % 256 == 0
        omp_free(ptr, allocator, nvidia)

    def test_default_alignment(self):
        assert omp_default_mem_alloc.alignment == 16


class TestCustomAllocators:
    def test_init_and_destroy(self):
        allocator = omp_init_allocator(MemSpace.HIGH_BW, {"alignment": 64})
        assert allocator.memspace == MemSpace.HIGH_BW
        omp_destroy_allocator(allocator)

    def test_unknown_space(self):
        with pytest.raises(OpenMPError, match="memory space"):
            omp_init_allocator("omp_texture_mem_space")

    def test_null_fallback_on_oom(self):
        tiny = Device(
            DeviceSpec(name="tiny-alloc", vendor=Vendor.NVIDIA, global_mem_bytes=1024),
            ordinal=3000,
        )
        allocator = omp_init_allocator(MemSpace.DEFAULT, {"fallback": "null_fb"})
        ptr = omp_alloc(1 << 20, allocator, tiny)
        assert ptr.is_null

    def test_default_fallback_raises(self):
        tiny = Device(
            DeviceSpec(name="tiny-alloc2", vendor=Vendor.NVIDIA, global_mem_bytes=1024),
            ordinal=3001,
        )
        with pytest.raises(OutOfMemoryError):
            omp_alloc(1 << 20, omp_default_mem_alloc, tiny)
