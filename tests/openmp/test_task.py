"""Tasking: dependences, hidden helpers, taskwait, error propagation."""

import threading
import time

import numpy as np
import pytest

from repro.errors import DependenceError
from repro.gpu.memory import DevicePointer
from repro.openmp.task import DependType, TaskRuntime, location_key


@pytest.fixture
def runtime():
    rt = TaskRuntime(num_helpers=4)
    yield rt
    rt.shutdown()


class TestLocationKey:
    def test_array_key_is_storage_based(self):
        a = np.zeros(8)
        assert location_key(a) == location_key(a)
        assert location_key(a) != location_key(np.zeros(8))

    def test_views_of_different_offsets_differ(self):
        a = np.zeros(8)
        assert location_key(a[:4]) != location_key(a[4:])

    def test_device_pointer_key(self):
        p = DevicePointer(0, 0x2000)
        assert location_key(p) == location_key(DevicePointer(0, 0x2000))
        assert location_key(p) != location_key(DevicePointer(1, 0x2000))

    def test_object_key(self):
        class Thing:
            pass

        a, b = Thing(), Thing()
        assert location_key(a) != location_key(b)


class TestDependences:
    def test_writer_before_readers(self, runtime):
        loc = np.zeros(1)
        log = []

        def slow_write():
            time.sleep(0.03)
            log.append("w")

        runtime.submit(slow_write, depends=[(DependType.OUT, loc)])
        runtime.submit(lambda: log.append("r1"), depends=[(DependType.IN, loc)])
        runtime.submit(lambda: log.append("r2"), depends=[(DependType.IN, loc)])
        runtime.taskwait()
        assert log[0] == "w"
        assert set(log[1:]) == {"r1", "r2"}

    def test_readers_before_next_writer(self, runtime):
        loc = np.zeros(1)
        log = []

        runtime.submit(lambda: log.append("w1"), depends=[(DependType.OUT, loc)])

        def slow_read(tag):
            def fn():
                time.sleep(0.03)
                log.append(tag)
            return fn

        runtime.submit(slow_read("r1"), depends=[(DependType.IN, loc)])
        runtime.submit(slow_read("r2"), depends=[(DependType.IN, loc)])
        runtime.submit(lambda: log.append("w2"), depends=[(DependType.INOUT, loc)])
        runtime.taskwait()
        assert log[0] == "w1" and log[-1] == "w2"
        assert set(log[1:3]) == {"r1", "r2"}

    def test_independent_tasks_run_concurrently(self, runtime):
        """Two tasks on different locations overlap on the helper pool."""
        first_running = threading.Event()
        second_done = threading.Event()

        def first():
            first_running.set()
            assert second_done.wait(timeout=2), "task 2 never ran concurrently"

        def second():
            first_running.wait(timeout=2)
            second_done.set()

        runtime.submit(first, depends=[(DependType.OUT, np.zeros(1))])
        runtime.submit(second, depends=[(DependType.OUT, np.zeros(1))])
        runtime.taskwait()

    def test_chain_of_inout(self, runtime):
        loc = np.zeros(1)
        log = []
        for i in range(5):
            runtime.submit(lambda i=i: log.append(i), depends=[(DependType.INOUT, loc)])
        runtime.taskwait()
        assert log == [0, 1, 2, 3, 4]

    def test_no_depends_runs_freely(self, runtime):
        done = []
        runtime.submit(lambda: done.append(1))
        runtime.taskwait()
        assert done == [1]

    def test_unknown_depend_type_rejected(self, runtime):
        with pytest.raises(DependenceError, match="unknown dependence type"):
            runtime.submit(lambda: None, depends=[("sideways", np.zeros(1))])

    def test_interopobj_requires_extension(self):
        """A fresh runtime without repro.ompx sees interopobj as stock-unknown.

        (The extension handler registry is process-global, so if repro.ompx
        has been imported the type resolves; this test asserts the message
        names the extension in the un-registered case by using a scratch
        registry.)
        """
        from repro.openmp import task as task_mod

        saved = dict(task_mod._depend_handlers)
        task_mod._depend_handlers.clear()
        rt = TaskRuntime(num_helpers=1)
        try:
            with pytest.raises(DependenceError, match="ompx"):
                rt.submit(lambda: None, depends=[(DependType.INTEROPOBJ, object())])
        finally:
            task_mod._depend_handlers.update(saved)
            rt.shutdown()


class TestTaskwait:
    def test_taskwait_with_depend_waits_only_conflicts(self, runtime):
        blocked_gate = threading.Event()
        loc_a = np.zeros(1)
        loc_b = np.zeros(1)
        log = []

        runtime.submit(lambda: (blocked_gate.wait(2), log.append("slow-b")),
                       depends=[(DependType.OUT, loc_b)])
        runtime.submit(lambda: log.append("fast-a"), depends=[(DependType.OUT, loc_a)])

        # waiting on loc_a must not wait for the blocked loc_b task
        runtime.taskwait([(DependType.IN, loc_a)])
        assert "fast-a" in log
        assert "slow-b" not in log
        blocked_gate.set()
        runtime.taskwait()

    def test_error_propagates_at_taskwait(self, runtime):
        def boom():
            raise RuntimeError("task exploded")

        runtime.submit(boom, name="exploder")
        with pytest.raises(DependenceError, match="exploder"):
            runtime.taskwait()

    def test_error_with_dependents_still_releases_them(self, runtime):
        loc = np.zeros(1)
        log = []
        runtime.submit(lambda: 1 / 0, depends=[(DependType.OUT, loc)], name="bad")
        runtime.submit(lambda: log.append("dependent"), depends=[(DependType.IN, loc)])
        with pytest.raises(DependenceError):
            runtime.taskwait()
        assert log == ["dependent"]

    def test_task_wait_handle(self, runtime):
        task = runtime.submit(lambda: time.sleep(0.01))
        assert task.wait(timeout=2)
        assert task.done.is_set()


class TestValidation:
    def test_helper_count_validated(self):
        with pytest.raises(ValueError):
            TaskRuntime(num_helpers=0)

    def test_many_tasks_through_small_pool(self, runtime):
        counter = []
        lock = threading.Lock()

        def bump():
            with lock:
                counter.append(1)

        for _ in range(200):
            runtime.submit(bump)
        runtime.taskwait()
        assert len(counter) == 200
