"""Property-based tests of dependence-graph execution.

A random program of tasks with random in/out/inout clauses over a small
set of locations must always execute as *some* serialization consistent
with OpenMP's dependence rules:

* a reader observes the value written by the most recent preceding writer
  of that location (program order over conflicting tasks is preserved);
* a writer runs after every preceding reader since the last write.

We check this by having every task log (task_index, location, kind,
value-seen) against a model executed sequentially.
"""

from __future__ import annotations

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.openmp.task import DependType, TaskRuntime

_KINDS = (DependType.IN, DependType.OUT, DependType.INOUT)


@st.composite
def programs(draw):
    """A list of tasks; each task touches 1-2 of 3 locations."""
    n_tasks = draw(st.integers(2, 12))
    program = []
    for _ in range(n_tasks):
        n_deps = draw(st.integers(1, 2))
        deps = []
        used = set()
        for _ in range(n_deps):
            loc = draw(st.integers(0, 2))
            if loc in used:
                continue
            used.add(loc)
            deps.append((draw(st.sampled_from(_KINDS)), loc))
        program.append(deps)
    return program


@settings(max_examples=40, deadline=None)
@given(programs())
def test_execution_respects_dependence_serialization(program):
    locations = [np.zeros(1) for _ in range(3)]
    # Model: sequential execution — each location's value is the index of
    # the last task that wrote it.
    model_values = [-1, -1, -1]
    expected_reads = {}
    for idx, deps in enumerate(program):
        for kind, loc in deps:
            if kind == DependType.IN:
                expected_reads[(idx, loc)] = model_values[loc]
            else:
                if kind == DependType.INOUT:
                    expected_reads[(idx, loc)] = model_values[loc]
                model_values[loc] = idx

    # Real run: tasks write their index on out/inout and record what they
    # read on in/inout.
    shared = [-1, -1, -1]
    observed = {}
    lock = threading.Lock()
    runtime = TaskRuntime(num_helpers=4)
    try:
        for idx, deps in enumerate(program):
            def make(idx=idx, deps=deps):
                def fn():
                    with lock:
                        for kind, loc in deps:
                            if kind in (DependType.IN, DependType.INOUT):
                                observed[(idx, loc)] = shared[loc]
                        for kind, loc in deps:
                            if kind in (DependType.OUT, DependType.INOUT):
                                shared[loc] = idx
                return fn

            runtime.submit(
                make(),
                depends=[(kind, locations[loc]) for kind, loc in deps],
            )
        runtime.taskwait()
    finally:
        runtime.shutdown()

    for key, expected in expected_reads.items():
        assert observed[key] == expected, (key, expected, observed[key])
    assert shared == model_values


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 8), st.integers(1, 30))
def test_independent_tasks_all_complete(n_helpers, n_tasks):
    runtime = TaskRuntime(num_helpers=n_helpers)
    try:
        done = []
        lock = threading.Lock()
        for i in range(n_tasks):
            def fn(i=i):
                with lock:
                    done.append(i)

            runtime.submit(fn)
        runtime.taskwait()
        assert sorted(done) == list(range(n_tasks))
    finally:
        runtime.shutdown()
