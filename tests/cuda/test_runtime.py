"""CUDA host runtime: memory, transfers, device selection, streams, events."""

import numpy as np
import pytest

from repro import cuda
from repro.errors import GpuError, InvalidPointerError


@pytest.fixture(autouse=True)
def on_device_zero():
    cuda.cudaSetDevice(0)
    yield
    cuda.cudaSetDevice(0)


class TestMemory:
    def test_malloc_free(self):
        ptr = cuda.cudaMalloc(256)
        assert ptr
        cuda.cudaFree(ptr)

    def test_memcpy_roundtrip(self):
        data = np.arange(64, dtype=np.float32)
        ptr = cuda.cudaMalloc(data.nbytes)
        cuda.cudaMemcpy(ptr, data, data.nbytes, cuda.cudaMemcpyHostToDevice)
        out = np.zeros_like(data)
        cuda.cudaMemcpy(out, ptr, data.nbytes, cuda.cudaMemcpyDeviceToHost)
        assert np.array_equal(out, data)
        cuda.cudaFree(ptr)

    def test_memcpy_d2d(self):
        data = np.arange(16, dtype=np.uint8)
        a = cuda.cudaMalloc(16)
        b = cuda.cudaMalloc(16)
        cuda.cudaMemcpy(a, data, 16, cuda.cudaMemcpyHostToDevice)
        cuda.cudaMemcpy(b, a, 16, cuda.cudaMemcpyDeviceToDevice)
        out = np.zeros(16, dtype=np.uint8)
        cuda.cudaMemcpy(out, b, 16, cuda.cudaMemcpyDeviceToHost)
        assert np.array_equal(out, data)
        cuda.cudaFree(a)
        cuda.cudaFree(b)

    def test_bad_kind_rejected(self):
        ptr = cuda.cudaMalloc(8)
        with pytest.raises(GpuError, match="kind"):
            cuda.cudaMemcpy(ptr, np.zeros(1), 8, "sideways")
        cuda.cudaFree(ptr)

    def test_partial_memcpy_in_bytes(self):
        data = np.arange(8, dtype=np.int32)
        ptr = cuda.cudaMalloc(data.nbytes)
        cuda.cudaMemcpy(ptr, data, 4 * 4, cuda.cudaMemcpyHostToDevice)  # first 4 ints
        out = np.zeros(8, dtype=np.int32)
        cuda.cudaMemcpy(out, ptr, 8 * 4, cuda.cudaMemcpyDeviceToHost)
        assert np.array_equal(out[:4], data[:4])
        assert not out[4:].any()
        cuda.cudaFree(ptr)

    def test_memset(self):
        ptr = cuda.cudaMalloc(32)
        cuda.cudaMemset(ptr, 0x11, 32)
        out = np.zeros(32, dtype=np.uint8)
        cuda.cudaMemcpy(out, ptr, 32, cuda.cudaMemcpyDeviceToHost)
        assert (out == 0x11).all()
        cuda.cudaFree(ptr)

    def test_use_after_free(self):
        ptr = cuda.cudaMalloc(8)
        cuda.cudaFree(ptr)
        with pytest.raises(InvalidPointerError):
            cuda.cudaMemcpy(np.zeros(1), ptr, 8, cuda.cudaMemcpyDeviceToHost)


class TestDeviceSelection:
    def test_get_set_device(self):
        assert cuda.cudaGetDevice() == 0
        cuda.cudaSetDevice(1)
        assert cuda.cudaGetDevice() == 1

    def test_set_invalid_device(self):
        with pytest.raises(GpuError):
            cuda.cudaSetDevice(7)

    def test_allocation_follows_current_device(self):
        cuda.cudaSetDevice(1)
        ptr = cuda.cudaMalloc(8)
        assert ptr.device_ordinal == 1
        cuda.cudaFree(ptr)


class TestStreamsAndEvents:
    def test_stream_create_destroy(self):
        s = cuda.cudaStreamCreate("s1")
        order = []
        s.enqueue(lambda: order.append(1))
        cuda.cudaStreamSynchronize(s)
        assert order == [1]
        cuda.cudaStreamDestroy(s)

    def test_async_memcpy_on_stream(self):
        data = np.arange(32, dtype=np.float64)
        ptr = cuda.cudaMalloc(data.nbytes)
        s = cuda.cudaStreamCreate("copy")
        out = np.zeros_like(data)
        cuda.cudaMemcpyAsync(ptr, data, data.nbytes, cuda.cudaMemcpyHostToDevice, s)
        cuda.cudaMemcpyAsync(out, ptr, data.nbytes, cuda.cudaMemcpyDeviceToHost, s)
        cuda.cudaStreamSynchronize(s)
        assert np.array_equal(out, data)
        cuda.cudaStreamDestroy(s)
        cuda.cudaFree(ptr)

    def test_event_record_synchronize(self):
        ev = cuda.cudaEventCreate("done")
        cuda.cudaEventRecord(ev)
        cuda.cudaEventSynchronize(ev)
        assert ev.is_complete

    def test_device_synchronize_drains_default_stream(self):
        log = []
        cuda.current_cuda_device().default_stream.enqueue(lambda: log.append(1))
        cuda.cudaDeviceSynchronize()
        assert log == [1]
