"""CUDA kernel definition and chevron-equivalent launch."""

import numpy as np
import pytest

from repro import cuda
from repro.errors import LaunchError
from repro.gpu import get_device


@pytest.fixture
def dev():
    cuda.cudaSetDevice(0)
    return get_device(0)


def roundtrip(dev, ptr, n, dtype=np.int64):
    out = np.zeros(n, dtype=dtype)
    cuda.cudaDeviceSynchronize()
    cuda.cudaMemcpy(out, ptr, out.nbytes, cuda.cudaMemcpyDeviceToHost)
    return out


class TestKernelDecorator:
    def test_plain_decorator(self):
        @cuda.kernel
        def k(t):
            pass

        assert isinstance(k, cuda.KernelFunction)
        assert k.language == "cuda"
        assert not k.sync_free

    def test_decorator_with_options(self):
        @cuda.kernel(sync_free=True)
        def k(t):
            pass

        assert k.sync_free

    def test_direct_call_as_device_function(self):
        """A __global__ kernel is also callable as a __device__ helper."""

        @cuda.kernel
        def helper(t, v):
            return v * 2

        class FakeThread:
            pass

        assert helper(FakeThread(), 21) == 42

    def test_launch_rejects_undecorated_function(self, dev):
        def not_a_kernel(t):
            pass

        with pytest.raises(LaunchError, match="@kernel"):
            cuda.launch(not_a_kernel, 1, 1, (), device=dev)


class TestLaunchSemantics:
    def test_launch_is_asynchronous(self, dev):
        """The launch returns before the kernel runs; sync observes it."""
        import threading

        gate = threading.Event()
        d_out = cuda.cudaMalloc(8)

        @cuda.kernel
        def k(t, out):
            gate.wait(timeout=5)
            t.array(out, 1, np.int64)[0] = 1

        cuda.launch(k, 1, 1, (d_out,), device=dev)
        # kernel is blocked on the gate, but launch already returned
        gate.set()
        cuda.cudaDeviceSynchronize()
        assert roundtrip(dev, d_out, 1)[0] == 1
        cuda.cudaFree(d_out)

    def test_memcpy_waits_for_default_stream(self, dev):
        """cudaMemcpy is synchronous w.r.t. prior kernel launches."""
        n = 128
        d = cuda.cudaMalloc(n * 8)

        @cuda.kernel(sync_free=True)
        def k(t, out, n):
            i = t.global_thread_id
            if i < n:
                t.array(out, n, np.int64)[i] = i * 3

        cuda.launch(k, (n + 31) // 32, 32, (d, n), device=dev)
        out = np.zeros(n, dtype=np.int64)
        cuda.cudaMemcpy(out, d, n * 8, cuda.cudaMemcpyDeviceToHost)
        assert np.array_equal(out, np.arange(n) * 3)
        cuda.cudaFree(d)

    def test_dynamic_shared_via_launch(self, dev):
        d_out = cuda.cudaMalloc(8)

        @cuda.kernel
        def k(t, out):
            dyn = t.extern_shared(np.float64)
            if t.threadIdx.x == 0:
                dyn[0] = 9.0
            t.syncthreads()
            if t.threadIdx.x == 1:
                t.array(out, 1, np.float64)[0] = dyn[0]

        cuda.launch(k, 1, 2, (d_out,), device=dev, shared_bytes=64)
        cuda.cudaDeviceSynchronize()
        out = np.zeros(1)
        cuda.cudaMemcpy(out, d_out, 8, cuda.cudaMemcpyDeviceToHost)
        assert out[0] == 9.0
        cuda.cudaFree(d_out)


class TestBuiltins:
    def test_index_builtins_match_geometry(self, dev):
        grid, block = (2, 2), (4, 2)
        d_out = cuda.cudaMalloc(4 * 8)

        @cuda.kernel(sync_free=True)
        def k(t, out):
            o = t.array(out, 4, np.int64)
            if t.threadIdx.x == 0 and t.threadIdx.y == 0 and t.blockIdx.x == 0 and t.blockIdx.y == 0:
                o[0] = t.blockDim.x
                o[1] = t.blockDim.y
                o[2] = t.gridDim.x
                o[3] = t.gridDim.y

        cuda.launch(k, grid, block, (d_out,), device=dev)
        assert list(roundtrip(dev, d_out, 4)) == [4, 2, 2, 2]
        cuda.cudaFree(d_out)

    def test_warp_size_per_device(self):
        for ordinal, expected in ((0, 32), (1, 64)):
            cuda.cudaSetDevice(ordinal)
            dev = get_device(ordinal)
            d_out = cuda.cudaMalloc(8)

            @cuda.kernel(sync_free=True)
            def k(t, out):
                if t.global_thread_id == 0:
                    t.array(out, 1, np.int64)[0] = t.warpSize

            cuda.launch(k, 1, 1, (d_out,), device=dev)
            cuda.cudaDeviceSynchronize()
            out = np.zeros(1, dtype=np.int64)
            cuda.cudaMemcpy(out, d_out, 8, cuda.cudaMemcpyDeviceToHost)
            assert out[0] == expected
            cuda.cudaFree(d_out)
        cuda.cudaSetDevice(0)

    def test_atomics_via_facade(self, dev):
        d_out = cuda.cudaMalloc(8)

        @cuda.kernel(sync_free=True)
        def k(t, out):
            t.atomicAdd(t.array(out, 1, np.int64), 0, 2)

        cuda.launch(k, 2, 16, (d_out,), device=dev)
        assert roundtrip(dev, d_out, 1)[0] == 64
        cuda.cudaFree(d_out)

    def test_full_mask_shuffle(self, dev):
        d_out = cuda.cudaMalloc(32 * 8)

        @cuda.kernel
        def k(t, out):
            v = t.shfl_down_sync(cuda.FULL_MASK, t.laneid, 1)
            t.array(out, 32, np.int64)[t.laneid] = v

        cuda.launch(k, 1, 32, (d_out,), device=dev)
        cuda.cudaDeviceSynchronize()
        result = roundtrip(dev, d_out, 32)
        expected = np.minimum(np.arange(32) + 1, 31)
        assert np.array_equal(result, expected)
        cuda.cudaFree(d_out)

    def test_ballot_with_full_mask(self, dev):
        d_out = cuda.cudaMalloc(8)

        @cuda.kernel
        def k(t, out):
            bits = t.ballot_sync(cuda.FULL_MASK, t.laneid < 4)
            if t.laneid == 0:
                t.array(out, 1, np.uint64)[0] = bits

        cuda.launch(k, 1, 32, (d_out,), device=dev)
        cuda.cudaDeviceSynchronize()
        out = np.zeros(1, dtype=np.uint64)
        cuda.cudaMemcpy(out, d_out, 8, cuda.cudaMemcpyDeviceToHost)
        assert out[0] == 0b1111
        cuda.cudaFree(d_out)
