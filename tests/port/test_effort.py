"""The porting-effort metric: the paper's text-replacement claim, measured."""

import pytest

from repro import cuda, ompx
from repro.apps.adam import adam_cuda_kernel, adam_ompx_kernel
from repro.apps.aidw import (
    aidw_cuda_kernel,
    aidw_knn_cuda_kernel,
    aidw_knn_ompx_kernel,
    aidw_ompx_kernel,
)
from repro.apps.rsbench import rsbench_cuda_kernel, rsbench_ompx_kernel
from repro.apps.stencil1d import stencil_cuda_kernel, stencil_ompx_kernel
from repro.apps.su3 import su3_cuda_kernel, su3_ompx_kernel
from repro.apps.xsbench import xsbench_cuda_kernel, xsbench_ompx_kernel
from repro.port import PortEffort, measure_port_effort

ALL_PAIRS = [
    (stencil_cuda_kernel, stencil_ompx_kernel),
    (adam_cuda_kernel, adam_ompx_kernel),
    (aidw_cuda_kernel, aidw_ompx_kernel),
    (aidw_knn_cuda_kernel, aidw_knn_ompx_kernel),
    (su3_cuda_kernel, su3_ompx_kernel),
    (xsbench_cuda_kernel, xsbench_ompx_kernel),
    (rsbench_cuda_kernel, rsbench_ompx_kernel),
]


class TestPaperClaim:
    @pytest.mark.parametrize(
        "pair", ALL_PAIRS, ids=lambda p: p[0].fn.__name__
    )
    def test_every_app_port_is_pure_text_replacement(self, pair):
        """THE §1 claim, formally: the automated rule-table port alone
        reproduces every hand-written ompx kernel."""
        effort = measure_port_effort(*pair)
        assert effort.is_text_replacement, (
            f"{effort.kernel_name}: {effort.changed_lines - effort.mechanical_lines} "
            f"non-mechanical changes"
        )

    @pytest.mark.parametrize(
        "pair", ALL_PAIRS, ids=lambda p: p[0].fn.__name__
    )
    def test_effort_is_bounded(self, pair):
        """"Minimal modifications": well under half the lines change."""
        effort = measure_port_effort(*pair)
        assert effort.changed_fraction < 0.5


class TestMetricItself:
    def test_identical_kernels_have_zero_changes(self):
        effort = measure_port_effort(stencil_cuda_kernel, stencil_cuda_kernel)
        assert effort.changed_lines == 0
        assert effort.mechanical_fraction == 1.0
        assert effort.is_text_replacement

    def test_facade_rename_is_free(self):
        """t-vs-x is a naming convention, not a porting cost."""

        @cuda.kernel(sync_free=True)
        def k1(t, out, n):
            import numpy as np

            i = t.global_thread_id
            if i < n:
                t.array(out, n, np.float64)[i] = i

        @cuda.kernel(sync_free=True)
        def k2(renamed, out, n):
            import numpy as np

            i = renamed.global_thread_id
            if i < n:
                renamed.array(out, n, np.float64)[i] = i

        effort = measure_port_effort(k1, k2)
        assert effort.changed_lines == 0

    def test_algorithmic_change_detected_as_non_mechanical(self):
        """A genuine logic difference is not credited as a rename."""

        @cuda.kernel(sync_free=True)
        def original(t, out, n):
            import numpy as np

            i = t.blockIdx.x * t.blockDim.x + t.threadIdx.x
            if i < n:
                t.array(out, n, np.float64)[i] = i * 2

        @ompx.bare_kernel(sync_free=True)
        def rewritten(x, out, n):
            import numpy as np

            i = x.block_id_x() * x.block_dim_x() + x.thread_id_x()
            if i < n:
                x.array(out, n, np.float64)[i] = i * 3 + 1  # different math!

        effort = measure_port_effort(original, rewritten)
        assert effort.changed_lines > 0
        assert not effort.is_text_replacement

    def test_fraction_properties(self):
        effort = PortEffort("k", total_lines=20, changed_lines=5, mechanical_lines=4)
        assert effort.changed_fraction == pytest.approx(0.25)
        assert effort.mechanical_fraction == pytest.approx(0.8)
        assert not effort.is_text_replacement

    def test_zero_lines_edge_case(self):
        effort = PortEffort("k", total_lines=0, changed_lines=0, mechanical_lines=0)
        assert effort.changed_fraction == 0.0
        assert effort.mechanical_fraction == 1.0
