"""The C-source rewriting tool: CUDA C text -> OpenMP + ompx text."""

import pytest

from repro.errors import PortError
from repro.port import port_c_source


class TestDeviceCode:
    def test_thread_indexing_tokens(self):
        out = port_c_source("int i = blockIdx.x * blockDim.x + threadIdx.x;")
        assert out == "int i = ompx_block_id_x() * ompx_block_dim_x() + ompx_thread_id_x();"

    def test_all_three_dimensions(self):
        src = "threadIdx.y + threadIdx.z + blockIdx.y + gridDim.z"
        out = port_c_source(src)
        for token in ("ompx_thread_id_y()", "ompx_thread_id_z()",
                      "ompx_block_id_y()", "ompx_grid_dim_z()"):
            assert token in out

    def test_syncthreads(self):
        assert port_c_source("__syncthreads();") == "ompx_sync_thread_block();"

    def test_shared_declaration_gets_groupprivate_pragma(self):
        out = port_c_source("__shared__ float tile[128];")
        assert "float tile[128];" in out
        assert "#pragma omp groupprivate(team: tile)" in out

    def test_shared_2d_array(self):
        out = port_c_source("__shared__ double buf[16][16];")
        assert "#pragma omp groupprivate(team: buf)" in out

    def test_device_keyword_dropped(self):
        out = port_c_source("__device__ int use(int a) { return a; }")
        assert "__device__" not in out
        assert "int use(int a)" in out

    def test_global_kernel_becomes_plain_function(self):
        out = port_c_source("__global__ void k(int *a) {}")
        assert out == "void k(int *a) {}"

    def test_warp_primitive_mask_reordered(self):
        out = port_c_source("v = __shfl_down_sync(0xffffffff, value, 4);")
        assert out == "v = ompx_shfl_down_sync(value, 4, 0xffffffff);"

    def test_warp_primitive_with_nested_parens(self):
        out = port_c_source("v = __shfl_sync(mask, f(a, b), lane(i));")
        assert out == "v = ompx_shfl_sync(f(a, b), lane(i), mask);"

    def test_ballot_and_votes(self):
        out = port_c_source("b = __ballot_sync(m, p); a = __any_sync(m, q);")
        assert "ompx_ballot_sync(p, m)" in out
        assert "ompx_any_sync(q, m)" in out

    def test_atomics_renamed(self):
        out = port_c_source("atomicAdd(&x[0], 1); atomicCAS(&y, old, val);")
        assert "ompx_atomic_add(&x[0], 1)" in out
        assert "ompx_atomic_cas(&y, old, val)" in out

    def test_warp_size_token(self):
        assert "ompx_warp_size()" in port_c_source("int w = warpSize;")


class TestLaunches:
    def test_simple_chevron(self):
        out = port_c_source("kernel<<<grid, block>>>(a, b, n);")
        assert "#pragma omp target teams ompx_bare num_teams(grid) thread_limit(block)" in out
        assert "kernel(a, b, n);" in out
        assert "<<<" not in out

    def test_chevron_with_expressions(self):
        out = port_c_source("k<<<(n + 255) / 256, 256>>>(x);")
        assert "num_teams((n + 255) / 256) thread_limit(256)" in out

    def test_chevron_with_stream_becomes_interop_depend(self):
        """A stream argument maps onto the §3.5 interopobj dependence."""
        out = port_c_source("k<<<g, b, 0, stream>>>(x);")
        assert "nowait depend(interopobj: stream)" in out

    def test_chevron_without_stream_is_synchronous(self):
        out = port_c_source("k<<<g, b>>>(x);")
        assert "nowait" not in out


class TestHostApi:
    def test_host_calls_renamed(self):
        src = (
            "cudaMalloc(&d, n); cudaMemcpy(d, h, n, cudaMemcpyHostToDevice);\n"
            "cudaDeviceSynchronize(); cudaFree(d);"
        )
        out = port_c_source(src)
        assert "ompx_malloc(&d, n)" in out
        assert "ompx_memcpy(d, h, n" in out
        assert "ompx_device_synchronize()" in out
        assert "ompx_free(d)" in out

    def test_stream_api_renamed(self):
        out = port_c_source("cudaStreamCreate(&s); cudaStreamSynchronize(s);")
        assert "ompx_stream_create(&s)" in out
        assert "ompx_stream_synchronize(s)" in out


class TestWholeProgram:
    def test_figure1_translates_cleanly(self):
        """The paper's Figure 1, end to end: no CUDA tokens survive."""
        figure1 = """
        __device__ int use(int &a, int &b) { return a + b; }
        __global__ void kernel(int *a, int *b, int n) {
          __shared__ int shared[128];
          int tid = threadIdx.x;
          __syncthreads();
          int idx = blockIdx.x * blockDim.x + tid;
          if (idx < n) b[idx] = use(a[idx], shared[tid]);
        }
        int main() {
          cudaMalloc(&d_a, size);
          cudaMemcpy(d_a, h_a, size, cudaMemcpyHostToDevice);
          kernel<<<gsize, bsize>>>(d_a, d_b, n);
          cudaMemcpy(h_b, d_b, size, cudaMemcpyDeviceToHost);
          cudaDeviceSynchronize();
          cudaFree(d_a);
        }
        """
        out = port_c_source(figure1)
        for forbidden in ("__global__", "__device__", "__shared__",
                          "__syncthreads", "threadIdx", "blockIdx", "blockDim",
                          "cudaMalloc", "cudaMemcpy", "cudaFree", "<<<"):
            assert forbidden not in out, forbidden
        assert "#pragma omp target teams ompx_bare" in out
        assert "#pragma omp groupprivate(team: shared)" in out

    def test_unknown_constructs_pass_through(self):
        src = "int x = someFunction(a, b); // arbitrary host code"
        assert port_c_source(src) == src

    def test_non_string_rejected(self):
        with pytest.raises(PortError, match="source text"):
            port_c_source(42)

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(PortError, match="unbalanced"):
            port_c_source("__shfl_sync(a, b")
