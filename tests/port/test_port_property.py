"""Property-based test of the porting pipeline.

Hypothesis generates small CUDA-DSL kernels from a grammar (index
arithmetic, optional shared-memory staging with a barrier, optional warp
shuffles, an array write), the rule-table port translates them, and both
versions run on the virtual GPU.  The ported kernel must produce
bit-identical output — the strongest form of the paper's claim that the
translation is semantics-preserving renaming.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cuda, ompx
from repro.gpu import get_device
from repro.port import port_kernel

BLOCK = 32
GRID = 2
N = BLOCK * GRID

_INDEX_EXPRS = (
    "t.threadIdx.x",
    "t.blockIdx.x",
    "t.blockDim.x",
    "t.laneid",
    "t.blockIdx.x * t.blockDim.x + t.threadIdx.x",
)

_SHUFFLES = (
    "t.shfl_down_sync(cuda.FULL_MASK, v, 1)",
    "t.shfl_up_sync(cuda.FULL_MASK, v, 2)",
    "t.shfl_xor_sync(cuda.FULL_MASK, v, 3)",
    "t.shfl_sync(cuda.FULL_MASK, v, 0)",
)


@st.composite
def kernel_sources(draw) -> str:
    """Generate the source of a small but structurally varied CUDA kernel."""
    lines = ["def generated_kernel(t, d_out, n):"]
    index = draw(st.sampled_from(_INDEX_EXPRS))
    scale = draw(st.integers(1, 7))
    offset = draw(st.integers(0, 9))
    lines.append(f"    v = ({index}) * {scale} + {offset}")

    use_shared = draw(st.booleans())
    if use_shared:
        lines.append("    tile = t.shared('tile', 32, np.int64)")
        lines.append("    tile[t.threadIdx.x] = v")
        lines.append("    t.syncthreads()")
        rotate = draw(st.integers(1, 31))
        lines.append(f"    v = tile[(t.threadIdx.x + {rotate}) % 32]")

    use_shuffle = draw(st.booleans())
    if use_shuffle:
        shuffle = draw(st.sampled_from(_SHUFFLES))
        lines.append(f"    v = v + {shuffle}")

    use_branch = draw(st.booleans())
    if use_branch:
        threshold = draw(st.integers(1, 31))
        lines.append(f"    if t.threadIdx.x < {threshold}:")
        lines.append(f"        v = v * 2")

    lines.append("    i = t.blockIdx.x * t.blockDim.x + t.threadIdx.x")
    lines.append("    if i < n:")
    lines.append("        t.array(d_out, n, np.int64)[i] = v")
    return "\n".join(lines) + "\n"


def _build_kernel(source: str):
    namespace = {"np": np, "cuda": cuda}
    # attach fake source so inspect.getsource works for the port tool
    import linecache

    filename = f"<generated-{abs(hash(source))}>"
    linecache.cache[filename] = (len(source), None, source.splitlines(True), filename)
    code = compile(source, filename, "exec")
    exec(code, namespace)
    return cuda.kernel(namespace["generated_kernel"])


def _run(kernel_obj, is_ompx: bool) -> np.ndarray:
    device = get_device(0)
    d_out = device.allocator.malloc(N * 8)
    try:
        if is_ompx:
            ompx.target_teams_bare(device, GRID, BLOCK, kernel_obj, (d_out, N))
        else:
            cuda.launch(kernel_obj, GRID, BLOCK, (d_out, N), device=device)
            device.synchronize()
        out = np.zeros(N, dtype=np.int64)
        device.allocator.memcpy_d2h(out, d_out)
        return out
    finally:
        device.allocator.free(d_out)


@settings(max_examples=40, deadline=None)
@given(kernel_sources())
def test_ported_kernel_is_bit_identical(source):
    kernel_obj = _build_kernel(source)
    ported = port_kernel(kernel_obj)
    original_out = _run(kernel_obj, is_ompx=False)
    ported_out = _run(ported, is_ompx=True)
    assert np.array_equal(original_out, ported_out), source


@settings(max_examples=15, deadline=None)
@given(kernel_sources())
def test_ported_source_has_no_cuda_spellings(source):
    from repro.port import port_kernel_source

    kernel_obj = _build_kernel(source)
    ported_src = port_kernel_source(kernel_obj)
    for forbidden in ("threadIdx", "blockIdx", "blockDim", "syncthreads",
                      "t.shared(", "laneid"):
        assert forbidden not in ported_src, (forbidden, ported_src)
