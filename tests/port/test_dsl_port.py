"""The DSL porting tool: CUDA kernels -> runnable ompx bare kernels."""

import numpy as np
import pytest

from repro import cuda, ompx
from repro.errors import PortError
from repro.ompx.bare import BareKernel
from repro.port import port_kernel, port_kernel_source


@cuda.kernel
def axpy_kernel(t, xs, ys, n, alpha):
    i = t.blockIdx.x * t.blockDim.x + t.threadIdx.x
    if i < n:
        yv = t.array(ys, n, np.float64)
        xv = t.array(xs, n, np.float64)
        yv[i] = alpha * xv[i] + yv[i]


@cuda.kernel
def tile_kernel(t, src, dst, n):
    tile = t.shared("tile", 64, np.float64)
    i = t.blockIdx.x * t.blockDim.x + t.threadIdx.x
    tile[t.threadIdx.x] = t.array(src, n, np.float64)[i] if i < n else 0.0
    t.syncthreads()
    if i < n:
        t.array(dst, n, np.float64)[i] = tile[63 - t.threadIdx.x]


@cuda.kernel
def warp_kernel(t, out, n):
    v = t.shfl_xor_sync(cuda.FULL_MASK, t.laneid + 1, 2)
    ballot = t.ballot_sync(cuda.FULL_MASK, t.laneid % 2 == 0)
    t.syncwarp(cuda.FULL_MASK)
    if t.laneid < n:
        t.array(out, n, np.int64)[t.laneid] = v * 1000 + (ballot & 0xFF)


@cuda.kernel(sync_free=True)
def atomic_kernel(t, out):
    t.atomicAdd(t.array(out, 1, np.int64), 0, 1)
    t.atomicMax(t.array(out, 1, np.int64), 0, 0)


class TestSourceTranslation:
    def test_index_idioms_rewritten(self):
        src = port_kernel_source(axpy_kernel)
        assert "t.block_id_x() * t.block_dim_x() + t.thread_id_x()" in src
        assert "threadIdx" not in src and "blockIdx" not in src

    def test_shared_and_barrier_rewritten(self):
        src = port_kernel_source(tile_kernel)
        assert "t.groupprivate('tile', 64" in src
        assert "t.sync_thread_block()" in src
        assert "syncthreads" not in src

    def test_warp_mask_moved_last(self):
        src = port_kernel_source(warp_kernel)
        # mask (FULL_MASK) moves from first to last positional argument
        assert "t.shfl_xor_sync(t.lane_id() + 1, 2, cuda.FULL_MASK)" in src
        assert "t.ballot_sync(t.lane_id() % 2 == 0, cuda.FULL_MASK)" in src
        assert "t.sync_warp(cuda.FULL_MASK)" in src

    def test_atomics_rewritten(self):
        src = port_kernel_source(atomic_kernel)
        assert "atomic_add" in src and "atomic_max" in src
        assert "atomicAdd" not in src

    def test_decorator_stripped(self):
        src = port_kernel_source(axpy_kernel)
        assert "@" not in src.splitlines()[0]

    def test_keyword_args_in_permuted_call_rejected(self):
        @cuda.kernel
        def kw_kernel(t):
            t.shfl_sync(0xFFFFFFFF, 1, src_lane=0)

        with pytest.raises(PortError, match="keyword"):
            port_kernel_source(kw_kernel)

    def test_facade_parameter_required(self):
        @cuda.kernel
        def no_args():  # pragma: no cover - body never runs
            pass

        with pytest.raises(PortError, match="façade|facade"):
            port_kernel_source(no_args)


class TestRoundTrip:
    def _run_both(self, nvidia, kernel, ported, setup, check, grid=2, block=64):
        for kern, is_ompx in ((kernel, False), (ported, True)):
            args, finish = setup()
            if is_ompx:
                ompx.target_teams_bare(nvidia, grid, block, kern, args)
            else:
                cuda.launch(kern, grid, block, args, device=nvidia)
                nvidia.synchronize()
            check(finish())

    def test_axpy_round_trip(self, nvidia):
        ported = port_kernel(axpy_kernel)
        assert isinstance(ported, BareKernel)
        n = 100
        rng = np.random.default_rng(1)
        x_host = rng.random(n)

        def setup():
            d_x = nvidia.allocator.malloc(n * 8)
            d_y = nvidia.allocator.malloc(n * 8)
            nvidia.allocator.memcpy_h2d(d_x, x_host)
            nvidia.allocator.memcpy_h2d(d_y, np.ones(n))

            def finish():
                out = np.zeros(n)
                nvidia.allocator.memcpy_d2h(out, d_y)
                nvidia.allocator.free(d_x)
                nvidia.allocator.free(d_y)
                return out

            return (d_x, d_y, n, 2.0), finish

        def check(out):
            assert np.allclose(out, 2.0 * x_host + 1)

        self._run_both(nvidia, axpy_kernel, ported, setup, check)

    def test_shared_tile_round_trip(self, nvidia):
        ported = port_kernel(tile_kernel)
        n = 64
        src_host = np.arange(n, dtype=np.float64)

        def setup():
            d_src = nvidia.allocator.malloc(n * 8)
            d_dst = nvidia.allocator.malloc(n * 8)
            nvidia.allocator.memcpy_h2d(d_src, src_host)

            def finish():
                out = np.zeros(n)
                nvidia.allocator.memcpy_d2h(out, d_dst)
                nvidia.allocator.free(d_src)
                nvidia.allocator.free(d_dst)
                return out

            return (d_src, d_dst, n), finish

        def check(out):
            assert np.array_equal(out, src_host[::-1])

        self._run_both(nvidia, tile_kernel, ported, setup, check, grid=1, block=64)

    def test_warp_primitives_round_trip(self, nvidia):
        ported = port_kernel(warp_kernel)
        n = 32
        outputs = []
        for kern, is_ompx in ((warp_kernel, False), (ported, True)):
            d_out = nvidia.allocator.malloc(n * 8)
            if is_ompx:
                ompx.target_teams_bare(nvidia, 1, 32, kern, (d_out, n))
            else:
                cuda.launch(kern, 1, 32, (d_out, n), device=nvidia)
                nvidia.synchronize()
            out = np.zeros(n, dtype=np.int64)
            nvidia.allocator.memcpy_d2h(out, d_out)
            nvidia.allocator.free(d_out)
            outputs.append(out)
        assert np.array_equal(outputs[0], outputs[1])

    def test_sync_free_flag_preserved(self):
        ported = port_kernel(atomic_kernel)
        assert ported.sync_free

    def test_sync_free_override(self):
        ported = port_kernel(atomic_kernel, sync_free=False)
        assert not ported.sync_free

    def test_ported_kernel_keeps_globals(self, nvidia):
        """Device helpers from the original module keep resolving."""
        from repro.apps.stencil1d import stencil_cuda_kernel

        ported = port_kernel(stencil_cuda_kernel)
        n, r, block = 128, 2, 32
        rng = np.random.default_rng(0)
        data = rng.random(n)
        d_a = nvidia.allocator.malloc(n * 8)
        d_b = nvidia.allocator.malloc(n * 8)
        nvidia.allocator.memcpy_h2d(d_a, data)
        ompx.target_teams_bare(nvidia, (n + block - 1) // block, block, ported, (d_a, d_b, n, r))
        out = np.zeros(n)
        nvidia.allocator.memcpy_d2h(out, d_b)
        padded = np.zeros(n + 2 * r)
        padded[r:r + n] = data
        expected = np.lib.stride_tricks.sliding_window_view(padded, 2 * r + 1).sum(axis=1)
        assert np.allclose(out, expected)
        for p in (d_a, d_b):
            nvidia.allocator.free(p)
