"""Shared fixtures.

Devices are process-wide singletons (like real GPUs); tests that mutate
device state (allocations, data environments) get function-scoped helper
fixtures that clean up after themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.device import get_device


@pytest.fixture
def nvidia():
    """The A100 preset device."""
    return get_device(0)


@pytest.fixture
def amd():
    """The MI250 preset device."""
    return get_device(1)


@pytest.fixture(params=[0, 1], ids=["a100", "mi250"])
def any_device(request):
    """Parametrized over both device presets."""
    return get_device(request.param)


class DeviceArrays:
    """Allocate-and-track helper so tests cannot leak device memory."""

    def __init__(self, device):
        self.device = device
        self._ptrs = []

    def upload(self, host: np.ndarray):
        ptr = self.device.allocator.malloc(host.nbytes)
        self.device.allocator.memcpy_h2d(ptr, np.ascontiguousarray(host))
        self._ptrs.append(ptr)
        return ptr

    def alloc(self, nbytes: int):
        ptr = self.device.allocator.malloc(nbytes)
        self._ptrs.append(ptr)
        return ptr

    def download(self, ptr, shape, dtype) -> np.ndarray:
        out = np.zeros(shape, dtype=dtype)
        self.device.allocator.memcpy_d2h(out, ptr)
        return out

    def release(self):
        for ptr in self._ptrs:
            self.device.allocator.free(ptr)
        self._ptrs.clear()


@pytest.fixture
def dev_arrays(any_device):
    helper = DeviceArrays(any_device)
    yield helper
    helper.release()


@pytest.fixture
def nvidia_arrays(nvidia):
    helper = DeviceArrays(nvidia)
    yield helper
    helper.release()
