"""Shared fixtures.

Devices are process-wide singletons (like real GPUs); tests that mutate
device state (allocations, data environments) get function-scoped helper
fixtures that clean up after themselves.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro.gpu.device import get_device

try:  # the real plugin wins when it is installed
    import pytest_timeout as _pytest_timeout  # noqa: F401

    _HAVE_TIMEOUT_PLUGIN = True
except ImportError:
    _HAVE_TIMEOUT_PLUGIN = False


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """SIGALRM fallback for ``@pytest.mark.timeout(N)`` markers.

    The scheduler tests guard against pool/stream deadlocks with timeout
    markers so a hung worker fails fast instead of wedging the whole run.
    When pytest-timeout is unavailable (this environment does not ship
    it), enforce the marker with a plain alarm; threads stuck in a
    deadlock keep the process alive, but the alarm interrupts the main
    thread and fails the test.  No-op off the main thread or where
    SIGALRM does not exist (Windows).
    """
    marker = item.get_closest_marker("timeout")
    # Resilience tests exercise watchdogs, healing and retries — the one
    # part of the library whose *bugs* look like hangs.  They get a
    # generous default deadline even without an explicit timeout marker.
    # Serving-tier tests (dispatcher threads blocking on admission
    # queues) hang the same way when wakeups are lost, so they get one
    # too.
    if marker is None and item.get_closest_marker("resilience") is not None:
        seconds = 120
    elif marker is None and item.get_closest_marker("serve") is not None:
        seconds = 120
    elif marker is None and item.get_closest_marker("tune") is not None:
        # Tuning tests launch measurement probes across several engines
        # (including the slow cooperative one) and spin up serving
        # tiers; a lost wakeup there hangs just like a serve bug does.
        seconds = 120
    elif marker is None and item.get_closest_marker("cluster") is not None:
        # Cluster tests spawn worker processes and deliberately kill
        # them; a supervision bug (lost heartbeat wakeup, join on a dead
        # pipe) hangs exactly like a resilience bug does.
        seconds = 120
    elif marker is None and item.get_closest_marker("ckpt") is not None:
        # Checkpoint tests kill supervisors mid-run and resume in fresh
        # processes; a stuck resume (waiting on a snapshot that will
        # never appear) hangs exactly like a cluster bug does.
        seconds = 120
    elif marker is not None:
        seconds = int(marker.args[0]) if marker.args else 60
    else:
        seconds = None
    usable = (
        seconds is not None
        and not _HAVE_TIMEOUT_PLUGIN
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {seconds}s timeout marker (SIGALRM fallback)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def nvidia():
    """The A100 preset device."""
    return get_device(0)


@pytest.fixture
def amd():
    """The MI250 preset device."""
    return get_device(1)


@pytest.fixture
def intel():
    """The Intel XeHPC preset device (ordinal 3)."""
    return get_device(3)


@pytest.fixture(params=[0, 1], ids=["a100", "mi250"])
def any_device(request):
    """Parametrized over both device presets."""
    return get_device(request.param)


class DeviceArrays:
    """Allocate-and-track helper so tests cannot leak device memory."""

    def __init__(self, device):
        self.device = device
        self._ptrs = []

    def upload(self, host: np.ndarray):
        ptr = self.device.allocator.malloc(host.nbytes)
        self.device.allocator.memcpy_h2d(ptr, np.ascontiguousarray(host))
        self._ptrs.append(ptr)
        return ptr

    def alloc(self, nbytes: int):
        ptr = self.device.allocator.malloc(nbytes)
        self._ptrs.append(ptr)
        return ptr

    def download(self, ptr, shape, dtype) -> np.ndarray:
        out = np.zeros(shape, dtype=dtype)
        self.device.allocator.memcpy_d2h(out, ptr)
        return out

    def release(self):
        for ptr in self._ptrs:
            self.device.allocator.free(ptr)
        self._ptrs.clear()


@pytest.fixture
def dev_arrays(any_device):
    helper = DeviceArrays(any_device)
    yield helper
    helper.release()


@pytest.fixture
def nvidia_arrays(nvidia):
    helper = DeviceArrays(nvidia)
    yield helper
    helper.release()
