"""Documentation guarantees: every public item carries a docstring.

The deliverable says "doc comments on every public item"; this meta-test
enforces it so the guarantee cannot rot.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

_MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


def _public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        # only report items defined in this package (not numpy etc.)
        defined_in = getattr(obj, "__module__", "") or ""
        if defined_in.startswith("repro"):
            yield name, obj


def test_every_module_importable_and_documented():
    assert len(_MODULES) > 30  # the package is not allowed to shrink quietly
    for name in _MODULES:
        module = importlib.import_module(name)
        assert module.__doc__, f"module {name} lacks a docstring"


@pytest.mark.parametrize("module_name", _MODULES)
def test_public_functions_and_classes_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in _public_members(module):
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not inspect.getdoc(meth):
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, (
        f"{module_name}: public items without docstrings: {undocumented}"
    )


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_repo_documents_exist():
    from pathlib import Path

    root = Path(repro.__file__).resolve().parents[2]
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = root / doc
        assert path.exists(), doc
        assert path.stat().st_size > 1000, f"{doc} is suspiciously thin"
