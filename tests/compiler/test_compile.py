"""The compile step: language resolution, codegen pairing, validation."""

import numpy as np
import pytest

from repro import cuda, hip, ompx
from repro.compiler.compile import compile_kernel, default_toolchain
from repro.compiler.toolchain import HIPCC, LLVM_CLANG, NVCC, OMP_LLVM, OMPX_PROTO
from repro.errors import CompileError
from repro.gpu.device import A100_SPEC, MI250_SPEC
from repro.openmp.codegen import RegionTraits


@cuda.kernel
def sample_cuda(t, out, n):
    i = t.global_thread_id
    if i < n:
        t.array(out, n, np.float64)[i] = i


@ompx.bare_kernel
def sample_ompx(x, out, n):
    i = x.global_thread_id_x()
    if i < n:
        x.array(out, n, np.float64)[i] = i


def omp_body(indices, acc):
    pass


class TestDefaultToolchain:
    def test_mapping(self):
        assert default_toolchain("cuda") is LLVM_CLANG
        assert default_toolchain("cuda", vendor_compiler=True) is NVCC
        assert default_toolchain("hip") is LLVM_CLANG
        assert default_toolchain("hip", vendor_compiler=True) is HIPCC
        assert default_toolchain("ompx") is OMPX_PROTO
        assert default_toolchain("omp") is OMP_LLVM

    def test_unknown_language(self):
        with pytest.raises(CompileError):
            default_toolchain("sycl")


class TestCompileKernel:
    def test_language_from_decorator(self):
        ck = compile_kernel(sample_cuda, A100_SPEC)
        assert ck.language == "cuda"
        assert ck.toolchain is LLVM_CLANG
        assert ck.codegen.is_bare

    def test_ompx_language_from_decorator(self):
        ck = compile_kernel(sample_ompx, A100_SPEC)
        assert ck.language == "ompx"
        assert ck.toolchain is OMPX_PROTO

    def test_hip_kernel(self):
        @hip.kernel
        def k(t):
            pass

        ck = compile_kernel(k, MI250_SPEC)
        assert ck.language == "hip"

    def test_plain_function_needs_language(self):
        with pytest.raises(CompileError, match="language"):
            compile_kernel(omp_body, A100_SPEC)

    def test_omp_language_with_traits(self):
        ck = compile_kernel(
            omp_body, A100_SPEC, language="omp",
            region_traits=RegionTraits(style="worksharing", spmd_amenable=True),
        )
        assert ck.codegen.mode == "spmd"
        assert ck.codegen.runtime_init

    def test_omp_defaults_to_worksharing_traits(self):
        ck = compile_kernel(omp_body, A100_SPEC, language="omp")
        assert ck.codegen.mode == "spmd"

    def test_omp_rejects_bare_traits(self):
        with pytest.raises(CompileError, match="ompx"):
            compile_kernel(
                omp_body, A100_SPEC, language="omp",
                region_traits=RegionTraits(style="bare"),
            )

    def test_ompx_requires_prototype_toolchain(self):
        with pytest.raises(CompileError, match="prototype"):
            compile_kernel(sample_ompx, A100_SPEC, toolchain=NVCC)

    def test_shared_bytes_recorded(self):
        ck = compile_kernel(sample_cuda, A100_SPEC, shared_bytes=2048)
        assert ck.static_shared_bytes == 2048
        assert ck.effective_shared_bytes == 2048

    def test_heap_to_shared_adds_to_effective(self):
        ck = compile_kernel(
            omp_body, A100_SPEC, language="omp",
            region_traits=RegionTraits(escaping_local_bytes=2048),
            shared_bytes=512,
        )
        assert ck.effective_shared_bytes == 2048 + 512

    def test_registers_positive_and_capped(self):
        ck = compile_kernel(sample_cuda, A100_SPEC)
        assert 16 <= ck.registers <= 255

    def test_efficiency_default_is_one(self):
        ck = compile_kernel(sample_cuda, A100_SPEC)
        assert ck.efficiency == pytest.approx(1.0)

    def test_hints_flow_to_efficiency(self):
        @cuda.kernel
        def with_calls(t, out):
            def not_inlined():
                return 1
            pass

        ck_plain = compile_kernel(sample_ompx, A100_SPEC, hints={})
        ck_hinted = compile_kernel(
            sample_ompx, A100_SPEC, hints={"lto_inlining": True}
        )
        # sample_ompx has no device calls, so the hint changes nothing...
        assert ck_hinted.efficiency == ck_plain.efficiency
        assert dict(ck_hinted.hints) == {"lto_inlining": True}
