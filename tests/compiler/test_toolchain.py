"""Toolchain models: registers, binary sizes, efficiency mechanisms."""

import pytest

from repro.compiler.analysis import KernelTraits
from repro.compiler.toolchain import (
    HIPCC,
    LLVM_CLANG,
    NVCC,
    OMP_LLVM,
    OMPX_PROTO,
    toolchain_for,
)
from repro.errors import CompileError
from repro.gpu.device import A100_SPEC, MI250_SPEC
from repro.openmp.codegen import RegionTraits, lower_region


def traits(**kwargs) -> KernelTraits:
    base = dict(
        name="k", body_ops=40, loop_depth=1, branches=2,
        uses_barrier=False, uses_warp_collectives=False, uses_shared=False,
        uses_atomics=False, device_fn_calls=0, local_vars=8,
    )
    base.update(kwargs)
    return KernelTraits(**base)


BARE = lower_region(RegionTraits(style="bare"))
SPMD = lower_region(RegionTraits(style="worksharing", spmd_amenable=True))


class TestRegisters:
    def test_prototype_pays_call_penalty(self):
        """SU3's 26-vs-24 registers (§4.2.3)."""
        t = traits(device_fn_calls=4)
        assert OMPX_PROTO.registers(t, BARE) == LLVM_CLANG.registers(t, BARE) + 2

    def test_no_penalty_without_calls(self):
        t = traits(device_fn_calls=0)
        assert OMPX_PROTO.registers(t, BARE) == LLVM_CLANG.registers(t, BARE)

    def test_runtime_register_overhead_added(self):
        t = traits()
        assert OMP_LLVM.registers(t, SPMD) > OMP_LLVM.registers(t, BARE)

    def test_register_cap(self):
        t = traits(local_vars=400)
        assert OMPX_PROTO.registers(t, BARE) == 255


class TestBinarySize:
    def test_prototype_retains_inlined_functions(self):
        """SU3's 29 KB vs 3.9 KB (§4.2.3)."""
        t = traits(device_fn_calls=4)
        proto = OMPX_PROTO.binary_bytes(t, BARE)
        native = LLVM_CLANG.binary_bytes(t, BARE)
        assert proto > 20 * 1024
        assert native < 8 * 1024

    def test_no_calls_no_bloat(self):
        t = traits(device_fn_calls=0)
        assert OMPX_PROTO.binary_bytes(t, BARE) == LLVM_CLANG.binary_bytes(t, BARE)

    def test_runtime_binary_overhead(self):
        t = traits()
        assert OMP_LLVM.binary_bytes(t, SPMD) > OMP_LLVM.binary_bytes(t, BARE)


class TestEfficiency:
    def test_lto_bonus_needs_pipeline_hint_and_calls(self):
        t = traits(device_fn_calls=3)
        hint = {"lto_inlining": True}
        assert OMPX_PROTO.instruction_efficiency(t, BARE, A100_SPEC, hint) > 1.0
        # native pipeline has no cross-TU visibility
        assert LLVM_CLANG.instruction_efficiency(t, BARE, A100_SPEC, hint) == 1.0
        # no calls, nothing to inline
        t0 = traits(device_fn_calls=0)
        assert OMPX_PROTO.instruction_efficiency(t0, BARE, A100_SPEC, hint) == 1.0

    def test_icache_penalty_on_big_binaries(self):
        """The SU3-on-A100 mechanism: retained binary exceeds the i-cache."""
        t = traits(device_fn_calls=4)
        eff_a100 = OMPX_PROTO.instruction_efficiency(t, BARE, A100_SPEC, {})
        eff_mi250 = OMPX_PROTO.instruction_efficiency(t, BARE, MI250_SPEC, {})
        assert eff_a100 < 1.0           # 27+ KB > 16 KB i-cache
        assert eff_mi250 == 1.0         # fits the 32 KB i-cache

    def test_shared_demotion_is_nvidia_only(self):
        t = traits(uses_shared=True)
        hint = {"shared_demotable": True}
        assert LLVM_CLANG.instruction_efficiency(t, BARE, A100_SPEC, hint) > 1.0
        assert LLVM_CLANG.instruction_efficiency(t, BARE, MI250_SPEC, hint) == 1.0

    def test_nvcc_does_not_demote(self):
        """The paper's AIDW PTX finding: nvcc left shared variables alone."""
        t = traits(uses_shared=True)
        hint = {"shared_demotable": True}
        assert NVCC.instruction_efficiency(t, BARE, A100_SPEC, hint) == 1.0

    def test_prototype_does_not_demote(self):
        t = traits(uses_shared=True)
        hint = {"shared_demotable": True}
        assert OMPX_PROTO.instruction_efficiency(t, BARE, A100_SPEC, hint) == 1.0

    def test_amd_spill_penalty(self):
        """The SU3-on-MI250 mechanism (§4.2.3's 28%)."""
        t = traits()
        hint = {"amd_scratch_spills": True}
        assert LLVM_CLANG.instruction_efficiency(t, BARE, MI250_SPEC, hint) < 1.0
        assert HIPCC.instruction_efficiency(t, BARE, MI250_SPEC, hint) < 1.0
        # the prototype's pipeline avoids the spills
        assert OMPX_PROTO.instruction_efficiency(t, BARE, MI250_SPEC, hint) == 1.0
        # and the penalty is AMD-specific
        assert LLVM_CLANG.instruction_efficiency(t, BARE, A100_SPEC, hint) == 1.0


class TestLookup:
    def test_toolchain_for(self):
        assert toolchain_for("nvcc") is NVCC
        assert toolchain_for("ompx-proto") is OMPX_PROTO

    def test_unknown_name(self):
        with pytest.raises(CompileError, match="unknown toolchain"):
            toolchain_for("icc")
