"""Kernel trait analysis: barriers, shared, device calls, loop shape."""

import numpy as np
import pytest

from repro import cuda, ompx
from repro.compiler.analysis import KernelTraits, analyze_kernel
from repro.errors import CompileError


def helper_device_fn(a):
    return a + 1


@cuda.kernel
def barrier_kernel(t, out, n):
    shared = t.shared("s", 32, np.float64)
    shared[t.threadIdx.x] = 0.0
    t.syncthreads()
    if t.threadIdx.x < n:
        t.array(out, n, np.float64)[t.threadIdx.x] = shared[0]


@cuda.kernel(sync_free=True)
def call_heavy_kernel(t, out, n):
    i = t.global_thread_id
    v = helper_device_fn(i)
    v = helper_device_fn(v)
    v = helper_device_fn(v)
    if i < n:
        t.array(out, n, np.int64)[i] = v


@cuda.kernel
def warp_kernel(t, out):
    v = t.shfl_down_sync(cuda.FULL_MASK, t.laneid, 1)
    t.atomicAdd(t.array(out, 1, np.int64), 0, v)


@ompx.bare_kernel
def ompx_kernel(x, out, n):
    tile = x.groupprivate("tile", 64, np.float64)
    for j in range(4):
        for k in range(4):
            tile[j * 4 + k] = j * k
    x.sync_thread_block()
    if x.thread_id_x() == 0:
        x.array(out, n, np.float64)[0] = tile[0]


class TestTraitDetection:
    def test_barrier_detected(self):
        traits = analyze_kernel(barrier_kernel)
        assert traits.uses_barrier
        assert traits.uses_shared
        assert not traits.uses_warp_collectives

    def test_device_calls_counted(self):
        traits = analyze_kernel(call_heavy_kernel)
        assert traits.device_fn_calls == 3

    def test_facade_intrinsics_not_counted_as_calls(self):
        traits = analyze_kernel(ompx_kernel)
        assert traits.device_fn_calls == 0
        assert traits.uses_barrier and traits.uses_shared

    def test_warp_and_atomic_detection(self):
        traits = analyze_kernel(warp_kernel)
        assert traits.uses_warp_collectives
        assert traits.uses_atomics

    def test_loop_depth(self):
        traits = analyze_kernel(ompx_kernel)
        assert traits.loop_depth == 2

    def test_branches_counted(self):
        traits = analyze_kernel(barrier_kernel)
        assert traits.branches >= 1

    def test_name_captured(self):
        assert analyze_kernel(barrier_kernel).name == "barrier_kernel"

    def test_register_demand_floor(self):
        traits = KernelTraits(
            name="tiny", body_ops=1, loop_depth=0, branches=0,
            uses_barrier=False, uses_warp_collectives=False, uses_shared=False,
            uses_atomics=False, device_fn_calls=0, local_vars=1,
        )
        assert traits.register_demand == 16

    def test_register_demand_grows_with_locals(self):
        small = KernelTraits("a", 10, 0, 0, False, False, False, False, 0, 4)
        big = KernelTraits("b", 10, 0, 0, False, False, False, False, 0, 20)
        assert big.register_demand > small.register_demand


class TestBytecodeFallback:
    def test_sourceless_function_analyzed(self):
        # compile() from a string has no retrievable source
        code = compile(
            "def k(ctx, out):\n"
            "    ctx.sync_threads()\n"
            "    ctx.shared_array('s', 4, 'f8')\n",
            "<string>", "exec",
        )
        ns = {}
        exec(code, ns)
        traits = analyze_kernel(ns["k"])
        assert traits.uses_barrier
        assert traits.uses_shared
        assert traits.body_ops > 0

    def test_object_without_code_rejected(self):
        class NotAFunction:
            pass

        with pytest.raises(CompileError):
            analyze_kernel(NotAFunction())

    def test_wrapped_kernel_unwrapped(self):
        # analyze_kernel reads through the KernelFunction wrapper
        assert analyze_kernel(barrier_kernel).name == "barrier_kernel"
