"""ClusterActions and the failure-aware collectives built on them.

Scatter stamps rank/size onto picklable action copies; gather re-raises
the first participant failure; all_reduce = gather + reduce + broadcast.
A worker killed mid-collective must surface as
:class:`~repro.errors.WorkerLost` from the gather — collectives fail as
a unit rather than silently reducing over a partial set.
"""

import os
import signal
import time

import pytest

from repro.cluster import ClusterAction, ClusterPool
from repro.errors import ClusterError, WorkerLost

from .helpers import PartialSum, RankReport, ReadStore, SlowAction

pytestmark = [pytest.mark.cluster]


@pytest.fixture(scope="module")
def pool():
    with ClusterPool(3, heartbeat_s=0.1, deadline_s=2.0) as cpool:
        yield cpool


class TestScatterGather:
    def test_scatter_stamps_rank_and_size_per_worker(self, pool):
        reports = pool.gather(pool.scatter(RankReport()))
        assert sorted(reports) == [(0, 3, 0, 1), (1, 3, 1, 1), (2, 3, 2, 1)]

    def test_the_original_action_instance_stays_unstamped(self, pool):
        action = RankReport()
        pool.gather(pool.scatter(action))
        assert action.rank is None and action.size is None

    def test_scatter_rejects_non_actions(self, pool):
        with pytest.raises(ClusterError, match="ClusterAction"):
            pool.scatter(lambda ctx: None)

    def test_unscattered_actions_fail_loudly(self):
        with pytest.raises(ClusterError, match="rank/size"):
            PartialSum(range(10)).my_slice(10)

    def test_my_slice_block_layout_covers_everything_once(self):
        action = PartialSum([])
        slices = []
        for rank in range(3):
            stamped = action._with_rank(rank, 3)
            slices.append(stamped.my_slice(10))
        assert slices == [(0, 4), (4, 7), (7, 10)]


class TestCollectives:
    def test_all_reduce_sum_matches_the_serial_answer(self, pool):
        data = list(range(100))
        assert pool.all_reduce(PartialSum(data), op="sum") == float(
            sum(data)
        )

    def test_all_reduce_min_and_max(self, pool):
        data = [5.0, -3.0, 12.0, 7.0, 0.0, 9.0]
        assert pool.all_reduce(PartialSum(data), op="min") == min(
            pool.gather(pool.scatter(PartialSum(data)))
        )
        assert pool.all_reduce(PartialSum(data), op="max") == max(
            pool.gather(pool.scatter(PartialSum(data)))
        )

    def test_all_reduce_rejects_unknown_ops(self, pool):
        with pytest.raises(ClusterError, match="op"):
            pool.all_reduce(PartialSum([1.0]), op="xor")

    def test_broadcast_reaches_every_worker_store(self, pool):
        # broadcast returns one echo per participating worker; the
        # follow-up ReadStore proves the value landed in each store.
        assert pool.broadcast({"lr": 0.1}, key="config") == [{"lr": 0.1}] * 3
        echoes = pool.gather(pool.scatter(ReadStore("config")))
        assert echoes == [{"lr": 0.1}] * 3


class TestCollectiveFailure:
    def test_worker_killed_mid_collective_fails_the_gather(self):
        with ClusterPool(
            3, heartbeat_s=0.1, deadline_s=1.0, restart=False
        ) as pool:
            futures = pool.scatter(SlowAction(seconds=2.0))
            time.sleep(0.3)
            os.kill(pool._handles[2].proc.pid, signal.SIGKILL)
            with pytest.raises(WorkerLost):
                pool.gather(futures, timeout=30)
