"""Chaos acceptance: all six apps survive a mid-run worker kill, bit-identical.

The acceptance criterion for the cluster tier: with three workers and a
killer thread SIGKILLing one of them mid-run, every benchmark app must
finish with output *bit-identical* (``np.array_equal``, not approx) to
the single-device reference, and the lost worker must show up as a
quarantined super-device in the recovery report.  Also covers the CLI
composition surface: ``--cluster`` alongside ``--resilient``,
``--faults``, ``--serve`` and ``--tune``.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.apps import ALL_APPS, ExecutionConfig, run
from repro.apps.__main__ import main
from repro.cluster import ClusterPool
from repro.gpu import get_device
from repro.resilience import RecoveryReport

pytestmark = [pytest.mark.cluster]


class TestBitIdenticalUnderChaos:
    def test_all_six_apps_survive_a_mid_run_worker_kill(self):
        report = RecoveryReport()
        with ClusterPool(
            3, heartbeat_s=0.1, deadline_s=1.5, seed=1234, report=report
        ) as pool:
            # One kill, fired from a thread the moment the victim has a
            # job in flight — deterministic "mid-run" without racing the
            # (fast) functional app sweep: the dying worker necessarily
            # orphans at least one job, which must re-land on a
            # survivor without any app noticing beyond redispatch
            # latency.
            victim = pool._handles[2]
            old_pid = victim.proc.pid

            def killer():
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline and not victim.inflight:
                    time.sleep(0.001)
                os.kill(old_pid, signal.SIGKILL)

            thread = threading.Thread(target=killer, daemon=True)
            thread.start()

            for app_cls in ALL_APPS:
                app = app_cls()
                params = app.functional_params()
                reference = app.run_single("ompx", params, get_device(0))
                clustered = run(
                    app, ExecutionConfig(params=params, pool=pool)
                )
                assert np.array_equal(
                    reference.output, clustered.output
                ), f"{app.name}: cluster output diverged after worker loss"
                assert clustered.checksum == reference.checksum
            thread.join()

            # The killed worker appeared as a quarantined super-device
            # and (restart on) was readmitted after its canary probe.
            deadline = time.monotonic() + 30
            while (
                time.monotonic() < deadline
                and report["worker_restarts"] == 0
            ):
                time.sleep(0.05)
        assert report["workers_lost"] == 1
        assert report["quarantines"] == 1
        assert report["worker_restarts"] == 1
        assert report["redispatches"] >= 1

    def test_zero_fault_cluster_runs_stay_bit_identical(self):
        # The degenerate chaos schedule (no kill) is the composition
        # baseline the overhead benchmark builds on.
        with ClusterPool(2, heartbeat_s=0.1) as pool:
            for app_cls in ALL_APPS:
                app = app_cls()
                params = app.functional_params()
                reference = app.run_single("ompx", params, get_device(0))
                clustered = run(
                    app, ExecutionConfig(params=params, pool=pool)
                )
                assert np.array_equal(reference.output, clustered.output)


class TestCliComposition:
    def test_cluster_flag_runs_and_verifies(self, capsys):
        assert main(["xsbench", "--run", "--cluster", "2"]) == 0
        out = capsys.readouterr().out
        assert "worker processes" in out
        assert "PASSED" in out

    def test_cluster_composes_with_resilient_and_faults(self, capsys):
        assert main([
            "stencil1d", "--run", "--cluster", "2", "--resilient",
            "--faults", "kernel_fault@2 device=0",
        ]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out

    def test_cluster_composes_with_serve(self, capsys):
        assert main([
            "adam", "--serve", "--cluster", "2", "--tenants", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "worker" in out

    def test_cluster_composes_with_tune(self, capsys, tmp_path):
        assert main([
            "xsbench", "--run", "--cluster", "2", "--tune",
            "--tune-cache", str(tmp_path / "plans"),
        ]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out

    def test_cluster_composes_with_trace(self, capsys, tmp_path):
        trace_out = tmp_path / "trace.json"
        assert main([
            "su3", "--run", "--cluster", "2", "--trace", str(trace_out),
        ]) == 0
        assert trace_out.exists()

    def test_negative_cluster_is_rejected(self, capsys):
        assert main(["xsbench", "--run", "--cluster", "-1"]) != 0
