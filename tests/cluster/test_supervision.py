"""Supervision: crash/hang detection, redispatch, restart, readmission.

These tests SIGKILL/SIGSTOP real worker processes and assert the
parent-side self-healing story: lost workers become quarantined
super-devices, orphaned unpinned jobs re-land on survivors, restarted
workers pass a canary probe before readmission, and pinned work on a
dead worker fails with :class:`~repro.errors.WorkerLost` (or its
heartbeat-expiry subclass) instead of hanging.
"""

import os
import signal
import time

import pytest

from repro.cluster import ClusterPool
from repro.errors import HeartbeatTimeout, WorkerLost

from .helpers import ordinal_probe, pid_probe, slow_probe

pytestmark = [pytest.mark.cluster]


def _wait_for(predicate, timeout=20.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestCrashRecovery:
    def test_sigkill_redispatches_quarantines_and_readmits(self):
        with ClusterPool(3, heartbeat_s=0.1, deadline_s=1.0, seed=7) as pool:
            futures = [
                pool.submit_call(slow_probe, label=f"job{i}")
                for i in range(6)
            ]
            time.sleep(0.15)
            victim = pool._handles[1]
            old_pid = victim.proc.pid  # respawn replaces handle.proc
            os.kill(old_pid, signal.SIGKILL)

            # Every unpinned orphan re-lands on a survivor and finishes.
            assert [f.result(timeout=30) for f in futures] == ["done"] * 6
            assert any(f.attempts > 1 for f in futures)
            assert pool.report["workers_lost"] == 1
            assert pool.report["redispatches"] >= 1

            # The lost worker is a quarantined super-device until its
            # replacement passes the canary probe, then healthy again.
            assert _wait_for(lambda: pool.health.state(1) == "healthy")
            assert pool.report["quarantines"] == 1
            assert pool.report["worker_restarts"] == 1

            # The readmitted worker accepts pinned work in a NEW process.
            pinned = pool.submit_call(
                pid_probe, device=pool.devices[1], label="pinned-after"
            )
            assert pinned.result(timeout=30) != old_pid

    def test_restart_false_leaves_the_worker_quarantined(self):
        with ClusterPool(
            2, heartbeat_s=0.1, deadline_s=1.0, restart=False
        ) as pool:
            os.kill(pool._handles[0].proc.pid, signal.SIGKILL)
            assert _wait_for(
                lambda: pool.health.state(0) == "quarantined", timeout=10
            )
            time.sleep(0.5)  # no respawn may sneak in afterwards
            assert pool.health.state(0) == "quarantined"
            assert pool.report["worker_restarts"] == 0
            # The survivor still serves unpinned work.
            assert pool.submit_call(
                ordinal_probe
            ).result(timeout=30) is not None

    def test_pinned_jobs_on_a_dead_worker_fail_with_worker_lost(self):
        with ClusterPool(
            2, heartbeat_s=0.1, deadline_s=1.0, restart=False
        ) as pool:
            pinned = pool.submit_call(
                slow_probe, device=pool.devices[1], label="pinned"
            )
            time.sleep(0.15)
            os.kill(pool._handles[1].proc.pid, signal.SIGKILL)
            with pytest.raises(WorkerLost) as excinfo:
                pinned.result(timeout=30)
            assert excinfo.value.worker == 1


class TestHangDetection:
    def test_sigstop_trips_the_heartbeat_deadline(self):
        with ClusterPool(
            2, heartbeat_s=0.1, deadline_s=1.0, restart=False
        ) as pool:
            victim = pool._handles[1]
            pinned = pool.submit_call(
                slow_probe, device=pool.devices[1], label="hang-pinned"
            )
            os.kill(victim.proc.pid, signal.SIGSTOP)
            try:
                with pytest.raises(HeartbeatTimeout) as excinfo:
                    pinned.result(timeout=30)
            finally:
                os.kill(victim.proc.pid, signal.SIGCONT)
            exc = excinfo.value
            assert exc.worker == 1
            assert exc.deadline_s == 1.0
            assert "deadline=" in str(exc)
            assert pool.report["heartbeat_timeouts"] == 1
            # A hang is a loss: HeartbeatTimeout classifies as WorkerLost.
            assert isinstance(exc, WorkerLost)
