"""Module-level picklable payloads for the cluster test suites.

Everything a :class:`~repro.cluster.ClusterPool` ships to a worker
crosses a pipe as a pickle, so the callables and actions the tests
submit must live at module scope (lambdas and test-local closures do not
pickle).  Keeping them in one shared module also lets the spawn children
resolve them by ``(module, qualname)`` reference without re-importing
whole test files.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.cluster import ClusterAction
from repro.errors import GpuError


def touch_kernel(ctx, n):
    """A kernel shipped by (module, qualname) reference; host-value args
    only — cluster submission rejects DevicePointer arguments."""
    i = ctx.global_id_x
    if i < n:
        pass


def ordinal_probe(device):
    """Report the worker-local ordinal that served the call."""
    return device.ordinal


def spec_probe(device):
    """Report the spec name that served the call."""
    return device.spec.name


def pid_probe(device):
    """Report the worker process id (proves process isolation)."""
    return os.getpid()


def slow_probe(device, seconds=0.6):
    """Sleep long enough for a mid-flight kill to orphan the job."""
    time.sleep(seconds)
    return "done"


def failing_probe(device):
    """Raise a library error inside the worker (travels back pickled)."""
    raise GpuError("deliberate worker-side failure")


def sum_on_device(device, data):
    """A tiny numeric payload with a deterministic answer."""
    return float(np.sum(data))


class RankReport(ClusterAction):
    """Echo collective coordinates plus the worker's own view of them."""

    def invoke(self, ctx):
        return (self.rank, self.size, ctx.rank, len(ctx.devices))


class PartialSum(ClusterAction):
    """Sum this rank's block slice of ``data``."""

    def __init__(self, data):
        self.data = list(data)

    def invoke(self, ctx):
        lo, hi = self.my_slice(len(self.data))
        return float(sum(self.data[lo:hi]))


class ReadStore(ClusterAction):
    """Read a broadcast value back out of the worker's context store."""

    def __init__(self, key):
        self.key = key

    def invoke(self, ctx):
        return ctx.store.get(self.key)


class SlowAction(ClusterAction):
    """An action slow enough to be caught by a mid-collective kill."""

    def __init__(self, seconds=1.0):
        self.seconds = seconds

    def invoke(self, ctx):
        time.sleep(self.seconds)
        return ctx.rank
