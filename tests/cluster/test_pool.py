"""ClusterPool basics: spawn, dispatch, placement, lifecycle, degradation.

One module-scoped 2-worker pool serves the cheap roundtrip tests (spawn
costs ~0.5 s; respawning per test would dominate the suite); tests that
kill, close or monkeypatch build their own.
"""

import functools

import numpy as np
import pytest

from repro.cluster import ClusterFuture, ClusterPool, DeviceProxy, cluster_pool
from repro.errors import CancelledError, ClusterError, GpuError
from repro.gpu import LaunchConfig
from repro.sched import DevicePool

from .helpers import (
    failing_probe,
    ordinal_probe,
    pid_probe,
    slow_probe,
    spec_probe,
    sum_on_device,
    touch_kernel,
)

pytestmark = [pytest.mark.cluster]


@pytest.fixture(scope="module")
def pool():
    with ClusterPool(2, heartbeat_s=0.1, deadline_s=2.0) as cpool:
        yield cpool


class TestRoundtrip:
    def test_submit_call_returns_the_workers_answer(self, pool):
        future = pool.submit_call(spec_probe, label="probe")
        assert "A100" in future.result(timeout=30)

    def test_jobs_really_run_in_separate_processes(self, pool):
        pids = {
            pool.submit_call(pid_probe, device=proxy).result(timeout=30)
            for proxy in pool.devices
        }
        import os

        assert len(pids) == 2
        assert os.getpid() not in pids

    def test_partial_payloads_carry_their_data(self, pool):
        data = np.arange(10, dtype=np.float64)
        bound = functools.partial(sum_on_device, data=data)
        assert pool.submit_call(bound).result(timeout=30) == 45.0

    def test_kernel_ships_by_reference(self, pool):
        future = pool.submit(
            touch_kernel, LaunchConfig.create(1, 32), 16, label="touch"
        )
        future.result(timeout=30)
        assert future.done()

    def test_worker_side_errors_travel_back_pickled(self, pool):
        future = pool.submit_call(failing_probe, label="boom")
        with pytest.raises(GpuError, match="deliberate worker-side"):
            future.result(timeout=30)

    def test_synchronize_fences_every_worker(self, pool):
        futures = [pool.submit_call(ordinal_probe) for _ in range(4)]
        pool.synchronize()
        assert all(f.done() for f in futures)


class TestPlacement:
    def test_devices_are_proxies_with_super_device_indices(self, pool):
        assert [p.ordinal for p in pool.devices] == [0, 1]
        assert all(isinstance(p, DeviceProxy) for p in pool.devices)
        assert {p.rank for p in pool.devices} == {0, 1}
        assert len(pool) == 2

    def test_pinning_by_proxy_and_by_index_agree(self, pool):
        by_proxy = pool.submit_call(
            pid_probe, device=pool.devices[1]
        ).result(timeout=30)
        by_index = pool.submit_call(pid_probe, device=1).result(timeout=30)
        assert by_proxy == by_index

    def test_unpinned_jobs_round_robin_over_workers(self, pool):
        pids = [
            pool.submit_call(pid_probe).result(timeout=30) for _ in range(4)
        ]
        assert len(set(pids)) == 2

    def test_distinct_specs_collapses_same_spec_workers(self, pool):
        distinct = pool.distinct_specs()
        assert len(distinct) == 1
        assert "A100" in distinct[0].spec.name

    def test_out_of_range_pin_is_rejected(self, pool):
        with pytest.raises(ClusterError, match="device"):
            pool.submit_call(ordinal_probe, device=99)

    def test_futures_are_cluster_futures_with_attempts(self, pool):
        future = pool.submit_call(ordinal_probe)
        assert isinstance(future, ClusterFuture)
        future.result(timeout=30)
        assert future.attempts == 1


class TestArgumentPortability:
    def test_device_pointer_arguments_are_rejected(self, pool):
        with DevicePool(1) as local:
            device = local.devices[0]
            ptr = device.allocator.malloc(64)
            try:
                with pytest.raises(ClusterError, match="DevicePointer"):
                    pool.submit(
                        touch_kernel, LaunchConfig.create(1, 32), ptr, 8
                    )
                bound = functools.partial(sum_on_device, data=ptr)
                with pytest.raises(ClusterError, match="DevicePointer"):
                    pool.submit_call(bound)
            finally:
                device.allocator.free(ptr)

    def test_unpicklable_payloads_fail_with_cluster_error(self, pool):
        with pytest.raises(ClusterError):
            pool.submit_call(lambda device: None)


class TestLifecycle:
    def test_drain_close_finishes_queued_work(self):
        pool = ClusterPool(1, heartbeat_s=0.1)
        futures = [pool.submit_call(ordinal_probe) for _ in range(3)]
        pool.close(drain=True)
        # Worker-local device ordinals depend on registry allocation
        # order inside the worker process; drain semantics only promise
        # every queued job completed on the one worker.
        results = [f.result(timeout=5) for f in futures]
        assert len(set(results)) == 1
        assert all(isinstance(r, int) for r in results)

    def test_abandon_close_fails_unresolved_futures(self):
        pool = ClusterPool(1, heartbeat_s=0.1)
        futures = [
            pool.submit_call(functools.partial(slow_probe, seconds=0.5))
            for _ in range(3)
        ]
        pool.close(drain=False)
        for future in futures:
            assert future.done()
            exc = future.exception()
            if exc is not None:
                assert isinstance(exc, (ClusterError, CancelledError))

    def test_submit_after_close_is_refused(self):
        pool = ClusterPool(1, heartbeat_s=0.1)
        pool.close()
        with pytest.raises(ClusterError, match="closed"):
            pool.submit_call(ordinal_probe)

    def test_worker_stats_count_completed_jobs(self):
        with ClusterPool(1, heartbeat_s=0.1) as pool:
            for _ in range(3):
                pool.submit_call(ordinal_probe).result(timeout=30)
            pool.synchronize()
        stats = pool.worker_stats()
        assert stats and stats[0]["jobs_done"] >= 3


class TestValidation:
    def test_zero_workers_is_a_misuse_error(self):
        with pytest.raises(ClusterError):
            ClusterPool(0)

    def test_deadline_must_exceed_heartbeat(self):
        with pytest.raises(ClusterError, match="deadline"):
            ClusterPool(1, heartbeat_s=1.0, deadline_s=0.5)

    def test_misuse_errors_are_not_degradable(self):
        with pytest.raises(ClusterError):
            cluster_pool(0)


class TestGracefulDegradation:
    def test_spawn_failure_degrades_to_in_process_pool(self, monkeypatch):
        def refuse(self, rank):
            raise ClusterError("spawn refused by test")

        monkeypatch.setattr(ClusterPool, "_start_worker", refuse)
        monkeypatch.setattr(
            ClusterPool,
            "__init__",
            _degradable_init,
            raising=True,
        )
        with pytest.warns(RuntimeWarning, match="degraded"):
            fallback = cluster_pool(3)
        try:
            assert isinstance(fallback, DevicePool)
            assert len(fallback) == 3
        finally:
            fallback.close()

    def test_degradation_records_a_recovery_event(self, monkeypatch):
        from repro.resilience import RecoveryReport

        monkeypatch.setattr(
            ClusterPool, "__init__", _degradable_init, raising=True
        )
        report = RecoveryReport()
        with pytest.warns(RuntimeWarning):
            fallback = cluster_pool(2, report=report)
        fallback.close()
        assert report["degraded"] == 1


def _degradable_init(self, workers, **kwargs):
    exc = ClusterError("no worker could be spawned (test)")
    exc.degradable = True
    raise exc
