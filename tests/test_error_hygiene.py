"""Error-hygiene lint: library raises must use the errors.py hierarchy.

Walks every module under ``src/repro`` with ``ast`` and asserts no
``raise`` statement constructs a generic ``Exception`` / ``RuntimeError``
/ ``BaseException``: callers catch :class:`repro.errors.ReproError` to
separate library failures from their own bugs, and a generic raise
punches a hole in that contract.  Precise builtin exceptions for
programming errors at the API boundary (``ValueError``, ``TypeError``,
``NotImplementedError``, ...) remain legitimate.
"""

import ast
from pathlib import Path

import repro
from repro import errors

SRC_ROOT = Path(repro.__file__).resolve().parent

#: Generic exception types library code must never raise directly.
FORBIDDEN = {"Exception", "RuntimeError", "BaseException"}


def _raised_name(node: ast.Raise):
    """The exception class name a raise statement constructs, if resolvable."""
    exc = node.exc
    if exc is None:               # bare re-raise
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None                   # dynamic (raise self._bad_free(...), etc.)


def _violations():
    found = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Raise):
                name = _raised_name(node)
                if name in FORBIDDEN:
                    rel = path.relative_to(SRC_ROOT.parent)
                    found.append(f"{rel}:{node.lineno} raises {name}")
    return found


def test_no_generic_exceptions_raised_in_library_code():
    violations = _violations()
    assert not violations, (
        "library code must raise repro.errors classes (or precise builtins), "
        "never generic Exception/RuntimeError:\n  " + "\n  ".join(violations)
    )


def test_every_public_error_is_rooted_at_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError), name


def test_lint_covers_the_scheduler_package():
    # The rglob walk must see repro/sched (a later package could silently
    # fall outside a hand-maintained file list; the walk is the guarantee).
    sched_files = {p.name for p in sorted(SRC_ROOT.rglob("*.py"))
                   if p.parent.name == "sched"}
    assert {"__init__.py", "pool.py", "shard.py", "model.py"} <= sched_files


def test_lint_covers_the_resilience_package():
    # Same guarantee for repro.resilience: the walk must see every module
    # of the recovery layer, whose raises are exactly the ones callers
    # classify with ``except ReproError``.
    resilience_files = {p.name for p in sorted(SRC_ROOT.rglob("*.py"))
                        if p.parent.name == "resilience"}
    assert {
        "__init__.py", "policy.py", "health.py", "watchdog.py",
        "pool.py", "report.py",
    } <= resilience_files


def test_lint_covers_the_serve_package():
    # And for repro.serve: the serving tier's refusals (QueueFull,
    # SessionClosed) are part of the client-facing error contract, so
    # its modules must stay inside the walk.
    serve_files = {p.name for p in sorted(SRC_ROOT.rglob("*.py"))
                   if p.parent.name == "serve"}
    assert {
        "__init__.py", "admission.py", "coalesce.py", "future.py",
        "quota.py", "service.py", "session.py",
    } <= serve_files


def test_lint_covers_the_tune_package():
    # And for repro.tune: the autotuner's refusals (TuneError,
    # PlanCacheError) are part of the same contract — a corrupted cache
    # file must warn-and-rebuild, and anything the tuner *does* raise
    # must be classifiable with ``except ReproError``.
    tune_files = {p.name for p in sorted(SRC_ROOT.rglob("*.py"))
                  if p.parent.name == "tune"}
    assert {
        "__init__.py", "state.py", "key.py", "cache.py", "tuner.py",
        "session.py", "overhead.py",
    } <= tune_files


def test_lint_covers_the_cluster_package():
    # And for repro.cluster: worker processes ship their failures back
    # over a pipe as pickled exceptions, so every raise there must stay
    # inside the ReproError hierarchy for the parent-side classify-and-
    # redispatch logic to work.
    cluster_files = {p.name for p in sorted(SRC_ROOT.rglob("*.py"))
                     if p.parent.name == "cluster"}
    assert {
        "__init__.py", "pool.py", "worker.py", "actions.py",
    } <= cluster_files


def test_cluster_errors_slot_into_the_hierarchy():
    # Callers classify a dead worker with `except WorkerLost` and any
    # cluster-tier failure with `except ClusterError`; both must stay
    # rooted at SchedulerError (the cluster is a scheduler backend) so
    # `except ReproError` / `except SchedulerError` call sites keep
    # working, and a heartbeat expiry must be catchable as a lost worker.
    assert issubclass(errors.ClusterError, errors.SchedulerError)
    assert issubclass(errors.WorkerLost, errors.ClusterError)
    assert issubclass(errors.HeartbeatTimeout, errors.WorkerLost)
    for name in ("ClusterError", "WorkerLost", "HeartbeatTimeout"):
        assert name in errors.__all__


def _pickle_roundtrip(exc):
    import pickle

    return pickle.loads(pickle.dumps(exc))


def test_worker_lost_pickles_and_compares_by_state():
    # These exceptions cross the process boundary (pickled over the
    # worker pipe), so a round trip must preserve identity-relevant
    # state and equality must follow it.
    exc = errors.WorkerLost("worker died", worker=2, reason="SIGKILL",
                            jobs_lost=3)
    clone = _pickle_roundtrip(exc)
    assert clone == exc
    assert clone.worker == 2
    assert clone.reason == "SIGKILL"
    assert clone.jobs_lost == 3
    assert "worker=2" in str(clone)
    other = errors.WorkerLost("worker died", worker=1, reason="SIGKILL",
                              jobs_lost=3)
    assert other != exc
    assert hash(clone) == hash(exc)


def test_heartbeat_timeout_pickles_with_deadline_fields():
    exc = errors.HeartbeatTimeout("silent worker", worker=0,
                                  reason="no heartbeat", deadline_s=2.0,
                                  last_seen_s=3.7)
    clone = _pickle_roundtrip(exc)
    assert clone == exc
    assert clone.deadline_s == 2.0
    assert clone.last_seen_s == 3.7
    assert isinstance(clone, errors.WorkerLost)


def test_tune_errors_slot_into_the_hierarchy():
    # Callers classify tuning misconfiguration with `except TuneError`
    # and cache misuse with `except PlanCacheError`; both must stay
    # rooted at ReproError so `except ReproError` call sites keep
    # working, and PlanCacheError must be catchable as a TuneError.
    assert issubclass(errors.TuneError, errors.ReproError)
    assert issubclass(errors.PlanCacheError, errors.TuneError)
    for name in ("TuneError", "PlanCacheError"):
        assert name in errors.__all__


def test_serve_errors_slot_into_the_hierarchy():
    # Clients classify backpressure with `except QueueFull` and broad
    # service failures with `except ServeError`; both must stay rooted
    # at ReproError so `except ReproError` call sites keep working.
    assert issubclass(errors.ServeError, errors.ReproError)
    assert issubclass(errors.QueueFull, errors.ServeError)
    assert issubclass(errors.SessionClosed, errors.ServeError)
    for name in ("ServeError", "QueueFull", "SessionClosed"):
        assert name in errors.__all__


def test_queue_full_carries_retry_guidance():
    exc = errors.QueueFull("over limit", tenant="alice", scope="tenant",
                           retry_after_s=0.25)
    assert exc.tenant == "alice"
    assert exc.scope == "tenant"
    assert exc.retry_after_s == 0.25
    assert "retry_after=0.250s" in str(exc)


def test_resilience_errors_slot_into_the_hierarchy():
    # WatchdogTimeout must be catchable as a GpuError (it stands in for a
    # device-side failure) and CancelledError as a SchedulerError (it is
    # the scheduler, not the device, that refused the job).
    assert issubclass(errors.WatchdogTimeout, errors.GpuError)
    assert issubclass(errors.CancelledError, errors.SchedulerError)
    assert "WatchdogTimeout" in errors.__all__
    assert "CancelledError" in errors.__all__


def test_scheduler_error_is_a_repro_error():
    assert issubclass(errors.SchedulerError, errors.ReproError)
    assert "SchedulerError" in errors.__all__


def test_lint_covers_the_ompx_vendor_module():
    # And for repro.ompx: the §3.6 vendor-library layer refuses bad BLAS
    # arguments with VendorError subclasses, so its modules — vendor.py
    # above all — must stay inside the walk.
    ompx_files = {p.name for p in sorted(SRC_ROOT.rglob("*.py"))
                  if p.parent.name == "ompx"}
    assert {"__init__.py", "vendor.py", "lattice.py"} <= ompx_files


def test_vendor_errors_slot_into_the_hierarchy():
    # Callers classify any BLAS-wrapper failure with `except VendorError`
    # (mirroring how real code checks one cublasStatus_t enum); the
    # specific refusals must each be catchable as that base and remain
    # rooted at ReproError so `except ReproError` call sites keep working.
    assert issubclass(errors.VendorError, errors.ReproError)
    assert issubclass(errors.BlasDimensionError, errors.VendorError)
    assert issubclass(errors.UnknownVendorError, errors.VendorError)
    assert issubclass(errors.HandleDestroyedError, errors.VendorError)
    for name in ("VendorError", "BlasDimensionError", "UnknownVendorError",
                 "HandleDestroyedError"):
        assert name in errors.__all__


def test_blas_dimension_error_pickles_and_compares_by_state():
    # Stream-bound handles raise on stream worker threads and the cluster
    # layer ships failures across processes, so the structured context
    # must survive a pickle round trip and drive equality.
    exc = errors.BlasDimensionError("lda below row count", op="dgemm",
                                    param="lda", value=2, minimum=4)
    clone = _pickle_roundtrip(exc)
    assert clone == exc
    assert clone.op == "dgemm"
    assert clone.param == "lda"
    assert clone.value == 2 and clone.minimum == 4
    assert "param='lda'" in str(clone)
    assert hash(clone) == hash(exc)
    other = errors.BlasDimensionError("lda below row count", op="dgemm",
                                      param="ldb", value=2, minimum=4)
    assert other != exc


def test_unknown_vendor_error_pickles_with_registry_snapshot():
    exc = errors.UnknownVendorError("no backend", vendor="xpu",
                                    known=("nvidia", "amd", "intel"))
    clone = _pickle_roundtrip(exc)
    assert clone == exc
    assert clone.vendor == "xpu"
    assert clone.known == ("nvidia", "amd", "intel")
    assert "xpu" in str(clone)


def test_handle_destroyed_error_pickles_with_call_site():
    exc = errors.HandleDestroyedError("use after destroy", op="dscal",
                                      device=3)
    clone = _pickle_roundtrip(exc)
    assert clone == exc
    assert clone.op == "dscal" and clone.device == 3
    assert isinstance(clone, errors.VendorError)


def test_vendor_error_equality_is_type_strict():
    assert errors.BlasDimensionError("x") != errors.HandleDestroyedError("x")
    base = errors.VendorError("x")
    assert base.__eq__(errors.LaunchError("x")) is NotImplemented


def test_fault_and_sticky_errors_are_gpu_errors():
    # The fault framework's error classes slot into the existing hierarchy
    # so `except GpuError` call sites keep catching them.
    assert issubclass(errors.KernelFault, errors.GpuError)
    assert issubclass(errors.MemcheckError, errors.KernelFault)
    assert issubclass(errors.StickyContextError, errors.GpuError)
    assert issubclass(errors.FaultSpecError, errors.ReproError)


def test_lint_covers_the_ckpt_package():
    # And for repro.ckpt: a corrupt snapshot must surface as
    # CorruptCheckpointError (the session's fallback signal), never as a
    # generic exception the fallback walk would not classify.
    ckpt_files = {p.name for p in sorted(SRC_ROOT.rglob("*.py"))
                  if p.parent.name == "ckpt"}
    assert {
        "__init__.py", "format.py", "session.py", "runner.py", "journal.py",
    } <= ckpt_files


def test_checkpoint_errors_slot_into_the_hierarchy():
    # Callers classify any checkpoint-layer failure with
    # `except CheckpointError`, and the session's fallback walk catches
    # the corruption subclass specifically; both must stay rooted at
    # ReproError so `except ReproError` call sites keep working.
    assert issubclass(errors.CheckpointError, errors.ReproError)
    assert issubclass(errors.CorruptCheckpointError, errors.CheckpointError)
    for name in ("CheckpointError", "CorruptCheckpointError"):
        assert name in errors.__all__


def test_corrupt_checkpoint_error_pickles_and_compares_by_state():
    # Corruption verdicts cross process boundaries (a resumed supervisor
    # reports why it fell back), so the structured context must survive
    # a pickle round trip and drive equality.
    exc = errors.CorruptCheckpointError(
        "digest mismatch", path="/tmp/c/ckpt-00000002.ckpt", step=2,
        reason="digest", expected_digest="aa", actual_digest="bb",
    )
    clone = _pickle_roundtrip(exc)
    assert clone == exc
    assert clone.step == 2
    assert clone.reason == "digest"
    assert clone.expected_digest == "aa" and clone.actual_digest == "bb"
    assert "reason='digest'" in str(clone)
    assert hash(clone) == hash(exc)
    other = errors.CorruptCheckpointError(
        "digest mismatch", path="/tmp/c/ckpt-00000002.ckpt", step=3,
        reason="digest", expected_digest="aa", actual_digest="bb",
    )
    assert other != exc


def test_checkpoint_error_pickles_with_path():
    exc = errors.CheckpointError("identity mismatch", path="/tmp/chain")
    clone = _pickle_roundtrip(exc)
    assert clone == exc
    assert clone.path == "/tmp/chain"
    assert isinstance(clone, errors.ReproError)


def test_checkpoint_error_equality_is_type_strict():
    assert (errors.CheckpointError("x", path="p")
            != errors.CorruptCheckpointError("x", path="p"))
    base = errors.CheckpointError("x")
    assert base.__eq__(errors.VendorError("x")) is NotImplemented


def test_checkpoint_error_rejects_unknown_fields():
    import pytest as _pytest

    with _pytest.raises(TypeError):
        errors.CheckpointError("x", bogus=1)
