"""Smoke test: ``python -m repro.apps stencil1d --trace out.json``.

Satellite of the trace subsystem: the CLI flag must produce a file that
validates against the Chrome ``trace_event`` schema, in both estimate
(default) and functional-run modes.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro.trace as trace
from repro.apps.__main__ import main
from repro.trace import validate_chrome_trace

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSubprocess:
    def test_estimate_mode_writes_valid_trace(self, tmp_path):
        out = tmp_path / "t.json"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.apps", "stencil1d",
             "--trace", str(out)],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        events = validate_chrome_trace(str(out))
        assert events, "trace file is empty"
        # estimate mode emits perf-model prediction events
        predictions = [e for e in events if e.get("cat") == "prediction"]
        assert predictions, "no perf-model predictions in estimate-mode trace"
        assert "repro.trace profile summary" in proc.stdout
        assert str(out) in proc.stdout


class TestInProcess:
    def test_run_mode_traces_kernel_launches(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        rc = main(["stencil1d", "--run", "--trace", str(out)])
        captured = capsys.readouterr()
        assert rc == 0, captured.err
        assert trace.get_tracer() is None  # CLI cleaned up after itself
        events = validate_chrome_trace(str(out))
        kernels = [e for e in events if e.get("cat") == "kernel"]
        assert kernels, "functional run produced no kernel events"
        for ev in kernels:
            assert ev["args"]["engine"]
            assert "threads_run" in ev["args"]
        assert "verification PASSED" in captured.out

    def test_trace_file_is_json_array(self, tmp_path):
        out = tmp_path / "arr.json"
        assert main(["stencil1d", "--run", "--trace", str(out)]) == 0
        assert isinstance(json.loads(out.read_text()), list)
