"""Trace instrumentation of streams, ompx host APIs and interop enqueues."""

import numpy as np
import pytest

import repro.trace as trace
from repro import ompx
from repro.gpu.stream import Stream
from repro.openmp import interop_destroy, interop_init


@pytest.fixture
def tracer():
    return trace.enable()


def spans_named(tracer, prefix):
    return [s for s in tracer.spans if s.name.startswith(prefix)]


class TestStreamSpans:
    def test_enqueue_records_queued_and_exec_pair(self, tracer, nvidia):
        s = Stream(nvidia, name="traced")
        try:
            s.enqueue(lambda: None, label="op1")
            s.synchronize()
        finally:
            s.close()
        (queued,) = spans_named(tracer, "queued:op1")
        (execd,) = spans_named(tracer, "exec:op1")
        assert queued.cat == "queue"
        assert execd.cat == "stream"
        assert queued.track == execd.track == "stream:traced"
        assert queued.args["stream"] == "traced"
        # the queue wait ends where execution begins
        assert queued.ts_us + queued.dur_us <= execd.ts_us + 1e-3

    def test_nested_work_lands_on_stream_track(self, tracer, nvidia):
        """Spans opened *inside* queued work inherit the stream's track."""
        s = Stream(nvidia, name="nested")

        def work():
            with tracer.span("inner"):
                pass

        try:
            s.enqueue(work, label="outer")
            s.synchronize()
        finally:
            s.close()
        (inner,) = spans_named(tracer, "inner")
        assert inner.track == "stream:nested"

    def test_event_record_is_labelled(self, tracer, nvidia):
        s = Stream(nvidia, name="ev")
        try:
            ev = s.record_event()
            s.synchronize()
        finally:
            s.close()
        assert spans_named(tracer, f"exec:event-record:{ev.name}")


class TestHostApiSpans:
    def test_malloc_memset_memcpy_sync_spans(self, tracer, nvidia):
        data = np.arange(64, dtype=np.float64)
        ptr = ompx.ompx_malloc(data.nbytes, nvidia)
        try:
            ompx.ompx_memset(ptr, 0, data.nbytes, nvidia)
            ompx.ompx_memcpy(ptr, data, data.nbytes, nvidia)
            out = np.zeros_like(data)
            ompx.ompx_memcpy(out, ptr, data.nbytes, nvidia)
            ompx.ompx_device_synchronize(nvidia)
        finally:
            ompx.ompx_free(ptr, nvidia)
        assert np.array_equal(out, data)

        (malloc,) = spans_named(tracer, "ompx_malloc")
        assert malloc.cat == "host-api" and malloc.args["bytes"] == data.nbytes
        (memset,) = spans_named(tracer, "ompx_memset")
        assert memset.cat == "host-api" and memset.args["bytes"] == data.nbytes
        h2d, d2h = spans_named(tracer, "ompx_memcpy")
        assert h2d.cat == d2h.cat == "memcpy"
        assert h2d.args == {"bytes": data.nbytes, "direction": "h2d"}
        assert d2h.args == {"bytes": data.nbytes, "direction": "d2h"}
        (sync,) = spans_named(tracer, "ompx_device_synchronize")
        assert sync.cat == "sync" and sync.args["device"] == nvidia.spec.name

    def test_async_memcpy_spans_carry_direction(self, tracer, nvidia):
        s = ompx.ompx_stream_create(nvidia, name="copies")
        data = np.arange(16, dtype=np.int32)
        ptr = ompx.ompx_malloc(data.nbytes, nvidia)
        try:
            ompx.ompx_memcpy(ptr, data, data.nbytes, nvidia, stream=s)
            out = np.zeros_like(data)
            ompx.ompx_memcpy(out, ptr, data.nbytes, nvidia, stream=s)
            ompx.ompx_stream_synchronize(s)
        finally:
            s.close()
            ompx.ompx_free(ptr, nvidia)
        assert np.array_equal(out, data)
        copies = [s_ for s_ in spans_named(tracer, "exec:ompx_memcpy")]
        assert [c.args["direction"] for c in copies] == ["h2d", "d2h"]
        assert all(c.cat == "memcpy" for c in copies)
        assert all(c.track == "stream:copies" for c in copies)
        # the matching queue-wait spans exist too
        assert len(spans_named(tracer, "queued:ompx_memcpy")) == 2


class TestInteropSpans:
    def test_depend_interopobj_enqueue_and_taskwait(self, tracer, nvidia):
        from repro.openmp import TaskRuntime
        from repro.openmp.task import DependType

        rt = TaskRuntime(num_helpers=2)
        interop = interop_init(targetsync=True, device=nvidia)
        stream_name = interop.targetsync.name
        try:
            ompx.target_teams_bare(
                nvidia, 1, 4, lambda x: None, nowait=True,
                depend=[(DependType.INTEROPOBJ, interop)], task_runtime=rt,
            )
            rt.taskwait([(DependType.INTEROPOBJ, interop)])
        finally:
            interop_destroy(interop)
            rt.shutdown()

        interop_execs = spans_named(tracer, "exec:interop:")
        assert len(interop_execs) == 1
        assert interop_execs[0].track == f"stream:{stream_name}"
        assert "task" in interop_execs[0].args
        taskwaits = spans_named(tracer, "taskwait:interopobj:")
        assert len(taskwaits) == 1
        assert taskwaits[0].cat == "sync"
        # the dispatched kernel itself traced on the interop stream
        kernels = [s for s in tracer.spans if s.cat == "kernel"]
        assert len(kernels) == 1
        assert kernels[0].track == f"stream:{stream_name}"


class TestSummaryConsistency:
    def test_summary_counts_match_spans(self, tracer, nvidia):
        @ompx.bare_kernel(sync_free=True)
        def tick(x):
            pass

        for _ in range(3):
            ompx.target_teams_bare(nvidia, 1, 8, tick)
        kernels = [s for s in tracer.spans if s.cat == "kernel"]
        assert len(kernels) == 3
        assert tracer.counters["launches"] == 3
        text = tracer.summary()
        assert "tick" in text
