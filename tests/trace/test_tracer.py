"""Core Tracer behaviour: spans, nesting, counters, exporters, lifecycle."""

import json
import threading

import pytest

import repro.trace as trace
from repro.trace import Tracer, validate_trace_events


class TestSpans:
    def test_span_records_interval(self):
        t = Tracer()
        with t.span("work", cat="host", detail=1):
            pass
        (sp,) = t.spans
        assert sp.name == "work"
        assert sp.cat == "host"
        assert sp.args == {"detail": 1}
        assert sp.ts_us >= 0
        assert sp.dur_us >= 0

    def test_spans_nest_via_parent_id(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                pass
        assert inner.parent_id == outer.id
        assert outer.parent_id is None

    def test_yielded_span_is_mutable(self):
        """Instrumentation attaches results that only exist post-run."""
        t = Tracer()
        with t.span("k") as sp:
            sp.args["threads_run"] = 64
        assert t.spans[0].args["threads_run"] == 64

    def test_default_track_is_thread_name(self):
        t = Tracer()
        with t.span("a"):
            pass
        assert t.spans[0].track == f"host:{threading.current_thread().name}"

    def test_on_track_override(self):
        t = Tracer()
        with t.on_track("stream:s1"):
            with t.span("a"):
                pass
        with t.span("b"):
            pass
        assert t.spans[0].track == "stream:s1"
        assert t.spans[1].track.startswith("host:")

    def test_add_span_retroactive(self):
        t = Tracer()
        sp = t.add_span("queued:x", "queue", "stream:s", 10.0, 5.0, {"n": 1})
        assert sp.ts_us == 10.0 and sp.dur_us == 5.0
        assert t.spans[0].args == {"n": 1}

    def test_thread_safety(self):
        t = Tracer()

        def worker(i):
            for _ in range(100):
                with t.span(f"w{i}"):
                    pass
                t.counter("ops")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(t.spans) == 800
        assert t.counters["ops"] == 800

    def test_clear(self):
        t = Tracer()
        with t.span("a"):
            pass
        t.counter("c")
        t.prediction("k", total_s=1.0)
        t.clear()
        assert not t.spans and not t.counters and not t.predictions


class TestRecordsAndPredictions:
    def test_records_sorted_by_timestamp(self):
        t = Tracer()
        t.add_span("late", "host", "x", 100.0, 1.0)
        t.add_span("early", "host", "x", 1.0, 1.0)
        names = [r["name"] for r in t.to_records()]
        assert names == ["early", "late"]

    def test_prediction_joined_onto_matching_kernel_span(self):
        t = Tracer()
        t.prediction("saxpy", total_s=2.0, per_launch_s=1.0, launches=2)
        with t.span("kernel:saxpy", cat="kernel"):
            pass
        with t.span("kernel:other", cat="kernel"):
            pass
        recs = {r["name"]: r for r in t.to_records()}
        assert recs["kernel:saxpy"]["args"]["predicted_per_launch_s"] == 1.0
        assert "predicted_per_launch_s" not in recs["kernel:other"]["args"]
        pred = recs["predict:saxpy"]
        assert pred["cat"] == "prediction"
        assert pred["track"] == "perf-model"
        assert pred["dur_us"] == pytest.approx(2.0e6)


class TestChromeExport:
    def test_export_is_valid_and_loads(self, tmp_path):
        t = Tracer()
        with t.span("kernel:k", cat="kernel", engine="map"):
            pass
        t.counter("launches")
        path = t.export_chrome(str(tmp_path / "out.json"))
        events = json.loads((tmp_path / "out.json").read_text())
        validate_trace_events(events)
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases and "C" in phases
        (kernel_ev,) = [e for e in events if e.get("cat") == "kernel"]
        assert kernel_ev["args"]["engine"] == "map"
        assert path.endswith("out.json")

    def test_track_metadata_events_name_tracks(self, tmp_path):
        t = Tracer()
        with t.on_track("stream:s7"):
            with t.span("exec:op", cat="stream"):
                pass
        t.export_chrome(str(tmp_path / "t.json"))
        events = json.loads((tmp_path / "t.json").read_text())
        metas = [e for e in events if e["ph"] == "M"]
        assert any(e["args"]["name"] == "stream:s7" for e in metas)

    @pytest.mark.parametrize("bad", [
        {"not": "a list"},
        [{"ph": "Z", "pid": 1, "tid": 1, "ts": 0}],
        [{"ph": "X", "pid": "x", "tid": 1, "ts": 0}],
        [{"ph": "X", "pid": 1, "tid": 1, "ts": -1}],
        [{"ph": "X", "pid": 1, "tid": 1, "ts": 0}],  # X without name/dur/args
    ])
    def test_validator_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            validate_trace_events(bad)


class TestLifecycle:
    def test_enable_disable_get(self):
        assert trace.get_tracer() is None
        t = trace.enable()
        assert trace.get_tracer() is t
        assert trace.disable() is t
        assert trace.get_tracer() is None

    def test_tracing_context_restores_previous(self):
        outer = trace.enable()
        with trace.tracing() as inner:
            assert trace.get_tracer() is inner
            assert inner is not outer
        assert trace.get_tracer() is outer
        trace.disable()

    def test_enable_existing_tracer_resumes(self):
        t = Tracer()
        with t.span("first"):
            pass
        with trace.tracing(t):
            with trace.get_tracer().span("second"):
                pass
        assert [s.name for s in t.spans] == ["first", "second"]


class TestSummary:
    def test_empty_summary(self):
        assert "no trace records" in Tracer().summary()

    def test_summary_has_kernel_table_and_memcpy_rollup(self):
        t = Tracer()
        for _ in range(3):
            with t.span("kernel:saxpy", cat="kernel"):
                pass
        with t.span("ompx_memcpy", cat="memcpy", bytes=4096, direction="h2d"):
            pass
        text = t.summary()
        assert "saxpy" in text
        assert "3" in text  # the call count
        assert "Memcpy rollup" in text
        assert "h2d" in text
        assert "4.10 KB" in text
