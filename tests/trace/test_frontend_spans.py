"""Kernel spans look the same no matter which front end launched them.

Satellite of the trace subsystem: all four front ends (CUDA chevron,
HIP, classic ``target teams``, ``ompx_bare``) funnel through
``launch_kernel``, so their ``cat == "kernel"`` spans must carry an
identical args schema — and a disabled tracer must record nothing.
"""

import pytest

import repro.trace as trace
from repro import cuda, hip, ompx
from repro.openmp import target_teams_parallel

# The contract: launch geometry + engine choice at launch, KernelStats
# counters harvested after the run.
EXPECTED_ARG_KEYS = {
    "engine",
    "grid",
    "block",
    "shared_bytes",
    "threads_run",
    "blocks_run",
    "barriers",
    "warp_collectives",
    "global_derefs",
    "shared_declarations",
}


def _run_cuda(nvidia, amd):
    @cuda.kernel(sync_free=True)
    def noop_cuda(t):
        pass

    cuda.launch(noop_cuda, 2, 32, (), device=nvidia)
    nvidia.synchronize()


def _run_hip(nvidia, amd):
    @hip.kernel(sync_free=True)
    def noop_hip(t):
        pass

    hip.launch(noop_hip, 2, 32, (), device=amd)
    amd.synchronize()


def _run_openmp(nvidia, amd):
    def noop_omp(t):
        pass

    target_teams_parallel(nvidia, 2, 32, noop_omp)


def _run_ompx_bare(nvidia, amd):
    @ompx.bare_kernel(sync_free=True)
    def noop_bare(x):
        pass

    ompx.target_teams_bare(nvidia, 2, 32, noop_bare)


FRONTENDS = {
    "cuda": _run_cuda,
    "hip": _run_hip,
    "openmp": _run_openmp,
    "ompx_bare": _run_ompx_bare,
}


def kernel_spans(tracer):
    return [s for s in tracer.spans if s.cat == "kernel"]


@pytest.fixture(params=sorted(FRONTENDS), ids=sorted(FRONTENDS))
def frontend(request):
    return FRONTENDS[request.param]


class TestSchema:
    def test_kernel_span_schema(self, frontend, nvidia, amd):
        t = trace.enable()
        frontend(nvidia, amd)
        spans = kernel_spans(t)
        assert len(spans) == 1
        (sp,) = spans
        assert set(sp.args) == EXPECTED_ARG_KEYS
        assert sp.name.startswith("kernel:")
        assert sp.args["grid"] == [2, 1, 1]
        assert sp.args["block"] == [32, 1, 1]
        assert sp.args["threads_run"] == 64
        assert isinstance(sp.args["engine"], str) and sp.args["engine"]

    def test_schema_identical_across_all_frontends(self, nvidia, amd):
        t = trace.enable()
        for run in FRONTENDS.values():
            run(nvidia, amd)
        spans = kernel_spans(t)
        assert len(spans) == len(FRONTENDS)
        schemas = {frozenset(sp.args) for sp in spans}
        assert len(schemas) == 1, f"front ends disagree on span schema: {schemas}"

    def test_launch_counter_matches_kernel_spans(self, nvidia, amd):
        t = trace.enable()
        for run in FRONTENDS.values():
            run(nvidia, amd)
        assert t.counters["launches"] == len(kernel_spans(t))


class TestIntelPreset:
    """The schema parity extends to the fourth ordinal (XeHPC preset)."""

    def _launch_all(self, device):
        @cuda.kernel(sync_free=True)
        def noop_cuda(t):
            pass

        @hip.kernel(sync_free=True)
        def noop_hip(t):
            pass

        @ompx.bare_kernel(sync_free=True)
        def noop_bare(x):
            pass

        cuda.launch(noop_cuda, 2, 32, (), device=device)
        device.synchronize()
        hip.launch(noop_hip, 2, 32, (), device=device)
        device.synchronize()
        target_teams_parallel(device, 2, 32, lambda t: None)
        ompx.target_teams_bare(device, 2, 32, noop_bare)

    def test_all_front_ends_agree_on_intel(self, intel):
        t = trace.enable()
        self._launch_all(intel)
        spans = kernel_spans(t)
        assert len(spans) == len(FRONTENDS)
        schemas = {frozenset(sp.args) for sp in spans}
        assert len(schemas) == 1, f"front ends disagree on xehpc: {schemas}"
        assert schemas == {frozenset(EXPECTED_ARG_KEYS)}

    def test_intel_schema_matches_a100(self, nvidia, intel):
        t = trace.enable()
        self._launch_all(intel)
        intel_schemas = {frozenset(sp.args) for sp in kernel_spans(t)}
        t = trace.enable()
        self._launch_all(nvidia)
        assert {frozenset(sp.args) for sp in kernel_spans(t)} == intel_schemas


class TestDisabled:
    def test_disabled_tracing_adds_no_spans(self, frontend, nvidia, amd):
        t = trace.enable()
        frontend(nvidia, amd)
        before = len(t.spans)
        assert before > 0
        trace.disable()
        assert trace.get_tracer() is None
        frontend(nvidia, amd)  # kernels still run fine ...
        assert len(t.spans) == before  # ... but record nothing
