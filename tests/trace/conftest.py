"""Trace-test fixtures: never leak an enabled tracer into other tests."""

from __future__ import annotations

import pytest

import repro.trace as trace


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    yield
    trace.disable()
