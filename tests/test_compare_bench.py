"""benchmarks/compare_bench.py: the perf-trajectory regression gate.

The comparator must understand metric *direction* (a smaller speedup is
a regression, a smaller runtime is an improvement), tolerate CI noise
inside the per-kind tolerances, and exit non-zero exactly when a metric
moves beyond tolerance in the bad direction.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "compare_bench.py"
)


@pytest.fixture(scope="module")
def compare_bench():
    spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(tmp_path, name, records):
    path = tmp_path / name
    path.write_text(json.dumps({"records": records}))
    return str(path)


class TestDirections:
    def test_identical_snapshots_pass(self, compare_bench, tmp_path):
        snap = _write(tmp_path, "a.json", {"r": {"speedup": 2.0}})
        assert compare_bench.main([snap, snap]) == 0

    def test_smaller_speedup_is_a_regression(self, compare_bench, tmp_path):
        old = _write(tmp_path, "old.json", {"r": {"speedup": 2.0}})
        new = _write(tmp_path, "new.json", {"r": {"speedup": 1.0}})
        assert compare_bench.main([old, new]) == 1

    def test_bigger_speedup_is_not(self, compare_bench, tmp_path):
        old = _write(tmp_path, "old.json", {"r": {"speedup": 1.0}})
        new = _write(tmp_path, "new.json", {"r": {"speedup": 2.0}})
        assert compare_bench.main([old, new]) == 0

    def test_slower_timing_is_a_regression(self, compare_bench, tmp_path):
        old = _write(tmp_path, "old.json", {"r": {"cold_search_s": 1.0}})
        new = _write(tmp_path, "new.json", {"r": {"cold_search_s": 2.0}})
        assert compare_bench.main([old, new]) == 1

    def test_faster_timing_is_not(self, compare_bench, tmp_path):
        old = _write(tmp_path, "old.json", {"r": {"cold_search_s": 2.0}})
        new = _write(tmp_path, "new.json", {"r": {"cold_search_s": 1.0}})
        assert compare_bench.main([old, new]) == 0

    def test_overhead_pct_uses_absolute_points(self, compare_bench, tmp_path):
        # 2% -> 5% overhead is inside the 10-point slack (percent
        # metrics hover near zero, so a relative rule would flake)...
        old = _write(tmp_path, "old.json", {"r": {"overhead_pct": 2.0}})
        new = _write(tmp_path, "new.json", {"r": {"overhead_pct": 5.0}})
        assert compare_bench.main([old, new]) == 0
        # ...while 2% -> 30% regresses.
        worse = _write(tmp_path, "worse.json", {"r": {"overhead_pct": 30.0}})
        assert compare_bench.main([old, worse]) == 1


class TestSnapshotShapes:
    def test_bench_record_metrics_shape_loads(self, compare_bench, tmp_path):
        # The --bench-json writer nests records under "metrics" with a
        # sibling "revision"; the gate must read its own snapshots.
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "revision": "abc1234",
            "metrics": {"cluster/overhead": {"overhead_pct": 3.0}},
        }))
        assert compare_bench.main([str(path), str(path)]) == 0

    def test_committed_snapshot_self_compares_clean(self, compare_bench):
        snapshots = sorted(_SCRIPT.parent.glob("BENCH_*.json"))
        if not snapshots:
            pytest.skip("no committed benchmark snapshot yet")
        latest = str(snapshots[-1])
        assert compare_bench.main([latest, latest]) == 0


class TestTolerances:
    def test_noise_inside_tolerance_passes(self, compare_bench, tmp_path):
        old = _write(tmp_path, "old.json", {"r": {"run_ms": 100.0}})
        new = _write(tmp_path, "new.json", {"r": {"run_ms": 110.0}})
        assert compare_bench.main([old, new]) == 0

    def test_override_tightens_the_gate(self, compare_bench, tmp_path):
        old = _write(tmp_path, "old.json", {"r": {"run_ms": 100.0}})
        new = _write(tmp_path, "new.json", {"r": {"run_ms": 110.0}})
        assert compare_bench.main([old, new, "--tolerance-pct", "5"]) == 1

    def test_added_and_removed_records_do_not_gate(
        self, compare_bench, tmp_path
    ):
        old = _write(tmp_path, "old.json", {"gone": {"x_s": 1.0}})
        new = _write(tmp_path, "new.json", {"fresh": {"y_s": 1.0}})
        assert compare_bench.main([old, new]) == 0

    def test_unknown_metric_names_are_informational(
        self, compare_bench, tmp_path
    ):
        old = _write(tmp_path, "old.json", {"r": {"weirdness": 1.0}})
        new = _write(tmp_path, "new.json", {"r": {"weirdness": 99.0}})
        assert compare_bench.main([old, new]) == 0


class TestMissingBaseline:
    """First run on a branch/fork: no committed BENCH_*.json in history.

    The CI gate resolves its baseline with ``git log`` and gets an empty
    string; the comparator must warn and pass instead of failing every
    first PR — while a missing *candidate* (the suite that should have
    produced it broke) stays a hard error.
    """

    def test_empty_baseline_path_warns_and_passes(
        self, compare_bench, tmp_path, capsys
    ):
        new = _write(tmp_path, "new.json", {"r": {"speedup": 2.0}})
        assert compare_bench.main(["", new]) == 0
        assert "no baseline snapshot" in capsys.readouterr().err

    def test_nonexistent_baseline_path_warns_and_passes(
        self, compare_bench, tmp_path, capsys
    ):
        new = _write(tmp_path, "new.json", {"r": {"speedup": 2.0}})
        missing = str(tmp_path / "BENCH_nothere.json")
        assert compare_bench.main([missing, new]) == 0
        assert "skipping comparison" in capsys.readouterr().err

    def test_missing_candidate_is_still_an_error(
        self, compare_bench, tmp_path
    ):
        with pytest.raises(SystemExit):
            compare_bench.main(["", str(tmp_path / "BENCH_missing.json")])

    def test_present_baseline_still_gates(self, compare_bench, tmp_path):
        old = _write(tmp_path, "old.json", {"r": {"speedup": 2.0}})
        new = _write(tmp_path, "new.json", {"r": {"speedup": 1.0}})
        assert compare_bench.main([old, new]) == 1
