"""Watchdog: hung jobs become structured WatchdogTimeout failures."""

import threading
import time

import pytest

from repro.errors import WatchdogTimeout
from repro.gpu import get_device
from repro.resilience import Watchdog
from repro.resilience.report import RecoveryReport
from repro.sched import KernelFuture

pytestmark = [pytest.mark.resilience]


@pytest.fixture
def report():
    return RecoveryReport()


def _future(label="job"):
    return KernelFuture(label, get_device(0))


def test_expired_deadline_fails_the_future(report):
    fired = []
    with Watchdog(report=report, on_timeout=fired.append, poll_s=0.002) as dog:
        future = _future("hung-kernel")
        dog.watch(future, 0.03)
        assert future.wait(timeout=5)
    exc = future.exception()
    assert isinstance(exc, WatchdogTimeout)
    assert exc.kernel == "hung-kernel"
    assert exc.device == future.device.ordinal
    assert exc.deadline_s == 0.03
    assert report["watchdog_timeouts"] == 1
    assert fired == [future]


def test_completed_future_is_left_alone(report):
    with Watchdog(report=report, poll_s=0.002) as dog:
        future = _future("quick")
        dog.watch(future, 0.05)
        future._set_result("done")
        time.sleep(0.15)  # well past the deadline
        assert future.result() == "done"
    assert report["watchdog_timeouts"] == 0
    assert dog.watched() == 0  # reaped from the watch table


def test_late_completion_is_stale_not_overwriting(report):
    stale = threading.Event()
    with Watchdog(report=report, poll_s=0.002) as dog:
        future = _future("slow")
        future.stale_callback = stale.set
        dog.watch(future, 0.02)
        assert future.wait(timeout=5)
        # The worker finally "finishes": first-writer-wins keeps the
        # timeout, and the completion is flagged stale.
        assert future._set_result("too late") is False
    assert isinstance(future.exception(), WatchdogTimeout)
    assert stale.is_set()


def test_unwatch_disarms_the_deadline(report):
    with Watchdog(report=report, poll_s=0.002) as dog:
        future = _future("pardoned")
        dog.watch(future, 0.05)
        dog.unwatch(future)
        time.sleep(0.15)
        assert not future.done()
    assert report["watchdog_timeouts"] == 0


def test_deadline_must_be_positive(report):
    dog = Watchdog(report=report)
    with pytest.raises(ValueError):
        dog.watch(_future(), 0.0)
    with pytest.raises(ValueError):
        dog.watch(_future(), -1.0)
    dog.stop()


def test_stop_is_idempotent(report):
    dog = Watchdog(report=report, poll_s=0.002)
    dog.start()
    dog.stop()
    dog.stop()


def test_many_futures_one_thread(report):
    with Watchdog(report=report, poll_s=0.002) as dog:
        futures = [_future(f"f{i}") for i in range(8)]
        for future in futures:
            dog.watch(future, 0.03)
        for future in futures:
            assert future.wait(timeout=5)
    assert report["watchdog_timeouts"] == 8
    assert all(isinstance(f.exception(), WatchdogTimeout) for f in futures)
