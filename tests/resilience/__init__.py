"""Tests for repro.resilience: retry policy, watchdog, health, recovery."""
