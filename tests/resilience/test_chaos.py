"""Chaos suite: seeded fault plans over the real apps, bit-identical recovery.

The end-to-end acceptance bar for the resilience layer: for every app,
a resilient multi-device run under an injected fault plan must produce
*exactly* the checksum and output a fault-free single-device run
produces, and the recovery report must account for what the plan fired.
Fault specs use pool-relative ``device=`` selectors, re-bound onto the
pool's live registry ordinals exactly as the ``--resilient --faults``
CLI path does.
"""

import numpy as np
import pytest

from repro import faults
from repro.apps import AIDW, Adam, RSBench, SU3, Stencil1D, VersionLabel, XSBench
from repro.apps import run as apps_run
from repro.errors import GpuError
from repro.gpu import get_device
from repro.resilience import ResilientPool
from repro.sched import DevicePool

pytestmark = [pytest.mark.resilience, pytest.mark.faults]

#: Apps whose shards are self-contained pool jobs (retryable one by one);
#: Stencil-1D drives raw streams and recovers at the run level instead.
GENERIC_APPS = (XSBench, RSBench, SU3, AIDW, Adam)


def _clean_checksum(app, params):
    """The fault-free single-device baseline the chaos run must match."""
    return app.run_single(VersionLabel.OMPX, params, get_device(0))


def _resilient_run(app, params, pool, plan, **rpool_kwargs):
    plan.bind_devices({i: d.ordinal for i, d in enumerate(pool.devices)})
    with ResilientPool(pool, seed=plan.seed, **rpool_kwargs) as rpool:
        result = apps_run(app, variant=VersionLabel.OMPX, params=params,
                          pool=rpool)
    return result, rpool.report


@pytest.mark.parametrize(
    "spec",
    ["launch:kernel_fault@1 device=1", "malloc:oom@1 device=1"],
    ids=["kernel-fault", "oom"],
)
@pytest.mark.parametrize("app_cls", GENERIC_APPS, ids=lambda c: c.__name__.lower())
def test_shard_fault_recovers_bit_identically(app_cls, spec):
    app = app_cls()
    params = app.functional_params()
    clean = _clean_checksum(app, params)
    with DevicePool(3) as pool:
        with faults.inject(spec, seed=11) as plan:
            result, report = _resilient_run(app, params, pool, plan)
        assert plan.fired == 1, plan.summary()
    assert result.checksum == clean.checksum  # exact, not approx
    np.testing.assert_array_equal(result.output, clean.output)
    assert report["retries"] >= 1
    # A kernel fault poisons its context and must round-trip through
    # quarantine; an injected OOM is transient and must not.
    if "kernel_fault" in spec:
        assert report["quarantines"] == 1
        assert report["readmissions"] == 1
    else:
        assert report["quarantines"] == 0


def test_stencil_run_level_recovery():
    # The halo-exchange decomposition drives raw streams, so a mid-run
    # kernel fault escapes the future layer entirely: recovery heals
    # every device (quarantine + canary for the poisoned one, plain
    # reset for the rest) and re-executes the whole 4-shard run.
    app = Stencil1D()
    params = app.functional_params()
    clean = _clean_checksum(app, params)
    with DevicePool(4) as pool:
        with faults.inject("kernel_fault@3 device=1", seed=0) as plan:
            result, report = _resilient_run(app, params, pool, plan)
        assert plan.fired == 1, plan.summary()
    assert result.checksum == clean.checksum
    np.testing.assert_array_equal(result.output, clean.output)
    assert report["runs_reexecuted"] == 1
    assert report["quarantines"] == 1
    assert report["readmissions"] == 1
    assert report["resets"] == 4
    assert report["reexecuted_shards"] == 4


def test_stencil_without_resilience_fails():
    # The control arm: the same fault on a plain pool is fatal.
    app = Stencil1D()
    params = app.functional_params()
    with DevicePool(4) as pool:
        with faults.inject("kernel_fault@3 device=1", seed=0) as plan:
            plan.bind_devices(
                {i: d.ordinal for i, d in enumerate(pool.devices)}
            )
            with pytest.raises(GpuError, match="queued work failed"):
                app.run_sharded(VersionLabel.OMPX, params, pool)


# The abandoned first run's in-flight stream work may reference buffers
# the heal's reset already reclaimed; the engine retries it on the
# fallback engine and warns.  That work belongs to a run whose result is
# discarded, so the warning is expected noise here.
@pytest.mark.filterwarnings(
    "ignore:kernel 'stencil_ompx_kernel' failed:RuntimeWarning"
)
def test_stencil_aborted_enqueue_recovers():
    # An aborted enqueue raises on the host thread mid-halo-loop without
    # poisoning anything: run-level recovery takes the clean-reset path
    # (no quarantine, no canary) and still re-runs to the exact answer.
    app = Stencil1D()
    params = app.functional_params()
    clean = _clean_checksum(app, params)
    with DevicePool(4) as pool:
        with faults.inject("enqueue:abort@2 device=2", seed=3) as plan:
            result, report = _resilient_run(app, params, pool, plan)
        assert plan.fired == 1, plan.summary()
    assert result.checksum == clean.checksum
    assert report["runs_reexecuted"] == 1
    assert report["quarantines"] == 0
    assert report["resets"] == 4


def test_watchdog_recovers_hung_launch():
    # A delayed launch "hangs" one shard far past the watchdog deadline;
    # the shard is timed out, its device drained/reset/readmitted, and
    # the shard re-executed — while the eventual completion of the hung
    # job is recorded as stale instead of corrupting the result.
    app = Adam()
    params = app.functional_params()
    clean = _clean_checksum(app, params)
    with DevicePool(2) as pool:
        with faults.inject(
            "launch:delay@1 device=1,delay=1.0", seed=5
        ) as plan:
            result, report = _resilient_run(
                app, params, pool, plan,
                watchdog_deadline_s=0.3, heal_timeout_s=10,
            )
        assert plan.fired == 1, plan.summary()
    assert result.checksum == clean.checksum
    np.testing.assert_array_equal(result.output, clean.output)
    assert report["watchdog_timeouts"] == 1
    assert report["quarantines"] == 1
    assert report["stale_completions"] == 1


def test_verify2_catches_silent_corruption():
    # A truncated h2d transfer corrupts a shard's *input* without raising
    # anything — invisible to verify=1.  The verify=2 shadow run on a
    # second device disagrees, both results are discarded, and the
    # re-execution converges on the clean answer.
    app = Adam()
    params = app.functional_params()
    clean = _clean_checksum(app, params)
    with DevicePool(2) as pool:
        with faults.inject(
            "memcpy:truncate@1 device=1,direction=h2d", seed=7
        ) as plan:
            result, report = _resilient_run(
                app, params, pool, plan, verify=2
            )
        assert plan.fired == 1, plan.summary()
    assert result.checksum == clean.checksum
    np.testing.assert_array_equal(result.output, clean.output)
    assert report["verify_mismatches"] >= 1


def test_clean_resilient_run_reports_nothing():
    # No faults: the resilient path must be a bit-identical no-op with an
    # empty report (the overhead benchmark covers the cost side).
    app = Adam()
    params = app.functional_params()
    clean = _clean_checksum(app, params)
    with DevicePool(3) as pool:
        with ResilientPool(pool) as rpool:
            result = apps_run(
                app, variant=VersionLabel.OMPX, params=params, pool=rpool
            )
            report = rpool.report
    assert result.checksum == clean.checksum
    np.testing.assert_array_equal(result.output, clean.output)
    assert report.total == 0
    assert "clean run" in report.summary()
