"""HealthTracker: the HEALTHY/SUSPECT/QUARANTINED/RETIRED state machine."""

import pytest

from repro.errors import SchedulerError
from repro.resilience import (
    HEALTHY,
    QUARANTINED,
    RETIRED,
    SUSPECT,
    HealthTracker,
)
from repro.resilience.report import RecoveryReport

pytestmark = [pytest.mark.resilience]


@pytest.fixture
def tracker():
    return HealthTracker(3, report=RecoveryReport())


def test_devices_start_healthy(tracker):
    assert tracker.snapshot() == {0: HEALTHY, 1: HEALTHY, 2: HEALTHY}
    assert tracker.active_indices() == [0, 1, 2]


def test_suspect_stays_in_placement(tracker):
    assert tracker.mark_suspect(1)
    assert tracker.state(1) == SUSPECT
    assert tracker.active_indices() == [0, 1, 2]


def test_quarantine_leaves_placement(tracker):
    tracker.quarantine(1, "poisoned")
    assert tracker.active_indices() == [0, 2]


def test_full_recovery_cycle(tracker):
    tracker.mark_suspect(0)
    tracker.quarantine(0, "escalated")
    assert tracker.mark_healthy(0, "canary passed")
    assert tracker.state(0) == HEALTHY
    assert tracker.active_indices() == [0, 1, 2]


def test_retirement_is_terminal(tracker):
    tracker.quarantine(2, "poisoned")
    tracker.retire(2, "canary failed")
    assert tracker.state(2) == RETIRED
    assert tracker.active_indices() == [0, 1]
    with pytest.raises(SchedulerError, match="illegal health transition"):
        tracker.mark_healthy(2)
    with pytest.raises(SchedulerError, match="illegal health transition"):
        tracker.mark_suspect(2)


def test_cannot_retire_without_quarantine(tracker):
    # Retirement requires the quarantine/canary evidence trail.
    with pytest.raises(SchedulerError, match="illegal health transition"):
        tracker.retire(0)


def test_redundant_transitions_return_false(tracker):
    assert tracker.mark_suspect(0) is True
    assert tracker.mark_suspect(0) is False
    assert tracker.mark_healthy(0) is True
    assert tracker.mark_healthy(0) is False


def test_transitions_feed_the_report():
    report = RecoveryReport()
    tracker = HealthTracker(2, report=report)
    tracker.quarantine(0, "device 3: KernelFault")
    tracker.mark_healthy(0, "device 3: canary passed")
    tracker.quarantine(1, "device 4: hung")
    tracker.retire(1, "device 4: canary failed")
    assert report["quarantines"] == 2
    assert report["readmissions"] == 1
    assert report["retirements"] == 1


def test_readmission_without_detail_is_not_counted():
    # SUSPECT -> HEALTHY after a transient is bookkeeping, not a
    # readmission; only a detail-carrying recovery counts.
    report = RecoveryReport()
    tracker = HealthTracker(1, report=report)
    tracker.mark_suspect(0)
    tracker.mark_healthy(0)
    assert report["readmissions"] == 0


def test_needs_at_least_one_device():
    with pytest.raises(SchedulerError):
        HealthTracker(0, report=RecoveryReport())


def test_report_rejects_unknown_kind():
    report = RecoveryReport()
    with pytest.raises(KeyError):
        report.record("typo_kind", "nope")


def test_report_summary_renders_counts_and_events():
    report = RecoveryReport()
    assert "clean run" in report.summary()
    report.record("retries", "shard0: attempt 1 failed")
    report.record("quarantines", "device 3: KernelFault")
    text = report.summary()
    assert "retries=1" in text
    assert "quarantines=1" in text
    assert "shard0: attempt 1 failed" in text
    assert report.total == 2
