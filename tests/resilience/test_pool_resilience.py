"""ResilientPool: retries, quarantine/readmit/retire, verify=2, run loops.

Failures are injected by raising the library's own error classes from
submitted callables — the same exception types the GPU layer produces —
so every test exercises the real classification, healing and re-placement
paths without depending on app-level workloads (test_chaos.py covers
those end to end).
"""

import threading

import numpy as np
import pytest

from repro.errors import (
    GpuError,
    KernelFault,
    MemcheckError,
    SchedulerError,
)
from repro.gpu import LaunchConfig
from repro.resilience import (
    HEALTHY,
    QUARANTINED,
    RETIRED,
    SUSPECT,
    ResilientPool,
    RetryPolicy,
)
from repro.sched import DevicePool, gather

pytestmark = [pytest.mark.resilience]


@pytest.fixture
def pool():
    with DevicePool(2) as p:
        yield p


def _flaky(fail_times, make_exc):
    """A job that fails its first ``fail_times`` calls, then succeeds."""
    calls = {"n": 0}

    def fn(device):
        calls["n"] += 1
        if calls["n"] <= fail_times:
            raise make_exc()
        return f"ok after {calls['n']}"

    return fn, calls


class TestRetries:
    def test_clean_job_passes_through(self, pool):
        with ResilientPool(pool) as rpool:
            future = rpool.submit_call(lambda dev: dev.ordinal, label="clean")
            assert future.result(timeout=10) in {d.ordinal for d in pool.devices}
            assert future.attempts == 1
            assert rpool.report.total == 0
            assert "clean run" in rpool.report.summary()

    def test_transient_failure_marks_suspect_and_retries(self, pool):
        fn, calls = _flaky(1, lambda: GpuError("synthetic transient"))
        with ResilientPool(pool, seed=1) as rpool:
            future = rpool.submit_call(fn, label="transient")
            assert future.result(timeout=10) == "ok after 2"
            assert future.attempts == 2
            assert rpool.report["retries"] == 1
            assert rpool.report["quarantines"] == 0
            # One failure is evidence, not a verdict: SUSPECT, still placeable.
            assert SUSPECT in rpool.health.snapshot().values()
            assert len(rpool.devices) == 2

    def test_context_fault_quarantines_resets_and_readmits(self, pool):
        fn, _ = _flaky(1, lambda: KernelFault("injected illegal access"))
        with ResilientPool(pool, seed=1) as rpool:
            future = rpool.submit_call(fn, label="faulting")
            assert future.result(timeout=10) == "ok after 2"
            report = rpool.report
            assert report["quarantines"] == 1
            assert report["resets"] == 1
            assert report["readmissions"] == 1  # canary passed
            # The full cycle ends with every device back in service.
            assert set(rpool.health.snapshot().values()) == {HEALTHY}

    def test_poisoned_device_is_actually_reset(self, pool):
        calls = {"n": 0}

        def poisoning(device):
            calls["n"] += 1
            if calls["n"] == 1:
                fault = KernelFault("poison once")
                device.poison(fault)
                raise fault
            # The retry landed on the same (pinned) device with the
            # sticky context cleared by the heal's reset.
            assert not device.is_poisoned
            return "recovered"

        with ResilientPool(pool, seed=1) as rpool:
            # Pin so the retry returns to the poisoned device: success
            # proves the heal really cleared the sticky context.
            future = rpool.submit_call(poisoning, device=0, label="poisoner")
            assert future.result(timeout=10) == "recovered"
        assert not any(d.is_poisoned for d in pool.devices)

    def test_memcheck_violation_is_never_retried(self, pool):
        fn, calls = _flaky(99, lambda: MemcheckError("oob store"))
        with ResilientPool(pool) as rpool:
            future = rpool.submit_call(fn, label="buggy-kernel")
            with pytest.raises(MemcheckError):
                future.result(timeout=10)
            assert future.attempts == 1
            assert rpool.report["retries"] == 0

    def test_retry_budget_is_finite(self, pool):
        fn, calls = _flaky(99, lambda: GpuError("always failing"))
        policy = RetryPolicy(max_attempts=2)
        with ResilientPool(pool, policy=policy) as rpool:
            future = rpool.submit_call(fn, label="doomed")
            with pytest.raises(GpuError, match="always failing"):
                future.result(timeout=10)
            assert future.attempts == 2
            assert rpool.report["retries"] == 1

    def test_shard_retries_count_reexecuted_shards(self, pool):
        fn, _ = _flaky(1, lambda: GpuError("transient"))
        with ResilientPool(pool, seed=1) as rpool:
            future = rpool.submit_call(fn, label="app:shard0", shard=True)
            future.result(timeout=10)
            assert rpool.report["reexecuted_shards"] == 1

    def test_gather_compatible(self, pool):
        with ResilientPool(pool) as rpool:
            futures = [
                rpool.submit_call(lambda dev, i=i: i * i, label=f"g{i}")
                for i in range(4)
            ]
            assert gather(futures) == [0, 1, 4, 9]

    def test_submit_kernel_api(self, pool):
        def write_one(ctx, out, n):
            i = ctx.flat_thread_id
            view = ctx.deref(out, n, np.float64)
            if i < n:
                view[i] = 1.0

        device = pool.devices[0]
        n = 16
        ptr = device.allocator.malloc(n * 8)
        try:
            with ResilientPool(pool) as rpool:
                stats = rpool.submit(
                    write_one, LaunchConfig.create(1, n), ptr, n, device=0
                ).result(timeout=10)
            assert stats is not None
            out = np.zeros(n)
            device.allocator.memcpy_d2h(out, ptr)
            np.testing.assert_array_equal(out, np.ones(n))
        finally:
            device.allocator.free(ptr)


class TestRetirement:
    def test_failed_canary_retires_the_device(self, pool, monkeypatch):
        def broken_canary(device):
            raise GpuError(f"canary mismatch on device {device.ordinal}")

        monkeypatch.setattr(
            "repro.resilience.pool._canary_probe", broken_canary
        )
        fn, _ = _flaky(1, lambda: KernelFault("fatal"))
        with ResilientPool(pool, seed=1) as rpool:
            future = rpool.submit_call(fn, label="victim")
            # Unpinned: the retry relocates to the surviving device.
            assert future.result(timeout=10) == "ok after 2"
            assert RETIRED in rpool.health.snapshot().values()
            assert rpool.report["retirements"] == 1
            assert len(rpool) == 1
            assert len(rpool.devices) == 1

    def test_pinned_job_on_retired_device_fails_fast(self, pool, monkeypatch):
        monkeypatch.setattr(
            "repro.resilience.pool._canary_probe",
            lambda device: (_ for _ in ()).throw(GpuError("dead")),
        )
        fn, calls = _flaky(99, lambda: KernelFault("fatal"))
        with ResilientPool(pool, seed=1) as rpool:
            future = rpool.submit_call(fn, device=0, label="pinned")
            # Pinned jobs own device-resident state; with the device gone
            # the retry is meaningless, so the original failure surfaces.
            with pytest.raises(KernelFault, match="fatal"):
                future.result(timeout=10)
            assert calls["n"] == 1

    def test_no_devices_left_raises_scheduler_error(self, monkeypatch):
        monkeypatch.setattr(
            "repro.resilience.pool._canary_probe",
            lambda device: (_ for _ in ()).throw(GpuError("dead")),
        )
        fn, _ = _flaky(99, lambda: KernelFault("fatal"))
        with DevicePool(1) as pool:
            with ResilientPool(pool, seed=1) as rpool:
                future = rpool.submit_call(fn, label="doomed")
                with pytest.raises((SchedulerError, KernelFault)):
                    future.result(timeout=10)
                assert rpool.health.state(0) == RETIRED
                with pytest.raises(SchedulerError, match="no healthy devices"):
                    rpool.submit_call(lambda dev: None, label="after")


class TestVerify2:
    def test_matching_results_pass(self, pool):
        with ResilientPool(pool, verify=2) as rpool:
            future = rpool.submit_call(
                lambda dev: np.arange(8, dtype=np.float64), label="det"
            )
            np.testing.assert_array_equal(
                future.result(timeout=10), np.arange(8, dtype=np.float64)
            )
            assert rpool.report["verify_mismatches"] == 0

    def test_persistent_divergence_fails_loudly(self, pool):
        # A device-dependent answer can never cross-check: after
        # max_attempts the run fails instead of returning either value.
        with ResilientPool(pool, verify=2, seed=1) as rpool:
            future = rpool.submit_call(
                lambda dev: np.array([float(dev.ordinal)]), label="divergent"
            )
            with pytest.raises(GpuError, match="disagrees"):
                future.result(timeout=10)
            assert rpool.report["verify_mismatches"] >= 1

    def test_failing_shadow_heals_but_accepts_primary(self, pool):
        shadow_device = pool.devices[1]

        def fn(device):
            if device is shadow_device:
                raise GpuError("shadow-side transient")
            return np.ones(4)

        with ResilientPool(pool, verify=2, seed=1) as rpool:
            future = rpool.submit_call(fn, label="half-broken")
            np.testing.assert_array_equal(future.result(timeout=10), np.ones(4))
            assert rpool.report["verify_mismatches"] == 0
            assert rpool.health.state(1) == SUSPECT

    def test_opaque_results_skip_the_cross_check(self, pool):
        sentinel = object()
        with ResilientPool(pool, verify=2) as rpool:
            future = rpool.submit_call(lambda dev: sentinel, label="opaque")
            assert future.result(timeout=10) is sentinel

    def test_verify_value_is_validated(self, pool):
        with pytest.raises(SchedulerError, match="verify"):
            ResilientPool(pool, verify=3)


class TestWatchdogIntegration:
    def test_hung_job_is_timed_out_and_retried_elsewhere(self, pool):
        release = threading.Event()
        calls = {"n": 0}

        def fn(device):
            calls["n"] += 1
            if calls["n"] == 1:
                release.wait(timeout=2.0)  # "hangs" well past the deadline
                return "slow-done"
            return "fast"

        with ResilientPool(
            pool, watchdog_deadline_s=0.15, heal_timeout_s=10, seed=1
        ) as rpool:
            future = rpool.submit_call(fn, label="hanger")
            assert future.result(timeout=30) == "fast"
            report = rpool.report
            assert report["watchdog_timeouts"] == 1
            assert report["quarantines"] == 1
            assert report["readmissions"] == 1
            # The hung worker eventually finished; its completion was
            # recorded as stale rather than overwriting the timeout.
            assert report["stale_completions"] == 1
        release.set()


class TestRunToCompletion:
    def test_reruns_after_healing_every_device(self, pool):
        calls = {"n": 0}

        def run(rpool):
            calls["n"] += 1
            if calls["n"] == 1:
                raise GpuError("mid-run failure outside the future layer")
            return "completed"

        with ResilientPool(pool, seed=1) as rpool:
            assert rpool.run_to_completion(run, label="stencil") == "completed"
            report = rpool.report
            assert report["runs_reexecuted"] == 1
            # Every surviving device was reset to reclaim leaked state,
            # and the whole decomposition counts as re-executed shards.
            assert report["resets"] == 2
            assert report["reexecuted_shards"] == 2

    def test_explicit_shard_count(self, pool):
        calls = {"n": 0}

        def run(rpool):
            calls["n"] += 1
            if calls["n"] == 1:
                raise GpuError("boom")
            return "ok"

        with ResilientPool(pool, seed=1) as rpool:
            rpool.run_to_completion(run, label="r", shards=7)
            assert rpool.report["reexecuted_shards"] == 7

    def test_unretryable_failure_propagates_immediately(self, pool):
        calls = {"n": 0}

        def run(rpool):
            calls["n"] += 1
            raise MemcheckError("deterministic kernel bug")

        with ResilientPool(pool) as rpool:
            with pytest.raises(MemcheckError):
                rpool.run_to_completion(run)
            assert calls["n"] == 1
            assert rpool.report["runs_reexecuted"] == 0

    def test_retry_budget_applies_to_runs_too(self, pool):
        calls = {"n": 0}

        def run(rpool):
            calls["n"] += 1
            raise GpuError("never recovers")

        with ResilientPool(pool, policy=RetryPolicy(max_attempts=2)) as rpool:
            with pytest.raises(GpuError, match="never recovers"):
                rpool.run_to_completion(run)
            assert calls["n"] == 2

    def test_poisoned_devices_get_the_full_quarantine_cycle(self, pool):
        calls = {"n": 0}
        target = pool.devices[1]

        def run(rpool):
            calls["n"] += 1
            if calls["n"] == 1:
                fault = KernelFault("halo-loop fault")
                target.poison(fault)
                raise GpuError("stream sync failed") from fault
            assert not target.is_poisoned
            return "healed"

        with ResilientPool(pool, seed=1) as rpool:
            assert rpool.run_to_completion(run) == "healed"
            report = rpool.report
            assert report["quarantines"] == 1  # only the poisoned device
            assert report["readmissions"] == 1
            assert report["resets"] == 2  # both devices reset for the re-run
