"""RetryPolicy: failure classification and deterministic backoff."""

from random import Random

import pytest

from repro.errors import (
    CancelledError,
    GpuError,
    KernelFault,
    LaunchError,
    MemcheckError,
    OutOfMemoryError,
    StickyContextError,
    WatchdogTimeout,
)
from repro.resilience import RetryPolicy
from repro.resilience.policy import exception_chain

pytestmark = [pytest.mark.resilience]


class TestExceptionChain:
    def test_walks_cause_links(self):
        fault = KernelFault("illegal access")
        launch = LaunchError("launch failed")
        launch.__cause__ = fault
        outer = GpuError("queued work failed")
        outer.__cause__ = launch
        chain = list(exception_chain(outer))
        assert outer in chain and launch in chain and fault in chain

    def test_walks_context_links(self):
        inner = OutOfMemoryError("oom")
        outer = GpuError("cleanup failed")
        outer.__context__ = inner  # implicit chaining (no `from`)
        assert inner in list(exception_chain(outer))

    def test_walks_sticky_original(self):
        fault = KernelFault("the original fault")
        sticky = StickyContextError("context poisoned", original=fault)
        sticky.__cause__ = None
        assert fault in list(exception_chain(sticky))

    def test_cycles_terminate(self):
        a = GpuError("a")
        b = GpuError("b")
        a.__cause__ = b
        b.__cause__ = a
        chain = list(exception_chain(a))
        assert chain.count(a) == 1 and chain.count(b) == 1


class TestClassification:
    policy = RetryPolicy()

    def _wrapped(self, inner):
        outer = GpuError("stream 'default@dev4': queued work failed")
        outer.__cause__ = inner
        return outer

    def test_kernel_fault_is_retryable(self):
        assert self.policy.is_retryable(KernelFault("boom"))
        launch = LaunchError("wrapped")
        launch.__cause__ = KernelFault("boom")
        assert self.policy.is_retryable(self._wrapped(launch))

    def test_sticky_context_is_retryable(self):
        assert self.policy.is_retryable(StickyContextError("poisoned"))

    def test_watchdog_timeout_is_retryable(self):
        assert self.policy.is_retryable(
            WatchdogTimeout("hung", kernel="k", device=3, deadline_s=5.0)
        )

    def test_memcheck_is_never_retryable(self):
        # Even though MemcheckError subclasses KernelFault, the deny list
        # wins: a sanitizer violation is a deterministic kernel bug.
        assert not self.policy.is_retryable(MemcheckError("oob store"))
        assert not self.policy.is_retryable(self._wrapped(MemcheckError("oob")))

    def test_cancellation_respects_the_retryable_flag(self):
        assert self.policy.is_retryable(
            CancelledError("reset drained the queue", retryable=True)
        )
        assert not self.policy.is_retryable(
            CancelledError("user cancelled", retryable=False)
        )

    def test_bare_launch_error_is_a_config_bug(self):
        # A LaunchError with no kernel fault beneath it means the launch
        # itself was malformed; retrying replays the same mistake.
        assert not self.policy.is_retryable(LaunchError("bad grid dims"))

    def test_other_gpu_errors_are_retryable(self):
        assert self.policy.is_retryable(OutOfMemoryError("synthetic ENOMEM"))
        assert self.policy.is_retryable(GpuError("aborted enqueue"))

    def test_host_side_bugs_are_not_retryable(self):
        assert not self.policy.is_retryable(ValueError("host bug"))
        assert not self.policy.is_retryable(KeyError("host bug"))

    def test_custom_deny_list(self):
        policy = RetryPolicy(deny=(OutOfMemoryError,))
        assert not policy.is_retryable(OutOfMemoryError("oom"))
        assert policy.is_retryable(MemcheckError("oob"))  # default deny replaced


class TestBackoff:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            base_backoff_s=0.001, multiplier=2.0, max_backoff_s=0.004, jitter=0.0
        )
        rng = Random(0)
        delays = [policy.backoff_s(k, rng) for k in range(1, 6)]
        assert delays == [0.001, 0.002, 0.004, 0.004, 0.004]

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff_s(k, Random(7)) for k in range(1, 5)]
        b = [policy.backoff_s(k, Random(7)) for k in range(1, 5)]
        assert a == b

    def test_jitter_is_bounded(self):
        policy = RetryPolicy(
            base_backoff_s=0.01, multiplier=1.0, max_backoff_s=0.01, jitter=0.5
        )
        rng = Random(3)
        for k in range(1, 50):
            delay = policy.backoff_s(k, rng)
            assert 0.01 <= delay <= 0.015


def test_watchdog_timeout_str_names_kernel_device_deadline():
    exc = WatchdogTimeout(
        "job exceeded its deadline", kernel="adam:shard1", device=4, deadline_s=5.0
    )
    text = str(exc)
    assert "adam:shard1" in text
    assert "4" in text
    assert "5.0" in text
