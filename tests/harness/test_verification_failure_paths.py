"""Failure injection for the verification matrix: a broken app must show up."""

import numpy as np
import pytest

import repro.harness.verification as verification_mod
from repro.apps import Stencil1D
from repro.harness.verification import verification_matrix


class _CorruptedStencil(Stencil1D):
    """A stencil whose ompx variant silently computes the wrong answer."""

    def run_single(self, variant, params, device):
        result = super().run_single(variant, params, device)
        if variant == "ompx":
            result.output = result.output + 1.0  # inject a wrong answer
        return result


class _ExplodingStencil(Stencil1D):
    """A stencil whose omp variant crashes outright."""

    def run_single(self, variant, params, device):
        if variant == "omp":
            raise RuntimeError("synthetic kernel crash")
        return super().run_single(variant, params, device)


@pytest.fixture
def only_stencil(monkeypatch):
    def install(cls):
        monkeypatch.setattr(verification_mod, "ALL_APPS", (cls,))

    return install


class TestFailureReporting:
    def test_wrong_answer_is_flagged(self, only_stencil):
        only_stencil(_CorruptedStencil)
        cells = verification_matrix()
        bad = [c for c in cells if not c.passed]
        assert bad, "corruption went unnoticed"
        assert all(c.variant == "ompx" for c in bad)
        # the other variants still pass
        assert all(c.passed for c in cells if c.variant != "ompx")

    def test_crash_is_reported_not_raised(self, only_stencil):
        only_stencil(_ExplodingStencil)
        cells = verification_matrix()  # must not raise
        crashed = [c for c in cells if c.error]
        assert crashed
        assert all("synthetic kernel crash" in c.error for c in crashed)
        assert all(np.isnan(c.checksum) for c in crashed)

    def test_render_marks_failures(self, only_stencil):
        only_stencil(_CorruptedStencil)
        text = verification_mod.render_verification()
        assert "FAIL" in text
        assert "0 failure(s)" not in text
