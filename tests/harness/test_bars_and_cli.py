"""ASCII bar rendering and the apps CLI."""

import pytest

from repro.apps.__main__ import main as apps_main
from repro.harness import render_figure8_bars
from repro.harness.cli import main as figures_main
from repro.harness.report import render_bars


class TestRenderBars:
    def test_bars_scale_to_largest(self):
        text = render_bars({"a": 1.0, "b": 2.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_none_renders_excluded(self):
        text = render_bars({"a": 1.0, "omp": None})
        assert "excluded" in text

    def test_off_scale_values_clipped_and_annotated(self):
        """The paper's annotated off-scale omp bars (145.6ms etc.)."""
        text = render_bars({"fast": 1e-3, "slow": 1.0}, width=10, clip_ratio=20)
        slow_line = [l for l in text.splitlines() if "slow" in l][0]
        assert "off scale" in slow_line
        assert "1.000 s" in slow_line
        fast_line = [l for l in text.splitlines() if "fast" in l][0]
        assert fast_line.count("#") == 10  # scales to the unclipped max

    def test_title(self):
        assert render_bars({"a": 1.0}, title="T").splitlines()[0] == "T"

    def test_all_none(self):
        assert "(no data)" in render_bars({"a": None})

    def test_figure8_bars_has_all_panels(self):
        text = render_figure8_bars()
        for letter in "abcdefghijkl":
            assert f"Figure 8{letter}" in text
        # the stencil omp bars are off scale, like the paper's annotation
        assert "off scale" in text

    def test_cli_bars_section(self, capsys):
        assert figures_main(["bars"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8a" in out and "#" in out


class TestAppsCli:
    def test_estimate_mode_default(self, capsys):
        assert apps_main(["su3", "-i", "1000", "-l", "32", "-t", "128", "-v", "3", "-w", "1"]) == 0
        out = capsys.readouterr().out
        assert "NVIDIA" in out and "AMD" in out and "ompx=" in out

    def test_estimate_with_default_params(self, capsys):
        assert apps_main(["rsbench"]) == 0
        assert "RSBench" in capsys.readouterr().out

    def test_xsbench_omp_excluded_in_estimate(self, capsys):
        assert apps_main(["xsbench", "-m", "event"]) == 0
        assert "omp=excluded" in capsys.readouterr().out

    def test_run_mode_verifies(self, capsys):
        assert apps_main(["adam", "--run", "--variant", "ompx"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out and "checksum" in out

    def test_run_mode_vendor_variant_aliases_native(self, capsys):
        assert apps_main(["stencil1d", "--run", "--variant", "native-vendor"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_unknown_app(self, capsys):
        assert apps_main(["fluidsim"]) == 2
        assert "unknown app" in capsys.readouterr().err

    def test_bad_app_args(self, capsys):
        assert apps_main(["stencil1d", "only-one-arg"]) == 2
        assert "bad arguments" in capsys.readouterr().err

    def test_help(self, capsys):
        assert apps_main([]) == 0
        assert "apps:" in capsys.readouterr().out
