"""The figure harness: content of Figures 6 and 7, structure and claims
of Figure 8, rendering, and the CLI."""

import pytest

from repro.harness import (
    figure6,
    figure7,
    figure8,
    figure8_relations,
    format_seconds,
    paper_relations,
    render_figure6,
    render_figure7,
    render_figure8,
    render_table,
)
from repro.harness.cli import main as cli_main


class TestFigure6:
    def test_six_rows_in_paper_order(self):
        rows = figure6()
        assert [r["Name"] for r in rows] == [
            "XSBench", "RSBench", "SU3", "AIDW", "Adam", "Stencil 1D",
        ]

    def test_command_lines_match_paper(self):
        by_name = {r["Name"]: r["Command Line"] for r in figure6()}
        assert by_name["XSBench"] == "-m event"
        assert by_name["SU3"] == "-i 1000 -l 32 -t 128 -v 3 -w 1"
        assert by_name["AIDW"] == "100 0 100"
        assert by_name["Adam"] == "10000 200 100"
        assert by_name["Stencil 1D"] == "134217728 1000"

    def test_render_contains_every_row(self):
        text = render_figure6()
        for row in figure6():
            assert row["Name"] in text


class TestFigure7:
    def test_both_systems(self):
        data = figure7()
        assert set(data) == {"NVIDIA", "AMD"}

    def test_paper_configuration(self):
        data = figure7()
        assert data["NVIDIA"]["GPU"] == "NVIDIA A100 (40 GB)"
        assert data["NVIDIA"]["SDK"] == "CUDA 11.8"
        assert data["AMD"]["SDK"] == "ROCm 5.5"
        assert "MI250" in data["AMD"]["GPU"]
        assert data["NVIDIA"]["CPU"] == data["AMD"]["CPU"] == "AMD EPYC 7532"

    def test_render(self):
        text = render_figure7()
        assert "CUDA 11.8" in text and "ROCm 5.5" in text


class TestFigure8:
    def test_twelve_cells(self):
        results = figure8()
        assert len(results) == 12  # 6 apps x 2 systems

    def test_four_bars_per_cell(self):
        results = figure8()
        for (app, system), cell in results.items():
            assert len(cell) == 4, (app, system)

    def test_bar_labels_match_paper(self):
        results = figure8()
        nvidia_cell = results[("SU3", "NVIDIA")]
        assert set(nvidia_cell) == {"ompx", "omp", "cuda", "cuda-nvcc"}
        amd_cell = results[("SU3", "AMD")]
        assert set(amd_cell) == {"ompx", "omp", "hip", "hip-hipcc"}

    def test_xsbench_omp_excluded(self):
        results = figure8()
        assert results[("XSBench", "NVIDIA")]["omp"] is None
        assert results[("XSBench", "AMD")]["omp"] is None

    def test_all_other_bars_positive(self):
        for (app, system), cell in figure8().items():
            for label, value in cell.items():
                if value is not None:
                    assert value > 0, (app, system, label)

    def test_render_mentions_all_subplots(self):
        text = render_figure8()
        for letter in "abcdefghijkl":
            assert f"Figure 8{letter}" in text
        assert "excluded (invalid checksum)" in text


class TestRelations:
    def test_every_claim_holds(self):
        """THE headline assertion: all §4.2 claims hold in the model."""
        failures = [rel for rel, ok in figure8_relations() if not ok]
        assert not failures, [f"{r.app}/{r.system}: {r.claim}" for r in failures]

    def test_claim_coverage(self):
        """All six apps and both systems are covered by claims."""
        rels = paper_relations()
        apps = {r.app for r in rels}
        assert apps == {"XSBench", "RSBench", "SU3", "AIDW", "Adam", "Stencil 1D"}
        assert {r.system for r in rels} == {"NVIDIA", "AMD"}


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line.rstrip()) <= len(lines[1]) + 2 for line in lines)

    def test_render_table_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text

    def test_format_seconds_units(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(0.0015) == "1.500 ms"
        assert format_seconds(2.5e-6) == "2.5 us"


class TestCli:
    def test_default_runs_everything(self, capsys):
        assert cli_main([]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "Figure 7" in out and "Figure 8a" in out
        assert "0 failure(s)" in out

    def test_single_section(self, capsys):
        assert cli_main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "Figure 8" not in out

    def test_unknown_section(self, capsys):
        assert cli_main(["fig9"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_help(self, capsys):
        assert cli_main(["--help"]) == 0
        assert "repro-figures" in capsys.readouterr().out
