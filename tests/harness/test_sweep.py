"""The parameter-sweep API."""

import pytest

from repro.apps import Adam, Stencil1D, XSBench, VersionLabel
from repro.errors import ReproError
from repro.harness import SweepResult, sweep
from repro.perf import AMD_SYSTEM, NVIDIA_SYSTEM


class TestSweep:
    def test_series_shape(self):
        result = sweep(Stencil1D(), NVIDIA_SYSTEM, "n", [1 << 20, 1 << 22])
        assert result.values == [1 << 20, 1 << 22]
        assert set(result.series) == {"ompx", "omp", "cuda", "cuda-nvcc"}
        for series in result.series.values():
            assert len(series) == 2

    def test_times_grow_with_problem_size(self):
        result = sweep(Stencil1D(), NVIDIA_SYSTEM, "n", [1 << 20, 1 << 24])
        for series in result.series.values():
            assert series[1] > series[0]

    def test_amd_labels(self):
        result = sweep(Stencil1D(), AMD_SYSTEM, "n", [1 << 20])
        assert set(result.series) == {"ompx", "omp", "hip", "hip-hipcc"}

    def test_excluded_app_yields_none_series(self):
        result = sweep(XSBench(), NVIDIA_SYSTEM, "lookups", [1000, 2000])
        assert result.series["omp"] == [None, None]
        assert all(v is not None for v in result.series["ompx"])

    def test_unknown_parameter(self):
        with pytest.raises(ReproError, match="no parameter"):
            sweep(Adam(), NVIDIA_SYSTEM, "bogus", [1])

    def test_label_subset(self):
        result = sweep(
            Adam(), NVIDIA_SYSTEM, "n", [1000],
            labels=[VersionLabel.OMPX, VersionLabel.OMP],
        )
        assert set(result.series) == {"ompx", "omp"}

    def test_base_params_override(self):
        app = Stencil1D()
        short = sweep(app, NVIDIA_SYSTEM, "n", [1 << 20],
                      base_params={**app.paper_params(), "iterations": 1})
        long = sweep(app, NVIDIA_SYSTEM, "n", [1 << 20])
        # per-iteration report: same per-launch time regardless of count
        assert short.series["cuda"][0] == pytest.approx(long.series["cuda"][0])


class TestRatiosAndRender:
    def test_ratio(self):
        result = sweep(Stencil1D(), NVIDIA_SYSTEM, "n", [1 << 20, 1 << 24])
        ratios = result.ratio("omp", "cuda")
        assert all(r > 10 for r in ratios)

    def test_ratio_with_excluded(self):
        result = sweep(XSBench(), NVIDIA_SYSTEM, "lookups", [1000])
        assert sweep(XSBench(), NVIDIA_SYSTEM, "lookups", [1000]).ratio("omp", "ompx") == [None]

    def test_render(self):
        result = sweep(Stencil1D(), NVIDIA_SYSTEM, "n", [1 << 20])
        text = result.render()
        assert "sweep over n" in text
        assert "ompx" in text and str(1 << 20) in text

    def test_render_with_excluded(self):
        text = sweep(XSBench(), NVIDIA_SYSTEM, "lookups", [1000]).render()
        assert "excluded" in text


class TestInvariantsAcrossScale:
    """The paper's relationships are not artifacts of one operating point."""

    def test_xsbench_ompx_wins_across_lookup_counts(self):
        result = sweep(XSBench(), NVIDIA_SYSTEM, "lookups",
                       [100_000, 1_000_000, 17_000_000])
        assert all(r > 1 for r in result.ratio("cuda", "ompx"))

    def test_adam_bug_ratio_is_scale_free(self):
        result = sweep(Adam(), NVIDIA_SYSTEM, "n", [1_000, 100_000])
        ratios = result.ratio("omp", "cuda")
        assert ratios[0] > 3 and ratios[1] > 3
