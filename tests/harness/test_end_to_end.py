"""The end-to-end (transfers included) harness section."""

import pytest

from repro.harness import render_end_to_end
from repro.harness.cli import main as cli_main


class TestEndToEndSection:
    def test_table_covers_all_cells(self):
        text = render_end_to_end()
        for app in ("XSBench", "RSBench", "SU3", "AIDW", "Adam", "Stencil 1D"):
            assert app in text
        assert text.count("NVIDIA") == 6 and text.count("AMD") == 6

    def test_transfer_share_column_present(self):
        assert "transfer share" in render_end_to_end()

    def test_cli_section(self, capsys):
        assert cli_main(["e2e"]) == 0
        out = capsys.readouterr().out
        assert "End-to-end estimates" in out

    def test_not_in_default_sections(self, capsys):
        assert cli_main(["fig6"]) == 0
        assert "End-to-end" not in capsys.readouterr().out
