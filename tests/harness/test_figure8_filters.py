"""figure8()'s app/system filtering and internal consistency."""

import pytest

from repro.apps import Adam, Stencil1D
from repro.harness import figure8
from repro.perf import AMD_SYSTEM, NVIDIA_SYSTEM


class TestFiltering:
    def test_single_app(self):
        results = figure8(app=Adam())
        assert set(results) == {("Adam", "NVIDIA"), ("Adam", "AMD")}

    def test_single_system(self):
        results = figure8(system=AMD_SYSTEM)
        assert all(system == "AMD" for (_, system) in results)
        assert len(results) == 6

    def test_single_cell(self):
        results = figure8(app=Stencil1D(), system=NVIDIA_SYSTEM)
        assert list(results) == [("Stencil 1D", "NVIDIA")]

    def test_filtered_matches_full(self):
        """A filtered query returns the same numbers as the full table."""
        full = figure8()
        cell = figure8(app=Adam(), system=NVIDIA_SYSTEM)[("Adam", "NVIDIA")]
        assert cell == full[("Adam", "NVIDIA")]


class TestConsistencyWithAppEstimates:
    def test_cells_equal_direct_estimates(self):
        from repro.apps import VersionLabel

        app = Adam()
        cell = figure8(app=app, system=NVIDIA_SYSTEM)[("Adam", "NVIDIA")]
        direct = app.reported_seconds(
            app.estimate(VersionLabel.OMPX, NVIDIA_SYSTEM, app.paper_params())
        )
        assert cell["ompx"] == pytest.approx(direct)
