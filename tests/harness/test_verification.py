"""The functional verification matrix."""

import pytest

from repro.harness import verification_matrix, render_verification
from repro.harness.cli import main as cli_main


class TestMatrix:
    @pytest.fixture(scope="class")
    def cells(self):
        return verification_matrix()

    def test_all_cells_pass(self, cells):
        failures = [c for c in cells if not c.passed]
        assert not failures, failures

    def test_full_coverage(self, cells):
        # 6 apps x 3 variants x 2 devices
        assert len(cells) == 36
        assert {c.app for c in cells} == {
            "XSBench", "RSBench", "SU3", "AIDW", "Adam", "Stencil 1D",
        }
        assert {c.device for c in cells} == {"A100", "MI250"}
        assert {c.variant for c in cells} == {"ompx", "omp", "native-llvm"}

    def test_checksums_agree_across_devices_and_variants(self, cells):
        """The same app computes the same digest everywhere — the
        cross-platform correctness the paper's portability story needs."""
        by_app = {}
        for cell in cells:
            by_app.setdefault(cell.app, set()).add(round(cell.checksum, 6))
        for app, sums in by_app.items():
            assert len(sums) == 1, (app, sums)

    def test_render(self):
        text = render_verification()
        assert "0 failure(s)" in text
        assert "XSBench" in text and "MI250" in text


class TestCli:
    def test_verify_section(self, capsys):
        assert cli_main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "verification matrix" in out
        assert "0 failure(s)" in out

    def test_verify_not_in_default_sections(self, capsys):
        # default run prices figures only; it must not spend ~20 s running
        # the functional matrix unasked
        assert cli_main(["fig6"]) == 0
        assert "verification matrix" not in capsys.readouterr().out
