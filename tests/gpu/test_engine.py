"""Execution engines: SIMT semantics, the sync-free fast path, failure modes."""

import numpy as np
import pytest

from repro.errors import LaunchError, SyncError
from repro.gpu import LaunchConfig, launch_kernel
from repro.gpu.dim import Dim3
from repro.gpu.engine import (
    BlockThreadEngine,
    MapEngine,
    WaveVectorEngine,
    select_engine,
)


class TestEngineSelection:
    def test_default_is_cooperative(self):
        def kernel(ctx):
            pass

        assert isinstance(select_engine(kernel), BlockThreadEngine)

    def test_sync_free_straight_line_gets_vector_engine(self):
        def kernel(ctx):
            pass

        kernel.sync_free = True
        engine = select_engine(kernel)
        assert isinstance(engine, WaveVectorEngine)
        assert engine.name == "vector"

    def test_sync_free_divergent_gets_map_engine(self):
        def kernel(ctx):
            if ctx.flat_thread_id == 0:
                return

        kernel.sync_free = True
        assert isinstance(select_engine(kernel), MapEngine)

    def test_barrier_straight_line_gets_wave_engine(self):
        def kernel(ctx):
            ctx.sync_threads()

        engine = select_engine(kernel)
        assert isinstance(engine, WaveVectorEngine)
        assert engine.name == "wave"

    def test_hint_overrides_analysis(self):
        def kernel(ctx):
            pass

        kernel.sync_free = True
        assert select_engine(kernel, hint="map").name == "map"
        assert select_engine(kernel, hint="block-thread").name == "block-thread"

    def test_unknown_hint_raises_structured_error(self):
        def kernel(ctx):
            pass

        with pytest.raises(LaunchError, match="unknown engine hint") as info:
            select_engine(kernel, hint="warp-speed")
        assert info.value.hint == "warp-speed"

    def test_vectorize_false_keeps_legacy_split(self):
        def kernel(ctx):
            pass

        kernel.sync_free = True
        kernel.vectorize = False
        assert isinstance(select_engine(kernel), MapEngine)


class TestBlockThreadEngine:
    def test_every_thread_runs_once(self, any_device):
        grid, block = 3, 16
        n = grid * block
        d_out = any_device.allocator.malloc(n * 8)

        def kernel(ctx, out):
            ctx.atomic.add(ctx.deref(out, n, np.int64), ctx.global_flat_id, 1)

        stats = launch_kernel(LaunchConfig.create(grid, block), kernel, (d_out,), any_device)
        out = np.zeros(n, dtype=np.int64)
        any_device.allocator.memcpy_d2h(out, d_out)
        assert (out == 1).all()
        assert stats.threads_run == n
        assert stats.blocks_run == grid
        any_device.allocator.free(d_out)

    def test_multidim_indices(self, nvidia):
        d_out = nvidia.allocator.malloc(2 * 3 * 4 * 8)

        def kernel(ctx, out):
            o = ctx.deref(out, (4, 3, 2), np.int64)
            o[ctx.thread_idx.z, ctx.thread_idx.y, ctx.thread_idx.x] = (
                100 * ctx.thread_idx.z + 10 * ctx.thread_idx.y + ctx.thread_idx.x
            )

        launch_kernel(LaunchConfig.create(1, (2, 3, 4)), kernel, (d_out,), nvidia)
        out = np.zeros((4, 3, 2), dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d_out)
        for z in range(4):
            for y in range(3):
                for x in range(2):
                    assert out[z, y, x] == 100 * z + 10 * y + x
        nvidia.allocator.free(d_out)

    def test_kernel_exception_propagates(self, nvidia):
        def kernel(ctx):
            if ctx.flat_thread_id == 3:
                raise ValueError("boom from thread 3")

        with pytest.raises(LaunchError, match="thread 3"):
            launch_kernel(LaunchConfig.create(1, 8), kernel, (), nvidia)

    def test_shared_memory_is_per_block(self, nvidia):
        """Each block's shared accumulator starts fresh."""
        grid = 4
        d_out = nvidia.allocator.malloc(grid * 8)

        def kernel(ctx, out):
            acc = ctx.shared_array("acc", 1, np.int64)
            ctx.atomic.add(acc, 0, 1)
            ctx.sync_threads()
            if ctx.flat_thread_id == 0:
                ctx.deref(out, 4, np.int64)[ctx.flat_block_id] = acc[0]

        launch_kernel(LaunchConfig.create(grid, 8), kernel, (d_out,), nvidia)
        out = np.zeros(grid, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert (out == 8).all()
        nvidia.allocator.free(d_out)

    def test_guard_rail_on_huge_launch(self, nvidia):
        def kernel(ctx):
            pass

        with pytest.raises(LaunchError, match="guard rail"):
            launch_kernel(LaunchConfig.create(100_000, 1024), kernel, (), nvidia
            )

    def test_dynamic_shared_via_config(self, nvidia):
        d_out = nvidia.allocator.malloc(8)

        def kernel(ctx, out):
            dyn = ctx.dynamic_shared(np.float64)
            if ctx.flat_thread_id == 0:
                dyn[0] = 2.5
            ctx.sync_threads()
            if ctx.flat_thread_id == 1:
                ctx.deref(out, 1, np.float64)[0] = dyn[0]

        launch_kernel(LaunchConfig.create(1, 2, shared_bytes=64), kernel, (d_out,), nvidia
        )
        out = np.zeros(1)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert out[0] == 2.5
        nvidia.allocator.free(d_out)


class TestMapEngine:
    def test_runs_all_threads(self, any_device):
        def kernel(ctx, out):
            ctx.deref(out, 64, np.int64)[ctx.global_flat_id] = ctx.global_flat_id

        kernel.sync_free = True
        d_out = any_device.allocator.malloc(64 * 8)
        stats = launch_kernel(LaunchConfig.create(4, 16, engine="map"), kernel, (d_out,), any_device)
        assert stats.engine == "map"
        out = np.zeros(64, dtype=np.int64)
        any_device.allocator.memcpy_d2h(out, d_out)
        assert np.array_equal(out, np.arange(64))
        any_device.allocator.free(d_out)

    def test_sync_under_map_engine_raises(self, nvidia):
        def kernel(ctx):
            ctx.sync_threads()

        kernel.sync_free = True
        with pytest.raises(LaunchError, match="sync-free"):
            launch_kernel(LaunchConfig.create(1, 4), kernel, (), nvidia)

    def test_warp_collective_under_map_engine_raises(self, nvidia):
        def kernel(ctx):
            ctx.shfl_sync(1, 0)

        kernel.sync_free = True
        with pytest.raises(LaunchError, match="sync-free"):
            launch_kernel(LaunchConfig.create(1, 4), kernel, (), nvidia)

    def test_atomics_still_work(self, nvidia):
        def kernel(ctx, out):
            ctx.atomic.add(ctx.deref(out, 1, np.int64), 0, 1)

        kernel.sync_free = True
        d_out = nvidia.allocator.malloc(8)
        launch_kernel(LaunchConfig.create(2, 32), kernel, (d_out,), nvidia)
        out = np.zeros(1, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert out[0] == 64
        nvidia.allocator.free(d_out)


class TestThreadCtxIdentities:
    def test_global_id_composition(self, nvidia):
        hits = []

        def kernel(ctx):
            assert ctx.global_id_x == ctx.block_idx.x * ctx.block_dim.x + ctx.thread_idx.x
            assert ctx.global_flat_id == ctx.flat_block_id * ctx.num_threads + ctx.flat_thread_id
            assert ctx.warp_id == ctx.flat_thread_id // ctx.warp_size
            assert ctx.lane_id == ctx.flat_thread_id % ctx.warp_size
            hits.append(1)

        kernel.sync_free = True
        launch_kernel(LaunchConfig.create(2, 48), kernel, (), nvidia)
        assert len(hits) == 96
