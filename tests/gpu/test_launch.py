"""LaunchConfig + launch_kernel: geometry coercion, stream routing."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu import Dim3, LaunchConfig, Stream, launch_kernel


class TestLaunchConfig:
    def test_create_coerces_ints(self):
        cfg = LaunchConfig.create(4, 128)
        assert cfg.grid == Dim3(4, 1, 1)
        assert cfg.block == Dim3(128, 1, 1)

    def test_create_coerces_tuples(self):
        cfg = LaunchConfig.create((2, 3), (8, 8, 2))
        assert cfg.grid == Dim3(2, 3, 1)
        assert cfg.block == Dim3(8, 8, 2)

    def test_total_threads(self):
        assert LaunchConfig.create((2, 2), 64).total_threads == 256

    def test_shared_bytes_stored(self):
        assert LaunchConfig.create(1, 1, shared_bytes=1024).shared_bytes == 1024


class TestLaunchKernel:
    def test_invalid_geometry_rejected_before_run(self, nvidia):
        ran = []

        def kernel(ctx):
            ran.append(1)

        with pytest.raises(LaunchError):
            launch_kernel(LaunchConfig.create(1, 4096), kernel, (), nvidia)
        assert not ran

    def test_synchronous_launch_returns_stats(self, nvidia):
        def kernel(ctx):
            pass

        stats = launch_kernel(LaunchConfig.create(2, 4), kernel, (), nvidia)
        assert stats is not None
        assert stats.threads_run == 8

    def test_async_launch_on_stream(self, nvidia):
        stream = Stream(nvidia, name="launch-test")
        try:
            d_out = nvidia.allocator.malloc(8)

            def kernel(ctx, out):
                ctx.deref(out, 1, np.int64)[0] = 7

            result = launch_kernel(LaunchConfig.create(1, 1, stream=stream), kernel,
                (d_out,),
                nvidia,
                synchronous=False,
            )
            assert result is None  # async: no stats yet
            stream.synchronize()
            out = np.zeros(1, dtype=np.int64)
            nvidia.allocator.memcpy_d2h(out, d_out)
            assert out[0] == 7
            nvidia.allocator.free(d_out)
        finally:
            stream.close()

    def test_legacy_kernel_first_order_warns_but_still_runs(self, nvidia):
        """The pre-redesign launch_kernel(kernel, config, ...) shim."""
        ran = []

        def kernel(ctx):
            ran.append(1)

        with pytest.warns(DeprecationWarning, match="LaunchConfig first"):
            stats = launch_kernel(kernel, LaunchConfig.create(1, 4), (), nvidia)
        assert stats.threads_run == 4
        assert len(ran) == 4

    def test_config_first_order_does_not_warn(self, nvidia):
        import warnings

        def kernel(ctx):
            pass

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            launch_kernel(LaunchConfig.create(1, 2), kernel, (), nvidia)

    def test_no_config_at_all_raises_structured_error(self, nvidia):
        with pytest.raises(LaunchError, match="LaunchConfig"):
            launch_kernel(lambda ctx: None, lambda ctx: None, (), nvidia)

    def test_error_text_names_engine_and_plan_key(self, nvidia):
        """str(LaunchError) carries the selected engine and the engine-plan
        memoization key, so a failure can be matched to trace output."""

        def exploding(ctx):
            raise ValueError("boom")

        exploding.sync_free = True
        exploding.vectorize = False  # pin the legacy map engine

        with pytest.raises(LaunchError) as excinfo:
            launch_kernel(LaunchConfig.create(1, 4), exploding, (), nvidia)
        text = str(excinfo.value)
        assert "engine=map" in text
        assert "plan_key=" in text
        assert "exploding" in text  # the key names the kernel, not the object
        assert nvidia.spec.name in text
        assert excinfo.value.engine == "map"

    def test_guard_rail_error_names_engine(self, nvidia):
        """An engine refusing a launch (too many cooperative threads)
        identifies itself in the rendered message."""

        def barriered(ctx):  # not sync_free -> block-thread engine
            ctx.barrier()

        barriered.vectorize = False  # keep the wave engine from taking it

        with pytest.raises(LaunchError) as excinfo:
            launch_kernel(
                LaunchConfig.create(100_000, 64), barriered, (), nvidia
            )
        text = str(excinfo.value)
        assert "guard rail" in text
        assert "engine=block-thread" in text
        assert "plan_key=" in text

    def test_sync_launch_on_stream_respects_order(self, nvidia):
        stream = Stream(nvidia, name="ordered")
        try:
            log = []
            stream.enqueue(lambda: log.append("queued-first"))

            def kernel(ctx):
                if ctx.flat_thread_id == 0:
                    log.append("kernel")

            stats = launch_kernel(LaunchConfig.create(1, 2, stream=stream), kernel, (), nvidia
            )
            assert stats is not None
            assert log == ["queued-first", "kernel"]
        finally:
            stream.close()
