"""Collective algorithms: degenerate shapes and alternative operators."""

import numpy as np
import pytest

from repro import hip
from repro.gpu import LaunchConfig, launch_kernel
from repro.gpu.collectives import (
    block_inclusive_scan,
    block_reduce,
    warp_inclusive_scan,
)


class TestDegenerateShapes:
    def test_single_thread_block(self, nvidia):
        results = []

        def kernel(ctx):
            results.append((
                block_reduce(ctx, 7.0),
                block_inclusive_scan(ctx, 3.0),
                warp_inclusive_scan(ctx, 5.0),
            ))

        launch_kernel(LaunchConfig.create(1, 1), kernel, (), nvidia)
        assert results == [(7.0, 3.0, 5.0)]

    def test_partial_warp_block(self, nvidia):
        """A 20-thread block (one partial warp) still reduces correctly."""
        d = nvidia.allocator.malloc(8)

        def kernel(ctx, out):
            total = block_reduce(ctx, 1.0)
            if ctx.flat_thread_id == 0:
                ctx.deref(out, 1, np.float64)[0] = total

        launch_kernel(LaunchConfig.create(1, 20), kernel, (d,), nvidia)
        out = np.zeros(1)
        nvidia.allocator.memcpy_d2h(out, d)
        assert out[0] == 20.0
        nvidia.allocator.free(d)

    def test_block_not_multiple_of_warp_scan(self, nvidia):
        d = nvidia.allocator.malloc(50 * 8)

        def kernel(ctx, out):
            v = block_inclusive_scan(ctx, 1.0)
            ctx.deref(out, ctx.num_threads, np.float64)[ctx.flat_thread_id] = v

        launch_kernel(LaunchConfig.create(1, 50), kernel, (d,), nvidia)
        out = np.zeros(50)
        nvidia.allocator.memcpy_d2h(out, d)
        assert np.array_equal(out, np.arange(1, 51))
        nvidia.allocator.free(d)


class TestAlternativeOperators:
    def test_block_scan_with_max(self, nvidia):
        values = [(i * 17) % 64 for i in range(64)]
        d = nvidia.allocator.malloc(64 * 8)

        def kernel(ctx, out):
            v = block_inclusive_scan(ctx, float(values[ctx.flat_thread_id]), op=max)
            ctx.deref(out, 64, np.float64)[ctx.flat_thread_id] = v

        launch_kernel(LaunchConfig.create(1, 64), kernel, (d,), nvidia)
        out = np.zeros(64)
        nvidia.allocator.memcpy_d2h(out, d)
        assert np.array_equal(out, np.maximum.accumulate(values))
        nvidia.allocator.free(d)

    def test_block_reduce_with_min(self, nvidia):
        values = [(i * 13 + 5) % 97 for i in range(96)]
        seen = []

        def kernel(ctx):
            m = block_reduce(ctx, values[ctx.flat_thread_id], op=min)
            if ctx.flat_thread_id == 0:
                seen.append(m)

        launch_kernel(LaunchConfig.create(1, 96), kernel, (), nvidia)
        assert seen == [min(values)]


class TestHipFacadeCollectives:
    def test_block_reduce_under_hip_wavefront64(self, amd):
        d = hip.hipMalloc(8)

        @hip.kernel
        def k(t, out):
            total = block_reduce(t, 2.0)
            if t.threadIdx.x == 0:
                t.array(out, 1, np.float64)[0] = total

        hip.launch(k, 1, 128, (d,))
        hip.hipDeviceSynchronize()
        out = np.zeros(1)
        hip.hipMemcpy(out, d, 8, hip.hipMemcpyDeviceToHost)
        assert out[0] == 256.0
        hip.hipFree(d)

    def test_scan_spans_wavefronts(self, amd):
        d = amd.allocator.malloc(160 * 8)

        def kernel(ctx, out):
            v = block_inclusive_scan(ctx, 1.0)
            ctx.deref(out, ctx.num_threads, np.float64)[ctx.flat_thread_id] = v

        launch_kernel(LaunchConfig.create(1, 160), kernel, (d,), amd)
        out = np.zeros(160)
        amd.allocator.memcpy_d2h(out, d)
        assert np.array_equal(out, np.arange(1, 161))
        amd.allocator.free(d)
