"""DeviceSpec validation, the registry, and launch-geometry checks."""

import pytest

from repro.errors import GpuError, LaunchError
from repro.gpu.device import (
    A100_SPEC,
    MI250_SPEC,
    PRESETS,
    XEHPC_SPEC,
    DeviceSpec,
    Vendor,
    current_device,
    get_device,
    get_spec,
    registered_devices,
    set_current_device,
)
from repro.gpu.dim import Dim3


class TestSpecs:
    def test_a100_identity(self):
        assert A100_SPEC.vendor == Vendor.NVIDIA
        assert A100_SPEC.warp_size == 32
        assert A100_SPEC.num_sms == 108
        assert A100_SPEC.global_mem_bytes == 40 * 1024**3

    def test_mi250_identity(self):
        assert MI250_SPEC.vendor == Vendor.AMD
        assert MI250_SPEC.warp_size == 64  # wavefront64

    def test_xehpc_identity(self):
        assert XEHPC_SPEC.vendor == Vendor.INTEL
        assert XEHPC_SPEC.warp_size == 32  # SIMD32 sub-groups
        assert XEHPC_SPEC.num_sms == 64    # Xe-cores per stack

    def test_warp_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", vendor=Vendor.NVIDIA, warp_size=48)

    def test_warp_size_must_be_positive(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", vendor=Vendor.NVIDIA, warp_size=0)

    def test_num_sms_positive(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", vendor=Vendor.NVIDIA, num_sms=0)


class TestValidateLaunch:
    def test_valid_launch_passes(self):
        A100_SPEC.validate_launch(Dim3(1024), Dim3(256))

    def test_empty_grid_rejected(self):
        with pytest.raises(LaunchError, match="empty launch"):
            A100_SPEC.validate_launch(Dim3(0), Dim3(256))

    def test_oversized_block_rejected(self):
        with pytest.raises(LaunchError, match="threads"):
            A100_SPEC.validate_launch(Dim3(1), Dim3(2048))

    def test_block_dim_z_limit(self):
        # z is capped at 64 even when the volume is fine
        with pytest.raises(LaunchError, match="block dim 2"):
            A100_SPEC.validate_launch(Dim3(1), Dim3(1, 1, 128))

    def test_grid_dim_y_limit(self):
        with pytest.raises(LaunchError, match="grid dim 1"):
            A100_SPEC.validate_launch(Dim3(1, 70000, 1), Dim3(32))

    def test_shared_memory_limit(self):
        with pytest.raises(LaunchError, match="shared memory"):
            A100_SPEC.validate_launch(Dim3(1), Dim3(32), shared_bytes=48 * 1024 + 1)


class TestClampDims:
    def test_clamps_block_z(self):
        clamped = A100_SPEC.clamp_dims(Dim3(4, 4, 128), kind="block")
        assert clamped == Dim3(4, 4, 64)

    def test_noop_within_limits(self):
        assert A100_SPEC.clamp_dims(Dim3(8, 8, 2), kind="block") == Dim3(8, 8, 2)

    def test_clamps_grid(self):
        clamped = A100_SPEC.clamp_dims(Dim3(1, 100000, 1), kind="grid")
        assert clamped.y == A100_SPEC.max_grid_dim.y


class TestPresets:
    def test_presets_name_every_spec(self):
        assert PRESETS == {
            "a100": A100_SPEC, "mi250": MI250_SPEC, "xehpc": XEHPC_SPEC,
        }

    def test_get_spec_is_case_insensitive(self):
        assert get_spec("XeHPC") is XEHPC_SPEC
        assert get_spec("a100") is A100_SPEC

    def test_get_spec_unknown_name(self):
        with pytest.raises(GpuError, match="preset"):
            get_spec("h100")


class TestRegistry:
    def test_default_devices(self):
        devices = registered_devices()
        assert devices[0].spec is A100_SPEC
        assert devices[1].spec is MI250_SPEC
        # the MI250's second GCD is its own device, as under ROCm/LLVM
        assert devices[2].spec is MI250_SPEC
        # the third vendor: an Intel XeHPC-class stack at ordinal 3
        assert devices[3].spec is XEHPC_SPEC
        assert len(devices) == 4

    def test_get_device_is_stable(self):
        assert get_device(0) is get_device(0)

    def test_unknown_ordinal(self):
        with pytest.raises(GpuError):
            get_device(99)

    def test_set_current_device(self):
        original = current_device().ordinal
        try:
            set_current_device(1)
            assert current_device().ordinal == 1
        finally:
            set_current_device(original)

    def test_set_current_validates(self):
        with pytest.raises(GpuError):
            set_current_device(42)


class TestDeviceObject:
    def test_allocator_is_lazy_singleton(self):
        dev = get_device(0)
        assert dev.allocator is dev.allocator

    def test_default_stream_singleton(self):
        dev = get_device(0)
        assert dev.default_stream is dev.default_stream

    def test_synchronize_idles_streams(self):
        dev = get_device(0)
        hits = []
        dev.default_stream.enqueue(lambda: hits.append(1))
        dev.synchronize()
        assert hits == [1]
