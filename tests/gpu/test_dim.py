"""Dim3 arithmetic: coercion, volumes, (de)linearization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LaunchError
from repro.gpu.dim import Dim3, as_dim3, delinearize, linearize


class TestDim3:
    def test_defaults_are_ones(self):
        assert Dim3().as_tuple() == (1, 1, 1)

    def test_volume(self):
        assert Dim3(4, 3, 2).volume == 24

    def test_volume_with_zero_component(self):
        assert Dim3(4, 0, 2).volume == 0

    def test_ndim(self):
        assert Dim3(5).ndim == 1
        assert Dim3(5, 2).ndim == 2
        assert Dim3(5, 1, 2).ndim == 3
        assert Dim3(1, 1, 1).ndim == 1

    def test_iteration_and_indexing(self):
        d = Dim3(7, 8, 9)
        assert list(d) == [7, 8, 9]
        assert d[0] == 7 and d[1] == 8 and d[2] == 9

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            Dim3(-1)

    def test_non_int_component_rejected(self):
        with pytest.raises(TypeError):
            Dim3(1.5)  # type: ignore[arg-type]

    def test_bool_component_rejected(self):
        with pytest.raises(TypeError):
            Dim3(True)  # type: ignore[arg-type]


class TestAsDim3:
    def test_int(self):
        assert as_dim3(5) == Dim3(5, 1, 1)

    def test_tuple_padding(self):
        assert as_dim3((3, 4)) == Dim3(3, 4, 1)

    def test_full_triple(self):
        assert as_dim3((128, 64, 32)) == Dim3(128, 64, 32)

    def test_dim3_passthrough(self):
        d = Dim3(2, 3, 4)
        assert as_dim3(d) is d

    def test_too_many_entries(self):
        with pytest.raises(LaunchError):
            as_dim3((1, 2, 3, 4))

    def test_empty_rejected(self):
        with pytest.raises(LaunchError):
            as_dim3(())

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_dim3(True)


class TestLinearize:
    def test_x_fastest(self):
        extent = Dim3(4, 3, 2)
        # consecutive x share a warp: flat ids of (0..3, 0, 0) are 0..3
        assert [linearize(Dim3(x, 0, 0), extent) for x in range(4)] == [0, 1, 2, 3]
        assert linearize(Dim3(0, 1, 0), extent) == 4
        assert linearize(Dim3(0, 0, 1), extent) == 12

    def test_out_of_extent(self):
        with pytest.raises(IndexError):
            linearize(Dim3(4, 0, 0), Dim3(4, 1, 1))

    def test_delinearize_out_of_range(self):
        with pytest.raises(IndexError):
            delinearize(24, Dim3(4, 3, 2))
        with pytest.raises(IndexError):
            delinearize(-1, Dim3(4, 3, 2))

    @given(
        st.tuples(
            st.integers(1, 16), st.integers(1, 16), st.integers(1, 16)
        ),
        st.data(),
    )
    def test_roundtrip_bijection(self, extent_tuple, data):
        extent = Dim3(*extent_tuple)
        flat = data.draw(st.integers(0, extent.volume - 1))
        assert linearize(delinearize(flat, extent), extent) == flat

    @given(
        st.tuples(st.integers(1, 12), st.integers(1, 12), st.integers(1, 12))
    )
    def test_covers_whole_extent(self, extent_tuple):
        extent = Dim3(*extent_tuple)
        seen = {linearize(delinearize(i, extent), extent) for i in range(extent.volume)}
        assert seen == set(range(extent.volume))
