"""Warp match primitives (__match_any_sync / __match_all_sync)."""

import numpy as np
import pytest

from repro import cuda, ompx
from repro.gpu import LaunchConfig, launch_kernel


class TestMatchAny:
    def test_groups_by_value(self, nvidia):
        results = {}

        def kernel(ctx):
            mask = ctx.match_any_sync(ctx.lane_id % 4)
            results[ctx.lane_id] = mask

        launch_kernel(LaunchConfig.create(1, 32), kernel, (), nvidia)
        for lane, mask in results.items():
            expected = sum(1 << i for i in range(32) if i % 4 == lane % 4)
            assert mask == expected, lane

    def test_all_distinct_values(self, nvidia):
        results = {}

        def kernel(ctx):
            results[ctx.lane_id] = ctx.match_any_sync(ctx.lane_id)

        launch_kernel(LaunchConfig.create(1, 32), kernel, (), nvidia)
        for lane, mask in results.items():
            assert mask == 1 << lane

    def test_wavefront64(self, amd):
        results = {}

        def kernel(ctx):
            results[ctx.lane_id] = ctx.match_any_sync(ctx.lane_id // 32)

        launch_kernel(LaunchConfig.create(1, 64), kernel, (), amd)
        low = sum(1 << i for i in range(32))
        high = sum(1 << i for i in range(32, 64))
        assert results[0] == low and results[63] == high


class TestMatchAll:
    def test_all_equal(self, nvidia):
        results = {}

        def kernel(ctx):
            results[ctx.lane_id] = ctx.match_all_sync(42)

        launch_kernel(LaunchConfig.create(1, 32), kernel, (), nvidia)
        mask, pred = results[0]
        assert pred and mask == 0xFFFFFFFF

    def test_not_all_equal(self, nvidia):
        results = {}

        def kernel(ctx):
            results[ctx.lane_id] = ctx.match_all_sync(ctx.lane_id == 0)

        launch_kernel(LaunchConfig.create(1, 32), kernel, (), nvidia)
        mask, pred = results[5]
        assert not pred and mask == 0


class TestFacades:
    def test_cuda_spelling_mask_first(self, nvidia):
        results = {}

        @cuda.kernel
        def k(t):
            results[t.laneid] = t.match_any_sync(cuda.FULL_MASK, t.laneid % 2)

        cuda.launch(k, 1, 32, (), device=nvidia)
        nvidia.synchronize()
        evens = sum(1 << i for i in range(0, 32, 2))
        assert results[0] == evens

    def test_ompx_spelling_mask_last(self, nvidia):
        results = {}

        @ompx.bare_kernel
        def k(x):
            results[x.lane_id()] = x.match_all_sync(1)

        ompx.target_teams_bare(nvidia, 1, 32, k)
        assert results[0] == (0xFFFFFFFF, True)

    def test_capi_spelling(self, nvidia):
        from repro.ompx import capi

        results = {}

        def region(x):
            results[capi.ompx_lane_id()] = capi.ompx_match_any_sync(
                capi.ompx_lane_id() < 16
            )

        ompx.target_teams_bare(nvidia, 1, 32, region)
        low_half = sum(1 << i for i in range(16))
        assert results[0] == low_half
        assert results[31] == sum(1 << i for i in range(16, 32))

    def test_port_rule_reorders_mask(self):
        from repro.port import port_kernel_source

        @cuda.kernel
        def k(t):
            t.match_any_sync(cuda.FULL_MASK, t.laneid)

        src = port_kernel_source(k)
        assert "t.match_any_sync(t.lane_id(), cuda.FULL_MASK)" in src


class TestOccupancyQueries:
    def test_cuda_query(self, nvidia):
        @cuda.kernel
        def small(t, out, n):
            i = t.global_thread_id
            if i < n:
                t.array(out, n, np.float64)[i] = i

        cuda.cudaSetDevice(0)
        assert cuda.cudaOccupancyMaxActiveBlocksPerMultiprocessor(small, 256) == 8
        assert cuda.cudaOccupancyMaxActiveBlocksPerMultiprocessor(small, 1024) == 2

    def test_ompx_query_matches_cuda(self, nvidia):
        @ompx.bare_kernel
        def small(x, out, n):
            i = x.global_thread_id_x()
            if i < n:
                x.array(out, n, np.float64)[i] = i

        assert ompx.ompx_occupancy_max_active_blocks(small, 128, device=nvidia) == 16

    def test_shared_memory_limits_occupancy(self, nvidia):
        @ompx.bare_kernel
        def shared_hog(x):
            x.groupprivate("big", 1024, np.float64)  # 8 KB

        unconstrained = ompx.ompx_occupancy_max_active_blocks(
            shared_hog, 64, device=nvidia
        )
        constrained = ompx.ompx_occupancy_max_active_blocks(
            shared_hog, 64, shared_bytes=40 * 1024, device=nvidia
        )
        assert constrained < unconstrained
