"""Engine equivalence: every Fig. 6 app computes bit-identical results —
and identical behavioural counters — on every engine that can run it.

The matrix below pins each app kernel to each compatible engine in turn
(cooperative block-thread, sequential map, lane-batched vector/wave) and
requires byte-for-byte equal outputs plus equal KernelStats.  This is the
load-bearing guarantee of the WaveVectorEngine: it is an execution
strategy, not a numerical approximation.
"""

import numpy as np
import pytest

import repro.gpu.launch as launch_mod
from repro.apps import PORTFOLIO_APPS, VersionLabel
from repro.gpu import get_device
from repro.gpu.engine import _ENGINES_BY_NAME

#: Engines each app kernel can legally execute on.  MapEngine and the
#: vector mode refuse barriers, so the stencil pairs block-thread with
#: wave; warp-/atomic-free sync-free kernels run on all three layouts.
ENGINE_MATRIX = {
    "XSBench": ("block-thread", "map", "vector"),
    "RSBench": ("block-thread", "map"),
    "SU3": ("block-thread", "map"),
    # AIDW's interpolation kernels barrier over a divergent body (early
    # exit on anchor hits), which only the cooperative engine supports.
    "AIDW": ("block-thread",),
    "Adam": ("block-thread", "map", "vector"),
    "Stencil 1D": ("block-thread", "wave"),
    # The §3.6 portfolio: GEMMs run in the vendor library (engine-
    # independent by construction); only the hand kernels are pinned.
    "MLPStep": ("block-thread", "map", "vector"),
    "SU3-ET": ("block-thread", "map"),
}

_APPS_BY_NAME = {cls.name: cls for cls in PORTFOLIO_APPS}

_COUNTERS = (
    "threads_run",
    "blocks_run",
    "barriers",
    "warp_collectives",
    "global_derefs",
    "shared_declarations",
)


class _ForcedEngine:
    """Engine proxy: pins every launch to one engine and records its stats."""

    def __init__(self, engine, log):
        self._engine = engine
        self.log = log

    @property
    def name(self):
        return self._engine.name

    def run(self, *args, **kwargs):
        stats = self._engine.run(*args, **kwargs)
        self.log.append(stats)
        return stats


def _run_forced(app, params, engine_name, device):
    """Run the app's CUDA variant with every launch pinned to one engine."""
    log = []
    proxy = _ForcedEngine(_ENGINES_BY_NAME[engine_name], log)
    original = launch_mod.select_engine
    launch_mod.select_engine = lambda *a, **k: proxy
    try:
        result = app.run_single(VersionLabel.NATIVE_LLVM, params, device)
    finally:
        launch_mod.select_engine = original
    return result, log


def _counter_rows(log):
    return [tuple(getattr(stats, c) for c in _COUNTERS) for stats in log]


@pytest.mark.parametrize(
    "app_name,engines", sorted(ENGINE_MATRIX.items()), ids=lambda v: str(v)
)
def test_engines_agree_bitwise_and_on_stats(app_name, engines):
    app = _APPS_BY_NAME[app_name]()
    params = app.functional_params()
    device = get_device(0)

    base_name = engines[0]
    base_result, base_log = _run_forced(app, params, base_name, device)
    assert base_log, f"{app_name} recorded no launches under {base_name}"
    assert all(stats.engine == base_name for stats in base_log)
    assert app.verify(base_result, params), f"{app_name} wrong under {base_name}"

    for engine_name in engines[1:]:
        result, log = _run_forced(app, params, engine_name, device)
        assert all(stats.engine == engine_name for stats in log)
        assert np.array_equal(result.output, base_result.output), (
            f"{app_name}: {engine_name} output diverged from {base_name}"
        )
        assert result.checksum == base_result.checksum
        assert _counter_rows(log) == _counter_rows(base_log), (
            f"{app_name}: {engine_name} KernelStats diverged from {base_name}"
        )


def test_intel_preset_matches_a100_bitwise():
    """The fourth ordinal (XeHPC) runs the engine matrix bit-identically."""
    app = _APPS_BY_NAME["Adam"]()
    params = app.functional_params()
    base, _ = _run_forced(app, params, "block-thread", get_device(0))
    intel = get_device(3)
    for engine_name in ENGINE_MATRIX["Adam"]:
        result, log = _run_forced(app, params, engine_name, intel)
        assert all(stats.engine == engine_name for stats in log)
        assert np.array_equal(result.output, base.output), (
            f"xehpc/{engine_name} diverged from the a100 reference"
        )
        assert result.checksum == base.checksum


def test_auto_selection_matches_forced_block_thread():
    """The engine the planner picks agrees bitwise with the SIMT reference."""
    app = _APPS_BY_NAME["XSBench"]()
    params = app.functional_params()
    device = get_device(0)
    auto = app.run_single(VersionLabel.NATIVE_LLVM, params, device)
    forced, _ = _run_forced(app, params, "block-thread", device)
    assert np.array_equal(auto.output, forced.output)
