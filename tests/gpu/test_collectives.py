"""Block/warp collective algorithms (reduce, scans)."""

import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cuda, ompx
from repro.gpu import LaunchConfig, get_device, launch_kernel
from repro.gpu.collectives import (
    block_inclusive_scan,
    block_reduce,
    warp_inclusive_scan,
)


def run(device, kernel, block, args=()):
    launch_kernel(LaunchConfig.create(1, block), kernel, args, device)


class TestWarpScan:
    @pytest.mark.parametrize("ordinal", [0, 1], ids=["a100", "mi250"])
    def test_inclusive_sum_scan(self, ordinal):
        device = get_device(ordinal)
        ws = device.spec.warp_size
        d = device.allocator.malloc(ws * 8)

        def kernel(ctx, out):
            v = warp_inclusive_scan(ctx, float(ctx.lane_id + 1))
            ctx.deref(out, ctx.warp_size, np.float64)[ctx.lane_id] = v

        run(device, kernel, ws, (d,))
        out = np.zeros(ws)
        device.allocator.memcpy_d2h(out, d)
        assert np.array_equal(out, np.cumsum(np.arange(1, ws + 1)))
        device.allocator.free(d)

    def test_max_scan(self, nvidia):
        d = nvidia.allocator.malloc(32 * 8)
        values = [(i * 13) % 32 for i in range(32)]

        def kernel(ctx, out):
            v = warp_inclusive_scan(ctx, values[ctx.lane_id], op=max)
            ctx.deref(out, 32, np.int64)[ctx.lane_id] = v

        run(nvidia, kernel, 32, (d,))
        out = np.zeros(32, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d)
        assert np.array_equal(out, np.maximum.accumulate(values))
        nvidia.allocator.free(d)


class TestBlockReduce:
    @pytest.mark.parametrize("block", [32, 48, 96, 256], ids=str)
    def test_sum_all_threads_receive(self, nvidia, block):
        d = nvidia.allocator.malloc(block * 8)

        def kernel(ctx, out):
            total = block_reduce(ctx, float(ctx.flat_thread_id))
            ctx.deref(out, ctx.num_threads, np.float64)[ctx.flat_thread_id] = total

        run(nvidia, kernel, block, (d,))
        out = np.zeros(block)
        nvidia.allocator.memcpy_d2h(out, d)
        assert (out == block * (block - 1) / 2).all()
        nvidia.allocator.free(d)

    def test_works_through_facades(self, nvidia):
        """The same helper runs from a CUDA and an ompx kernel."""
        results = {}

        @cuda.kernel
        def k_cuda(t, tag):
            total = block_reduce(t, 1.0)
            if t.threadIdx.x == 0:
                results[tag] = total

        @ompx.bare_kernel
        def k_ompx(x, tag):
            total = block_reduce(x, 1.0)
            if x.thread_id_x() == 0:
                results[tag] = total

        cuda.launch(k_cuda, 1, 64, ("cuda",), device=nvidia)
        nvidia.synchronize()
        ompx.target_teams_bare(nvidia, 1, 64, k_ompx, ("ompx",))
        assert results["cuda"] == results["ompx"] == 64.0

    def test_repeated_reductions_in_one_kernel(self, nvidia):
        d = nvidia.allocator.malloc(2 * 8)

        def kernel(ctx, out):
            a = block_reduce(ctx, 1.0)
            b = block_reduce(ctx, 2.0)
            if ctx.flat_thread_id == 0:
                o = ctx.deref(out, 2, np.float64)
                o[0], o[1] = a, b

        run(nvidia, kernel, 64, (d,))
        out = np.zeros(2)
        nvidia.allocator.memcpy_d2h(out, d)
        assert list(out) == [64.0, 128.0]
        nvidia.allocator.free(d)

    def test_mi250_wavefront(self, amd):
        d = amd.allocator.malloc(8)

        def kernel(ctx, out):
            total = block_reduce(ctx, 1.0)
            if ctx.flat_thread_id == 0:
                ctx.deref(out, 1, np.float64)[0] = total

        run(amd, kernel, 192, (d,))
        out = np.zeros(1)
        amd.allocator.memcpy_d2h(out, d)
        assert out[0] == 192.0
        amd.allocator.free(d)


class TestBlockScan:
    @pytest.mark.parametrize("block", [32, 64, 96, 160], ids=str)
    def test_inclusive_sum_scan(self, nvidia, block):
        d = nvidia.allocator.malloc(block * 8)

        def kernel(ctx, out):
            v = block_inclusive_scan(ctx, float(ctx.flat_thread_id + 1))
            ctx.deref(out, ctx.num_threads, np.float64)[ctx.flat_thread_id] = v

        run(nvidia, kernel, block, (d,))
        out = np.zeros(block)
        nvidia.allocator.memcpy_d2h(out, d)
        assert np.array_equal(out, np.cumsum(np.arange(1, block + 1)))
        nvidia.allocator.free(d)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(-50, 50), min_size=32, max_size=32))
    def test_scan_matches_numpy_cumsum(self, values):
        device = get_device(0)
        d = device.allocator.malloc(32 * 8)

        def kernel(ctx, out):
            v = block_inclusive_scan(
                ctx, float(values[ctx.flat_thread_id])
            )
            ctx.deref(out, 32, np.float64)[ctx.flat_thread_id] = v

        run(device, kernel, 32, (d,))
        out = np.zeros(32)
        device.allocator.memcpy_d2h(out, d)
        assert np.array_equal(out, np.cumsum(values))
        device.allocator.free(d)
