"""Stream-local vs device-level error scoping (CUDA sticky semantics).

An ordinary failure in stream A stays local: stream B keeps working and
the device context is not poisoned — but the error *must* surface at the
device-level synchronize, which drains every stream.  A kernel *fault*
on a stream, by contrast, poisons the whole device context from the
stream's worker thread.
"""

import pytest

from repro import faults
from repro.errors import GpuError, KernelFault, StickyContextError
from repro.gpu import LaunchConfig, get_device, launch_kernel
from repro.gpu.stream import Stream
from repro.ompx import ompx_device_synchronize


@pytest.fixture
def device():
    dev = get_device(0)
    dev.reset()
    yield dev
    dev.reset()


def _fail():
    raise GpuError("transient op failure")


class TestStreamLocalErrors:
    def test_failure_in_stream_a_spares_stream_b(self, device):
        a = Stream(device, name="a")
        b = Stream(device, name="b")
        try:
            a.enqueue(_fail)
            ran = []
            b.enqueue(lambda: ran.append(1))
            b.synchronize()
            assert ran == [1]                      # B unaffected
            assert not device.is_poisoned          # not a kernel fault
            with pytest.raises(GpuError):
                a.synchronize()                    # A reports, then clears
            a.enqueue(lambda: ran.append(2))       # A usable again
            a.synchronize()
            assert ran == [1, 2]
        finally:
            a.close()
            b.close()

    def test_stream_error_surfaces_at_device_synchronize(self, device):
        a = Stream(device, name="a")
        try:
            a.enqueue(_fail)
            a._idle.wait()
            with pytest.raises(GpuError) as ei:
                ompx_device_synchronize(device)
            assert isinstance(ei.value.__cause__, GpuError)
            assert "queued work failed" in str(ei.value)
        finally:
            a.close()

    def test_sticky_stream_refuses_enqueue_without_clearing(self, device):
        a = Stream(device, name="a")
        try:
            a.enqueue(_fail)
            a._idle.wait()
            with pytest.raises(GpuError):
                a.enqueue(lambda: None)            # refused, error kept
            with pytest.raises(GpuError):
                a.synchronize()                    # still reported here
            a.synchronize()                        # now clear
        finally:
            a.close()


class TestKernelFaultOnStream:
    def test_fault_on_stream_a_poisons_device_for_stream_b(self, device):
        a = Stream(device, name="a")
        b = Stream(device, name="b")
        try:
            def k(ctx):
                pass

            k.vectorize = False
            with faults.inject("launch:kernel_fault,kernel=k"):
                launch_kernel(
                    LaunchConfig.create(1, 4, stream=a), k, (), device,
                    synchronous=False,
                )
                a._idle.wait()                     # fault fires on A's worker
            assert device.is_poisoned
            assert isinstance(device.sticky_error, KernelFault)
            # Stream B's next *launch* hits the poisoned context on the
            # host thread, before anything is enqueued.
            with pytest.raises(StickyContextError):
                launch_kernel(
                    LaunchConfig.create(1, 4, stream=b), k, (), device,
                    synchronous=False,
                )
            # Device-level synchronize reports the poison too.
            with pytest.raises(StickyContextError):
                ompx_device_synchronize(device)
            # And the original fault is still queued as A's sticky error.
            with pytest.raises(GpuError) as ei:
                a.synchronize()
            assert ei.value.__cause__ is not None
        finally:
            a.close()
            b.close()

    def test_reset_recovers_streams_and_context(self, device):
        a = Stream(device, name="a")

        def k(ctx):
            pass

        k.vectorize = False
        with faults.inject("launch:kernel_fault,kernel=k"):
            launch_kernel(
                LaunchConfig.create(1, 4, stream=a), k, (), device,
                synchronous=False,
            )
            a._idle.wait()
        assert device.is_poisoned
        device.reset()                             # also closes stream a
        assert not device.is_poisoned
        stats = launch_kernel(LaunchConfig.create(1, 4), k, (), device)
        assert stats.threads_run == 4
