"""Warp collectives and the cooperative barrier, exercised through kernels.

Run on both device presets so the 32-wide warp and the 64-wide wavefront
paths are both covered.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LaunchError, SyncError
from repro.gpu import LaunchConfig, get_device, launch_kernel
from repro.gpu.warp import full_mask, mask_to_lanes


def run_kernel(device, kernel, grid, block, args):
    return launch_kernel(LaunchConfig.create(grid, block), kernel, args, device)


def download(device, ptr, n, dtype=np.int64):
    out = np.zeros(n, dtype=dtype)
    device.allocator.memcpy_d2h(out, ptr)
    return out


class TestMaskDecoding:
    def test_full_mask(self):
        assert full_mask(32) == 0xFFFFFFFF
        assert full_mask(64) == 0xFFFFFFFFFFFFFFFF

    def test_mask_to_lanes(self):
        assert mask_to_lanes(0b1011, 32) == frozenset({0, 1, 3})

    def test_zero_mask_rejected(self):
        with pytest.raises(SyncError):
            mask_to_lanes(0, 32)

    def test_mask_beyond_width_rejected(self):
        with pytest.raises(SyncError):
            mask_to_lanes(1 << 32, 32)


class TestShuffles:
    def test_shfl_broadcast(self, any_device):
        ws = any_device.spec.warp_size
        d_out = any_device.allocator.malloc(ws * 8)

        def kernel(ctx, out):
            v = ctx.shfl_sync(ctx.lane_id * 10, 3)
            ctx.deref(out, ctx.warp_size, np.int64)[ctx.lane_id] = v

        run_kernel(any_device, kernel, 1, ws, (d_out,))
        assert (download(any_device, d_out, ws) == 30).all()
        any_device.allocator.free(d_out)

    def test_shfl_up_keeps_low_lanes(self, any_device):
        ws = any_device.spec.warp_size
        d_out = any_device.allocator.malloc(ws * 8)

        def kernel(ctx, out):
            v = ctx.shfl_up_sync(ctx.lane_id, 2)
            ctx.deref(out, ctx.warp_size, np.int64)[ctx.lane_id] = v

        run_kernel(any_device, kernel, 1, ws, (d_out,))
        result = download(any_device, d_out, ws)
        lanes = np.arange(ws)
        expected = np.where(lanes >= 2, lanes - 2, lanes)
        assert np.array_equal(result, expected)
        any_device.allocator.free(d_out)

    def test_shfl_down_keeps_high_lanes(self, any_device):
        ws = any_device.spec.warp_size
        d_out = any_device.allocator.malloc(ws * 8)

        def kernel(ctx, out):
            v = ctx.shfl_down_sync(ctx.lane_id, 1)
            ctx.deref(out, ctx.warp_size, np.int64)[ctx.lane_id] = v

        run_kernel(any_device, kernel, 1, ws, (d_out,))
        result = download(any_device, d_out, ws)
        lanes = np.arange(ws)
        expected = np.where(lanes + 1 < ws, lanes + 1, lanes)
        assert np.array_equal(result, expected)
        any_device.allocator.free(d_out)

    def test_shfl_xor_butterfly(self, any_device):
        ws = any_device.spec.warp_size
        d_out = any_device.allocator.malloc(ws * 8)

        def kernel(ctx, out):
            v = ctx.shfl_xor_sync(ctx.lane_id, 5)
            ctx.deref(out, ctx.warp_size, np.int64)[ctx.lane_id] = v

        run_kernel(any_device, kernel, 1, ws, (d_out,))
        assert np.array_equal(download(any_device, d_out, ws), np.arange(ws) ^ 5)
        any_device.allocator.free(d_out)

    def test_partial_mask_subgroup(self, nvidia):
        """Only lanes 0-3 participate; each reads lane 0's value."""
        d_out = nvidia.allocator.malloc(4 * 8)

        def kernel(ctx, out):
            if ctx.lane_id < 4:
                v = ctx.shfl_sync(ctx.lane_id + 100, 0, mask=0b1111)
                ctx.deref(out, 4, np.int64)[ctx.lane_id] = v

        run_kernel(nvidia, kernel, 1, 32, (d_out,))
        assert (download(nvidia, d_out, 4) == 100).all()
        nvidia.allocator.free(d_out)

    def test_lane_outside_mask_calling_is_error(self, nvidia):
        def kernel(ctx):
            # every lane calls, but the mask only names lane 0
            ctx.shfl_sync(1, 0, mask=0b1)

        with pytest.raises(LaunchError, match="does not include"):
            run_kernel(nvidia, kernel, 1, 2, ())


class TestVotes:
    def test_ballot(self, any_device):
        ws = any_device.spec.warp_size
        d_out = any_device.allocator.malloc(8)

        def kernel(ctx, out):
            bits = ctx.ballot_sync(ctx.lane_id % 2 == 0)
            if ctx.lane_id == 0:
                ctx.deref(out, 1, np.uint64)[0] = bits

        run_kernel(any_device, kernel, 1, ws, (d_out,))
        expected = sum(1 << i for i in range(0, ws, 2))
        assert download(any_device, d_out, 1, np.uint64)[0] == expected
        any_device.allocator.free(d_out)

    def test_any_all(self, any_device):
        ws = any_device.spec.warp_size
        d_out = any_device.allocator.malloc(4 * 8)

        def kernel(ctx, out):
            o = ctx.deref(out, 4, np.int64)
            a = ctx.any_sync(ctx.lane_id == 5)
            b = ctx.all_sync(ctx.lane_id == 5)
            c = ctx.all_sync(True)
            d = ctx.any_sync(False)
            if ctx.lane_id == 0:
                o[0], o[1], o[2], o[3] = int(a), int(b), int(c), int(d)

        run_kernel(any_device, kernel, 1, ws, (d_out,))
        assert list(download(any_device, d_out, 4)) == [1, 0, 1, 0]
        any_device.allocator.free(d_out)


class TestReduce:
    def test_sum_reduction_all_lanes_receive(self, any_device):
        ws = any_device.spec.warp_size
        d_out = any_device.allocator.malloc(ws * 8)

        def kernel(ctx, out):
            total = ctx.warp_reduce(ctx.lane_id, lambda a, b: a + b)
            ctx.deref(out, ctx.warp_size, np.int64)[ctx.lane_id] = total

        run_kernel(any_device, kernel, 1, ws, (d_out,))
        assert (download(any_device, d_out, ws) == ws * (ws - 1) // 2).all()
        any_device.allocator.free(d_out)

    def test_max_reduction(self, nvidia):
        d_out = nvidia.allocator.malloc(8)

        def kernel(ctx, out):
            m = ctx.warp_reduce((ctx.lane_id * 7) % 32, max)
            if ctx.lane_id == 0:
                ctx.deref(out, 1, np.int64)[0] = m

        run_kernel(nvidia, kernel, 1, 32, (d_out,))
        assert download(nvidia, d_out, 1)[0] == max((i * 7) % 32 for i in range(32))
        nvidia.allocator.free(d_out)


class TestPartialWarps:
    def test_block_smaller_than_warp(self, any_device):
        """A 10-thread block forms one partial warp; collectives still work."""
        d_out = any_device.allocator.malloc(10 * 8)

        def kernel(ctx, out):
            total = ctx.warp_reduce(1, lambda a, b: a + b)
            ctx.deref(out, 10, np.int64)[ctx.lane_id] = total

        run_kernel(any_device, kernel, 1, 10, (d_out,))
        assert (download(any_device, d_out, 10) == 10).all()
        any_device.allocator.free(d_out)

    def test_mask_naming_missing_lane_is_error(self, nvidia):
        def kernel(ctx):
            ctx.sync_warp(mask=0xFFFFFFFF)  # 32 lanes named, only 8 exist...

        # sync_warp decodes the full mask against the partial warp width, so
        # this succeeds (the mask is truncated to existing lanes).
        run_kernel(nvidia, kernel, 1, 8, ())

    def test_multiple_warps_are_independent(self, nvidia):
        """Each warp reduces only its own lanes."""
        d_out = nvidia.allocator.malloc(4 * 8)

        def kernel(ctx, out):
            total = ctx.warp_reduce(ctx.warp_id, lambda a, b: a + b)
            if ctx.lane_id == 0:
                ctx.deref(out, 4, np.int64)[ctx.warp_id] = total

        run_kernel(nvidia, kernel, 1, 128, (d_out,))
        assert list(download(nvidia, d_out, 4)) == [0, 32, 64, 96]
        nvidia.allocator.free(d_out)


class TestBarrier:
    def test_staged_writes_are_ordered(self, any_device):
        """Thread 0 seeds shared memory; everyone reads after the barrier."""
        n = 64
        d_out = any_device.allocator.malloc(n * 8)

        def kernel(ctx, out):
            shared = ctx.shared_array("seed", 1, np.int64)
            if ctx.flat_thread_id == 0:
                shared[0] = 99
            ctx.sync_threads()
            ctx.deref(out, n, np.int64)[ctx.flat_thread_id] = shared[0]

        run_kernel(any_device, kernel, 1, n, (d_out,))
        assert (download(any_device, d_out, n) == 99).all()
        any_device.allocator.free(d_out)

    def test_multiple_barrier_generations(self, nvidia):
        """Ping-pong through shared memory across three barriers."""
        n = 32
        d_out = nvidia.allocator.malloc(n * 8)

        def kernel(ctx, out):
            buf = ctx.shared_array("buf", n, np.int64)
            tid = ctx.flat_thread_id
            buf[tid] = tid
            ctx.sync_threads()
            v = buf[(tid + 1) % n]
            ctx.sync_threads()
            buf[tid] = v * 2
            ctx.sync_threads()
            ctx.deref(out, n, np.int64)[tid] = buf[(tid + n - 1) % n]

        run_kernel(nvidia, kernel, 1, n, (d_out,))
        expected = [(tid % n) * 2 for tid in range(1, n + 1)]
        result = list(download(nvidia, d_out, n))
        # out[tid] = buf[tid-1] = 2 * ((tid-1+1) % n) = 2 * (tid % n)
        assert result == [2 * (tid % n) for tid in range(n)]
        nvidia.allocator.free(d_out)

    def test_early_exit_does_not_deadlock(self, nvidia):
        """Post-Volta semantics: exited threads don't block the barrier."""
        d_out = nvidia.allocator.malloc(8)

        def kernel(ctx, out):
            if ctx.flat_thread_id >= 16:
                return  # half the block leaves before the barrier
            ctx.sync_threads()
            if ctx.flat_thread_id == 0:
                ctx.deref(out, 1, np.int64)[0] = 1

        run_kernel(nvidia, kernel, 1, 32, (d_out,))
        assert download(nvidia, d_out, 1)[0] == 1
        nvidia.allocator.free(d_out)


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(src=st.integers(0, 31))
    def test_shfl_is_constant_per_src(self, src):
        """All lanes reading the same source receive the same value."""
        device = get_device(0)
        d_out = device.allocator.malloc(32 * 8)

        def kernel(ctx, out, src_lane):
            v = ctx.shfl_sync(ctx.lane_id * 3 + 1, src_lane)
            ctx.deref(out, 32, np.int64)[ctx.lane_id] = v

        run_kernel(device, kernel, 1, 32, (d_out, src))
        result = download(device, d_out, 32)
        assert (result == src * 3 + 1).all()
        device.allocator.free(d_out)

    @settings(max_examples=15, deadline=None)
    @given(xor_mask=st.integers(1, 31))
    def test_shfl_xor_is_involution(self, xor_mask):
        """Applying the same xor shuffle twice restores every lane's value."""
        device = get_device(0)
        d_out = device.allocator.malloc(32 * 8)

        def kernel(ctx, out, m):
            v = ctx.shfl_xor_sync(ctx.lane_id, m)
            v = ctx.shfl_xor_sync(v, m)
            ctx.deref(out, 32, np.int64)[ctx.lane_id] = v

        run_kernel(device, kernel, 1, 32, (d_out, xor_mask))
        assert np.array_equal(download(device, d_out, 32), np.arange(32))
        device.allocator.free(d_out)
