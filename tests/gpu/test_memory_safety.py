"""Allocator free/use-after-free diagnostics (satellite: pointer hygiene).

Each distinct misuse — double free, free of an interior pointer, free of
a never-allocated address, use-after-free through memcpy — gets its own
diagnosis naming the original allocation site, instead of one generic
"invalid pointer" message.
"""

import numpy as np
import pytest

from repro.errors import InvalidPointerError
from repro.gpu import get_device


@pytest.fixture
def allocator():
    return get_device(0).allocator


class TestDoubleFree:
    def test_double_free_names_both_sites(self, allocator):
        ptr = allocator.malloc(64)
        allocator.free(ptr)
        with pytest.raises(InvalidPointerError) as ei:
            allocator.free(ptr)
        msg = str(ei.value)
        assert "double free" in msg
        assert "64 B allocation" in msg
        assert "allocated at test_memory_safety.py" in msg
        assert "already freed at test_memory_safety.py" in msg

    def test_free_into_freed_range(self, allocator):
        ptr = allocator.malloc(64)
        allocator.free(ptr)
        with pytest.raises(InvalidPointerError) as ei:
            allocator.free(ptr + 8)
        assert "already freed at" in str(ei.value)


class TestBadFree:
    def test_free_of_interior_pointer(self, allocator):
        ptr = allocator.malloc(64)
        with pytest.raises(InvalidPointerError) as ei:
            allocator.free(ptr + 16)
        msg = str(ei.value)
        assert "points 16 B into a live 64 B allocation" in msg
        assert "free the base pointer instead" in msg
        allocator.free(ptr)   # the base pointer is still freeable

    def test_free_of_never_allocated_address(self, allocator):
        from repro.gpu.memory import DevicePointer

        bogus = DevicePointer(0, 0x7FFF_FFF0)
        with pytest.raises(InvalidPointerError, match="not the base of a live"):
            allocator.free(bogus)

    def test_free_of_null_is_a_noop(self, allocator):
        from repro.gpu.memory import DevicePointer

        allocator.free(DevicePointer(0, 0))


class TestUseAfterFree:
    def test_memcpy_from_freed_pointer(self, allocator):
        ptr = allocator.malloc(32)
        allocator.free(ptr)
        out = np.zeros(32, dtype=np.uint8)
        with pytest.raises(InvalidPointerError) as ei:
            allocator.memcpy_d2h(out, ptr)
        msg = str(ei.value)
        assert "use after free" in msg
        assert "allocated at test_memory_safety.py" in msg
        assert "freed at test_memory_safety.py" in msg

    def test_memcpy_to_freed_pointer(self, allocator):
        ptr = allocator.malloc(32)
        allocator.free(ptr)
        with pytest.raises(InvalidPointerError, match="use after free"):
            allocator.memcpy_h2d(ptr, np.ones(32, dtype=np.uint8))

    def test_interior_pointer_into_freed_allocation(self, allocator):
        ptr = allocator.malloc(32)
        allocator.free(ptr)
        out = np.zeros(8, dtype=np.uint8)
        with pytest.raises(InvalidPointerError, match="use after free"):
            allocator.memcpy_d2h(out, ptr + 8)

    def test_addresses_are_never_reused(self, allocator):
        ptr = allocator.malloc(32)
        allocator.free(ptr)
        fresh = allocator.malloc(32)
        assert fresh.address != ptr.address
        allocator.free(fresh)
