"""Behavioural counters in KernelStats (observed-behaviour cross-checks)."""

import numpy as np
import pytest

from repro import ompx
from repro.gpu import LaunchConfig, launch_kernel


class TestCounters:
    def test_barrier_count_per_thread(self, nvidia):
        def kernel(ctx):
            ctx.sync_threads()
            ctx.sync_threads()

        stats = launch_kernel(LaunchConfig.create(2, 16), kernel, (), nvidia)
        assert stats.barriers == 2 * 16 * 2  # 2 barriers x 32 threads

    def test_warp_collective_count(self, nvidia):
        def kernel(ctx):
            ctx.shfl_down_sync(ctx.lane_id, 1)
            ctx.ballot_sync(True)

        stats = launch_kernel(LaunchConfig.create(1, 32), kernel, (), nvidia)
        assert stats.warp_collectives == 32 * 2

    def test_deref_count(self, nvidia):
        d = nvidia.allocator.malloc(64 * 8)

        def kernel(ctx, ptr):
            ctx.deref(ptr, 64, np.float64)
            if ctx.flat_thread_id == 0:
                ctx.deref(ptr, 64, np.float64)

        stats = launch_kernel(LaunchConfig.create(1, 8), kernel, (d,), nvidia)
        assert stats.global_derefs == 8 + 1
        nvidia.allocator.free(d)

    def test_shared_declaration_count(self, nvidia):
        def kernel(ctx):
            ctx.shared_array("a", 4, np.float64)

        stats = launch_kernel(LaunchConfig.create(3, 4), kernel, (), nvidia)
        assert stats.shared_declarations == 12

    def test_map_engine_counts_too(self, nvidia):
        d = nvidia.allocator.malloc(8 * 8)

        def kernel(ctx, ptr):
            ctx.deref(ptr, 8, np.float64)

        kernel.sync_free = True
        stats = launch_kernel(LaunchConfig.create(1, 8, engine="map"), kernel, (d,), nvidia)
        assert stats.engine == "map"
        assert stats.global_derefs == 8
        nvidia.allocator.free(d)

    def test_vector_engine_counts_identically(self, nvidia):
        """The lane-batched engine reports the same per-thread counters."""
        d = nvidia.allocator.malloc(8 * 8)

        def kernel(ctx, ptr):
            ctx.deref(ptr, 8, np.float64)

        kernel.sync_free = True
        stats = launch_kernel(LaunchConfig.create(1, 8), kernel, (d,), nvidia)
        assert stats.engine == "vector"
        assert stats.global_derefs == 8
        nvidia.allocator.free(d)

    def test_counters_zero_for_trivial_kernel(self, nvidia):
        stats = launch_kernel(LaunchConfig.create(1, 4), lambda ctx: None, (), nvidia)
        assert stats.barriers == stats.warp_collectives == 0
        assert stats.global_derefs == stats.shared_declarations == 0


class TestObservedVsStatic:
    """The counters cross-check the compiler model's static analysis."""

    def test_stencil_observed_behaviour_matches_traits(self, nvidia):
        from repro.apps.stencil1d import stencil_ompx_kernel
        from repro.compiler import analyze_kernel

        traits = analyze_kernel(stencil_ompx_kernel)
        n, r, block = 128, 2, 32
        d_a = nvidia.allocator.malloc(n * 8)
        d_b = nvidia.allocator.malloc(n * 8)
        report = ompx.target_teams_bare(
            nvidia, n // block, block, stencil_ompx_kernel, (d_a, d_b, n, r)
        )
        stats = report.stats
        # static analysis said the kernel uses a barrier and shared memory;
        # the execution counters agree
        assert traits.uses_barrier and stats.barriers == n  # 1 per thread
        assert traits.uses_shared and stats.shared_declarations == n
        assert not traits.uses_warp_collectives and stats.warp_collectives == 0
        for p in (d_a, d_b):
            nvidia.allocator.free(p)

    def test_xsbench_is_barrier_free(self, nvidia):
        from repro.apps.xsbench import XSBench

        app = XSBench()
        params = app.functional_params()
        # run through the bare path to get a report with stats
        from repro.apps.common import VersionLabel

        result = app.run_single(VersionLabel.OMPX, params, nvidia)
        assert result.valid or app.verify(result, params)
        # the kernel is sync-free by declaration; its traits agree
        from repro.apps.xsbench import xsbench_ompx_kernel
        from repro.compiler import analyze_kernel

        traits = analyze_kernel(xsbench_ompx_kernel)
        assert not traits.uses_barrier
        assert xsbench_ompx_kernel.sync_free
