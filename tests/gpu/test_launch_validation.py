"""Cross-frontend launch validation, engine fallback, and error transport.

All four front ends funnel geometry through
:meth:`DeviceSpec.validate_launch`, so an impossible launch must produce
a :class:`LaunchError` carrying *identical* structured context fields
(cap / requested / hint) no matter which language layer issued it.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro import cuda, hip
from repro.errors import KernelFault, LaunchError
from repro.gpu import LaunchConfig, get_device, launch_kernel
from repro.ompx import bare_kernel, target_teams_bare
from repro.openmp.target import target_teams_distribute_parallel_for


@pytest.fixture(params=[0, 3], ids=["a100", "xehpc"])
def device(request):
    """The validation contract holds on the NVIDIA and Intel presets alike."""
    return get_device(request.param)


@cuda.kernel
def _cuda_noop(t):
    pass


@hip.kernel
def _hip_noop(t):
    pass


@bare_kernel
def _ompx_noop(x):
    pass


def _oversubscribe_cuda(device):
    cuda.launch(_cuda_noop, 1, (32, 64), device=device)


def _oversubscribe_hip(device):
    hip.launch(_hip_noop, 1, (32, 64), device=device)


def _oversubscribe_ompx(device):
    target_teams_bare(device, 1, (32, 64), _ompx_noop)


def _oversubscribe_openmp(device):
    target_teams_distribute_parallel_for(
        device, 4096, body=lambda i, acc: None, thread_limit=2048
    )


FRONT_ENDS = {
    "cuda": _oversubscribe_cuda,
    "hip": _oversubscribe_hip,
    "ompx": _oversubscribe_ompx,
    "openmp": _oversubscribe_openmp,
}


class TestCrossFrontEndValidation:
    @pytest.mark.parametrize("frontend", sorted(FRONT_ENDS))
    def test_block_volume_violation_fields(self, device, frontend):
        with pytest.raises(LaunchError) as ei:
            FRONT_ENDS[frontend](device)
        err = ei.value
        assert err.cap == device.spec.max_threads_per_block
        assert err.requested == 2048
        assert "thread_limit" in err.hint

    def test_all_front_ends_agree_on_the_structured_context(self, device):
        fields = []
        for frontend, trigger in sorted(FRONT_ENDS.items()):
            with pytest.raises(LaunchError) as ei:
                trigger(device)
            fields.append((ei.value.cap, ei.value.requested, ei.value.hint))
        assert len(set(fields)) == 1, (
            f"front ends disagree on LaunchError context: {fields}"
        )

    def test_grid_axis_violation(self, device):
        with pytest.raises(LaunchError) as ei:
            cuda.launch(_cuda_noop, (1, 70000), 32, device=device)
        assert ei.value.cap == device.spec.max_grid_dim[1]
        assert ei.value.requested == 70000
        assert "axis 1" in ei.value.hint

    def test_shared_memory_violation(self, device):
        too_much = device.spec.shared_mem_per_block + 1
        with pytest.raises(LaunchError) as ei:
            launch_kernel(
                LaunchConfig.create(1, 32, shared_bytes=too_much),
                lambda ctx: None, (), device,
            )
        assert ei.value.cap == device.spec.shared_mem_per_block
        assert ei.value.requested == too_much


def _make_lane_phobic():
    """A kernel that works scalar but refuses lane-batched execution."""

    def lane_phobic(ctx, out_ptr):
        if np.ndim(ctx.global_flat_id) > 0:
            raise ValueError("this body cannot run lane-batched")
        view = ctx.deref(out_ptr, 64, np.float64)
        view[ctx.global_flat_id] = 1.0

    lane_phobic.vectorize = True   # vouches wrongly: triggers the fallback
    return lane_phobic


class TestEngineFallback:
    def test_auto_selected_vector_failure_falls_back_once(self, device, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_FALLBACK", raising=False)
        ptr = device.allocator.malloc(64 * 8)
        kernel = _make_lane_phobic()
        with pytest.warns(RuntimeWarning, match="retrying once"):
            stats = launch_kernel(
                LaunchConfig.create(2, 32), kernel, (ptr,), device
            )
        assert stats is not None
        out = np.zeros(64)
        device.allocator.memcpy_d2h(out, ptr)
        assert (out == 1.0).all()              # the retry really ran
        assert not device.is_poisoned          # ValueError is not a fault
        device.allocator.free(ptr)

    def test_strict_mode_fails_instead(self, device, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_FALLBACK", "strict")
        ptr = device.allocator.malloc(64 * 8)
        kernel = _make_lane_phobic()
        with pytest.raises(LaunchError) as ei:
            launch_kernel(LaunchConfig.create(2, 32), kernel, (ptr,), device)
        assert isinstance(ei.value.__cause__, ValueError)
        device.allocator.free(ptr)

    def test_pinned_engine_hint_never_falls_back(self, device, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_FALLBACK", raising=False)
        ptr = device.allocator.malloc(64 * 8)
        kernel = _make_lane_phobic()
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with pytest.raises(LaunchError):
                launch_kernel(
                    LaunchConfig.create(2, 32, engine="wave"), kernel,
                    (ptr,), device,
                )
        device.allocator.free(ptr)

    def test_guard_rail_refusals_do_not_fall_back(self, device):
        # Geometry refusals carry no __cause__; retrying cannot help.
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with pytest.raises(LaunchError):
                launch_kernel(
                    LaunchConfig.create(1, 4096), lambda ctx: None, (), device
                )


class TestErrorTransport:
    """Errors captured on worker threads must re-raise intact (satellite:
    LaunchError pickling/equality)."""

    def test_launch_error_pickle_round_trip(self):
        err = LaunchError(
            "block too big", engine="wave", cap=1024, requested=2048,
            hint="shrink thread_limit", key=("k", "a100", (32, 64, 1)),
        )
        clone = pickle.loads(pickle.dumps(err))
        assert clone == err
        assert clone.engine == "wave"
        assert clone.cap == 1024 and clone.requested == 2048
        assert clone.hint == "shrink thread_limit"
        assert clone.key == ("k", "a100", (32, 64, 1))
        assert hash(clone) == hash(err)
        assert str(clone) == str(err)

    def test_kernel_fault_pickle_round_trip(self):
        fault = KernelFault(
            "illegal address", kernel="stencil", block=3,
            address=0x1138, injected=True,
        )
        clone = pickle.loads(pickle.dumps(fault))
        assert clone == fault
        assert clone.kernel == "stencil" and clone.block == 3
        assert clone.address == 0x1138 and clone.injected
        assert "0x1138" in str(clone)

    def test_equality_is_field_sensitive(self):
        a = LaunchError("x", cap=1024, requested=2048)
        b = LaunchError("x", cap=1024, requested=2048)
        c = LaunchError("x", cap=1024, requested=4096)
        assert a == b
        assert a != c
        assert a != LaunchError("y", cap=1024, requested=2048)

    def test_equality_is_type_strict(self):
        assert KernelFault("x") != LaunchError("x")
        assert LaunchError("x").__eq__(Exception("x")) is NotImplemented
