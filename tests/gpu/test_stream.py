"""Streams and events: ordering, overlap, sticky errors."""

import threading
import time

import pytest

from repro.errors import GpuError
from repro.gpu.stream import Event, Stream


@pytest.fixture
def stream(nvidia):
    s = Stream(nvidia, name="test-stream")
    yield s
    s.close()


class TestOrdering:
    def test_fifo_order(self, stream):
        order = []
        for i in range(20):
            stream.enqueue(lambda i=i: order.append(i))
        stream.synchronize()
        assert order == list(range(20))

    def test_synchronize_waits_for_slow_work(self, stream):
        done = []

        def slow():
            time.sleep(0.05)
            done.append(1)

        stream.enqueue(slow)
        stream.synchronize()
        assert done == [1]

    def test_is_idle(self, stream):
        gate = threading.Event()
        stream.enqueue(gate.wait)
        assert not stream.is_idle
        gate.set()
        stream.synchronize()
        assert stream.is_idle

    def test_two_streams_overlap(self, nvidia):
        """Work on stream B completes while stream A is blocked."""
        a = Stream(nvidia, name="a")
        b = Stream(nvidia, name="b")
        try:
            gate = threading.Event()
            b_done = threading.Event()
            a.enqueue(gate.wait)          # A is stuck until we open the gate
            b.enqueue(b_done.set)
            assert b_done.wait(timeout=2), "stream B should not wait for stream A"
            gate.set()
            a.synchronize()
            b.synchronize()
        finally:
            a.close()
            b.close()


class TestEvents:
    def test_record_and_wait(self, stream):
        ev = stream.record_event()
        stream.synchronize()
        assert ev.is_complete
        assert ev.wait(timeout=1)

    def test_event_not_set_until_reached(self, stream):
        gate = threading.Event()
        stream.enqueue(gate.wait)
        ev = stream.record_event()
        assert not ev.is_complete
        gate.set()
        stream.synchronize()
        assert ev.is_complete

    def test_cross_stream_wait_event(self, nvidia):
        """Stream B's later work waits for an event recorded on stream A."""
        a = Stream(nvidia, name="producer")
        b = Stream(nvidia, name="consumer")
        try:
            log = []
            gate = threading.Event()
            a.enqueue(gate.wait)
            a.enqueue(lambda: log.append("produced"))
            ev = a.record_event()
            b.wait_event(ev)
            b.enqueue(lambda: log.append("consumed"))
            gate.set()
            b.synchronize()
            assert log == ["produced", "consumed"]
        finally:
            a.close()
            b.close()


class TestErrors:
    def test_error_is_sticky_until_synchronize(self, nvidia):
        s = Stream(nvidia, name="err")
        try:
            s.enqueue(lambda: 1 / 0)
            with pytest.raises(GpuError, match="queued work failed"):
                s.synchronize()
            # error is cleared after being reported
            s.enqueue(lambda: None)
            s.synchronize()
        finally:
            s.close()

    def test_error_does_not_stop_later_work(self, nvidia):
        s = Stream(nvidia, name="err2")
        try:
            log = []
            s.enqueue(lambda: 1 / 0)
            s.enqueue(lambda: log.append("after"))
            with pytest.raises(GpuError):
                s.synchronize()
            assert log == ["after"]
        finally:
            s.close()

    def test_enqueue_after_close_rejected(self, nvidia):
        s = Stream(nvidia, name="closed")
        s.close()
        with pytest.raises(GpuError, match="closed"):
            s.enqueue(lambda: None)
