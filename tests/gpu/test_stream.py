"""Streams and events: ordering, overlap, sticky errors."""

import threading
import time

import pytest

from repro.errors import GpuError
from repro.gpu.stream import Event, Stream


@pytest.fixture
def stream(nvidia):
    s = Stream(nvidia, name="test-stream")
    yield s
    s.close()


class TestOrdering:
    def test_fifo_order(self, stream):
        order = []
        for i in range(20):
            stream.enqueue(lambda i=i: order.append(i))
        stream.synchronize()
        assert order == list(range(20))

    def test_synchronize_waits_for_slow_work(self, stream):
        done = []

        def slow():
            time.sleep(0.05)
            done.append(1)

        stream.enqueue(slow)
        stream.synchronize()
        assert done == [1]

    def test_is_idle(self, stream):
        gate = threading.Event()
        stream.enqueue(gate.wait)
        assert not stream.is_idle
        gate.set()
        stream.synchronize()
        assert stream.is_idle

    def test_two_streams_overlap(self, nvidia):
        """Work on stream B completes while stream A is blocked."""
        a = Stream(nvidia, name="a")
        b = Stream(nvidia, name="b")
        try:
            gate = threading.Event()
            b_done = threading.Event()
            a.enqueue(gate.wait)          # A is stuck until we open the gate
            b.enqueue(b_done.set)
            assert b_done.wait(timeout=2), "stream B should not wait for stream A"
            gate.set()
            a.synchronize()
            b.synchronize()
        finally:
            a.close()
            b.close()


class TestEvents:
    def test_record_and_wait(self, stream):
        ev = stream.record_event()
        stream.synchronize()
        assert ev.is_complete
        assert ev.wait(timeout=1)

    def test_event_not_set_until_reached(self, stream):
        gate = threading.Event()
        stream.enqueue(gate.wait)
        ev = stream.record_event()
        assert not ev.is_complete
        gate.set()
        stream.synchronize()
        assert ev.is_complete

    def test_cross_stream_wait_event(self, nvidia):
        """Stream B's later work waits for an event recorded on stream A."""
        a = Stream(nvidia, name="producer")
        b = Stream(nvidia, name="consumer")
        try:
            log = []
            gate = threading.Event()
            a.enqueue(gate.wait)
            a.enqueue(lambda: log.append("produced"))
            ev = a.record_event()
            b.wait_event(ev)
            b.enqueue(lambda: log.append("consumed"))
            gate.set()
            b.synchronize()
            assert log == ["produced", "consumed"]
        finally:
            a.close()
            b.close()


def _wait_for_failure(stream, timeout: float = 2.0) -> None:
    """Let the worker capture a queued failure without synchronizing."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with stream._lock:
            if stream._errors:
                return
        time.sleep(0.001)
    raise AssertionError("queued failure was never captured")


class TestErrors:
    def test_error_is_sticky_until_synchronize(self, nvidia):
        s = Stream(nvidia, name="err")
        try:
            s.enqueue(lambda: 1 / 0)
            with pytest.raises(GpuError, match="queued work failed"):
                s.synchronize()
            # error is cleared after being reported
            s.enqueue(lambda: None)
            s.synchronize()
        finally:
            s.close()

    def test_error_does_not_stop_later_work(self, nvidia):
        s = Stream(nvidia, name="err2")
        try:
            log = []
            gate = threading.Event()
            # Hold the worker so all enqueues happen before the failure
            # is captured (enqueue itself re-raises sticky errors).
            s.enqueue(gate.wait)
            s.enqueue(lambda: 1 / 0)
            s.enqueue(lambda: log.append("after"))
            gate.set()
            with pytest.raises(GpuError):
                s.synchronize()
            assert log == ["after"]
        finally:
            s.close()

    def test_enqueue_reraises_sticky_error(self, nvidia):
        """Regression: a captured error is re-raised by later enqueues, not
        only by Stream.synchronize (CUDA sticky-error behaviour)."""
        s = Stream(nvidia, name="err3")
        try:
            s.enqueue(lambda: 1 / 0)
            _wait_for_failure(s)
            with pytest.raises(GpuError, match="queued work failed"):
                s.enqueue(lambda: None)
            # The refused enqueue did NOT clear the sticky state ...
            with pytest.raises(GpuError, match="queued work failed"):
                s.synchronize()
            # ... but synchronizing did.
            s.enqueue(lambda: None)
            s.synchronize()
        finally:
            s.close()

    def test_event_synchronize_reraises_sticky_error(self, nvidia):
        """Regression: Event.synchronize is a synchronization point and
        re-raises (then clears) the recording stream's captured error."""
        s = Stream(nvidia, name="err4")
        try:
            gate = threading.Event()
            s.enqueue(gate.wait)
            s.enqueue(lambda: 1 / 0)
            ev = s.record_event()
            gate.set()
            assert ev.wait(timeout=2)
            with pytest.raises(GpuError, match="queued work failed"):
                ev.synchronize()
            # cleared: the stream is usable again
            s.enqueue(lambda: None)
            s.synchronize()
        finally:
            s.close()

    def test_event_synchronize_without_stream_just_waits(self):
        ev = Event()
        ev._record()
        assert ev.synchronize(timeout=1)

    def test_enqueue_after_close_rejected(self, nvidia):
        s = Stream(nvidia, name="closed")
        s.close()
        with pytest.raises(GpuError, match="closed"):
            s.enqueue(lambda: None)
