"""Device global memory: allocator, pointers, transfers, error detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidPointerError, OutOfMemoryError
from repro.gpu.device import DeviceSpec, Device, Vendor
from repro.gpu.memory import DevicePointer, GlobalAllocator


@pytest.fixture
def small_device():
    """A device with 1 MiB of global memory, for OOM tests."""
    spec = DeviceSpec(name="tiny", vendor=Vendor.NVIDIA, global_mem_bytes=1 << 20)
    return Device(spec, ordinal=1000)


class TestAllocate:
    def test_malloc_returns_nonnull(self, any_device):
        ptr = any_device.allocator.malloc(64)
        assert not ptr.is_null
        any_device.allocator.free(ptr)

    def test_zero_initialized(self, dev_arrays):
        ptr = dev_arrays.alloc(128)
        out = dev_arrays.download(ptr, 128, np.uint8)
        assert not out.any()

    def test_negative_size_rejected(self, any_device):
        with pytest.raises(ValueError):
            any_device.allocator.malloc(-1)

    def test_oom(self, small_device):
        with pytest.raises(OutOfMemoryError):
            small_device.allocator.malloc(2 << 20)

    def test_bytes_accounting(self, small_device):
        alloc = small_device.allocator
        a = alloc.malloc(1000)
        assert alloc.bytes_in_use == 1000
        assert alloc.live_allocations == 1
        alloc.free(a)
        assert alloc.bytes_in_use == 0
        assert alloc.live_allocations == 0

    def test_free_null_is_noop(self, any_device):
        any_device.allocator.free(DevicePointer(any_device.ordinal, 0))

    def test_double_free_detected(self, any_device):
        ptr = any_device.allocator.malloc(8)
        any_device.allocator.free(ptr)
        with pytest.raises(InvalidPointerError):
            any_device.allocator.free(ptr)

    def test_free_of_interior_pointer_rejected(self, any_device):
        ptr = any_device.allocator.malloc(64)
        try:
            with pytest.raises(InvalidPointerError):
                any_device.allocator.free(ptr + 8)
        finally:
            any_device.allocator.free(ptr)

    def test_addresses_never_reused(self, small_device):
        alloc = small_device.allocator
        a = alloc.malloc(64)
        alloc.free(a)
        b = alloc.malloc(64)
        assert b.address != a.address
        # stale pointer stays invalid forever
        with pytest.raises(InvalidPointerError):
            alloc.view(a, 1, np.uint8)
        alloc.free(b)


class TestPointerArithmetic:
    def test_add_sub(self):
        p = DevicePointer(0, 0x1000)
        assert (p + 16).address == 0x1010
        assert (p + 16 - 16) == p

    def test_offset_elements(self):
        p = DevicePointer(0, 0x1000)
        assert p.offset_elements(3, np.float64).address == 0x1000 + 24

    def test_bool_of_null(self):
        assert not DevicePointer(0, 0)
        assert DevicePointer(0, 0x1000)


class TestViewsAndTransfers:
    def test_h2d_d2h_roundtrip(self, dev_arrays):
        data = np.arange(100, dtype=np.float64)
        ptr = dev_arrays.upload(data)
        out = dev_arrays.download(ptr, 100, np.float64)
        assert np.array_equal(out, data)

    def test_view_is_writable_in_place(self, dev_arrays):
        ptr = dev_arrays.alloc(10 * 8)
        view = dev_arrays.device.allocator.view(ptr, 10, np.float64)
        view[:] = 7.0
        out = dev_arrays.download(ptr, 10, np.float64)
        assert (out == 7.0).all()

    def test_view_at_offset(self, dev_arrays):
        data = np.arange(16, dtype=np.int32)
        ptr = dev_arrays.upload(data)
        tail = dev_arrays.device.allocator.view(ptr + 8 * 4, 8, np.int32)
        assert np.array_equal(tail, np.arange(8, 16))

    def test_view_2d_shape(self, dev_arrays):
        data = np.arange(12, dtype=np.int64).reshape(3, 4)
        ptr = dev_arrays.upload(data)
        view = dev_arrays.device.allocator.view(ptr, (3, 4), np.int64)
        assert np.array_equal(view, data)

    def test_overrun_detected(self, any_device):
        ptr = any_device.allocator.malloc(64)
        try:
            with pytest.raises(InvalidPointerError, match="overruns"):
                any_device.allocator.view(ptr, 65, np.uint8)
        finally:
            any_device.allocator.free(ptr)

    def test_null_deref_detected(self, any_device):
        with pytest.raises(InvalidPointerError, match="null"):
            any_device.allocator.view(DevicePointer(any_device.ordinal, 0), 1, np.uint8)

    def test_wrong_device_pointer(self, nvidia, amd):
        ptr = nvidia.allocator.malloc(8)
        try:
            with pytest.raises(InvalidPointerError, match="device"):
                amd.allocator.view(DevicePointer(nvidia.ordinal, ptr.address), 1, np.uint8)
        finally:
            nvidia.allocator.free(ptr)

    def test_d2d_copy(self, dev_arrays):
        src = dev_arrays.upload(np.arange(32, dtype=np.uint8))
        dst = dev_arrays.alloc(32)
        dev_arrays.device.allocator.memcpy_d2d(dst, src, 32)
        assert np.array_equal(dev_arrays.download(dst, 32, np.uint8), np.arange(32, dtype=np.uint8))

    def test_d2h_requires_contiguous(self, dev_arrays):
        ptr = dev_arrays.upload(np.arange(16, dtype=np.int32))
        host = np.zeros((4, 8), dtype=np.int32)[:, ::2]  # non-contiguous
        with pytest.raises(ValueError, match="contiguous"):
            dev_arrays.device.allocator.memcpy_d2h(host, ptr)

    def test_memset(self, dev_arrays):
        ptr = dev_arrays.alloc(16)
        dev_arrays.device.allocator.memset(ptr, 0xAB, 16)
        out = dev_arrays.download(ptr, 16, np.uint8)
        assert (out == 0xAB).all()

    def test_memset_partial(self, dev_arrays):
        ptr = dev_arrays.alloc(16)
        dev_arrays.device.allocator.memset(ptr, 0xFF, 8)
        out = dev_arrays.download(ptr, 16, np.uint8)
        assert (out[:8] == 0xFF).all() and not out[8:].any()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(-(10**9), 10**9), min_size=1, max_size=64),
        st.sampled_from([np.int32, np.int64, np.float64]),
    )
    def test_roundtrip_property(self, values, dtype):
        from repro.gpu.device import get_device

        data = np.asarray(values, dtype=dtype)
        alloc = get_device(0).allocator
        ptr = alloc.malloc(data.nbytes)
        try:
            alloc.memcpy_h2d(ptr, data)
            out = np.zeros_like(data)
            alloc.memcpy_d2h(out, ptr)
            assert np.array_equal(out, data)
        finally:
            alloc.free(ptr)
