"""WaveVectorEngine behaviour: lane batching, wave barriers, guard rails."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu import LaunchConfig, launch_kernel
from repro.gpu.dim import Dim3
from repro.gpu.engine import (
    _MAX_MAP_THREADS,
    _MAX_VECTOR_THREADS,
    _VECTOR_CHUNK_THREADS,
)
from repro.gpu.vector import VectorThreadCtx


class TestVectorMode:
    def test_lane_batched_result_matches_indices(self, nvidia):
        """Straight-line sync-free kernels execute array-at-a-time."""
        grid, block = 6, 32
        n = grid * block

        def kernel(ctx, out):
            view = ctx.deref(out, n, np.float64)
            ctx.store(view, ctx.global_flat_id, ctx.global_flat_id * 2.0)

        kernel.sync_free = True
        d_out = nvidia.allocator.malloc(n * 8)
        stats = launch_kernel(LaunchConfig.create(grid, block), kernel, (d_out,), nvidia)
        assert stats.engine == "vector"
        assert stats.threads_run == n
        assert stats.blocks_run == grid
        out = np.zeros(n)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert np.array_equal(out, np.arange(n) * 2.0)
        nvidia.allocator.free(d_out)

    def test_chunking_across_batches_is_seamless(self, nvidia):
        """A launch bigger than one lane chunk still covers every thread."""
        block = 256
        grid = _VECTOR_CHUNK_THREADS // block + 1  # one full chunk + one partial
        n = grid * block
        assert n > _VECTOR_CHUNK_THREADS

        def kernel(ctx, out):
            view = ctx.deref(out, n, np.int64)
            ctx.store(view, ctx.global_flat_id, ctx.global_flat_id)

        kernel.sync_free = True
        d_out = nvidia.allocator.malloc(n * 8)
        stats = launch_kernel(LaunchConfig.create(grid, block), kernel, (d_out,), nvidia)
        assert stats.engine == "vector"
        assert stats.threads_run == n
        out = np.zeros(n, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert np.array_equal(out, np.arange(n))
        nvidia.allocator.free(d_out)

    def test_index_identities_hold_per_lane(self, nvidia):
        grid, block = Dim3(3, 2, 1), Dim3(8, 4, 1)
        ctx = VectorThreadCtx(
            nvidia, grid, block,
            mode="vector",
            global_flat=np.arange(grid.volume * block.volume, dtype=np.int64),
        )
        assert np.array_equal(
            ctx.global_id_x, ctx.block_idx.x * block.x + ctx.thread_idx.x
        )
        assert np.array_equal(
            ctx.global_flat_id,
            ctx.flat_block_id * ctx.num_threads + ctx.flat_thread_id,
        )
        assert np.array_equal(ctx.lane_id, ctx.flat_thread_id % ctx.warp_size)

    def test_sync_raises(self, nvidia):
        def kernel(ctx):
            ctx.sync_threads()

        kernel.sync_free = True
        with pytest.raises(LaunchError, match="sync-free"):
            launch_kernel(
                LaunchConfig.create(1, 8, engine="vector"), kernel, (), nvidia
            )

    def test_warp_collective_raises(self, nvidia):
        def kernel(ctx):
            ctx.shfl_down_sync(ctx.lane_id, 1)

        kernel.sync_free = True
        with pytest.raises(LaunchError, match="cannot be vectorized"):
            launch_kernel(
                LaunchConfig.create(1, 8, engine="vector"), kernel, (), nvidia
            )

    def test_atomic_raises(self, nvidia):
        d = nvidia.allocator.malloc(8)

        def kernel(ctx, ptr):
            ctx.atomic.add(ctx.deref(ptr, 1, np.int64), 0, 1)

        kernel.sync_free = True
        with pytest.raises(LaunchError, match="cannot be vectorized"):
            launch_kernel(
                LaunchConfig.create(1, 8, engine="vector"), kernel, (d,), nvidia
            )
        nvidia.allocator.free(d)

    def test_shared_memory_raises(self, nvidia):
        def kernel(ctx):
            ctx.shared_array("tile", 4, np.float64)

        kernel.sync_free = True
        with pytest.raises(LaunchError, match="sync-free vector engine"):
            launch_kernel(
                LaunchConfig.create(1, 8, engine="vector"), kernel, (), nvidia
            )


class TestWaveMode:
    def test_shared_memory_and_barrier_work(self, nvidia):
        """Wave batches see real per-block shared memory across a barrier."""
        grid, block = 4, 16
        n = grid * block

        def kernel(ctx, d_in, d_out):
            tile = ctx.shared_array("tile", block, np.float64)
            vin = ctx.deref(d_in, n, np.float64)
            ctx.store(tile, ctx.flat_thread_id, ctx.load(vin, ctx.global_flat_id))
            ctx.sync_threads()
            rev = block - 1 - ctx.flat_thread_id
            vout = ctx.deref(d_out, n, np.float64)
            ctx.store(vout, ctx.global_flat_id, ctx.load(tile, rev))

        data = np.arange(n, dtype=np.float64)
        d_in = nvidia.allocator.malloc(n * 8)
        d_out = nvidia.allocator.malloc(n * 8)
        nvidia.allocator.memcpy_h2d(d_in, data)
        stats = launch_kernel(
            LaunchConfig.create(grid, block), kernel, (d_in, d_out), nvidia
        )
        assert stats.engine == "wave"
        assert stats.barriers == n  # one barrier per simulated thread
        assert stats.shared_declarations == n
        out = np.zeros(n)
        nvidia.allocator.memcpy_d2h(out, d_out)
        expected = data.reshape(grid, block)[:, ::-1].ravel()
        assert np.array_equal(out, expected)
        for ptr in (d_in, d_out):
            nvidia.allocator.free(ptr)

    def test_dynamic_shared_works(self, nvidia):
        def kernel(ctx, out):
            dyn = ctx.dynamic_shared(np.float64)
            ctx.store(dyn, ctx.flat_thread_id, ctx.flat_thread_id + 0.5)
            ctx.sync_threads()
            view = ctx.deref(out, 4, np.float64)
            ctx.store(view, ctx.flat_thread_id, ctx.load(dyn, 3 - ctx.flat_thread_id))

        d_out = nvidia.allocator.malloc(4 * 8)
        launch_kernel(
            LaunchConfig.create(1, 4, shared_bytes=64, engine="wave"),
            kernel, (d_out,), nvidia,
        )
        out = np.zeros(4)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert np.array_equal(out, [3.5, 2.5, 1.5, 0.5])
        nvidia.allocator.free(d_out)

    def test_wave_blocks_do_not_share_shared_memory(self, nvidia):
        grid, block = 3, 4
        n = grid * block

        def kernel(ctx, out):
            acc = ctx.shared_array("acc", 1, np.float64)
            ctx.store(acc, 0, ctx.flat_block_id * 10.0)
            ctx.sync_threads()
            view = ctx.deref(out, n, np.float64)
            ctx.store(view, ctx.global_flat_id, ctx.load(acc, 0))

        d_out = nvidia.allocator.malloc(n * 8)
        launch_kernel(
            LaunchConfig.create(grid, block, engine="wave"), kernel, (d_out,), nvidia
        )
        out = np.zeros(n)
        nvidia.allocator.memcpy_d2h(out, d_out)
        expected = np.repeat(np.arange(grid) * 10.0, block)
        assert np.array_equal(out, expected)
        nvidia.allocator.free(d_out)


class TestGuardRails:
    def test_vector_cap_is_structured(self, nvidia):
        def kernel(ctx):
            pass

        kernel.sync_free = True
        total = (1 << 21) * 256  # 2**29 > the 2**28 vector cap
        with pytest.raises(LaunchError, match="guard rail") as info:
            launch_kernel(
                LaunchConfig.create(1 << 21, 256, engine="vector"), kernel, (), nvidia
            )
        err = info.value
        assert err.engine == "vector"
        assert err.cap == _MAX_VECTOR_THREADS
        assert err.requested == total
        assert "shard" in err.hint

    def test_map_cap_suggests_vector_path(self, nvidia):
        def kernel(ctx):
            pass

        kernel.sync_free = True
        with pytest.raises(LaunchError, match="guard rail") as info:
            launch_kernel(
                LaunchConfig.create(100_000, 256, engine="map"), kernel, (), nvidia
            )
        err = info.value
        assert err.engine == "map"
        assert err.cap == _MAX_MAP_THREADS
        assert err.requested == 100_000 * 256
        assert "vectorize=True" in err.hint

    def test_paper_scale_sync_free_launch_is_accepted(self, nvidia):
        """Fig. 6 sizes (tens of millions of threads) now actually run."""
        block = 256
        grid = (1 << 24) // block  # 16.7M threads: over the map cap's reach

        def kernel(ctx):
            pass

        kernel.sync_free = True
        stats = launch_kernel(LaunchConfig.create(grid, block), kernel, (), nvidia)
        assert stats.engine == "vector"
        assert stats.threads_run == 1 << 24
