"""Atomic operations: single-threaded semantics + multithreaded atomicity."""

import threading

import numpy as np
import pytest

from repro.gpu.atomics import AtomicDomain


@pytest.fixture
def atomics():
    return AtomicDomain()


@pytest.fixture
def arr():
    return np.zeros(4, dtype=np.int64)


class TestSemantics:
    def test_add_returns_old(self, atomics, arr):
        arr[0] = 10
        assert atomics.add(arr, 0, 5) == 10
        assert arr[0] == 15

    def test_sub(self, atomics, arr):
        arr[1] = 10
        assert atomics.sub(arr, 1, 3) == 10
        assert arr[1] == 7

    def test_max_updates(self, atomics, arr):
        arr[0] = 5
        assert atomics.max(arr, 0, 9) == 5
        assert arr[0] == 9

    def test_max_keeps_larger(self, atomics, arr):
        arr[0] = 9
        atomics.max(arr, 0, 5)
        assert arr[0] == 9

    def test_min(self, atomics, arr):
        arr[0] = 9
        assert atomics.min(arr, 0, 5) == 9
        assert arr[0] == 5

    def test_exchange(self, atomics, arr):
        arr[0] = 1
        assert atomics.exchange(arr, 0, 2) == 1
        assert arr[0] == 2

    def test_cas_success(self, atomics, arr):
        arr[0] = 7
        assert atomics.cas(arr, 0, 7, 42) == 7
        assert arr[0] == 42

    def test_cas_failure_leaves_value(self, atomics, arr):
        arr[0] = 7
        assert atomics.cas(arr, 0, 8, 42) == 7
        assert arr[0] == 7

    def test_bitwise(self, atomics, arr):
        arr[0] = 0b1100
        atomics.and_(arr, 0, 0b1010)
        assert arr[0] == 0b1000
        atomics.or_(arr, 0, 0b0001)
        assert arr[0] == 0b1001
        atomics.xor(arr, 0, 0b1111)
        assert arr[0] == 0b0110

    def test_inc_wraps_at_limit(self, atomics, arr):
        arr[0] = 0
        for expected in (0, 1, 2):
            assert atomics.inc(arr, 0, 2) == expected

        # after hitting the limit the counter wrapped to 0
        assert arr[0] == 0

    def test_float_add(self, atomics):
        farr = np.zeros(1)
        atomics.add(farr, 0, 0.5)
        atomics.add(farr, 0, 0.25)
        assert farr[0] == 0.75

    def test_multi_index(self, atomics):
        grid = np.zeros((3, 3), dtype=np.int64)
        atomics.add(grid, (1, 2), 4)
        assert grid[1, 2] == 4


class TestAtomicity:
    def test_concurrent_adds_lose_nothing(self, atomics):
        """The reason atomics exist: N racing increments sum exactly."""
        target = np.zeros(1, dtype=np.int64)
        n_threads, per_thread = 8, 500

        def work():
            for _ in range(per_thread):
                atomics.add(target, 0, 1)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert target[0] == n_threads * per_thread

    def test_concurrent_cas_single_winner(self, atomics):
        target = np.zeros(1, dtype=np.int64)
        winners = []
        lock = threading.Lock()

        def work(tid):
            old = atomics.cas(target, 0, 0, tid)
            if old == 0:
                with lock:
                    winners.append(tid)

        threads = [threading.Thread(target=work, args=(i + 1,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(winners) == 1
        assert target[0] == winners[0]
