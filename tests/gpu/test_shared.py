"""Block-scoped shared memory semantics."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu.shared import SharedMemory


class TestSharedArrays:
    def test_idempotent_per_name(self):
        shm = SharedMemory(limit_bytes=48 * 1024)
        a = shm.array("tile", 128, np.float64)
        b = shm.array("tile", 128, np.float64)
        assert a is b

    def test_distinct_names_distinct_arrays(self):
        shm = SharedMemory(limit_bytes=48 * 1024)
        assert shm.array("a", 4, np.int32) is not shm.array("b", 4, np.int32)

    def test_zero_initialized(self):
        shm = SharedMemory(limit_bytes=1024)
        assert not shm.array("z", 16, np.float64).any()

    def test_writes_visible_to_other_getters(self):
        shm = SharedMemory(limit_bytes=1024)
        shm.array("x", 8, np.int32)[:] = 5
        assert (shm.array("x", 8, np.int32) == 5).all()

    def test_redeclaration_shape_conflict(self):
        shm = SharedMemory(limit_bytes=1024)
        shm.array("t", 8, np.int32)
        with pytest.raises(LaunchError, match="redeclared"):
            shm.array("t", 16, np.int32)

    def test_redeclaration_dtype_conflict(self):
        shm = SharedMemory(limit_bytes=1024)
        shm.array("t", 8, np.int32)
        with pytest.raises(LaunchError, match="redeclared"):
            shm.array("t", 8, np.float64)

    def test_2d_shape(self):
        shm = SharedMemory(limit_bytes=4096)
        tile = shm.array("tile", (16, 16), np.float32)
        assert tile.shape == (16, 16)

    def test_limit_enforced(self):
        shm = SharedMemory(limit_bytes=64)
        with pytest.raises(LaunchError, match="limit"):
            shm.array("big", 128, np.float64)

    def test_cumulative_limit(self):
        shm = SharedMemory(limit_bytes=128)
        shm.array("a", 8, np.float64)  # 64 B
        shm.array("b", 8, np.float64)  # 128 B total
        with pytest.raises(LaunchError):
            shm.array("c", 1, np.float64)

    def test_bytes_used(self):
        shm = SharedMemory(limit_bytes=1024, dynamic_bytes=100)
        shm.array("a", 10, np.float64)
        assert shm.bytes_used == 80 + 100


class TestDynamicShared:
    def test_dynamic_region_size(self):
        shm = SharedMemory(limit_bytes=1024, dynamic_bytes=64)
        assert shm.dynamic(np.float64).shape == (8,)

    def test_dynamic_truncates_to_whole_elements(self):
        shm = SharedMemory(limit_bytes=1024, dynamic_bytes=60)
        assert shm.dynamic(np.float64).shape == (7,)

    def test_dynamic_counts_against_limit(self):
        with pytest.raises(LaunchError, match="dynamic"):
            SharedMemory(limit_bytes=32, dynamic_bytes=64)

    def test_dynamic_plus_static_budget(self):
        shm = SharedMemory(limit_bytes=128, dynamic_bytes=64)
        shm.array("a", 8, np.float64)  # exactly fills the remaining 64
        with pytest.raises(LaunchError):
            shm.array("b", 1, np.uint8)

    def test_dynamic_zero_default(self):
        shm = SharedMemory(limit_bytes=64)
        assert shm.dynamic(np.float64).shape == (0,)
