"""Constant memory: the fourth computational memory space of §2.5."""

import numpy as np
import pytest

from repro import cuda, ompx
from repro.errors import GpuError
from repro.gpu.device import Device, DeviceSpec, Vendor, get_device


@pytest.fixture
def fresh_device():
    """An isolated device so constant state does not leak across tests."""
    spec = DeviceSpec(name="const-test", vendor=Vendor.NVIDIA, constant_mem_bytes=256)
    return Device(spec, ordinal=2000)


class TestDeviceConstantStore:
    def test_write_read_roundtrip(self, fresh_device):
        data = np.arange(8, dtype=np.float64)
        fresh_device.write_constant("table", data)
        out = fresh_device.read_constant("table")
        assert np.array_equal(out, data)

    def test_read_is_readonly(self, fresh_device):
        fresh_device.write_constant("ro", np.zeros(4))
        view = fresh_device.read_constant("ro")
        with pytest.raises(ValueError):
            view[0] = 1

    def test_write_copies_host_data(self, fresh_device):
        data = np.zeros(4)
        fresh_device.write_constant("snap", data)
        data[:] = 99  # later host mutation must not leak into the symbol
        assert not fresh_device.read_constant("snap").any()

    def test_unknown_symbol(self, fresh_device):
        with pytest.raises(GpuError, match="no constant symbol"):
            fresh_device.read_constant("nope")

    def test_budget_enforced(self, fresh_device):
        with pytest.raises(GpuError, match="overflow"):
            fresh_device.write_constant("big", np.zeros(64))  # 512 B > 256 B

    def test_rewrite_replaces_budget(self, fresh_device):
        fresh_device.write_constant("sym", np.zeros(16))  # 128 B
        fresh_device.write_constant("sym", np.zeros(24))  # replace with 192 B
        assert fresh_device.constant_bytes_in_use == 192

    def test_accumulates_across_symbols(self, fresh_device):
        fresh_device.write_constant("a", np.zeros(16))
        fresh_device.write_constant("b", np.zeros(16))
        assert fresh_device.constant_bytes_in_use == 256
        with pytest.raises(GpuError):
            fresh_device.write_constant("c", np.zeros(1))


class TestKernelAccess:
    def test_cuda_symbol_flow(self, nvidia):
        cuda.cudaSetDevice(0)
        coeffs = np.array([0.25, 0.5, 0.25])
        cuda.cudaMemcpyToSymbol("k_coeffs", coeffs)
        d_out = cuda.cudaMalloc(3 * 8)

        @cuda.kernel(sync_free=True)
        def k(t, out):
            c = t.constant("k_coeffs")
            i = t.global_thread_id
            if i < 3:
                t.array(out, 3, np.float64)[i] = c[i] * 4

        cuda.launch(k, 1, 4, (d_out,), device=nvidia)
        cuda.cudaDeviceSynchronize()
        out = np.zeros(3)
        cuda.cudaMemcpy(out, d_out, 24, cuda.cudaMemcpyDeviceToHost)
        assert np.array_equal(out, [1.0, 2.0, 1.0])
        back = np.zeros(3)
        cuda.cudaMemcpyFromSymbol(back, "k_coeffs")
        assert np.array_equal(back, coeffs)
        cuda.cudaFree(d_out)

    def test_ompx_symbol_flow(self, nvidia):
        weights = np.array([2.0, 3.0])
        ompx.ompx_memcpy_to_symbol("weights", weights, nvidia)
        seen = []

        def region(x):
            if x.thread_id_x() == 0:
                seen.append(float(x.constant("weights")[1]))

        ompx.target_teams_bare(nvidia, 1, 2, region)
        assert seen == [3.0]
        back = np.zeros(2)
        ompx.ompx_memcpy_from_symbol(back, "weights", nvidia)
        assert np.array_equal(back, weights)

    def test_constants_are_per_device(self, nvidia, amd):
        nvidia.write_constant("dev_local", np.array([1.0]))
        with pytest.raises(GpuError):
            amd.read_constant("dev_local")

    def test_kernel_cannot_write_constant(self, nvidia):
        nvidia.write_constant("immutable", np.zeros(2))

        def region(x):
            x.constant("immutable")[0] = 5  # must raise inside the kernel

        from repro.errors import LaunchError

        with pytest.raises(LaunchError):
            ompx.target_teams_bare(nvidia, 1, 1, region)
