"""The MI250's dual-GCD exposure: two independent devices, one card."""

import numpy as np
import pytest

from repro.errors import InvalidPointerError
from repro.gpu import LaunchConfig, get_device, launch_kernel
from repro.gpu.device import MI250_SPEC
from repro.openmp.data import omp_target_alloc, omp_target_free, omp_target_memcpy


@pytest.fixture
def gcd0():
    return get_device(1)


@pytest.fixture
def gcd1():
    return get_device(2)


class TestSeparateDevices:
    def test_same_silicon_description(self, gcd0, gcd1):
        assert gcd0.spec is MI250_SPEC
        assert gcd1.spec is MI250_SPEC
        assert gcd0 is not gcd1

    def test_independent_allocators(self, gcd0, gcd1):
        ptr = gcd0.allocator.malloc(64)
        # a GCD-0 pointer is meaningless on GCD 1
        with pytest.raises(InvalidPointerError):
            gcd1.allocator.view(ptr, 64, np.uint8)
        gcd0.allocator.free(ptr)

    def test_independent_constant_banks(self, gcd0, gcd1):
        gcd0.write_constant("gcd_local", np.array([1.0]))
        from repro.errors import GpuError

        with pytest.raises(GpuError):
            gcd1.read_constant("gcd_local")

    def test_kernels_run_on_either_gcd(self, gcd0, gcd1):
        for device in (gcd0, gcd1):
            d = device.allocator.malloc(8)

            def kernel(ctx, out):
                if ctx.flat_thread_id == 0:
                    ctx.deref(out, 1, np.int64)[0] = ctx.warp_size

            launch_kernel(LaunchConfig.create(1, 64), kernel, (d,), device)
            out = np.zeros(1, dtype=np.int64)
            device.allocator.memcpy_d2h(out, d)
            assert out[0] == 64  # both GCDs are wavefront64
            device.allocator.free(d)

    def test_peer_transfer_between_gcds(self, gcd0, gcd1):
        """omp_target_memcpy stages GCD-to-GCD copies through the host."""
        data = np.arange(32, dtype=np.float64)
        src = omp_target_alloc(data.nbytes, gcd0)
        dst = omp_target_alloc(data.nbytes, gcd1)
        omp_target_memcpy(src, data, data.nbytes, dst_device=gcd0)
        omp_target_memcpy(dst, src, data.nbytes, dst_device=gcd1, src_device=gcd0)
        out = np.zeros_like(data)
        omp_target_memcpy(out, dst, data.nbytes, src_device=gcd1)
        assert np.array_equal(out, data)
        omp_target_free(src, gcd0)
        omp_target_free(dst, gcd1)
