"""Each app parses exactly the Figure 6 command line, and rejects junk."""

import pytest

from repro.apps import ALL_APPS, Adam, AIDW, RSBench, SU3, Stencil1D, XSBench
from repro.errors import AppError


class TestFigure6CommandLines:
    @pytest.mark.parametrize("app_cls", ALL_APPS)
    def test_paper_command_line_parses(self, app_cls):
        params = app_cls.parse_args(app_cls.command_line.split())
        assert params == app_cls.paper_params()

    def test_xsbench_paper_scale(self):
        params = XSBench.paper_params()
        assert params["n_isotopes"] == 355
        assert params["n_gridpoints"] == 11303
        assert params["lookups"] == 17_000_000

    def test_rsbench_paper_scale(self):
        params = RSBench.paper_params()
        assert params["n_windows"] == 100
        assert params["poles_per_window"] == 10

    def test_su3_flags(self):
        params = SU3.parse_args("-i 1000 -l 32 -t 128 -v 3 -w 1".split())
        assert params["iterations"] == 1000
        assert params["sites"] == 32**4
        assert params["block"] == 128
        assert params["verify"] == 3
        assert params["warmups"] == 1

    def test_su3_flag_order_independent(self):
        a = SU3.parse_args("-l 16 -i 5 -t 64 -v 1 -w 0".split())
        b = SU3.parse_args("-i 5 -t 64 -l 16 -w 0 -v 1".split())
        assert a == b

    def test_aidw_args(self):
        params = AIDW.parse_args(["100", "0", "100"])
        assert params["dnum"] == params["inum"] == 100 * 256
        assert params["repeat"] == 100

    def test_adam_args(self):
        params = Adam.parse_args(["10000", "200", "100"])
        assert (params["n"], params["steps"], params["repeat"]) == (10000, 200, 100)

    def test_stencil_args(self):
        params = Stencil1D.parse_args(["134217728", "1000"])
        assert params["n"] == 134217728
        assert params["iterations"] == 1000


class TestRejection:
    def test_xsbench_requires_event_mode(self):
        with pytest.raises(AppError):
            XSBench.parse_args(["-m", "history"])

    def test_rsbench_requires_event_mode(self):
        with pytest.raises(AppError):
            RSBench.parse_args(["-m", "history"])

    def test_su3_unknown_flag(self):
        with pytest.raises(AppError, match="unknown flag"):
            SU3.parse_args(["-q", "1"])

    def test_su3_missing_value(self):
        with pytest.raises(AppError, match="needs a value"):
            SU3.parse_args(["-i"])

    def test_aidw_bad_mode(self):
        with pytest.raises(AppError, match="mode"):
            AIDW.parse_args(["100", "7", "100"])

    def test_aidw_wrong_arity(self):
        with pytest.raises(AppError):
            AIDW.parse_args(["100"])

    def test_adam_nonpositive(self):
        with pytest.raises(AppError):
            Adam.parse_args(["0", "200", "100"])

    def test_stencil_nonpositive(self):
        with pytest.raises(AppError):
            Stencil1D.parse_args(["-5", "1000"])

    def test_stencil_wrong_arity(self):
        with pytest.raises(AppError):
            Stencil1D.parse_args(["134217728"])


class TestAppMetadata:
    def test_figure6_order_and_names(self):
        names = [cls.name for cls in ALL_APPS]
        assert names == ["XSBench", "RSBench", "SU3", "AIDW", "Adam", "Stencil 1D"]

    @pytest.mark.parametrize("app_cls", ALL_APPS)
    def test_every_app_has_description(self, app_cls):
        assert app_cls.description
        assert app_cls.command_line

    def test_stencil_reports_per_launch(self):
        assert Stencil1D.reports == "per_launch"

    def test_xsbench_marks_paper_exclusion(self):
        assert XSBench.omp_excluded_in_paper
