"""Functional integration: every app variant runs on the virtual GPU and
matches the NumPy golden reference — on both device presets.

This is the cross-layer heart of the test suite: the ompx port, the CUDA
original, and the classic OpenMP version of each benchmark must compute
identical answers (that is what "porting is text replacement" promises).
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS, VersionLabel
from repro.gpu import get_device
from repro.openmp.data import data_environment


@pytest.fixture(autouse=True)
def clean_env():
    yield
    for ordinal in (0, 1):
        data_environment(get_device(ordinal)).reset()


@pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda c: c.name)
@pytest.mark.parametrize("variant", [
    VersionLabel.OMPX, VersionLabel.OMP, VersionLabel.NATIVE_LLVM,
])
@pytest.mark.parametrize("ordinal", [0, 1], ids=["a100", "mi250"])
def test_variant_matches_reference(app_cls, variant, ordinal):
    app = app_cls()
    params = app.functional_params()
    result = app.run_single(variant, params, get_device(ordinal))
    assert app.verify(result, params), (
        f"{app.name} {variant} on device {ordinal} diverged from reference"
    )


@pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda c: c.name)
def test_all_variants_agree_bitwise_on_checksum(app_cls):
    """Not just 'close to reference': the variants agree with each other."""
    app = app_cls()
    params = app.functional_params()
    device = get_device(0)
    sums = {
        variant: app.run_single(variant, params, device).checksum
        for variant in app.functional_variants
    }
    values = list(sums.values())
    assert all(np.isclose(v, values[0], rtol=1e-9) for v in values), sums


@pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda c: c.name)
def test_reference_is_deterministic(app_cls):
    app = app_cls()
    params = app.functional_params()
    a = app.reference(params)
    b = app.reference(params)
    assert np.array_equal(a, b)


def test_stencil_multiple_iterations_functional():
    """The iterated stencil (ping-pong buffers) stays correct."""
    from repro.apps import Stencil1D

    app = Stencil1D()
    params = {"n": 300, "iterations": 3, "radius": 2, "block": 32}
    for variant in app.functional_variants:
        result = app.run_single(variant, params, get_device(0))
        assert app.verify(result, params), variant


def test_adam_multiple_repeats_functional():
    from repro.apps import Adam

    app = Adam()
    params = {"n": 100, "steps": 4, "repeat": 3, "block": 32}
    for variant in app.functional_variants:
        result = app.run_single(variant, params, get_device(0))
        assert app.verify(result, params), variant
