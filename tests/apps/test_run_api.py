"""The unified run() entry point and the removed run_functional* trio.

One surface replaces the old trio: ``run(app, config)`` (or keyword
overrides) resolves single-device, sharded, resilient and
externally-pooled execution — all bit-identical for the data-parallel
apps.  The old method names finished their DeprecationWarning cycle in
release 1.2 and now raise a pointed :class:`AttributeError` naming the
replacement.
"""

import warnings

import numpy as np
import pytest

from repro.apps import Adam, ExecutionConfig, VersionLabel, XSBench, run
from repro.gpu import get_device
from repro.resilience import RecoveryReport, ResilientPool
from repro.sched import DevicePool

pytestmark = [pytest.mark.sched]


@pytest.fixture(scope="module")
def baseline():
    """Fault-free single-device reference for the equivalence checks."""
    app = XSBench()
    params = app.functional_params()
    return app, params, app.run_single(VersionLabel.OMPX, params, get_device(0))


class TestUnifiedRun:
    def test_default_is_single_device_ompx(self, baseline):
        app, params, clean = baseline
        result = run(app, params=params)
        assert result.checksum == clean.checksum
        np.testing.assert_array_equal(result.output, clean.output)

    def test_config_object_and_overrides_compose(self, baseline):
        app, params, clean = baseline
        config = ExecutionConfig(variant=VersionLabel.OMPX, params=params)
        result = run(app, config, devices=2)
        assert result.checksum == clean.checksum

    def test_sharded_run_matches_single_device(self, baseline):
        app, params, clean = baseline
        result = run(app, params=params, devices=3)
        assert result.checksum == clean.checksum
        np.testing.assert_array_equal(result.output, clean.output)

    def test_resilient_run_matches_and_reports(self, baseline):
        app, params, clean = baseline
        report = RecoveryReport()
        result = run(app, params=params, devices=2, resilient=True,
                     report=report)
        assert result.checksum == clean.checksum
        assert report.total == 0  # clean run: resilience is a no-op

    def test_external_pool_is_used_not_closed(self, baseline):
        app, params, clean = baseline
        with DevicePool(2) as pool:
            result = run(app, params=params, pool=pool)
            assert result.checksum == clean.checksum
            fence = pool.submit_call(lambda device: "alive")
            assert fence.result(timeout=30) == "alive"

    def test_external_resilient_pool_routes_run_to_completion(
        self, baseline
    ):
        app, params, clean = baseline
        with DevicePool(2) as pool:
            with ResilientPool(pool) as rpool:
                result = run(app, params=params, pool=rpool)
        assert result.checksum == clean.checksum

    def test_trace_true_attaches_a_tracer(self):
        app = Adam()
        result = run(app, trace=True)
        assert result.tracer is not None
        assert result.tracer.counters.get("launches", 0) >= 1

    def test_trace_false_leaves_tracer_none(self):
        result = run(Adam())
        assert result.tracer is None


class TestRemovedRunners:
    """The 1.2 removal: old names raise a helpful AttributeError."""

    @pytest.mark.parametrize("old_name, replacement_hint", [
        ("run_functional", "repro.apps.run(app, variant="),
        ("run_functional_sharded", "repro.apps.run(app, devices=N)"),
        ("run_functional_resilient", "repro.apps.run(app, resilient=True)"),
    ])
    def test_removed_name_raises_pointed_error(
        self, baseline, old_name, replacement_hint
    ):
        app, _, _ = baseline
        with pytest.raises(AttributeError) as excinfo:
            getattr(app, old_name)
        message = str(excinfo.value)
        assert old_name in message
        assert "removed in release 1.2" in message
        assert replacement_hint in message

    def test_removed_names_fail_hasattr(self, baseline):
        app, _, _ = baseline
        assert not hasattr(app, "run_functional")
        assert not hasattr(app, "run_functional_sharded")
        assert not hasattr(app, "run_functional_resilient")

    def test_other_missing_attributes_raise_plain_error(self, baseline):
        app, _, _ = baseline
        with pytest.raises(AttributeError, match="no attribute"):
            app.definitely_not_a_method

    def test_new_surface_does_not_warn(self, baseline):
        app, params, _ = baseline
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run(app, params=params)
            app.run_single(VersionLabel.OMPX, params, get_device(0))
