"""Combined CLI flags: --resilient --trace --devices N (and --serve) together.

Each flag is covered separately elsewhere; these tests pin the
*composition* — a resilient sharded run that is simultaneously traced
must exit 0, print the single-device checksum, emit a valid Chrome
trace, and print the recovery report.
"""

import pytest

from repro.apps import Stencil1D, VersionLabel, XSBench
from repro.apps.__main__ import main
from repro.gpu import get_device
from repro.trace.export import validate_chrome_trace

pytestmark = [pytest.mark.sched, pytest.mark.resilience]

#: Two structurally different apps: XSBench shards self-contained pool
#: jobs; Stencil-1D drives raw streams with halo exchange.
APPS = {"xsbench": XSBench, "stencil1d": Stencil1D}


def _expected_checksum(key):
    app = APPS[key]()
    params = app.functional_params()
    return app.run_single(VersionLabel.OMPX, params, get_device(0)).checksum


@pytest.mark.parametrize("key", sorted(APPS))
def test_resilient_trace_devices_compose(key, tmp_path, capsys):
    trace_path = tmp_path / f"{key}.json"
    code = main([
        key, "--run", "--resilient", "--trace", str(trace_path),
        "--devices", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    # The sharded resilient run matches the single-device checksum.
    assert f"checksum = {_expected_checksum(key):.6f}" in out
    assert "verification PASSED" in out
    # The recovery report printed (clean run, but the report is the
    # operator surface the flag promises).
    assert "recovery report:" in out
    # The trace is a valid Chrome trace_event file with real content.
    events = validate_chrome_trace(trace_path)
    assert events
    assert f"trace written to {trace_path}" in out


@pytest.mark.parametrize("key", sorted(APPS))
def test_resilient_trace_survives_an_injected_fault(key, tmp_path, capsys):
    # The full stack at once: fault plan + resilient pool + tracing.
    trace_path = tmp_path / f"{key}-faulted.json"
    code = main([
        key, "--run", "--resilient", "--trace", str(trace_path),
        "--devices", "2", "--faults", "launch:kernel_fault@1 device=1;seed=9",
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert f"checksum = {_expected_checksum(key):.6f}" in out
    assert "verification PASSED" in out
    assert "recovery report:" in out
    assert "injected" in out  # the fault plan summary printed
    validate_chrome_trace(trace_path)


def test_serve_composes_with_resilient_trace(tmp_path, capsys):
    trace_path = tmp_path / "serve.json"
    code = main([
        "adam", "--serve", "--tenants", "3", "--resilient",
        "--trace", str(trace_path), "--devices", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    for tenant in ("tenant0", "tenant1", "tenant2"):
        assert f"{tenant}: checksum =" in out
    assert out.count("verification PASSED") == 3
    assert "kernel service:" in out
    assert "resilient backend" in out
    # Identical submissions coalesced: 3 submitted, fewer executions.
    assert "3 submitted" in out
    events = validate_chrome_trace(trace_path)
    assert events


class TestDeviceSpecFlag:
    """--device-spec resolves a preset name to a registered ordinal."""

    def test_runs_on_the_named_preset(self, capsys):
        code = main(["su3et", "--run", "--variant", "ompx",
                     "--device-spec", "xehpc"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "verification PASSED" in out

    def test_spec_name_is_case_insensitive(self, capsys):
        code = main(["adam", "--run", "--device-spec", "A100"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "verification PASSED" in out

    def test_unknown_spec_name_exits_2(self, capsys):
        code = main(["adam", "--run", "--device-spec", "h100"])
        err = capsys.readouterr().err
        assert code == 2
        assert "bad --device-spec" in err
        assert "xehpc" in err  # the refusal lists what exists
