"""Per-app performance-model shape: the §4.2 claims, app by app.

These duplicate the harness's relation checks at a finer grain so a
regression points at the responsible app immediately.
"""

import pytest

from repro.apps import ALL_APPS, Adam, AIDW, RSBench, SU3, Stencil1D, VersionLabel, XSBench
from repro.perf import AMD_SYSTEM, NVIDIA_SYSTEM


def times(app, system):
    params = app.paper_params()
    return {
        label: app.reported_seconds(app.estimate(label, system, params))
        for label in VersionLabel.ALL
    }


class TestXSBench:
    @pytest.mark.parametrize("system", [NVIDIA_SYSTEM, AMD_SYSTEM], ids=lambda s: s.name)
    def test_ompx_beats_both_natives(self, system):
        t = times(XSBench(), system)
        assert t[VersionLabel.OMPX] < t[VersionLabel.NATIVE_LLVM]
        assert t[VersionLabel.OMPX] < t[VersionLabel.NATIVE_VENDOR]

    def test_magnitude_is_sub_second_on_a100(self):
        t = times(XSBench(), NVIDIA_SYSTEM)
        assert 0.1 < t[VersionLabel.OMPX] < 2.0  # paper: ~0.4s


class TestRSBench:
    @pytest.mark.parametrize("system", [NVIDIA_SYSTEM, AMD_SYSTEM], ids=lambda s: s.name)
    def test_ompx_beats_llvm_native(self, system):
        t = times(RSBench(), system)
        assert t[VersionLabel.OMPX] < t[VersionLabel.NATIVE_LLVM]

    def test_omp_beats_cuda_on_a100_only(self):
        """§4.2.2: heap-to-shared wins on the A100; no spill on the MI250."""
        nv = times(RSBench(), NVIDIA_SYSTEM)
        amd = times(RSBench(), AMD_SYSTEM)
        assert nv[VersionLabel.OMP] < nv[VersionLabel.NATIVE_LLVM]
        assert amd[VersionLabel.OMP] >= amd[VersionLabel.NATIVE_LLVM] * 0.85

    def test_slower_than_xsbench(self):
        """RSBench is the compute-heavy sibling (paper: ~2-3x XSBench)."""
        rs = times(RSBench(), NVIDIA_SYSTEM)[VersionLabel.OMPX]
        xs = times(XSBench(), NVIDIA_SYSTEM)[VersionLabel.OMPX]
        assert rs > xs


class TestSU3:
    def test_ompx_lags_cuda_by_about_nine_percent(self):
        t = times(SU3(), NVIDIA_SYSTEM)
        ratio = t[VersionLabel.OMPX] / t[VersionLabel.NATIVE_LLVM]
        assert 1.03 < ratio < 1.20  # paper: ~1.09

    def test_ompx_beats_hip_by_about_28_percent(self):
        t = times(SU3(), AMD_SYSTEM)
        ratio = t[VersionLabel.NATIVE_LLVM] / t[VersionLabel.OMPX]
        assert 1.15 < ratio < 1.40  # paper: ~1.28

    @pytest.mark.parametrize("system", [NVIDIA_SYSTEM, AMD_SYSTEM], ids=lambda s: s.name)
    def test_ompx_consistently_beats_omp(self, system):
        t = times(SU3(), system)
        assert t[VersionLabel.OMPX] < t[VersionLabel.OMP]

    def test_binary_bloat_artifacts(self):
        """The §4.2.3 profiling: bigger ompx binary, more registers."""
        app = SU3()
        params = app.paper_params()
        ompx_ck = app.compiled_for(VersionLabel.OMPX, NVIDIA_SYSTEM, params)
        cuda_ck = app.compiled_for(VersionLabel.NATIVE_LLVM, NVIDIA_SYSTEM, params)
        assert ompx_ck.binary_bytes > 4 * cuda_ck.binary_bytes
        assert ompx_ck.registers == cuda_ck.registers + 2


class TestAIDW:
    def test_clang_cuda_five_percent_ahead_on_a100(self):
        t = times(AIDW(), NVIDIA_SYSTEM)
        ratio = t[VersionLabel.OMPX] / t[VersionLabel.NATIVE_LLVM]
        assert 1.02 < ratio < 1.10  # paper: ~1.05

    def test_matches_nvcc_on_a100(self):
        t = times(AIDW(), NVIDIA_SYSTEM)
        assert t[VersionLabel.OMPX] == pytest.approx(t[VersionLabel.NATIVE_VENDOR], rel=0.02)

    def test_parity_on_mi250(self):
        t = times(AIDW(), AMD_SYSTEM)
        assert t[VersionLabel.OMPX] == pytest.approx(t[VersionLabel.NATIVE_LLVM], rel=0.05)

    def test_amd_slower_than_nvidia(self):
        """The MI250's weaker special-function throughput dominates AIDW."""
        nv = times(AIDW(), NVIDIA_SYSTEM)[VersionLabel.NATIVE_LLVM]
        amd = times(AIDW(), AMD_SYSTEM)[VersionLabel.NATIVE_LLVM]
        assert amd > 1.5 * nv


class TestAdam:
    @pytest.mark.parametrize("system", [NVIDIA_SYSTEM, AMD_SYSTEM], ids=lambda s: s.name)
    def test_omp_roughly_8x_slower(self, system):
        t = times(Adam(), system)
        ratio = t[VersionLabel.OMP] / t[VersionLabel.NATIVE_LLVM]
        assert 4.0 < ratio < 12.0  # paper: ~8x

    def test_thread_limit_bug_is_the_cause(self):
        app = Adam()
        ck = app.compiled_for(VersionLabel.OMP, NVIDIA_SYSTEM, app.paper_params())
        assert ck.codegen.effective_thread_limit == 32

    @pytest.mark.parametrize("system", [NVIDIA_SYSTEM, AMD_SYSTEM], ids=lambda s: s.name)
    def test_ompx_matches_native(self, system):
        t = times(Adam(), system)
        assert t[VersionLabel.OMPX] <= t[VersionLabel.NATIVE_LLVM] * 1.03


class TestStencil1D:
    @pytest.mark.parametrize("system", [NVIDIA_SYSTEM, AMD_SYSTEM], ids=lambda s: s.name)
    def test_ompx_beats_native(self, system):
        t = times(Stencil1D(), system)
        assert t[VersionLabel.OMPX] < t[VersionLabel.NATIVE_LLVM]

    @pytest.mark.parametrize("system", [NVIDIA_SYSTEM, AMD_SYSTEM], ids=lambda s: s.name)
    def test_omp_collapses_by_an_order_of_magnitude(self, system):
        t = times(Stencil1D(), system)
        assert t[VersionLabel.OMP] > 10 * t[VersionLabel.NATIVE_LLVM]

    def test_state_machine_is_the_cause(self):
        app = Stencil1D()
        ck = app.compiled_for(VersionLabel.OMP, NVIDIA_SYSTEM, app.paper_params())
        assert ck.codegen.state_machine

    def test_per_iteration_magnitude(self):
        """Paper plots per-iteration ms: native ~1.4 ms on the A100."""
        t = times(Stencil1D(), NVIDIA_SYSTEM)
        assert 0.5e-3 < t[VersionLabel.NATIVE_LLVM] < 3e-3


class TestGeometry:
    @pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda c: c.name)
    def test_launch_geometry_covers_problem(self, app_cls):
        app = app_cls()
        params = app.paper_params()
        teams, block = app.launch_geometry(params)
        assert teams >= 1 and 1 <= block <= 1024

    @pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda c: c.name)
    def test_footprint_nonempty(self, app_cls):
        app = app_cls()
        fp = app.footprint(app.paper_params())
        assert fp.global_bytes + fp.flops_fp64 + fp.flops_fp32 + fp.special_ops > 0
