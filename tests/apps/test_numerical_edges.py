"""Numerical edge cases in the application kernels' device functions."""

import numpy as np
import pytest

from repro.apps.rsbench import pole_contribution, sig_t_factor
from repro.apps.stencil1d import apply_boundary
from repro.apps.su3 import complex_mul_add, su3_matmul_site
from repro.apps.xsbench import grid_search, interpolate_xs


class TestGridSearch:
    @pytest.fixture
    def egrid(self):
        # A one-isotope table: helpers take (table, nuc) so lane-batched
        # callers can pass index arrays without materializing rows.
        return np.array([[0.1, 0.2, 0.4, 0.8, 0.9]])

    def test_interior_hit(self, egrid):
        assert grid_search(egrid, 0, 0.3, egrid.shape[1]) == 1  # [0.2, 0.4)

    def test_exact_gridpoint_goes_right(self, egrid):
        # e == egrid[k]: interval k (searchsorted side='right' semantics)
        assert grid_search(egrid, 0, 0.4, egrid.shape[1]) == 2

    def test_below_grid_clamps_to_first_interval(self, egrid):
        assert grid_search(egrid, 0, 0.01, egrid.shape[1]) == 0

    def test_above_grid_clamps_to_last_interval(self, egrid):
        assert grid_search(egrid, 0, 0.99, egrid.shape[1]) == egrid.shape[1] - 2

    def test_matches_searchsorted_everywhere(self, egrid):
        ngp = egrid.shape[1]
        for e in np.linspace(0.0, 1.0, 101):
            manual = grid_search(egrid, 0, e, ngp)
            reference = int(np.clip(np.searchsorted(egrid[0], e, side="right") - 1, 0, ngp - 2))
            assert manual == reference, e

    def test_two_point_grid(self):
        egrid = np.array([[0.0, 1.0]])
        assert grid_search(egrid, 0, 0.5, 2) == 0
        assert grid_search(egrid, 0, 2.0, 2) == 0

    def test_vector_lanes_match_scalar(self, egrid):
        """The freeze-mask lane search reproduces the scalar loop per lane."""
        ngp = egrid.shape[1]
        energies = np.linspace(0.0, 1.0, 101)
        nucs = np.zeros(energies.shape[0], dtype=np.int64)
        batched = grid_search(egrid, nucs, energies, ngp)
        scalar = [grid_search(egrid, 0, float(e), ngp) for e in energies]
        assert np.array_equal(batched, scalar)


class TestInterpolation:
    def test_linear_endpoints(self):
        egrid = np.array([[0.0, 1.0]])
        xs = np.array([[[10.0, 0.0], [20.0, 2.0]]])
        assert np.allclose(interpolate_xs(xs, egrid, 0, 0, 0.0), [10.0, 0.0])
        assert np.allclose(interpolate_xs(xs, egrid, 0, 0, 1.0), [20.0, 2.0])
        assert np.allclose(interpolate_xs(xs, egrid, 0, 0, 0.5), [15.0, 1.0])

    def test_extrapolation_below_is_linear(self):
        """Clamped intervals extrapolate — the XSBench behaviour."""
        egrid = np.array([[1.0, 2.0]])
        xs = np.array([[[10.0], [20.0]]])
        assert np.allclose(interpolate_xs(xs, egrid, 0, 0, 0.0), [0.0])

    def test_vector_lanes_match_scalar(self):
        """Lane-batched interpolation equals the per-lane scalar results."""
        rng = np.random.default_rng(3)
        egrid = np.sort(rng.random((4, 8)), axis=1)
        xs = rng.random((4, 8, 5))
        nucs = np.array([0, 3, 1, 2])
        ks = np.array([0, 6, 3, 5])
        energies = rng.random(4)
        batched = interpolate_xs(xs, egrid, nucs, ks, energies)
        for lane in range(4):
            scalar = interpolate_xs(xs, egrid, int(nucs[lane]), int(ks[lane]), float(energies[lane]))
            assert np.array_equal(batched[lane], scalar)


class TestRSBenchMath:
    def test_sig_t_factor_is_unit_magnitude(self):
        for k in (0.0, 0.5, 3.0):
            factor = sig_t_factor(k, 0.7)
            assert abs(abs(factor) - 1.0) < 1e-12

    def test_pole_contribution_finite_off_axis(self):
        """Poles live off the real axis, so 1/(EA - sqrt_e) stays finite."""
        dt, da = pole_contribution(0.5 + 1.0j, 1 + 1j, 2 - 1j, 0.5, 1.0 + 0j)
        assert np.isfinite(dt) and np.isfinite(da)

    def test_pole_contribution_matches_numpy_complex(self):
        ea, rt, ra = 0.3 + 0.8j, 1.5 - 0.5j, -0.7 + 0.2j
        sqrt_e, factor = 0.6, sig_t_factor(1.1, 0.6)
        dt, da = pole_contribution(ea, rt, ra, sqrt_e, factor)
        psi = 1.0 / (ea - sqrt_e)
        assert dt == pytest.approx((rt * psi * factor).real)
        assert da == pytest.approx((ra * psi).real)


class TestSU3Math:
    def test_matmul_site_matches_numpy(self):
        rng = np.random.default_rng(8)
        a = rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3))
        c = np.zeros((3, 3), dtype=np.complex128)
        su3_matmul_site(a, b, c)
        assert np.allclose(c, a @ b)

    def test_complex_mul_add(self):
        assert complex_mul_add(1 + 1j, 2 + 0j, 3 + 1j) == (1 + 1j) + (2 + 0j) * (3 + 1j)

    def test_identity_preserved(self):
        eye = np.eye(3, dtype=np.complex128)
        rng = np.random.default_rng(9)
        a = rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3))
        c = np.zeros((3, 3), dtype=np.complex128)
        su3_matmul_site(a, eye, c)
        assert np.allclose(c, a)


class TestStencilBoundary:
    def test_apply_boundary(self):
        assert apply_boundary(5.0, True) == 5.0
        assert apply_boundary(5.0, False) == 0.0
