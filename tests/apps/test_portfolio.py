"""The §3.6 GEMM portfolio apps: MLPStep and the ET SU(3) variant.

These two apps route their linear algebra through the ``ompxblas_*``
vendor layer, so the usual acceptance bar tightens: not only must every
variant match the NumPy reference, the variants must agree with each
other *bitwise* — the GEMMs are the same library call no matter which
front end drives them, and the elementwise remainder is ported
text-for-text.
"""

import numpy as np
import pytest

import repro.trace as trace
from repro.apps import MLPStep, SU3, SU3ET, PORTFOLIO_APPS, VersionLabel
from repro.errors import AppError
from repro.gpu import get_device
from repro.openmp.data import data_environment
from repro.sched import DevicePool

NEW_APPS = (MLPStep, SU3ET)


@pytest.fixture(autouse=True)
def clean_env():
    yield
    for ordinal in (0, 1, 3):
        data_environment(get_device(ordinal)).reset()


class TestParams:
    def test_portfolio_extends_the_figure6_set(self):
        assert set(NEW_APPS) < set(PORTFOLIO_APPS)
        names = [cls.name for cls in PORTFOLIO_APPS]
        assert names.index("MLPStep") > names.index("Stencil 1D")

    @pytest.mark.parametrize("app_cls", NEW_APPS, ids=lambda c: c.name)
    def test_paper_command_line_parses(self, app_cls):
        params = app_cls.parse_args(app_cls.command_line.split())
        assert params == app_cls.paper_params()

    def test_mlpstep_args(self):
        params = MLPStep.parse_args(["8", "64", "32", "16", "5"])
        assert params["models"] == 8
        assert params["batch"] == 64
        assert params["features"] == 32
        assert params["hidden"] == 16
        assert params["steps"] == 5

    def test_mlpstep_rejects_wrong_arity(self):
        with pytest.raises(AppError, match="expects"):
            MLPStep.parse_args(["8", "64"])

    def test_mlpstep_rejects_nonpositive(self):
        with pytest.raises(AppError, match="positive"):
            MLPStep.parse_args(["8", "0", "32", "16", "5"])

    def test_su3et_shares_the_su3_command_line(self):
        # The ET variant is the same benchmark, differently expressed:
        # identical flags, identical paper-scale parameters.
        assert SU3ET.parse_args(SU3.command_line.split()) == SU3.paper_params()
        assert SU3ET.name == "SU3-ET"


class TestFunctional:
    @pytest.mark.parametrize("app_cls", NEW_APPS, ids=lambda c: c.name)
    @pytest.mark.parametrize("variant", [
        VersionLabel.OMPX, VersionLabel.OMP, VersionLabel.NATIVE_LLVM,
    ])
    @pytest.mark.parametrize("ordinal", [0, 1, 3], ids=["a100", "mi250", "xehpc"])
    def test_variant_matches_reference(self, app_cls, variant, ordinal):
        app = app_cls()
        params = app.functional_params()
        result = app.run_single(variant, params, get_device(ordinal))
        assert app.verify(result, params), (
            f"{app.name} {variant} on device {ordinal} diverged from reference"
        )

    @pytest.mark.parametrize("app_cls", NEW_APPS, ids=lambda c: c.name)
    def test_variants_agree_bitwise(self, app_cls):
        """Byte-for-byte, not allclose: the GEMM path is shared."""
        app = app_cls()
        params = app.functional_params()
        device = get_device(0)
        results = {
            variant: app.run_single(variant, params, device)
            for variant in app.functional_variants
        }
        base_variant, *rest = list(results)
        base = results[base_variant]
        for variant in rest:
            assert np.array_equal(results[variant].output, base.output), (
                f"{app.name}: {variant} output != {base_variant}"
            )
            assert results[variant].checksum == base.checksum

    def test_et_matches_the_loop_su3_bitwise(self):
        """Grid-style fusion is a faithful rewrite of the MILC loops."""
        params = SU3.functional_params()
        device = get_device(0)
        loop = SU3().run_single(VersionLabel.OMPX, params, device)
        fused = SU3ET().run_single(VersionLabel.OMPX, params, device)
        assert np.array_equal(fused.output, loop.output)
        assert fused.checksum == loop.checksum


class TestSharded:
    @pytest.mark.parametrize("app_cls", NEW_APPS, ids=lambda c: c.name)
    def test_sharded_matches_single_device_bitwise(self, app_cls):
        app = app_cls()
        params = app.functional_params()
        single = app.run_single(VersionLabel.OMPX, params, get_device(0))
        with DevicePool(3) as pool:
            sharded = app.run_sharded(VersionLabel.OMPX, params, pool)
        assert sharded.checksum == single.checksum
        np.testing.assert_array_equal(sharded.output, single.output)
        assert app.verify(sharded, params)


class TestVendorDispatch:
    def test_mlpstep_issues_vendor_calls_under_trace(self):
        app = MLPStep()
        params = app.functional_params()
        t = trace.enable()
        try:
            app.run_single(VersionLabel.OMPX, params, get_device(0))
        finally:
            trace.disable()
        vendor = [s for s in t.spans if s.cat == "vendor"]
        assert t.counters["vendor_calls"] == len(vendor) > 0
        names = {s.name for s in vendor}
        assert "vendor:dgemm_strided_batched" in names
        assert all(s.args["flops"] > 0 for s in vendor
                   if "gemm" in s.name)

    def test_su3et_fuses_to_one_gemm_per_direction(self):
        app = SU3ET()
        params = app.functional_params()
        t = trace.enable()
        try:
            app.run_single(VersionLabel.OMPX, params, get_device(0))
        finally:
            trace.disable()
        gemms = [s for s in t.spans
                 if s.name == "vendor:zgemm_strided_batched"]
        assert len(gemms) == app.launches(params)
        # ... while the loop-SU3 app would have launched kernels instead.
        assert not [s for s in t.spans if s.cat == "kernel"]

    def test_su3et_native_variant_uses_hand_kernels(self):
        """Only the ompx port takes the library route; the CUDA original
        keeps its hand-written kernels (that is the comparison §3.6 asks
        for)."""
        app = SU3ET()
        params = app.functional_params()
        t = trace.enable()
        try:
            app.run_single(VersionLabel.NATIVE_LLVM, params, get_device(0))
        finally:
            trace.disable()
        assert not [s for s in t.spans if s.cat == "vendor"]
        assert [s for s in t.spans if s.cat == "kernel"]
