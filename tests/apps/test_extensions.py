"""App-level extensions: AIDW's kNN mode and SU3's verification levels."""

import numpy as np
import pytest

from repro.apps import AIDW, SU3, VersionLabel
from repro.gpu import get_device
from repro.openmp.data import data_environment


@pytest.fixture(autouse=True)
def clean_env():
    yield
    for ordinal in (0, 1):
        data_environment(get_device(ordinal)).reset()


class TestAidwKnnMode:
    @pytest.mark.parametrize("variant", [
        VersionLabel.OMPX, VersionLabel.OMP, VersionLabel.NATIVE_LLVM,
    ])
    def test_knn_variant_matches_reference(self, variant):
        app = AIDW()
        params = {**app.functional_params(), "mode": 1}
        result = app.run_single(variant, params, get_device(0))
        assert app.verify(result, params), variant

    def test_knn_differs_from_brute_force(self):
        """Mode 1 genuinely changes the interpolation (k < dnum)."""
        app = AIDW()
        brute = app.reference(app.functional_params())
        knn = app.reference({**app.functional_params(), "mode": 1})
        assert not np.allclose(brute, knn)

    def test_knn_with_k_equal_dnum_matches_brute_force(self):
        """With k = dnum the kNN restriction vanishes."""
        app = AIDW()
        params = {**app.functional_params(), "mode": 1}
        params["knn_k"] = params["dnum"]
        knn = app.reference(params)
        brute = app.reference({**params, "mode": 0})
        assert np.allclose(knn, brute)

    def test_paper_mode_is_brute_force(self):
        assert AIDW.paper_params()["mode"] == 0

    def test_knn_command_line(self):
        params = AIDW.parse_args(["2", "1", "5"])
        assert params["mode"] == 1
        assert params["knn_k"] == 16

    def test_knn_on_amd_device(self):
        app = AIDW()
        params = {**app.functional_params(), "mode": 1}
        result = app.run_single(VersionLabel.OMPX, params, get_device(1))
        assert app.verify(result, params)


class TestSu3VerifyLevels:
    def _result(self, params):
        app = SU3()
        return app, app.run_single(VersionLabel.OMPX, params, get_device(0))

    def test_level_zero_skips_verification(self):
        app, result = self._result({**SU3.functional_params(), "verify": 0})
        # even a corrupted output "passes" at level 0 — the benchmark's
        # own -v 0 semantics
        result.output[:] = -1
        assert app.verify(result, {**SU3.functional_params(), "verify": 0})

    def test_level_one_checksum_only(self):
        params = {**SU3.functional_params(), "verify": 1}
        app, result = self._result(params)
        assert app.verify(result, params)

    def test_level_one_catches_checksum_drift(self):
        params = {**SU3.functional_params(), "verify": 1}
        app, result = self._result(params)
        result.checksum += 1000.0
        assert not app.verify(result, params)

    def test_level_three_full_compare(self):
        params = {**SU3.functional_params(), "verify": 3}
        app, result = self._result(params)
        assert app.verify(result, params)
        result.output[0, 0, 0, 0] += 1.0
        assert not app.verify(result, params)

    def test_paper_runs_level_three(self):
        assert SU3.paper_params()["verify"] == 3
