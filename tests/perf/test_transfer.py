"""Host-device transfer model and end-to-end estimates."""

import pytest

from repro.apps import ALL_APPS, Adam, Stencil1D, VersionLabel
from repro.errors import PerfModelError
from repro.perf import (
    AMD_SYSTEM,
    INFINITY_FABRIC_HOST,
    NVIDIA_SYSTEM,
    PCIE4_X16,
    HostLink,
    TransferPlan,
    transfer_seconds,
)


class TestHostLink:
    def test_presets(self):
        assert PCIE4_X16.bandwidth_gbs == 25.0
        assert INFINITY_FABRIC_HOST.bandwidth_gbs > PCIE4_X16.bandwidth_gbs

    def test_systems_carry_links(self):
        assert NVIDIA_SYSTEM.host_link is PCIE4_X16
        assert AMD_SYSTEM.host_link is INFINITY_FABRIC_HOST

    def test_validation(self):
        with pytest.raises(PerfModelError):
            HostLink(name="bad", bandwidth_gbs=0)
        with pytest.raises(PerfModelError):
            HostLink(name="bad", bandwidth_gbs=1, latency_us=-1)


class TestTransferSeconds:
    def test_bandwidth_term(self):
        # 25 GB over a 25 GB/s link ~= 1 s (+ latency)
        t = transfer_seconds(25e9, PCIE4_X16)
        assert t == pytest.approx(1.0 + 10e-6)

    def test_latency_per_transfer(self):
        one = transfer_seconds(0, PCIE4_X16, transfers=1)
        ten = transfer_seconds(0, PCIE4_X16, transfers=10)
        assert ten == pytest.approx(10 * one)

    def test_zero_is_free(self):
        assert transfer_seconds(0, PCIE4_X16, transfers=0) == 0.0

    def test_validation(self):
        with pytest.raises(PerfModelError):
            transfer_seconds(-1, PCIE4_X16)
        with pytest.raises(PerfModelError):
            transfer_seconds(1, PCIE4_X16, transfers=-1)

    def test_plan_sums_directions(self):
        plan = TransferPlan(h2d_bytes=1e9, d2h_bytes=2e9)
        expected = transfer_seconds(1e9, PCIE4_X16) + transfer_seconds(2e9, PCIE4_X16)
        assert plan.seconds(PCIE4_X16) == pytest.approx(expected)


class TestEndToEnd:
    @pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda c: c.name)
    def test_end_to_end_at_least_kernel_time(self, app_cls):
        app = app_cls()
        params = app.paper_params()
        kernel_s = app.estimate(VersionLabel.OMPX, NVIDIA_SYSTEM, params).total_s
        e2e = app.estimate_end_to_end(VersionLabel.OMPX, NVIDIA_SYSTEM, params)
        assert e2e >= kernel_s

    def test_transfer_plans_are_nonempty(self):
        for app_cls in ALL_APPS:
            app = app_cls()
            plan = app.transfer_plan(app.paper_params())
            assert plan.h2d_bytes > 0 and plan.d2h_bytes > 0, app.name

    def test_stencil_amortizes_transfers_over_iterations(self):
        """1000 iterations on-device, one upload/download pair: the
        transfer share must be small for the iterated stencil."""
        app = Stencil1D()
        params = app.paper_params()
        kernel_s = app.estimate(VersionLabel.OMPX, NVIDIA_SYSTEM, params).total_s
        e2e = app.estimate_end_to_end(VersionLabel.OMPX, NVIDIA_SYSTEM, params)
        assert (e2e - kernel_s) / e2e < 0.15

    def test_adam_is_transfer_sensitive(self):
        """A microsecond-scale kernel feels even tiny transfers."""
        app = Adam()
        params = app.paper_params()
        kernel_s = app.estimate(VersionLabel.OMPX, NVIDIA_SYSTEM, params).total_s
        e2e = app.estimate_end_to_end(VersionLabel.OMPX, NVIDIA_SYSTEM, params)
        assert (e2e - kernel_s) / e2e > 0.05

    def test_amd_link_is_faster(self):
        """The same plan moves faster over Infinity Fabric."""
        plan = TransferPlan(h2d_bytes=10e9, d2h_bytes=10e9)
        assert plan.seconds(INFINITY_FABRIC_HOST) < plan.seconds(PCIE4_X16)
