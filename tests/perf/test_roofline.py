"""Roofline model: footprints, saturation, divergence, bound selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PerfModelError
from repro.gpu.device import A100_SPEC, MI250_SPEC
from repro.perf.roofline import Footprint, roofline_seconds, saturation


class TestFootprint:
    def test_defaults_zero(self):
        fp = Footprint()
        assert fp.global_bytes == 0
        assert fp.warp_efficiency == 1.0

    def test_negative_rejected(self):
        with pytest.raises(PerfModelError):
            Footprint(flops_fp64=-1)

    def test_bad_warp_efficiency(self):
        with pytest.raises(PerfModelError):
            Footprint(warp_efficiency=0.0)
        with pytest.raises(PerfModelError):
            Footprint(warp_efficiency=1.5)

    def test_scaled(self):
        fp = Footprint(flops_fp64=100, global_read_bytes=200, special_ops=10)
        scaled = fp.scaled(2.0)
        assert scaled.flops_fp64 == 200
        assert scaled.global_read_bytes == 400
        assert scaled.special_ops == 20

    def test_with_extra_global_bytes_splits(self):
        fp = Footprint(global_read_bytes=100, global_write_bytes=100)
        extended = fp.with_extra_global_bytes(50)
        assert extended.global_read_bytes == 125
        assert extended.global_write_bytes == 125


class TestSaturation:
    def test_saturates_at_knee(self):
        assert saturation(0.35) == pytest.approx(1.0)
        assert saturation(0.9) == 1.0

    def test_linear_below_knee(self):
        assert saturation(0.175) == pytest.approx(0.5)

    def test_invalid_occupancy(self):
        with pytest.raises(PerfModelError):
            saturation(0.0)
        with pytest.raises(PerfModelError):
            saturation(1.5)


class TestRoofline:
    def test_memory_bound_kernel(self):
        """Pure streaming: time == bytes / bandwidth."""
        fp = Footprint(global_read_bytes=A100_SPEC.peak_bandwidth_gbs * 1e9)
        t = roofline_seconds(fp, A100_SPEC, occupancy=1.0)
        assert t == pytest.approx(1.0, rel=1e-6)

    def test_compute_bound_kernel(self):
        fp = Footprint(flops_fp64=A100_SPEC.peak_fp64_gflops * 1e9)
        t = roofline_seconds(fp, A100_SPEC, occupancy=1.0)
        assert t == pytest.approx(1.0, rel=1e-6)

    def test_max_of_bounds(self):
        """A kernel is priced by its slower bound, not the sum."""
        fp = Footprint(
            global_read_bytes=A100_SPEC.peak_bandwidth_gbs * 1e9,  # 1 s of memory
            flops_fp64=A100_SPEC.peak_fp64_gflops * 1e8,           # 0.1 s of compute
        )
        t = roofline_seconds(fp, A100_SPEC, occupancy=1.0)
        assert t == pytest.approx(1.0, rel=1e-6)

    def test_special_ops_priced_per_device(self):
        """The AIDW AMD effect: specials are slower on the MI250."""
        fp = Footprint(special_ops=1e12)
        t_nv = roofline_seconds(fp, A100_SPEC, occupancy=1.0)
        t_amd = roofline_seconds(fp, MI250_SPEC, occupancy=1.0)
        assert t_amd > 2 * t_nv

    def test_low_occupancy_slows_down(self):
        fp = Footprint(global_read_bytes=1e9)
        fast = roofline_seconds(fp, A100_SPEC, occupancy=1.0)
        slow = roofline_seconds(fp, A100_SPEC, occupancy=0.05)
        assert slow > fast

    def test_efficiency_scales_time(self):
        fp = Footprint(global_read_bytes=1e9)
        base = roofline_seconds(fp, A100_SPEC, occupancy=1.0, efficiency=1.0)
        better = roofline_seconds(fp, A100_SPEC, occupancy=1.0, efficiency=1.1)
        assert better == pytest.approx(base / 1.1)

    def test_throughput_scale(self):
        fp = Footprint(global_read_bytes=1e9)
        base = roofline_seconds(fp, A100_SPEC, occupancy=1.0)
        eighth = roofline_seconds(fp, A100_SPEC, occupancy=1.0, throughput_scale=1 / 8)
        assert eighth == pytest.approx(base * 8)

    def test_divergence_derates_amd_harder(self):
        """64-wide wavefronts lose more to the same divergence."""
        fp = Footprint(global_read_bytes=1e9, warp_efficiency=0.3)
        fp_full = Footprint(global_read_bytes=1e9)
        ratio_nv = (roofline_seconds(fp, A100_SPEC, occupancy=1.0)
                    / roofline_seconds(fp_full, A100_SPEC, occupancy=1.0))
        ratio_amd = (roofline_seconds(fp, MI250_SPEC, occupancy=1.0)
                     / roofline_seconds(fp_full, MI250_SPEC, occupancy=1.0))
        assert ratio_amd > ratio_nv > 1.0

    def test_dependent_accesses_add_latency(self):
        fp_with = Footprint(global_read_bytes=1e6, dependent_accesses=1e9)
        fp_without = Footprint(global_read_bytes=1e6)
        assert (roofline_seconds(fp_with, A100_SPEC, occupancy=1.0)
                > roofline_seconds(fp_without, A100_SPEC, occupancy=1.0))

    def test_validation(self):
        fp = Footprint(global_read_bytes=1e6)
        with pytest.raises(PerfModelError):
            roofline_seconds(fp, A100_SPEC, occupancy=1.0, efficiency=0)
        with pytest.raises(PerfModelError):
            roofline_seconds(fp, A100_SPEC, occupancy=1.0, throughput_scale=0)
        with pytest.raises(PerfModelError):
            roofline_seconds(fp, A100_SPEC, occupancy=1.0, throughput_scale=2.0)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        bytes_=st.floats(1e3, 1e12),
        flops=st.floats(0, 1e13),
        occ=st.floats(0.05, 1.0),
    )
    def test_time_is_positive_and_monotone_in_work(self, bytes_, flops, occ):
        fp = Footprint(global_read_bytes=bytes_, flops_fp64=flops)
        t1 = roofline_seconds(fp, A100_SPEC, occupancy=occ)
        t2 = roofline_seconds(fp.scaled(2.0), A100_SPEC, occupancy=occ)
        assert t1 > 0
        assert t2 >= t1

    @settings(max_examples=30, deadline=None)
    @given(occ_lo=st.floats(0.05, 0.5), occ_delta=st.floats(0.01, 0.5))
    def test_time_monotone_in_occupancy(self, occ_lo, occ_delta):
        fp = Footprint(global_read_bytes=1e9)
        occ_hi = min(1.0, occ_lo + occ_delta)
        assert (roofline_seconds(fp, A100_SPEC, occupancy=occ_hi)
                <= roofline_seconds(fp, A100_SPEC, occupancy=occ_lo) + 1e-12)
