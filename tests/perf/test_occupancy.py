"""Occupancy: limiters, bounds, monotonicity."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import PerfModelError
from repro.gpu.device import A100_SPEC, MI250_SPEC
from repro.perf.occupancy import compute_occupancy


class TestLimiters:
    def test_thread_limited(self):
        # 256-thread blocks, few registers: blocks = 2048/256 = 8
        info = compute_occupancy(A100_SPEC, 256, 32)
        assert info.limiter == "threads"
        assert info.blocks_per_sm == 8
        assert info.occupancy == 1.0

    def test_register_limited(self):
        # 128 registers/thread * 256 threads = 32768 per block -> 2 blocks
        info = compute_occupancy(A100_SPEC, 256, 128)
        assert info.limiter == "registers"
        assert info.blocks_per_sm == 2
        assert info.occupancy == pytest.approx(0.25)
        assert info.is_register_limited

    def test_shared_limited(self):
        # 40 KB per block on a 164 KB SM -> 4 blocks of 128 threads
        info = compute_occupancy(A100_SPEC, 128, 32, shared_bytes_per_block=40 * 1024)
        assert info.limiter == "shared"
        assert info.blocks_per_sm == 4

    def test_block_slot_limited(self):
        # tiny blocks: 2048/32 = 64 > 32 block slots
        info = compute_occupancy(A100_SPEC, 32, 16)
        assert info.limiter == "blocks"
        assert info.blocks_per_sm == 32
        assert info.occupancy == pytest.approx(0.5)

    def test_mi250_bigger_register_file(self):
        """The MI250's doubled register file tolerates fatter kernels."""
        a100 = compute_occupancy(A100_SPEC, 256, 128)
        mi250 = compute_occupancy(MI250_SPEC, 256, 128)
        assert mi250.blocks_per_sm > a100.blocks_per_sm


class TestValidation:
    def test_zero_block(self):
        with pytest.raises(PerfModelError):
            compute_occupancy(A100_SPEC, 0, 32)

    def test_block_exceeds_device(self):
        with pytest.raises(PerfModelError):
            compute_occupancy(A100_SPEC, 2048, 32)

    def test_zero_registers(self):
        with pytest.raises(PerfModelError):
            compute_occupancy(A100_SPEC, 128, 0)

    def test_negative_shared(self):
        with pytest.raises(PerfModelError):
            compute_occupancy(A100_SPEC, 128, 32, shared_bytes_per_block=-1)

    def test_unresidentable_kernel(self):
        with pytest.raises(PerfModelError, match="resident"):
            compute_occupancy(A100_SPEC, 1024, 32, shared_bytes_per_block=200 * 1024)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        block=st.sampled_from([32, 64, 128, 256, 512, 1024]),
        regs=st.integers(16, 200),
    )
    def test_occupancy_in_unit_interval(self, block, regs):
        assume(block * regs <= A100_SPEC.registers_per_sm)
        info = compute_occupancy(A100_SPEC, block, regs)
        assert 0 < info.occupancy <= 1.0
        assert info.blocks_per_sm >= 1

    @settings(max_examples=30, deadline=None)
    @given(
        block=st.sampled_from([64, 128, 256]),
        regs=st.integers(16, 120),
    )
    def test_more_registers_never_raise_occupancy(self, block, regs):
        assume(block * (regs + 40) <= A100_SPEC.registers_per_sm)
        lo = compute_occupancy(A100_SPEC, block, regs)
        hi = compute_occupancy(A100_SPEC, block, regs + 40)
        assert hi.occupancy <= lo.occupancy

    @settings(max_examples=30, deadline=None)
    @given(
        block=st.sampled_from([64, 128, 256]),
        shared=st.integers(0, 32 * 1024),
    )
    def test_more_shared_never_raises_occupancy(self, block, shared):
        lo = compute_occupancy(A100_SPEC, block, 32, shared)
        hi = compute_occupancy(A100_SPEC, block, 32, shared + 8 * 1024)
        assert hi.occupancy <= lo.occupancy
