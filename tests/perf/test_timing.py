"""Overheads and end-to-end estimate_time composition."""

import numpy as np
import pytest

from repro import cuda, ompx
from repro.compiler.compile import compile_kernel
from repro.errors import PerfModelError
from repro.gpu.device import A100_SPEC, MI250_SPEC
from repro.openmp.codegen import RegionTraits, lower_region
from repro.perf.overheads import (
    globalization_extra_bytes,
    launch_overhead_seconds,
    throughput_scale,
)
from repro.perf.roofline import Footprint
from repro.perf.timing import AMD_SYSTEM, NVIDIA_SYSTEM, estimate_time


@cuda.kernel(sync_free=True)
def simple_kernel(t, out, n):
    i = t.global_thread_id
    if i < n:
        t.array(out, n, np.float64)[i] = i * 2.0


def omp_body(indices, acc):
    pass


BARE = lower_region(RegionTraits(style="bare"))
SPMD = lower_region(RegionTraits(spmd_amenable=True))
GENERIC_SM = lower_region(
    RegionTraits(spmd_amenable=False, state_machine_rewritable=False)
)
BUGGED = lower_region(RegionTraits(requested_thread_limit=256, thread_limit_bug=True))


class TestLaunchOverhead:
    def test_bare_pays_only_driver_latency(self):
        assert launch_overhead_seconds(BARE, A100_SPEC) == pytest.approx(
            A100_SPEC.kernel_launch_latency_us * 1e-6
        )

    def test_runtime_init_adds_cost(self):
        assert launch_overhead_seconds(SPMD, A100_SPEC) > launch_overhead_seconds(BARE, A100_SPEC)

    def test_generic_init_costs_more_than_spmd(self):
        assert launch_overhead_seconds(GENERIC_SM, A100_SPEC) > launch_overhead_seconds(SPMD, A100_SPEC)


class TestThroughputScale:
    def test_clean_kernel_keeps_full_throughput(self):
        assert throughput_scale(SPMD, requested_block_threads=256, spec=A100_SPEC) == 1.0

    def test_thread_limit_bug_loses_proportionally(self):
        """Adam's 8x: 256 requested, 32 delivered."""
        scale = throughput_scale(BUGGED, requested_block_threads=256, spec=A100_SPEC)
        assert scale == pytest.approx(32 / 256)

    def test_state_machine_parks_worker_warps(self):
        scale = throughput_scale(GENERIC_SM, requested_block_threads=256, spec=A100_SPEC)
        assert scale == pytest.approx(1 / 8)  # 8 warps per 256-thread block

    def test_scales_compose(self):
        bug_and_sm = lower_region(
            RegionTraits(
                spmd_amenable=False,
                state_machine_rewritable=False,
                requested_thread_limit=256,
                thread_limit_bug=True,
            )
        )
        scale = throughput_scale(bug_and_sm, requested_block_threads=256, spec=A100_SPEC)
        assert scale == pytest.approx((32 / 256) * 1.0)  # one warp left: no workers to park

    def test_validation(self):
        with pytest.raises(PerfModelError):
            throughput_scale(SPMD, requested_block_threads=0, spec=A100_SPEC)


class TestGlobalizationTraffic:
    def test_heap_locals_cost_traffic(self):
        heavy = lower_region(RegionTraits(escaping_local_bytes=64 * 1024))
        assert globalization_extra_bytes(heavy, teams=100) > 0

    def test_shared_locals_cost_nothing(self):
        light = lower_region(RegionTraits(escaping_local_bytes=1024))
        assert globalization_extra_bytes(light, teams=100) == 0

    def test_negative_teams_rejected(self):
        with pytest.raises(PerfModelError):
            globalization_extra_bytes(BARE, teams=-1)


class TestEstimateTime:
    def test_breakdown_is_consistent(self):
        ck = compile_kernel(simple_kernel, A100_SPEC)
        fp = Footprint(global_read_bytes=1e9, global_write_bytes=1e9)
        tb = estimate_time(ck, fp, block_threads=256, teams=1000, launches=10)
        assert tb.total_s == pytest.approx(tb.kernel_s + tb.overhead_s)
        assert tb.per_launch_s == pytest.approx(tb.total_s / 10)
        assert tb.launches == 10

    def test_more_launches_cost_more(self):
        ck = compile_kernel(simple_kernel, A100_SPEC)
        fp = Footprint(global_read_bytes=1e8)
        one = estimate_time(ck, fp, block_threads=256, teams=100, launches=1)
        ten = estimate_time(ck, fp, block_threads=256, teams=100, launches=10)
        assert ten.total_s == pytest.approx(10 * one.total_s)

    def test_thread_bug_shrinks_effective_block(self):
        ck = compile_kernel(
            omp_body, A100_SPEC, language="omp",
            region_traits=RegionTraits(requested_thread_limit=256, thread_limit_bug=True),
        )
        fp = Footprint(flops_fp64=1e9)
        tb = estimate_time(ck, fp, block_threads=256, teams=100)
        assert tb.throughput_scale == pytest.approx(32 / 256)

    def test_validation(self):
        ck = compile_kernel(simple_kernel, A100_SPEC)
        fp = Footprint(global_read_bytes=1e6)
        with pytest.raises(PerfModelError):
            estimate_time(ck, fp, block_threads=256, teams=0)
        with pytest.raises(PerfModelError):
            estimate_time(ck, fp, block_threads=256, teams=1, launches=0)


class TestSystemPresets:
    def test_figure7_values(self):
        assert NVIDIA_SYSTEM.gpu is A100_SPEC
        assert NVIDIA_SYSTEM.sdk == "CUDA 11.8"
        assert NVIDIA_SYSTEM.native_language == "cuda"
        assert AMD_SYSTEM.gpu is MI250_SPEC
        assert AMD_SYSTEM.sdk == "ROCm 5.5"
        assert AMD_SYSTEM.vendor_compiler == "hipcc"
        assert NVIDIA_SYSTEM.cpu == AMD_SYSTEM.cpu == "AMD EPYC 7532"
