"""The README's code blocks must actually run.

Documentation drift is a bug: this test extracts the quickstart Python
block from README.md and executes it verbatim (its own assert is the
check), and verifies that every command the README shows exists.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
README = (ROOT / "README.md").read_text()


def _python_blocks(text: str):
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def _bash_blocks(text: str):
    return re.findall(r"```bash\n(.*?)```", text, flags=re.DOTALL)


class TestQuickstart:
    def test_quickstart_block_executes(self):
        blocks = _python_blocks(README)
        assert blocks, "README lost its quickstart code block"
        namespace = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)

    def test_docstring_quickstart_executes(self):
        """The package docstring's example must run too."""
        import repro

        match = re.search(r"Quickstart::\n\n(.*)\"?", repro.__doc__, flags=re.DOTALL)
        assert match
        code = "\n".join(
            line[4:] if line.startswith("    ") else line
            for line in match.group(1).splitlines()
        )
        exec(compile(code, "<repro docstring>", "exec"), {})


class TestCommandsExist:
    def test_figure_cli_sections_mentioned_exist(self):
        from repro.harness.cli import _SECTIONS

        for section in re.findall(r"repro-figures (\w+)", README):
            assert section in _SECTIONS, section

    def test_app_cli_invocations_parse(self):
        from repro.apps.__main__ import main

        for line in re.findall(r"repro-app ([^\n#]+)", README):
            args = line.strip().split()
            # estimate-only invocations are cheap; --run ones we just parse
            if "--run" in args:
                continue
            assert main(args) == 0, line

    def test_pytest_paths_exist(self):
        for block in _bash_blocks(README):
            for path in re.findall(r"pytest (\S+)", block):
                assert (ROOT / path.rstrip("/")).exists(), path
