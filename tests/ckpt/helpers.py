"""Module-level spawn targets for the checkpoint chaos suite.

The supervisor-kill tests need a *real* victim process: a spawn child
that drives a checkpointed cluster run and SIGKILLs itself (the cluster
supervisor) at a precise point in the snapshot chain.  Spawn targets
must live at module scope to pickle by reference.
"""

from __future__ import annotations

import os
import signal


def app_by_name(name):
    """Resolve a portfolio app instance from its CLI name."""
    from repro.apps import PORTFOLIO_APPS

    for cls in PORTFOLIO_APPS:
        if cls.name == name:
            return cls()
    raise LookupError(name)


def crashing_checkpointed_cluster_run(
    app_name, directory, kill_after, fault_spec=None
):
    """Run ``app_name`` checkpointed over a 2-worker cluster and SIGKILL
    the supervisor (this process) right after snapshot ``kill_after``
    is published.

    The kill happens inside the ``on_commit`` hook, so the published
    chain is exactly ``kill_after`` snapshots deep when the process
    dies — the most adversarial cut: the supervisor is mid-run with
    live workers, queued futures and an open fault plan.
    """
    from repro import faults
    from repro.ckpt import CheckpointSession, run_checkpointed
    from repro.cluster import cluster_pool

    app = app_by_name(app_name)
    params = app.functional_params()
    state = {"commits": 0}

    def hook(step, path):
        state["commits"] += 1
        if state["commits"] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    session = CheckpointSession(directory, on_commit=hook)
    pool = cluster_pool(2)
    try:
        if fault_spec:
            with faults.inject(fault_spec):
                run_checkpointed(
                    app, "ompx", params, pool, session, shards=4
                )
        else:
            run_checkpointed(app, "ompx", params, pool, session, shards=4)
    finally:
        pool.close()
    raise AssertionError("the supervisor was supposed to die mid-run")
