"""Snapshot format: atomic publication, validation, injected damage."""

import os
import pickle

import numpy as np
import pytest

from repro import faults
from repro.ckpt import format as fmt
from repro.errors import CheckpointError, CorruptCheckpointError

pytestmark = pytest.mark.ckpt


def _payload(step=0):
    return {
        "meta": {"identity": {"app": "t", "nshards": 4}, "step": step},
        "state": {"done": {0: np.arange(8, dtype=np.float64)}},
    }


class TestRoundTrip:
    def test_write_then_read_is_identity(self, tmp_path):
        path = fmt.write_snapshot(str(tmp_path), 7, _payload(7))
        assert os.path.basename(path) == "ckpt-00000007.ckpt"
        step, payload = fmt.read_snapshot(path)
        assert step == 7
        np.testing.assert_array_equal(
            payload["state"]["done"][0], np.arange(8, dtype=np.float64)
        )

    def test_list_snapshots_sorted_and_scoped(self, tmp_path):
        for step in (3, 1, 2):
            fmt.write_snapshot(str(tmp_path), step, _payload(step))
        (tmp_path / "garbage.txt").write_text("not a snapshot")
        (tmp_path / ".ckpt-00000009-x.tmp").write_text("torn temp file")
        assert [s for s, _ in fmt.list_snapshots(str(tmp_path))] == [1, 2, 3]

    def test_list_snapshots_of_missing_directory_is_empty(self, tmp_path):
        assert fmt.list_snapshots(str(tmp_path / "nope")) == []

    def test_write_creates_the_directory(self, tmp_path):
        target = tmp_path / "deep" / "chain"
        fmt.write_snapshot(str(target), 0, _payload())
        assert fmt.list_snapshots(str(target))

    def test_no_temp_files_survive_a_successful_write(self, tmp_path):
        fmt.write_snapshot(str(tmp_path), 0, _payload())
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_unwritable_directory_is_a_checkpoint_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(CheckpointError):
            fmt.write_snapshot(str(blocker / "sub"), 0, _payload())


class TestValidation:
    """Every way disk bytes can lie maps to a named corruption reason."""

    def _written(self, tmp_path):
        return fmt.write_snapshot(str(tmp_path), 0, _payload())

    def _expect(self, path, reason):
        with pytest.raises(CorruptCheckpointError) as ei:
            fmt.read_snapshot(path)
        assert ei.value.reason == reason
        return ei.value

    def test_missing_file(self, tmp_path):
        self._expect(str(tmp_path / "ckpt-00000000.ckpt"), "missing")

    def test_empty_file(self, tmp_path):
        path = self._written(tmp_path)
        open(path, "wb").close()
        self._expect(path, "empty")

    def test_garbage_header(self, tmp_path):
        path = self._written(tmp_path)
        body = open(path, "rb").read().partition(b"\n")[2]
        with open(path, "wb") as h:
            h.write(b"not json\n" + body)
        self._expect(path, "header")

    def test_unknown_schema_version(self, tmp_path):
        path = self._written(tmp_path)
        header, _, body = open(path, "rb").read().partition(b"\n")
        header = header.replace(
            b'"schema": 1', b'"schema": 99'
        ).replace(b'"schema":1', b'"schema":99')
        with open(path, "wb") as h:
            h.write(header + b"\n" + body)
        self._expect(path, "schema")

    def test_truncated_payload(self, tmp_path):
        path = self._written(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as h:
            h.truncate(size - 10)
        self._expect(path, "truncated")

    def test_flipped_payload_bit(self, tmp_path):
        path = self._written(tmp_path)
        with open(path, "r+b") as h:
            h.seek(-1, os.SEEK_END)
            last = h.read(1)
            h.seek(-1, os.SEEK_END)
            h.write(bytes([last[0] ^ 0xFF]))
        err = self._expect(path, "digest")
        assert err.expected_digest != err.actual_digest

    def test_corrupt_error_is_pickle_stable(self, tmp_path):
        path = self._written(tmp_path)
        with open(path, "r+b") as h:
            h.truncate(os.path.getsize(path) - 4)
        with pytest.raises(CorruptCheckpointError) as ei:
            fmt.read_snapshot(path)
        clone = pickle.loads(pickle.dumps(ei.value))
        assert clone == ei.value
        assert clone.reason == "truncated"
        assert clone.path == path


class TestInjectedFaults:
    """checkpoint_write/checkpoint_read sites under a seeded FaultPlan."""

    def test_write_truncate_tears_the_published_file(self, tmp_path):
        with faults.inject("checkpoint_write:truncate@1,bytes=20;seed=3"):
            path = fmt.write_snapshot(str(tmp_path), 0, _payload())
        assert os.path.getsize(path) == 20
        with pytest.raises(CorruptCheckpointError):
            fmt.read_snapshot(path)

    def test_write_corrupt_flips_published_bytes(self, tmp_path):
        with faults.inject("checkpoint_write:corrupt@1,bytes=3;seed=3"):
            path = fmt.write_snapshot(str(tmp_path), 0, _payload())
        with pytest.raises(CorruptCheckpointError) as ei:
            fmt.read_snapshot(path)
        assert ei.value.reason == "digest"

    def test_write_error_raises_tagged(self, tmp_path):
        from repro.errors import GpuError

        with faults.inject("checkpoint_write:error@1;seed=3"):
            with pytest.raises(GpuError) as ei:
                fmt.write_snapshot(str(tmp_path), 0, _payload())
        assert getattr(ei.value, "injected", False)
        # The failed write must not have published anything.
        assert fmt.list_snapshots(str(tmp_path)) == []

    def test_read_corrupt_leaves_disk_intact(self, tmp_path):
        path = fmt.write_snapshot(str(tmp_path), 0, _payload())
        with faults.inject("checkpoint_read:corrupt@1,bytes=2;seed=3"):
            with pytest.raises(CorruptCheckpointError):
                fmt.read_snapshot(path)
        # Without the plan the same file reads back clean.
        step, _ = fmt.read_snapshot(path)
        assert step == 0

    def test_read_truncate_effect(self, tmp_path):
        path = fmt.write_snapshot(str(tmp_path), 0, _payload())
        with faults.inject("checkpoint_read:truncate@1,bytes=10;seed=3"):
            with pytest.raises(CorruptCheckpointError):
                fmt.read_snapshot(path)

    def test_fired_faults_are_logged_with_site(self, tmp_path):
        with faults.inject("checkpoint_write:corrupt@1,bytes=1;seed=3") as plan:
            fmt.write_snapshot(str(tmp_path), 0, _payload())
        assert plan.fired == 1
        assert plan.log[0][1] == "checkpoint_write"


class TestTraceIntegration:
    def test_ckpt_spans_and_counters(self, tmp_path):
        from repro import trace as trace_mod

        tracer = trace_mod.enable()
        try:
            path = fmt.write_snapshot(str(tmp_path), 0, _payload())
            fmt.read_snapshot(path)
        finally:
            trace_mod.disable()
        names = [s.name for s in tracer.spans]
        assert "ckpt:write" in names
        assert "ckpt:read" in names
        assert tracer.counters["ckpt_writes"] >= 1
        assert tracer.counters["ckpt_reads"] >= 1
