"""CheckpointSession policy: cadence, pruning, fallback, identity."""

import os

import pytest

from repro import faults
from repro.ckpt import CheckpointSession, list_snapshots
from repro.errors import CheckpointError

pytestmark = pytest.mark.ckpt

IDENTITY = {"app": ("m", "Q", "demo"), "variant": "ompx", "nshards": 4}


def _payload(step, identity=IDENTITY):
    return {
        "meta": {"identity": identity, "nshards": 4, "complete": False},
        "state": {"done": {i: [i] for i in range(step)}},
    }


class TestValidation:
    def test_every_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointSession(str(tmp_path), every=0)

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointSession(str(tmp_path), keep=0)

    def test_path_collision_with_a_file(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(CheckpointError):
            CheckpointSession(str(blocker))


class TestChain:
    def test_commit_publishes_and_prunes_to_keep(self, tmp_path):
        session = CheckpointSession(str(tmp_path), keep=2)
        for step in range(5):
            assert session.commit(step, _payload(step)) is not None
        steps = [s for s, _ in list_snapshots(str(tmp_path))]
        assert steps == [3, 4]
        assert session.stats["writes"] == 5

    def test_commit_failure_warns_and_continues(self, tmp_path):
        session = CheckpointSession(str(tmp_path))
        with faults.inject("checkpoint_write:error@1;seed=5"):
            with pytest.warns(RuntimeWarning, match="checkpoint write"):
                assert session.commit(0, _payload(0)) is None
        assert session.stats["write_failures"] == 1
        # The next cadence point succeeds normally.
        assert session.commit(1, _payload(1)) is not None

    def test_on_commit_hook_sees_each_publication(self, tmp_path):
        seen = []
        session = CheckpointSession(
            str(tmp_path), on_commit=lambda step, path: seen.append(step)
        )
        session.commit(0, _payload(0))
        session.commit(1, _payload(1))
        assert seen == [0, 1]

    def test_on_commit_not_called_for_failed_writes(self, tmp_path):
        seen = []
        session = CheckpointSession(
            str(tmp_path), on_commit=lambda step, path: seen.append(step)
        )
        with faults.inject("checkpoint_write:error@1;seed=5"):
            with pytest.warns(RuntimeWarning):
                session.commit(0, _payload(0))
        assert seen == []


class TestFallback:
    def test_load_latest_walks_past_corruption(self, tmp_path):
        session = CheckpointSession(str(tmp_path), keep=3)
        for step in range(3):
            session.commit(step, _payload(step))
        newest = list_snapshots(str(tmp_path))[-1][1]
        with open(newest, "r+b") as h:
            h.truncate(os.path.getsize(newest) - 8)
        with pytest.warns(RuntimeWarning, match="falling back"):
            step, payload = session.load_latest()
        assert step == 1
        assert session.stats["fallbacks"] == 1

    def test_fully_corrupt_chain_degrades_to_none(self, tmp_path):
        session = CheckpointSession(str(tmp_path), keep=3)
        for step in range(2):
            session.commit(step, _payload(step))
        for _, path in list_snapshots(str(tmp_path)):
            open(path, "wb").close()
        with pytest.warns(RuntimeWarning):
            assert session.load_latest() is None
        assert session.stats["fallbacks"] == 2

    def test_load_latest_on_empty_directory(self, tmp_path):
        session = CheckpointSession(str(tmp_path))
        assert session.load_latest() is None


class TestBegin:
    def test_fresh_run_deletes_stale_chain(self, tmp_path):
        stale = CheckpointSession(str(tmp_path))
        stale.commit(0, _payload(0))
        session = CheckpointSession(str(tmp_path))
        assert session.begin(IDENTITY, resume=False) is None
        assert list_snapshots(str(tmp_path)) == []
        assert session.began

    def test_resume_restores_matching_identity(self, tmp_path):
        writer = CheckpointSession(str(tmp_path))
        writer.commit(2, _payload(2))
        session = CheckpointSession(str(tmp_path))
        payload = session.begin(IDENTITY, resume=True)
        assert payload["meta"]["identity"] == IDENTITY
        assert session.stats["resumed_step"] == 2

    def test_resume_with_no_chain_returns_none(self, tmp_path):
        session = CheckpointSession(str(tmp_path))
        assert session.begin(IDENTITY, resume=True) is None
        assert session.stats["resumed_step"] == -1

    def test_identity_mismatch_refuses_to_resume(self, tmp_path):
        writer = CheckpointSession(str(tmp_path))
        writer.commit(1, _payload(1))
        other = dict(IDENTITY, variant="blocked")
        session = CheckpointSession(str(tmp_path))
        with pytest.raises(CheckpointError, match="different run"):
            session.begin(other, resume=True)


class TestReporting:
    def test_note_skipped_accumulates(self, tmp_path):
        session = CheckpointSession(str(tmp_path))
        session.note_skipped(3)
        session.note_skipped(0)
        assert session.stats["steps_skipped"] == 3

    def test_summary_mentions_resume_details(self, tmp_path):
        writer = CheckpointSession(str(tmp_path))
        writer.commit(2, _payload(2))
        session = CheckpointSession(str(tmp_path))
        session.begin(IDENTITY, resume=True)
        session.note_skipped(2)
        text = session.summary()
        assert "resumed_step=2" in text
        assert "steps_skipped=2" in text
