"""run_checkpointed: bit-identical resume, wave cadence, identity rules."""

import numpy as np
import pytest

from repro.apps import PORTFOLIO_APPS, Stencil1D, XSBench, run
from repro.ckpt import CheckpointSession, run_checkpointed
from repro.errors import AppError, CheckpointError
from repro.gpu.device import get_device
from repro.sched import DevicePool

pytestmark = pytest.mark.ckpt


class _Boom(Exception):
    """Deliberate crash injected through the on_commit hook."""


def _single(app, params):
    return app.run_single("ompx", params, get_device(0))


def _crash_after(n):
    """An on_commit hook that raises once ``n`` snapshots are published."""
    count = {"commits": 0}

    def hook(step, path):
        count["commits"] += 1
        if count["commits"] >= n:
            raise _Boom(f"crash after snapshot #{n}")

    return hook


class TestBitIdentity:
    @pytest.mark.parametrize("app_cls", PORTFOLIO_APPS, ids=lambda c: c.name)
    def test_checkpointed_matches_single_device(self, app_cls, tmp_path):
        app = app_cls()
        params = app.functional_params()
        expected = _single(app, params)
        session = CheckpointSession(str(tmp_path), every=2)
        with DevicePool(2) as pool:
            result = run_checkpointed(app, "ompx", params, pool, session)
        assert np.array_equal(result.output, expected.output)
        assert result.checksum == expected.checksum
        assert session.stats["writes"] >= 1

    def test_resumed_run_is_bit_identical(self, tmp_path):
        app = Stencil1D()
        params = app.functional_params()
        expected = _single(app, params)
        # Crash after the first snapshot of a 4-shard, every=1 run.
        crashed = CheckpointSession(str(tmp_path), on_commit=_crash_after(1))
        with DevicePool(2) as pool:
            with pytest.raises(_Boom):
                run_checkpointed(app, "ompx", params, pool, crashed, shards=4)
        # A fresh process resumes and completes the remaining shards.
        session = CheckpointSession(str(tmp_path))
        with DevicePool(2) as pool:
            result = run_checkpointed(
                app, "ompx", params, pool, session, resume=True
            )
        assert np.array_equal(result.output, expected.output)
        assert session.stats["resumed_step"] == 1
        assert session.stats["steps_skipped"] == 1


class TestResumeSemantics:
    def test_resume_executes_only_the_unfinished_tail(self, tmp_path):
        from repro import trace as trace_mod

        app = XSBench()
        params = app.functional_params()
        crashed = CheckpointSession(str(tmp_path), on_commit=_crash_after(2))
        with DevicePool(2) as pool:
            with pytest.raises(_Boom):
                run_checkpointed(app, "ompx", params, pool, crashed, shards=4)
        tracer = trace_mod.enable()
        try:
            session = CheckpointSession(str(tmp_path))
            with DevicePool(2) as pool:
                run_checkpointed(app, "ompx", params, pool, session, resume=True)
        finally:
            trace_mod.disable()
        assert session.stats["steps_skipped"] == 2
        assert tracer.counters["ckpt_steps_executed"] == 2
        assert tracer.counters["ckpt_resumes"] == 1

    def test_recorded_shard_count_wins_on_resume(self, tmp_path):
        app = Stencil1D()
        params = app.functional_params()
        expected = _single(app, params)
        crashed = CheckpointSession(str(tmp_path), on_commit=_crash_after(1))
        with DevicePool(2) as pool:
            with pytest.raises(_Boom):
                run_checkpointed(app, "ompx", params, pool, crashed, shards=6)
        # Resume with a *different* pool width and no explicit shards=;
        # the chain's recorded nshards=6 must win or the restored shard
        # outputs would be orphaned.
        session = CheckpointSession(str(tmp_path))
        with DevicePool(3) as pool:
            result = run_checkpointed(
                app, "ompx", params, pool, session, resume=True
            )
        assert np.array_equal(result.output, expected.output)

    def test_resume_of_a_finished_run_skips_everything(self, tmp_path):
        app = Stencil1D()
        params = app.functional_params()
        expected = _single(app, params)
        first = CheckpointSession(str(tmp_path))
        with DevicePool(2) as pool:
            run_checkpointed(app, "ompx", params, pool, first, shards=4)
        session = CheckpointSession(str(tmp_path))
        with DevicePool(2) as pool:
            result = run_checkpointed(
                app, "ompx", params, pool, session, resume=True
            )
        assert np.array_equal(result.output, expected.output)
        assert session.stats["steps_skipped"] == 4
        assert session.stats["resumed_step"] == 4

    def test_in_process_reentry_resumes_via_began(self, tmp_path):
        """A retry on the SAME session (resilient run_to_completion) is a
        continuation: the second call restores the chain even though it
        passes resume=False."""
        app = Stencil1D()
        params = app.functional_params()
        expected = _single(app, params)
        session = CheckpointSession(str(tmp_path), on_commit=_crash_after(2))
        with DevicePool(2) as pool:
            with pytest.raises(_Boom):
                run_checkpointed(app, "ompx", params, pool, session, shards=4)
            session.on_commit = None
            result = run_checkpointed(app, "ompx", params, pool, session, shards=4)
        assert np.array_equal(result.output, expected.output)
        assert session.stats["steps_skipped"] == 2


class TestIdentity:
    def test_resume_under_different_params_is_refused(self, tmp_path):
        app = Stencil1D()
        params = dict(app.functional_params())
        first = CheckpointSession(str(tmp_path))
        with DevicePool(2) as pool:
            run_checkpointed(app, "ompx", params, pool, first, shards=4)
        other = dict(params)
        other["steps"] = int(other.get("steps", 1)) + 1
        session = CheckpointSession(str(tmp_path))
        with DevicePool(2) as pool:
            with pytest.raises(CheckpointError, match="different run"):
                run_checkpointed(
                    app, "ompx", other, pool, session, resume=True
                )

    def test_omp_variant_cannot_be_checkpointed(self, tmp_path):
        app = Stencil1D()
        session = CheckpointSession(str(tmp_path))
        with DevicePool(2) as pool:
            with pytest.raises(AppError, match="cannot be sharded"):
                run_checkpointed(
                    app, "omp", app.functional_params(), pool, session
                )


class TestRunIntegration:
    def test_run_with_checkpoint_dir_attaches_the_session(self, tmp_path):
        app = Stencil1D()
        expected = _single(app, app.functional_params())
        result = run(
            app, devices=2, checkpoint_dir=str(tmp_path), checkpoint_every=2
        )
        assert np.array_equal(result.output, expected.output)
        assert result.checkpoint.stats["writes"] >= 1

    def test_run_resume_requires_checkpoint_dir(self):
        with pytest.raises(AppError, match="requires checkpoint_dir"):
            run(Stencil1D(), resume=True)
