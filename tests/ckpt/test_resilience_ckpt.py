"""Checkpoint x resilience: retries resume from the last snapshot."""

import numpy as np
import pytest

from repro import faults
from repro.apps import Stencil1D, XSBench, run
from repro.ckpt import CheckpointSession, run_checkpointed
from repro.errors import GpuError
from repro.gpu.device import get_device
from repro.resilience import RecoveryReport, ResilientPool
from repro.sched import DevicePool

pytestmark = [pytest.mark.ckpt, pytest.mark.resilience]


def _single(app, params):
    return app.run_single("ompx", params, get_device(0))


def test_retry_resumes_from_last_checkpoint_not_step_zero(tmp_path):
    from repro import trace as trace_mod

    app = XSBench()
    params = app.functional_params()
    expected = _single(app, params)

    # Crash the run (with a *retryable* error) right after snapshot #2.
    state = {"commits": 0, "crashed": False}

    def hook(step, path):
        state["commits"] += 1
        if state["commits"] == 2 and not state["crashed"]:
            state["crashed"] = True
            raise GpuError("injected supervisor failure after snapshot 2")

    session = CheckpointSession(str(tmp_path), on_commit=hook)
    report = RecoveryReport()
    tracer = trace_mod.enable()
    try:
        with DevicePool(2) as pool:
            with ResilientPool(pool, report=report) as rpool:
                result = rpool.run_to_completion(
                    lambda p: run_checkpointed(
                        app, "ompx", params, p, session, shards=4
                    ),
                    label="xsbench:ckpt",
                )
    finally:
        trace_mod.disable()

    assert np.array_equal(result.output, expected.output)
    assert report["runs_reexecuted"] == 1
    # The retry restored the 2 committed shards instead of recomputing
    # them: 2 executed before the crash + 2 after = 4 total, not 6.
    assert session.stats["steps_skipped"] == 2
    assert tracer.counters["ckpt_steps_executed"] == 4
    assert tracer.counters["ckpt_resumes"] == 1


def test_run_composes_checkpoint_with_resilient_shard_fault(tmp_path):
    app = XSBench()
    params = app.functional_params()
    expected = _single(app, params)
    with faults.inject("launch:kernel_fault@1 device=1", seed=11) as plan:
        result = run(
            app,
            devices=3,
            resilient=True,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=2,
        )
        assert plan.fired == 1, plan.summary()
    assert np.array_equal(result.output, expected.output)
    assert result.checkpoint.stats["writes"] >= 1


def test_checkpoint_write_fault_does_not_fail_the_run(tmp_path):
    app = Stencil1D()
    params = app.functional_params()
    expected = _single(app, params)
    with faults.inject("checkpoint_write:error@1;seed=7") as plan:
        with pytest.warns(RuntimeWarning, match="checkpoint write"):
            result = run(app, devices=2, checkpoint_dir=str(tmp_path))
        assert plan.fired == 1, plan.summary()
    assert np.array_equal(result.output, expected.output)
    assert result.checkpoint.stats["write_failures"] == 1
    # The later cadence points still published a resumable chain.
    assert result.checkpoint.stats["writes"] >= 1
