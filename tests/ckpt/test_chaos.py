"""Chaos acceptance for checkpoint/restart: every portfolio app survives
both kinds of violent death bit-identically.

* **Worker SIGKILL mid-run** — the cluster tier redispatches the orphaned
  shard; the checkpoint chain keeps publishing through the chaos.
* **Supervisor SIGKILL mid-chain** — a spawn child running the
  checkpointed cluster run kills *itself* right after a snapshot
  publishes; a fresh process ``--resume``-s the chain and must produce
  output ``np.array_equal`` to an uninterrupted single-device run while
  re-executing only the unfinished shards.

Both are also exercised under a seeded fault plan that corrupts
checkpoint writes, proving the fallback chain holds under chaos.
"""

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.apps import PORTFOLIO_APPS, ExecutionConfig, run
from repro.apps.__main__ import main
from repro.cluster import ClusterPool
from repro.gpu import get_device
from repro.resilience import RecoveryReport

from . import helpers

pytestmark = [pytest.mark.ckpt, pytest.mark.cluster]

APP_IDS = [cls.name for cls in PORTFOLIO_APPS]


def _reference(app):
    params = app.functional_params()
    return params, app.run_single("ompx", params, get_device(0))


class TestWorkerKill:
    def test_all_eight_apps_checkpoint_through_a_worker_kill(self, tmp_path):
        report = RecoveryReport()
        with ClusterPool(
            3, heartbeat_s=0.1, deadline_s=1.5, seed=1234, report=report
        ) as pool:
            victim = pool._handles[2]
            old_pid = victim.proc.pid

            def killer():
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline and not victim.inflight:
                    time.sleep(0.001)
                os.kill(old_pid, signal.SIGKILL)

            thread = threading.Thread(target=killer, daemon=True)
            thread.start()

            for app_cls in PORTFOLIO_APPS:
                app = app_cls()
                params, reference = _reference(app)
                result = run(app, ExecutionConfig(
                    params=params,
                    pool=pool,
                    checkpoint_dir=str(tmp_path / app.name),
                ))
                assert np.array_equal(
                    reference.output, result.output
                ), f"{app.name}: output diverged after worker loss"
                assert result.checkpoint.stats["writes"] >= 1
            thread.join()
        assert report["workers_lost"] == 1
        assert report["redispatches"] >= 1


class TestSupervisorKill:
    def _kill_and_resume(self, app_name, directory, *, kill_after,
                         fault_spec=None, expect_fallback=False):
        """Spawn the self-killing supervisor, then resume in this process
        (a different, 'fresh' process from the dead supervisor's view)."""
        from repro import faults

        ctx = multiprocessing.get_context("spawn")
        child = ctx.Process(
            target=helpers.crashing_checkpointed_cluster_run,
            args=(app_name, directory, kill_after, fault_spec),
        )
        child.start()
        child.join(timeout=90)
        assert child.exitcode == -signal.SIGKILL, (
            f"supervisor should have died by SIGKILL, got {child.exitcode}"
        )

        app = helpers.app_by_name(app_name)
        params, reference = _reference(app)
        config = ExecutionConfig(
            params=params,
            cluster=2,
            checkpoint_dir=directory,
            resume=True,
            trace=True,
        )
        if fault_spec:
            with faults.inject(fault_spec):
                result = run(app, config)
        else:
            result = run(app, config)

        assert np.array_equal(reference.output, result.output), (
            f"{app_name}: resumed output diverged from uninterrupted run"
        )
        stats = result.checkpoint.stats
        executed = result.tracer.counters["ckpt_steps_executed"]
        # Only the unfinished tail ran: restored + executed covers the
        # whole 4-shard chain with no recomputation of restored shards.
        assert stats["resumed_step"] >= 1
        assert stats["steps_skipped"] >= 1
        assert executed == 4 - stats["steps_skipped"]
        if expect_fallback:
            assert stats["fallbacks"] >= 1
        return stats

    @pytest.mark.parametrize("app_name", APP_IDS)
    def test_fresh_process_resumes_after_supervisor_sigkill(
        self, app_name, tmp_path
    ):
        stats = self._kill_and_resume(
            app_name, str(tmp_path), kill_after=2
        )
        assert stats["resumed_step"] == 2
        assert stats["steps_skipped"] == 2

    @pytest.mark.parametrize("app_name", ["XSBench", "Stencil 1D"])
    def test_resume_under_checkpoint_site_faults_falls_back(
        self, app_name, tmp_path
    ):
        # Snapshot #2 is corrupted as it is written, and the supervisor
        # dies right after publishing it: resume must detect the damage,
        # fall back to snapshot #1, and still be bit-identical.
        with pytest.warns(RuntimeWarning, match="falling back"):
            stats = self._kill_and_resume(
                app_name,
                str(tmp_path),
                kill_after=2,
                fault_spec="checkpoint_write:corrupt@2,bytes=3;seed=11",
                expect_fallback=True,
            )
        assert stats["resumed_step"] == 1
        assert stats["steps_skipped"] == 1


class TestCliComposition:
    def test_checkpoint_flag_runs_and_summarizes(self, capsys, tmp_path):
        d = str(tmp_path / "chain")
        assert main([
            "xsbench", "--run", "--checkpoint", d, "--checkpoint-every", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "checkpointing into" in out
        assert "checkpoint[" in out
        assert "PASSED" in out

    def test_resume_flag_skips_the_finished_chain(self, capsys, tmp_path):
        d = str(tmp_path / "chain")
        assert main(["stencil1d", "--run", "--checkpoint", d]) == 0
        capsys.readouterr()
        assert main([
            "stencil1d", "--run", "--checkpoint", d, "--resume",
        ]) == 0
        out = capsys.readouterr().out
        assert "resuming into" in out
        assert "resumed_step=" in out

    def test_checkpoint_composes_with_cluster(self, capsys, tmp_path):
        d = str(tmp_path / "chain")
        assert main([
            "stencil1d", "--run", "--cluster", "2", "--checkpoint", d,
        ]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "checkpoint[" in out

    def test_serve_journals_through_the_checkpoint_dir(self, capsys, tmp_path):
        d = str(tmp_path / "chain")
        assert main([
            "adam", "--serve", "--checkpoint", d, "--tenants", "2",
        ]) == 0
        assert os.path.exists(os.path.join(d, "journal.jsonl"))
        capsys.readouterr()
        # A clean drain leaves nothing to re-admit; --resume --serve is a
        # no-op restart, not an error.
        assert main([
            "adam", "--serve", "--checkpoint", d, "--resume", "--tenants", "1",
        ]) == 0

    def test_resume_without_checkpoint_is_rejected(self, capsys):
        assert main(["xsbench", "--run", "--resume"]) == 2

    def test_zero_cadence_is_rejected(self, capsys, tmp_path):
        assert main([
            "xsbench", "--run", "--checkpoint", str(tmp_path),
            "--checkpoint-every", "0",
        ]) == 2
