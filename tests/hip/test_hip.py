"""HIP layer: CUDA-mirrored API targeting the MI250 preset."""

import numpy as np
import pytest

from repro import hip
from repro.errors import GpuError
from repro.gpu import get_device


@pytest.fixture(autouse=True)
def on_amd():
    hip.hipSetDevice(1)
    yield
    hip.hipSetDevice(1)


class TestDefaults:
    def test_default_device_is_amd(self):
        assert hip.hipGetDevice() == 1
        assert hip.current_hip_device().spec.vendor == "amd"

    def test_set_device_validated(self):
        with pytest.raises(GpuError):
            hip.hipSetDevice(13)

    def test_facade_is_shared_with_cuda(self):
        from repro.cuda import CudaThread

        assert hip.HipThread is CudaThread


class TestMemory:
    def test_roundtrip(self):
        data = np.arange(50, dtype=np.float64)
        ptr = hip.hipMalloc(data.nbytes)
        assert ptr.device_ordinal == 1
        hip.hipMemcpy(ptr, data, data.nbytes, hip.hipMemcpyHostToDevice)
        out = np.zeros_like(data)
        hip.hipMemcpy(out, ptr, data.nbytes, hip.hipMemcpyDeviceToHost)
        assert np.array_equal(out, data)
        hip.hipFree(ptr)

    def test_memset(self):
        ptr = hip.hipMalloc(16)
        hip.hipMemset(ptr, 0x7, 16)
        out = np.zeros(16, dtype=np.uint8)
        hip.hipMemcpy(out, ptr, 16, hip.hipMemcpyDeviceToHost)
        assert (out == 7).all()
        hip.hipFree(ptr)

    def test_async_memcpy(self):
        s = hip.hipStreamCreate("h")
        data = np.arange(8, dtype=np.int32)
        ptr = hip.hipMalloc(data.nbytes)
        out = np.zeros_like(data)
        hip.hipMemcpyAsync(ptr, data, data.nbytes, hip.hipMemcpyHostToDevice, s)
        hip.hipMemcpyAsync(out, ptr, data.nbytes, hip.hipMemcpyDeviceToHost, s)
        hip.hipStreamSynchronize(s)
        assert np.array_equal(out, data)
        hip.hipStreamDestroy(s)
        hip.hipFree(ptr)


class TestKernels:
    def test_chevron_style_launch(self):
        n = 256
        d = hip.hipMalloc(n * 8)

        @hip.kernel(sync_free=True)
        def k(t, out, n):
            i = t.blockIdx.x * t.blockDim.x + t.threadIdx.x
            if i < n:
                t.array(out, n, np.float64)[i] = i * 0.5

        hip.launch(k, (n + 63) // 64, 64, (d, n))
        hip.hipDeviceSynchronize()
        out = np.zeros(n)
        hip.hipMemcpy(out, d, n * 8, hip.hipMemcpyDeviceToHost)
        assert np.array_equal(out, np.arange(n) * 0.5)
        hip.hipFree(d)

    def test_hip_launch_kernel_ggl(self):
        """HIP's macro-style launch: geometry before arguments."""
        n = 64
        d = hip.hipMalloc(n * 8)

        @hip.kernel(sync_free=True)
        def k(t, out, n):
            i = t.global_thread_id
            if i < n:
                t.array(out, n, np.int64)[i] = i + 1

        hip.hipLaunchKernelGGL(k, 2, 32, 0, None, d, n)
        hip.hipDeviceSynchronize()
        out = np.zeros(n, dtype=np.int64)
        hip.hipMemcpy(out, d, n * 8, hip.hipMemcpyDeviceToHost)
        assert np.array_equal(out, np.arange(1, n + 1))
        hip.hipFree(d)

    def test_wavefront_is_64_wide(self):
        """HIP kernels on the MI250 see 64-lane wavefronts."""
        d = hip.hipMalloc(8)

        @hip.kernel
        def k(t, out):
            total = t.ctx.warp_reduce(1, lambda a, b: a + b)
            if t.laneid == 0:
                t.array(out, 1, np.int64)[0] = total

        hip.launch(k, 1, 64, (d,))
        hip.hipDeviceSynchronize()
        out = np.zeros(1, dtype=np.int64)
        hip.hipMemcpy(out, d, 8, hip.hipMemcpyDeviceToHost)
        assert out[0] == 64
        hip.hipFree(d)

    def test_events(self):
        ev = hip.hipEventCreate("e")
        hip.hipEventRecord(ev)
        hip.hipEventSynchronize(ev)
        assert ev.is_complete

    def test_kernel_language_tag(self):
        @hip.kernel
        def k(t):
            pass

        assert k.language == "hip"
