"""The extended depend clause (§3.5): interopobj dependences."""

import threading
import time

import numpy as np
import pytest

from repro import ompx
from repro.errors import DependenceError
from repro.openmp import TaskRuntime, interop_destroy, interop_init
from repro.openmp.task import DependType


@pytest.fixture
def runtime():
    rt = TaskRuntime(num_helpers=4)
    yield rt
    rt.shutdown()


@pytest.fixture
def interop(nvidia):
    obj = interop_init(targetsync=True, device=nvidia)
    yield obj
    interop_destroy(obj)


class TestFigure5:
    def test_target_dispatched_into_stream(self, nvidia, runtime, interop):
        """The paper's Figure 5: nowait target into the interop's stream,
        taskwait depend(interopobj) as the stream synchronization."""
        log = []
        gate = threading.Event()

        interop.targetsync.enqueue(gate.wait)  # pre-existing stream work

        task = ompx.target_teams_bare(
            nvidia, 1, 4,
            lambda x: log.append("kernel") if x.thread_id_x() == 0 else None,
            nowait=True,
            depend=[(DependType.INTEROPOBJ, interop)],
            task_runtime=runtime,
        )
        # The region must wait behind the gated stream work.
        time.sleep(0.02)
        assert log == []
        gate.set()
        runtime.taskwait([(DependType.INTEROPOBJ, interop)])
        assert log == ["kernel"]
        assert task.done.is_set()

    def test_stream_ordering_of_two_regions(self, nvidia, runtime, interop):
        order = []

        def mk(tag):
            def region(x):
                if x.thread_id_x() == 0:
                    time.sleep(0.01 if tag == "first" else 0)
                    order.append(tag)
            return region

        for tag in ("first", "second"):
            ompx.target_teams_bare(
                nvidia, 1, 2, mk(tag), nowait=True,
                depend=[(DependType.INTEROPOBJ, interop)], task_runtime=runtime,
            )
        runtime.taskwait([(DependType.INTEROPOBJ, interop)])
        assert order == ["first", "second"]

    def test_taskwait_interop_helper(self, nvidia, interop):
        log = []
        interop.targetsync.enqueue(lambda: log.append(1))
        ompx.taskwait_interop(interop)
        assert log == [1]


class TestMixedDependences:
    def test_stock_predecessors_gate_stream_task(self, nvidia, runtime, interop):
        """interopobj + in: the stream closure waits for the graph pred."""
        loc = np.zeros(1)
        log = []

        runtime.submit(lambda: (time.sleep(0.03), log.append("producer")),
                       depends=[(DependType.OUT, loc)])
        ompx.target_teams_bare(
            nvidia, 1, 1, lambda x: log.append("consumer"),
            nowait=True,
            depend=[(DependType.INTEROPOBJ, interop), (DependType.IN, loc)],
            task_runtime=runtime,
        )
        runtime.taskwait()
        assert log == ["producer", "consumer"]

    def test_failed_predecessor_fails_stream_task(self, nvidia, runtime, interop):
        loc = np.zeros(1)
        runtime.submit(lambda: 1 / 0, depends=[(DependType.OUT, loc)], name="bad")
        task = ompx.target_teams_bare(
            nvidia, 1, 1, lambda x: None,
            nowait=True,
            depend=[(DependType.INTEROPOBJ, interop), (DependType.IN, loc)],
            task_runtime=runtime,
        )
        task.wait(5)
        assert task.error is not None

    def test_downstream_stock_task_waits_for_stream_task(self, nvidia, runtime, interop):
        loc = np.zeros(1)
        log = []
        ompx.target_teams_bare(
            nvidia, 1, 1,
            lambda x: (time.sleep(0.02), log.append("stream"))[-1],
            nowait=True,
            depend=[(DependType.INTEROPOBJ, interop), (DependType.OUT, loc)],
            task_runtime=runtime,
        )
        runtime.submit(lambda: log.append("after"), depends=[(DependType.IN, loc)])
        runtime.taskwait()
        assert log == ["stream", "after"]


class TestValidation:
    def test_wrong_item_type_rejected(self, runtime):
        with pytest.raises(DependenceError, match="omp_interop_t"):
            runtime.submit(
                lambda: None, depends=[(DependType.INTEROPOBJ, "not-an-interop")]
            )

    def test_two_extension_depends_rejected(self, nvidia, runtime):
        a = interop_init(device=nvidia)
        b = interop_init(device=nvidia)
        try:
            with pytest.raises(DependenceError, match="at most one"):
                runtime.submit(
                    lambda: None,
                    depends=[(DependType.INTEROPOBJ, a), (DependType.INTEROPOBJ, b)],
                )
        finally:
            interop_destroy(a)
            interop_destroy(b)

    def test_task_error_surfaces_at_taskwait(self, nvidia, runtime, interop):
        def bad_region(x):
            raise RuntimeError("kernel bug")

        ompx.target_teams_bare(
            nvidia, 1, 1, bad_region, nowait=True,
            depend=[(DependType.INTEROPOBJ, interop)], task_runtime=runtime,
        )
        with pytest.raises(DependenceError):
            runtime.taskwait()
