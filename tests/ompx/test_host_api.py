"""Host APIs (§3.4): ompx_malloc & friends with direction inference."""

import numpy as np
import pytest

from repro import ompx
from repro.errors import InvalidPointerError, MappingError


class TestMallocFree:
    def test_malloc_on_device(self, any_device):
        ptr = ompx.ompx_malloc(64, any_device)
        assert ptr.device_ordinal == any_device.ordinal
        ompx.ompx_free(ptr, any_device)

    def test_malloc_default_device(self):
        from repro.gpu import current_device

        ptr = ompx.ompx_malloc(16)
        assert ptr.device_ordinal == current_device().ordinal
        ompx.ompx_free(ptr)

    def test_double_free_detected(self, nvidia):
        ptr = ompx.ompx_malloc(8, nvidia)
        ompx.ompx_free(ptr, nvidia)
        with pytest.raises(InvalidPointerError):
            ompx.ompx_free(ptr, nvidia)


class TestMemcpyInference:
    def test_h2d_inferred(self, any_device):
        data = np.arange(32, dtype=np.float64)
        ptr = ompx.ompx_malloc(data.nbytes, any_device)
        ompx.ompx_memcpy(ptr, data, data.nbytes, any_device)
        view = any_device.allocator.view(ptr, 32, np.float64)
        assert np.array_equal(view, data)
        ompx.ompx_free(ptr, any_device)

    def test_d2h_inferred(self, any_device):
        ptr = ompx.ompx_malloc(16 * 8, any_device)
        any_device.allocator.view(ptr, 16, np.float64)[:] = 4.0
        out = np.zeros(16)
        ompx.ompx_memcpy(out, ptr, out.nbytes, any_device)
        assert (out == 4.0).all()
        ompx.ompx_free(ptr, any_device)

    def test_d2d_inferred(self, nvidia):
        a = ompx.ompx_malloc(16, nvidia)
        b = ompx.ompx_malloc(16, nvidia)
        nvidia.allocator.view(a, 16, np.uint8)[:] = 9
        ompx.ompx_memcpy(b, a, 16, nvidia)
        assert (nvidia.allocator.view(b, 16, np.uint8) == 9).all()
        for p in (a, b):
            ompx.ompx_free(p, nvidia)

    def test_host_to_host_rejected(self, nvidia):
        with pytest.raises(MappingError, match="device pointer"):
            ompx.ompx_memcpy(np.zeros(4), np.zeros(4), 32, nvidia)

    def test_partial_copy(self, nvidia):
        data = np.arange(8, dtype=np.int32)
        ptr = ompx.ompx_malloc(data.nbytes, nvidia)
        ompx.ompx_memcpy(ptr, data, 4 * 4, nvidia)
        out = np.zeros(8, dtype=np.int32)
        ompx.ompx_memcpy(out, ptr, 8 * 4, nvidia)
        assert np.array_equal(out[:4], data[:4]) and not out[4:].any()
        ompx.ompx_free(ptr, nvidia)


class TestMemsetAndSync:
    def test_memset(self, nvidia):
        ptr = ompx.ompx_malloc(32, nvidia)
        ompx.ompx_memset(ptr, 0x5A, 32, nvidia)
        assert (nvidia.allocator.view(ptr, 32, np.uint8) == 0x5A).all()
        ompx.ompx_free(ptr, nvidia)

    def test_device_synchronize(self, nvidia):
        log = []
        nvidia.default_stream.enqueue(lambda: log.append(1))
        ompx.ompx_device_synchronize(nvidia)
        assert log == [1]

    def test_stream_create_and_sync(self, nvidia):
        stream = ompx.ompx_stream_create(nvidia, name="ompx-s")
        try:
            log = []
            stream.enqueue(lambda: log.append("x"))
            ompx.ompx_stream_synchronize(stream)
            assert log == ["x"]
        finally:
            stream.close()


class TestAsyncStreamKwargs:
    """``stream=`` turns the host APIs into their cudaXxxAsync forms."""

    def test_memcpy_with_stream_is_enqueued_not_immediate(self, nvidia):
        import threading

        gate = threading.Event()
        stream = ompx.ompx_stream_create(nvidia, name="async-copy")
        try:
            data = np.arange(8, dtype=np.float64)
            ptr = ompx.ompx_malloc(data.nbytes, nvidia)
            ompx.ompx_memset(ptr, 0, data.nbytes, nvidia)
            stream.enqueue(gate.wait)  # hold the queue so the copy can't run yet
            ompx.ompx_memcpy(ptr, data, data.nbytes, nvidia, stream=stream)
            # the call returned while the stream is still gated: nothing copied
            assert not nvidia.allocator.view(ptr, 8, np.float64).any()
            gate.set()
            ompx.ompx_stream_synchronize(stream)
            assert np.array_equal(nvidia.allocator.view(ptr, 8, np.float64), data)
            ompx.ompx_free(ptr, nvidia)
        finally:
            gate.set()
            stream.close()

    def test_memset_with_stream_is_enqueued_not_immediate(self, nvidia):
        import threading

        gate = threading.Event()
        stream = ompx.ompx_stream_create(nvidia, name="async-set")
        try:
            ptr = ompx.ompx_malloc(16, nvidia)
            ompx.ompx_memset(ptr, 0, 16, nvidia)
            stream.enqueue(gate.wait)
            ompx.ompx_memset(ptr, 0x7F, 16, nvidia, stream=stream)
            assert not nvidia.allocator.view(ptr, 16, np.uint8).any()
            gate.set()
            ompx.ompx_stream_synchronize(stream)
            assert (nvidia.allocator.view(ptr, 16, np.uint8) == 0x7F).all()
            ompx.ompx_free(ptr, nvidia)
        finally:
            gate.set()
            stream.close()

    def test_malloc_with_stream_fences_allocation(self, nvidia):
        stream = ompx.ompx_stream_create(nvidia, name="async-alloc")
        try:
            ptr = ompx.ompx_malloc(32, nvidia, stream=stream)
            ompx.ompx_memset(ptr, 1, 32, nvidia, stream=stream)
            ompx.ompx_stream_synchronize(stream)
            assert (nvidia.allocator.view(ptr, 32, np.uint8) == 1).all()
            ompx.ompx_free(ptr, nvidia)
        finally:
            stream.close()

    def test_memcpy_resolves_default_device(self):
        from repro.gpu import current_device

        data = np.arange(4, dtype=np.int32)
        ptr = ompx.ompx_malloc(data.nbytes)
        ompx.ompx_memcpy(ptr, data, data.nbytes)
        view = current_device().allocator.view(ptr, 4, np.int32)
        assert np.array_equal(view, data)
        ompx.ompx_free(ptr)


class TestFigure1PortShape:
    def test_cuda_host_sequence_ports_one_to_one(self, nvidia):
        """The Figure 1 host flow, each call renamed to its §3.4 API."""
        n = 100
        size = n * 4
        h_a = np.arange(n, dtype=np.int32)
        h_b = np.zeros(n, dtype=np.int32)

        d_a = ompx.ompx_malloc(size, nvidia)           # cudaMalloc
        d_b = ompx.ompx_malloc(size, nvidia)
        ompx.ompx_memcpy(d_a, h_a, size, nvidia)       # cudaMemcpy H2D

        @ompx.bare_kernel(sync_free=True)
        def k(x, a, b, n):
            i = x.global_thread_id_x()
            if i < n:
                x.array(b, n, np.int32)[i] = x.array(a, n, np.int32)[i] + 1

        bsize = 32
        gsize = (n + bsize - 1) // bsize
        ompx.target_teams_bare(nvidia, gsize, bsize, k, (d_a, d_b, n))

        ompx.ompx_memcpy(h_b, d_b, size, nvidia)       # cudaMemcpy D2H
        ompx.ompx_device_synchronize(nvidia)           # cudaDeviceSynchronize
        ompx.ompx_free(d_a, nvidia)                    # cudaFree
        ompx.ompx_free(d_b, nvidia)
        assert np.array_equal(h_b, h_a + 1)
