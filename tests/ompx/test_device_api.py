"""Device APIs (§3.3): C-style ompx_* and C++-style ompx:: equivalence.

The litmus test throughout: the ompx spelling must return exactly what the
CUDA spelling returns for the same thread — the APIs are equivalents, not
approximations (§3.3.1's "equivalent to threadIdx.x").
"""

import numpy as np
import pytest

from repro import cuda, ompx
from repro.ompx.cxx import DIM_X, DIM_Y, DIM_Z


def run_pair(device, cuda_kernel, ompx_kernel, grid, block, out_len):
    """Run the same logic via both layers; return both outputs."""
    results = []
    for kernel, is_ompx in ((cuda_kernel, False), (ompx_kernel, True)):
        d_out = device.allocator.malloc(out_len * 8)
        if is_ompx:
            ompx.target_teams_bare(device, grid, block, kernel, (d_out, out_len))
        else:
            cuda.launch(kernel, grid, block, (d_out, out_len), device=device)
            device.synchronize()
        out = np.zeros(out_len, dtype=np.int64)
        device.allocator.memcpy_d2h(out, d_out)
        device.allocator.free(d_out)
        results.append(out)
    return results


class TestThreadIndexing:
    def test_indices_match_cuda(self, any_device):
        """thread/block id and dim in all three dimensions."""

        @cuda.kernel(sync_free=True)
        def k_cuda(t, out, n):
            flat = ((t.blockIdx.y * t.gridDim.x + t.blockIdx.x) * t.blockDim.y
                    + t.threadIdx.y) * t.blockDim.x + t.threadIdx.x
            if flat < n:
                t.array(out, n, np.int64)[flat] = (
                    t.threadIdx.x + 10 * t.threadIdx.y + 100 * t.blockIdx.x
                    + 1000 * t.blockIdx.y + 10000 * t.blockDim.x + 100000 * t.gridDim.x
                )

        @ompx.bare_kernel(sync_free=True)
        def k_ompx(x, out, n):
            flat = ((x.block_id_y() * x.grid_dim_x() + x.block_id_x()) * x.block_dim_y()
                    + x.thread_id_y()) * x.block_dim_x() + x.thread_id_x()
            if flat < n:
                x.array(out, n, np.int64)[flat] = (
                    x.thread_id_x() + 10 * x.thread_id_y() + 100 * x.block_id_x()
                    + 1000 * x.block_id_y() + 10000 * x.block_dim_x() + 100000 * x.grid_dim_x()
                )

        a, b = run_pair(any_device, k_cuda, k_ompx, (2, 2), (4, 4), 64)
        assert np.array_equal(a, b)

    def test_generic_dim_accessors(self, nvidia):
        seen = []

        def region(x):
            if x.thread_id_x() == 0 and x.block_id_x() == 0:
                seen.append((
                    x.thread_id(0), x.thread_id(1), x.thread_id(2),
                    x.block_dim(0), x.block_dim(1), x.block_dim(2),
                    x.grid_dim(0), x.block_id(0),
                ))

        ompx.target_teams_bare(nvidia, 2, (8, 2), region)
        assert seen[0] == (0, 0, 0, 8, 2, 1, 2, 0)

    def test_global_thread_id_helper(self, nvidia):
        ids = []

        def region(x):
            ids.append(x.global_thread_id_x())

        ompx.target_teams_bare(nvidia, 2, 4, region)
        assert sorted(ids) == list(range(8))

    def test_warp_and_lane(self, any_device):
        ws = any_device.spec.warp_size
        seen = {}

        def region(x):
            seen[x.thread_id_x()] = (x.warp_id(), x.lane_id(), x.warp_size())

        ompx.target_teams_bare(any_device, 1, ws + 2, region)
        assert seen[0] == (0, 0, ws)
        assert seen[ws] == (1, 0, ws)
        assert seen[ws + 1] == (1, 1, ws)


class TestSynchronization:
    def test_sync_thread_block_matches_syncthreads(self, any_device):
        @cuda.kernel
        def k_cuda(t, out, n):
            shared = t.shared("s", 1, np.int64)
            if t.threadIdx.x == 0:
                shared[0] = 7
            t.syncthreads()
            t.array(out, n, np.int64)[t.threadIdx.x] = shared[0]

        @ompx.bare_kernel
        def k_ompx(x, out, n):
            shared = x.groupprivate("s", 1, np.int64)
            if x.thread_id_x() == 0:
                shared[0] = 7
            x.sync_thread_block()
            x.array(out, n, np.int64)[x.thread_id_x()] = shared[0]

        a, b = run_pair(any_device, k_cuda, k_ompx, 1, 32, 32)
        assert np.array_equal(a, b)
        assert (a == 7).all()

    def test_sync_warp(self, nvidia):
        done = []

        def region(x):
            x.sync_warp()
            done.append(1)

        ompx.target_teams_bare(nvidia, 1, 32, region)
        assert len(done) == 32

    def test_shfl_apis_match_cuda(self, any_device):
        ws = any_device.spec.warp_size

        @cuda.kernel
        def k_cuda(t, out, n):
            lane = t.laneid
            a = t.shfl_sync(cuda.FULL_MASK, lane, 2)
            b = t.shfl_up_sync(cuda.FULL_MASK, lane, 1)
            c = t.shfl_down_sync(cuda.FULL_MASK, lane, 1)
            d = t.shfl_xor_sync(cuda.FULL_MASK, lane, 3)
            t.array(out, n, np.int64)[lane] = a + 100 * b + 10000 * c + 1000000 * d

        @ompx.bare_kernel
        def k_ompx(x, out, n):
            lane = x.lane_id()
            a = x.shfl_sync(lane, 2)
            b = x.shfl_up_sync(lane, 1)
            c = x.shfl_down_sync(lane, 1)
            d = x.shfl_xor_sync(lane, 3)
            x.array(out, n, np.int64)[lane] = a + 100 * b + 10000 * c + 1000000 * d

        a, b = run_pair(any_device, k_cuda, k_ompx, 1, ws, ws)
        assert np.array_equal(a, b)

    def test_vote_apis_match_cuda(self, nvidia):
        @cuda.kernel
        def k_cuda(t, out, n):
            bal = t.ballot_sync(cuda.FULL_MASK, t.laneid % 3 == 0)
            anyv = t.any_sync(cuda.FULL_MASK, t.laneid == 31)
            allv = t.all_sync(cuda.FULL_MASK, t.laneid < 32)
            if t.laneid == 0:
                o = t.array(out, n, np.int64)
                o[0], o[1], o[2] = bal & 0x7FFFFFFF, int(anyv), int(allv)

        @ompx.bare_kernel
        def k_ompx(x, out, n):
            bal = x.ballot_sync(x.lane_id() % 3 == 0)
            anyv = x.any_sync(x.lane_id() == 31)
            allv = x.all_sync(x.lane_id() < 32)
            if x.lane_id() == 0:
                o = x.array(out, n, np.int64)
                o[0], o[1], o[2] = bal & 0x7FFFFFFF, int(anyv), int(allv)

        a, b = run_pair(nvidia, k_cuda, k_ompx, 1, 32, 3)
        assert np.array_equal(a, b)


class TestAtomics:
    def test_atomic_zoo(self, nvidia):
        d_out = nvidia.allocator.malloc(6 * 8)

        @ompx.bare_kernel(sync_free=True)
        def k(x, out):
            o = x.array(out, 6, np.int64)
            x.atomic_add(o, 0, 1)
            x.atomic_sub(o, 1, 1)
            x.atomic_max(o, 2, x.thread_id_x())
            x.atomic_min(o, 3, -x.thread_id_x())
            x.atomic_or(o, 4, 1 << (x.thread_id_x() % 8))
            if x.thread_id_x() == 0:
                x.atomic_exchange(o, 5, 42)
                x.atomic_cas(o, 5, 42, 43)

        ompx.target_teams_bare(nvidia, 1, 16, k, (d_out,))
        out = np.zeros(6, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert list(out) == [16, -16, 15, -15, 0xFF, 43]
        nvidia.allocator.free(d_out)

    def test_atomic_and_xor(self, nvidia):
        d_out = nvidia.allocator.malloc(2 * 8)
        nvidia.allocator.view(d_out, 2, np.int64)[:] = [0xFF, 0]

        @ompx.bare_kernel(sync_free=True)
        def k(x, out):
            o = x.array(out, 2, np.int64)
            if x.thread_id_x() == 0:
                x.atomic_and(o, 0, 0x0F)
            x.atomic_xor(o, 1, 1)

        ompx.target_teams_bare(nvidia, 1, 2, k, (d_out,))
        out = np.zeros(2, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert out[0] == 0x0F and out[1] == 0  # two xors cancel
        nvidia.allocator.free(d_out)


class TestCxxApi:
    def test_cxx_matches_c(self, nvidia):
        """ompx::thread_id(ompx::DIM_X) == ompx_thread_id_x() etc."""
        mismatches = []

        def region(x):
            c = x.cxx
            if c.thread_id(DIM_X) != x.thread_id_x():
                mismatches.append("tid")
            if c.block_id(DIM_X) != x.block_id_x():
                mismatches.append("bid")
            if c.block_dim(DIM_Y) != x.block_dim_y():
                mismatches.append("bdim")
            if c.grid_dim(DIM_Z) != x.grid_dim_z():
                mismatches.append("gdim")

        ompx.target_teams_bare(nvidia, (2, 2), (4, 2), region)
        assert not mismatches

    def test_cxx_sync_and_shuffle(self, nvidia):
        d_out = nvidia.allocator.malloc(32 * 8)

        @ompx.bare_kernel
        def k(x, out):
            c = x.cxx
            shared = x.groupprivate("s", 1, np.int64)
            if c.thread_id() == 0:
                shared[0] = 3
            c.sync_block()
            v = c.shfl_down_sync(c.thread_id(), 1) + shared[0]
            x.array(out, 32, np.int64)[c.thread_id()] = v

        ompx.target_teams_bare(nvidia, 1, 32, k, (d_out,))
        out = np.zeros(32, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d_out)
        expected = np.minimum(np.arange(32) + 1, 31) + 3
        assert np.array_equal(out, expected)
        nvidia.allocator.free(d_out)

    def test_cxx_ballot(self, nvidia):
        seen = []

        def region(x):
            bits = x.cxx.ballot_sync(x.lane_id() == 0)
            if x.lane_id() == 0:
                seen.append(bits)

        ompx.target_teams_bare(nvidia, 1, 32, region)
        assert seen == [1]

    def test_dim_constants(self):
        assert (DIM_X, DIM_Y, DIM_Z) == (0, 1, 2)
