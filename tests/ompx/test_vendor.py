"""Vendor-library wrapper layer (§3.6): dispatch + BLAS correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ompx
from repro.errors import ReproError
from repro.gpu import get_device
from repro.ompx.vendor import CublasSim, RocblasSim


def upload_colmajor(device, matrix: np.ndarray):
    ptr = device.allocator.malloc(matrix.nbytes)
    device.allocator.memcpy_h2d(ptr, np.asfortranarray(matrix).ravel(order="K"))
    return ptr


def download_colmajor(device, ptr, rows, cols) -> np.ndarray:
    out = np.zeros(rows * cols)
    device.allocator.memcpy_d2h(out, ptr)
    return out.reshape(cols, rows).T


class TestDispatch:
    def test_nvidia_gets_cublas(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        assert isinstance(handle.backend, CublasSim)
        assert handle.backend_name == "cuBLAS-sim"

    def test_amd_gets_rocblas(self, amd):
        handle = ompx.ompxblas_create(amd)
        assert isinstance(handle.backend, RocblasSim)
        assert handle.backend_name == "rocBLAS-sim"

    def test_call_counting(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        n = 8
        x = ompx.ompx_malloc(n * 8, nvidia)
        ompx.ompxblas_dscal(handle, n, 2.0, x, 1)
        ompx.ompxblas_dscal(handle, n, 2.0, x, 1)
        ompx.ompxblas_dnrm2(handle, n, x, 1)
        assert handle.backend.calls == {"scal": 2, "nrm2": 1}
        ompx.ompx_free(x, nvidia)


class TestGemm:
    @pytest.mark.parametrize("transa,transb", [("N", "N"), ("T", "N"), ("N", "T"), ("T", "T")])
    def test_dgemm_all_transposes(self, any_device, transa, transb):
        rng = np.random.default_rng(23)
        m, n, k = 5, 4, 3
        a_logical = rng.random((m, k))
        b_logical = rng.random((k, n))
        c0 = rng.random((m, n))

        a_stored = a_logical if transa == "N" else a_logical.T
        b_stored = b_logical if transb == "N" else b_logical.T
        handle = ompx.ompxblas_create(any_device)
        d_a = upload_colmajor(any_device, a_stored)
        d_b = upload_colmajor(any_device, b_stored)
        d_c = upload_colmajor(any_device, c0)
        lda = a_stored.shape[0]
        ldb = b_stored.shape[0]
        ompx.ompxblas_dgemm(handle, transa, transb, m, n, k, 2.0, d_a, lda, d_b, ldb, 0.5, d_c, m)
        result = download_colmajor(any_device, d_c, m, n)
        expected = 2.0 * (a_logical @ b_logical) + 0.5 * c0
        assert np.allclose(result, expected)
        for p in (d_a, d_b, d_c):
            any_device.allocator.free(p)

    def test_sgemm_float32(self, nvidia):
        rng = np.random.default_rng(5)
        m = n = k = 4
        a = rng.random((m, k)).astype(np.float32)
        b = rng.random((k, n)).astype(np.float32)
        handle = ompx.ompxblas_create(nvidia)
        d_a = nvidia.allocator.malloc(a.nbytes)
        d_b = nvidia.allocator.malloc(b.nbytes)
        d_c = nvidia.allocator.malloc(m * n * 4)
        nvidia.allocator.memcpy_h2d(d_a, np.asfortranarray(a).ravel(order="K"))
        nvidia.allocator.memcpy_h2d(d_b, np.asfortranarray(b).ravel(order="K"))
        ompx.ompxblas_sgemm(handle, "N", "N", m, n, k, 1.0, d_a, m, d_b, k, 0.0, d_c, m)
        out = np.zeros(m * n, dtype=np.float32)
        nvidia.allocator.memcpy_d2h(out, d_c)
        assert np.allclose(out.reshape(n, m).T, a @ b, rtol=1e-5)
        for p in (d_a, d_b, d_c):
            nvidia.allocator.free(p)

    def test_leading_dimension_padding(self, nvidia):
        """lda > rows: the padded rows must be skipped, BLAS style."""
        m, n, k, lda = 2, 2, 2, 4
        a_padded = np.zeros((lda, k))
        a_padded[:m] = [[1.0, 2.0], [3.0, 4.0]]
        b = np.array([[1.0, 0.0], [0.0, 1.0]])
        handle = ompx.ompxblas_create(nvidia)
        d_a = upload_colmajor(nvidia, a_padded)
        d_b = upload_colmajor(nvidia, b)
        d_c = nvidia.allocator.malloc(m * n * 8)
        ompx.ompxblas_dgemm(handle, "N", "N", m, n, k, 1.0, d_a, lda, d_b, k, 0.0, d_c, m)
        out = download_colmajor(nvidia, d_c, m, n)
        assert np.allclose(out, a_padded[:m])
        for p in (d_a, d_b, d_c):
            nvidia.allocator.free(p)

    def test_bad_leading_dimension(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        d = ompx.ompx_malloc(64, nvidia)
        with pytest.raises(ReproError, match="leading dimension"):
            ompx.ompxblas_dgemm(handle, "N", "N", 4, 2, 2, 1.0, d, 2, d, 2, 0.0, d, 4)
        ompx.ompx_free(d, nvidia)


class TestLevel1:
    def test_daxpy(self, any_device):
        n = 16
        x = np.arange(n, dtype=np.float64)
        y = np.ones(n)
        handle = ompx.ompxblas_create(any_device)
        d_x = any_device.allocator.malloc(x.nbytes)
        d_y = any_device.allocator.malloc(y.nbytes)
        any_device.allocator.memcpy_h2d(d_x, x)
        any_device.allocator.memcpy_h2d(d_y, y)
        ompx.ompxblas_daxpy(handle, n, 3.0, d_x, 1, d_y, 1)
        out = np.zeros(n)
        any_device.allocator.memcpy_d2h(out, d_y)
        assert np.allclose(out, 3.0 * x + 1)
        for p in (d_x, d_y):
            any_device.allocator.free(p)

    def test_strided_axpy(self, nvidia):
        n = 4
        x = np.arange(8, dtype=np.float64)
        y = np.zeros(8)
        handle = ompx.ompxblas_create(nvidia)
        d_x = nvidia.allocator.malloc(x.nbytes)
        d_y = nvidia.allocator.malloc(y.nbytes)
        nvidia.allocator.memcpy_h2d(d_x, x)
        nvidia.allocator.memcpy_h2d(d_y, y)
        ompx.ompxblas_daxpy(handle, n, 1.0, d_x, 2, d_y, 2)
        out = np.zeros(8)
        nvidia.allocator.memcpy_d2h(out, d_y)
        assert np.allclose(out[::2], x[::2])
        assert not out[1::2].any()
        for p in (d_x, d_y):
            nvidia.allocator.free(p)

    def test_ddot_and_dnrm2(self, nvidia):
        n = 32
        rng = np.random.default_rng(6)
        x = rng.random(n)
        y = rng.random(n)
        handle = ompx.ompxblas_create(nvidia)
        d_x = nvidia.allocator.malloc(x.nbytes)
        d_y = nvidia.allocator.malloc(y.nbytes)
        nvidia.allocator.memcpy_h2d(d_x, x)
        nvidia.allocator.memcpy_h2d(d_y, y)
        assert np.isclose(ompx.ompxblas_ddot(handle, n, d_x, 1, d_y, 1), x @ y)
        assert np.isclose(ompx.ompxblas_dnrm2(handle, n, d_x, 1), np.linalg.norm(x))
        for p in (d_x, d_y):
            nvidia.allocator.free(p)

    def test_bad_increment(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        d = ompx.ompx_malloc(64, nvidia)
        with pytest.raises(ReproError, match="increment"):
            ompx.ompxblas_dscal(handle, 4, 1.0, d, 0)
        ompx.ompx_free(d, nvidia)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=32),
        st.floats(-10, 10, allow_nan=False),
    )
    def test_axpy_matches_numpy_property(self, values, alpha):
        device = get_device(0)
        x = np.asarray(values)
        y = np.ones_like(x)
        handle = ompx.ompxblas_create(device)
        d_x = device.allocator.malloc(x.nbytes)
        d_y = device.allocator.malloc(y.nbytes)
        try:
            device.allocator.memcpy_h2d(d_x, x)
            device.allocator.memcpy_h2d(d_y, y)
            ompx.ompxblas_daxpy(handle, len(x), alpha, d_x, 1, d_y, 1)
            out = np.zeros_like(y)
            device.allocator.memcpy_d2h(out, d_y)
            assert np.allclose(out, alpha * x + 1)
        finally:
            device.allocator.free(d_x)
            device.allocator.free(d_y)

    def test_destroy_synchronizes(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        log = []
        nvidia.default_stream.enqueue(lambda: log.append(1))
        ompx.ompxblas_destroy(handle)
        assert log == [1]
