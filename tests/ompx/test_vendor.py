"""Vendor-library wrapper layer (§3.6): dispatch + BLAS correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.ompx.vendor as vendor_mod
import repro.trace as trace
from repro import ompx
from repro.errors import (
    BlasDimensionError,
    HandleDestroyedError,
    ReproError,
    UnknownVendorError,
    VendorError,
)
from repro.gpu import Stream, get_device
from repro.ompx.vendor import (
    HAND_KERNEL_EFFICIENCY,
    BlasBackend,
    CublasSim,
    OneMklSim,
    RocblasSim,
    gemm_footprint,
    modeled_gemm_seconds,
)


def upload_colmajor(device, matrix: np.ndarray):
    ptr = device.allocator.malloc(matrix.nbytes)
    device.allocator.memcpy_h2d(ptr, np.asfortranarray(matrix).ravel(order="K"))
    return ptr


def download_colmajor(device, ptr, rows, cols) -> np.ndarray:
    out = np.zeros(rows * cols)
    device.allocator.memcpy_d2h(out, ptr)
    return out.reshape(cols, rows).T


class TestDispatch:
    def test_nvidia_gets_cublas(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        assert isinstance(handle.backend, CublasSim)
        assert handle.backend_name == "cuBLAS-sim"

    def test_amd_gets_rocblas(self, amd):
        handle = ompx.ompxblas_create(amd)
        assert isinstance(handle.backend, RocblasSim)
        assert handle.backend_name == "rocBLAS-sim"

    def test_call_counting(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        n = 8
        x = ompx.ompx_malloc(n * 8, nvidia)
        ompx.ompxblas_dscal(handle, n, 2.0, x, 1)
        ompx.ompxblas_dscal(handle, n, 2.0, x, 1)
        ompx.ompxblas_dnrm2(handle, n, x, 1)
        assert handle.backend.calls == {"scal": 2, "nrm2": 1}
        ompx.ompx_free(x, nvidia)


class TestGemm:
    @pytest.mark.parametrize("transa,transb", [("N", "N"), ("T", "N"), ("N", "T"), ("T", "T")])
    def test_dgemm_all_transposes(self, any_device, transa, transb):
        rng = np.random.default_rng(23)
        m, n, k = 5, 4, 3
        a_logical = rng.random((m, k))
        b_logical = rng.random((k, n))
        c0 = rng.random((m, n))

        a_stored = a_logical if transa == "N" else a_logical.T
        b_stored = b_logical if transb == "N" else b_logical.T
        handle = ompx.ompxblas_create(any_device)
        d_a = upload_colmajor(any_device, a_stored)
        d_b = upload_colmajor(any_device, b_stored)
        d_c = upload_colmajor(any_device, c0)
        lda = a_stored.shape[0]
        ldb = b_stored.shape[0]
        ompx.ompxblas_dgemm(handle, transa, transb, m, n, k, 2.0, d_a, lda, d_b, ldb, 0.5, d_c, m)
        result = download_colmajor(any_device, d_c, m, n)
        expected = 2.0 * (a_logical @ b_logical) + 0.5 * c0
        assert np.allclose(result, expected)
        for p in (d_a, d_b, d_c):
            any_device.allocator.free(p)

    def test_sgemm_float32(self, nvidia):
        rng = np.random.default_rng(5)
        m = n = k = 4
        a = rng.random((m, k)).astype(np.float32)
        b = rng.random((k, n)).astype(np.float32)
        handle = ompx.ompxblas_create(nvidia)
        d_a = nvidia.allocator.malloc(a.nbytes)
        d_b = nvidia.allocator.malloc(b.nbytes)
        d_c = nvidia.allocator.malloc(m * n * 4)
        nvidia.allocator.memcpy_h2d(d_a, np.asfortranarray(a).ravel(order="K"))
        nvidia.allocator.memcpy_h2d(d_b, np.asfortranarray(b).ravel(order="K"))
        ompx.ompxblas_sgemm(handle, "N", "N", m, n, k, 1.0, d_a, m, d_b, k, 0.0, d_c, m)
        out = np.zeros(m * n, dtype=np.float32)
        nvidia.allocator.memcpy_d2h(out, d_c)
        assert np.allclose(out.reshape(n, m).T, a @ b, rtol=1e-5)
        for p in (d_a, d_b, d_c):
            nvidia.allocator.free(p)

    def test_leading_dimension_padding(self, nvidia):
        """lda > rows: the padded rows must be skipped, BLAS style."""
        m, n, k, lda = 2, 2, 2, 4
        a_padded = np.zeros((lda, k))
        a_padded[:m] = [[1.0, 2.0], [3.0, 4.0]]
        b = np.array([[1.0, 0.0], [0.0, 1.0]])
        handle = ompx.ompxblas_create(nvidia)
        d_a = upload_colmajor(nvidia, a_padded)
        d_b = upload_colmajor(nvidia, b)
        d_c = nvidia.allocator.malloc(m * n * 8)
        ompx.ompxblas_dgemm(handle, "N", "N", m, n, k, 1.0, d_a, lda, d_b, k, 0.0, d_c, m)
        out = download_colmajor(nvidia, d_c, m, n)
        assert np.allclose(out, a_padded[:m])
        for p in (d_a, d_b, d_c):
            nvidia.allocator.free(p)

    def test_bad_leading_dimension(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        d = ompx.ompx_malloc(64, nvidia)
        with pytest.raises(ReproError, match="leading dimension"):
            ompx.ompxblas_dgemm(handle, "N", "N", 4, 2, 2, 1.0, d, 2, d, 2, 0.0, d, 4)
        ompx.ompx_free(d, nvidia)


class TestLevel1:
    def test_daxpy(self, any_device):
        n = 16
        x = np.arange(n, dtype=np.float64)
        y = np.ones(n)
        handle = ompx.ompxblas_create(any_device)
        d_x = any_device.allocator.malloc(x.nbytes)
        d_y = any_device.allocator.malloc(y.nbytes)
        any_device.allocator.memcpy_h2d(d_x, x)
        any_device.allocator.memcpy_h2d(d_y, y)
        ompx.ompxblas_daxpy(handle, n, 3.0, d_x, 1, d_y, 1)
        out = np.zeros(n)
        any_device.allocator.memcpy_d2h(out, d_y)
        assert np.allclose(out, 3.0 * x + 1)
        for p in (d_x, d_y):
            any_device.allocator.free(p)

    def test_strided_axpy(self, nvidia):
        n = 4
        x = np.arange(8, dtype=np.float64)
        y = np.zeros(8)
        handle = ompx.ompxblas_create(nvidia)
        d_x = nvidia.allocator.malloc(x.nbytes)
        d_y = nvidia.allocator.malloc(y.nbytes)
        nvidia.allocator.memcpy_h2d(d_x, x)
        nvidia.allocator.memcpy_h2d(d_y, y)
        ompx.ompxblas_daxpy(handle, n, 1.0, d_x, 2, d_y, 2)
        out = np.zeros(8)
        nvidia.allocator.memcpy_d2h(out, d_y)
        assert np.allclose(out[::2], x[::2])
        assert not out[1::2].any()
        for p in (d_x, d_y):
            nvidia.allocator.free(p)

    def test_ddot_and_dnrm2(self, nvidia):
        n = 32
        rng = np.random.default_rng(6)
        x = rng.random(n)
        y = rng.random(n)
        handle = ompx.ompxblas_create(nvidia)
        d_x = nvidia.allocator.malloc(x.nbytes)
        d_y = nvidia.allocator.malloc(y.nbytes)
        nvidia.allocator.memcpy_h2d(d_x, x)
        nvidia.allocator.memcpy_h2d(d_y, y)
        assert np.isclose(ompx.ompxblas_ddot(handle, n, d_x, 1, d_y, 1), x @ y)
        assert np.isclose(ompx.ompxblas_dnrm2(handle, n, d_x, 1), np.linalg.norm(x))
        for p in (d_x, d_y):
            nvidia.allocator.free(p)

    def test_bad_increment(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        d = ompx.ompx_malloc(64, nvidia)
        with pytest.raises(ReproError, match="increment"):
            ompx.ompxblas_dscal(handle, 4, 1.0, d, 0)
        ompx.ompx_free(d, nvidia)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=32),
        st.floats(-10, 10, allow_nan=False),
    )
    def test_axpy_matches_numpy_property(self, values, alpha):
        device = get_device(0)
        x = np.asarray(values)
        y = np.ones_like(x)
        handle = ompx.ompxblas_create(device)
        d_x = device.allocator.malloc(x.nbytes)
        d_y = device.allocator.malloc(y.nbytes)
        try:
            device.allocator.memcpy_h2d(d_x, x)
            device.allocator.memcpy_h2d(d_y, y)
            ompx.ompxblas_daxpy(handle, len(x), alpha, d_x, 1, d_y, 1)
            out = np.zeros_like(y)
            device.allocator.memcpy_d2h(out, d_y)
            assert np.allclose(out, alpha * x + 1)
        finally:
            device.allocator.free(d_x)
            device.allocator.free(d_y)

    def test_destroy_synchronizes(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        log = []
        nvidia.default_stream.enqueue(lambda: log.append(1))
        ompx.ompxblas_destroy(handle)
        assert log == [1]

    def test_dcopy_and_dswap(self, any_device):
        n = 8
        x = np.arange(n, dtype=np.float64)
        y = np.full(n, -1.0)
        handle = ompx.ompxblas_create(any_device)
        alloc = any_device.allocator
        d_x = alloc.malloc(x.nbytes)
        d_y = alloc.malloc(y.nbytes)
        alloc.memcpy_h2d(d_x, x)
        alloc.memcpy_h2d(d_y, y)
        ompx.ompxblas_dcopy(handle, n, d_x, 1, d_y, 1)
        out = np.zeros(n)
        alloc.memcpy_d2h(out, d_y)
        assert np.array_equal(out, x)
        ompx.ompxblas_dscal(handle, n, 2.0, d_y, 1)
        ompx.ompxblas_dswap(handle, n, d_x, 1, d_y, 1)
        alloc.memcpy_d2h(out, d_x)
        assert np.array_equal(out, 2.0 * x)
        alloc.memcpy_d2h(out, d_y)
        assert np.array_equal(out, x)
        for p in (d_x, d_y):
            alloc.free(p)


class TestGemv:
    @pytest.mark.parametrize("trans", ["N", "T"])
    def test_dgemv_matches_numpy(self, any_device, trans):
        rng = np.random.default_rng(17)
        m, n = 5, 3
        a = rng.random((m, n))
        x = rng.random(n if trans == "N" else m)
        y0 = rng.random(m if trans == "N" else n)
        handle = ompx.ompxblas_create(any_device)
        alloc = any_device.allocator
        d_a = upload_colmajor(any_device, a)
        d_x = alloc.malloc(x.nbytes)
        d_y = alloc.malloc(y0.nbytes)
        alloc.memcpy_h2d(d_x, x)
        alloc.memcpy_h2d(d_y, y0)
        ompx.ompxblas_dgemv(handle, trans, m, n, 2.0, d_a, m, d_x, 1, 0.5, d_y, 1)
        out = np.zeros_like(y0)
        alloc.memcpy_d2h(out, d_y)
        op_a = a if trans == "N" else a.T
        assert np.allclose(out, 2.0 * (op_a @ x) + 0.5 * y0)
        for p in (d_a, d_x, d_y):
            alloc.free(p)

    def test_bad_lda_carries_structured_fields(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        d = ompx.ompx_malloc(256, nvidia)
        with pytest.raises(BlasDimensionError) as ei:
            ompx.ompxblas_dgemv(handle, "N", 4, 2, 1.0, d, 2, d, 1, 0.0, d, 1)
        err = ei.value
        assert err.op == "dgemv"
        assert err.param == "lda"
        assert err.value == 2 and err.minimum == 4
        ompx.ompx_free(d, nvidia)


def upload_stack(device, mats):
    """Concatenated column-major images of a list of logical matrices."""
    flat = np.concatenate(
        [np.asfortranarray(mat).ravel(order="K") for mat in mats]
    )
    ptr = device.allocator.malloc(flat.nbytes)
    device.allocator.memcpy_h2d(ptr, flat)
    return ptr


class TestBatchedGemm:
    def test_dgemm_batched_pointer_arrays(self, nvidia):
        rng = np.random.default_rng(3)
        m, n, k, batch = 3, 2, 4, 3
        a_list = [rng.random((m, k)) for _ in range(batch)]
        b_list = [rng.random((k, n)) for _ in range(batch)]
        handle = ompx.ompxblas_create(nvidia)
        alloc = nvidia.allocator
        d_a = [upload_colmajor(nvidia, a) for a in a_list]
        d_b = [upload_colmajor(nvidia, b) for b in b_list]
        d_c = [alloc.malloc(m * n * 8) for _ in range(batch)]
        ompx.ompxblas_dgemm_batched(
            handle, "N", "N", m, n, k, 1.0, d_a, m, d_b, k, 0.0, d_c, m, batch
        )
        for i in range(batch):
            out = download_colmajor(nvidia, d_c[i], m, n)
            assert np.allclose(out, a_list[i] @ b_list[i])
        for p in d_a + d_b + d_c:
            alloc.free(p)

    def test_pointer_count_mismatch(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        d = ompx.ompx_malloc(256, nvidia)
        with pytest.raises(BlasDimensionError) as ei:
            ompx.ompxblas_dgemm_batched(
                handle, "N", "N", 2, 2, 2, 1.0, [d], 2, [d, d], 2, 0.0,
                [d, d], 2, 2,
            )
        assert ei.value.param == "a_array"
        assert ei.value.value == 1 and ei.value.minimum == 2
        ompx.ompx_free(d, nvidia)

    @pytest.mark.parametrize("transa,transb", [("N", "N"), ("T", "N"), ("N", "T")])
    def test_dgemm_strided_batched(self, any_device, transa, transb):
        rng = np.random.default_rng(11)
        m, n, k, batch = 3, 4, 2, 3
        a_logical = [rng.random((m, k)) for _ in range(batch)]
        b_logical = [rng.random((k, n)) for _ in range(batch)]
        a_stored = [a if transa == "N" else a.T for a in a_logical]
        b_stored = [b if transb == "N" else b.T for b in b_logical]
        handle = ompx.ompxblas_create(any_device)
        alloc = any_device.allocator
        d_a = upload_stack(any_device, a_stored)
        d_b = upload_stack(any_device, b_stored)
        d_c = alloc.malloc(batch * m * n * 8)
        lda = a_stored[0].shape[0]
        ldb = b_stored[0].shape[0]
        ompx.ompxblas_dgemm_strided_batched(
            handle, transa, transb, m, n, k, 1.0,
            d_a, lda, m * k, d_b, ldb, k * n, 0.0, d_c, m, m * n, batch,
        )
        flat = np.zeros(batch * m * n)
        alloc.memcpy_d2h(flat, d_c)
        for i in range(batch):
            out = flat[i * m * n:(i + 1) * m * n].reshape(n, m).T
            assert np.allclose(out, a_logical[i] @ b_logical[i])
        for p in (d_a, d_b, d_c):
            alloc.free(p)

    def test_zgemm_broadcast_operand(self, nvidia):
        """stride 0 broadcasts one matrix across the batch (the SU3 shape)."""
        rng = np.random.default_rng(8)
        batch = 5
        a = rng.random((batch, 3, 3)) + 1j * rng.random((batch, 3, 3))
        b = rng.random((3, 3)) + 1j * rng.random((3, 3))
        handle = ompx.ompxblas_create(nvidia)
        alloc = nvidia.allocator
        d_a = upload_stack(nvidia, [a[i] for i in range(batch)])
        d_b = upload_colmajor_complex(nvidia, b)
        d_c = alloc.malloc(batch * 9 * 16)
        ompx.ompxblas_zgemm_strided_batched(
            handle, "N", "N", 3, 3, 3, 1.0 + 0j,
            d_a, 3, 9, d_b, 3, 0, 0.0 + 0j, d_c, 3, 9, batch,
        )
        flat = np.zeros(batch * 9, dtype=np.complex128)
        alloc.memcpy_d2h(flat, d_c)
        for i in range(batch):
            out = flat[i * 9:(i + 1) * 9].reshape(3, 3).T
            assert np.allclose(out, a[i] @ b)
        for p in (d_a, d_b, d_c):
            alloc.free(p)

    def test_output_stride_must_not_alias(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        d = ompx.ompx_malloc(4096, nvidia)
        with pytest.raises(BlasDimensionError, match="alias"):
            ompx.ompxblas_dgemm_strided_batched(
                handle, "N", "N", 2, 2, 2, 1.0,
                d, 2, 4, d, 2, 4, 0.0, d, 2, 2, 3,
            )
        ompx.ompx_free(d, nvidia)

    def test_zero_batch_is_a_noop(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        d = ompx.ompx_malloc(64, nvidia)
        ompx.ompxblas_dgemm_strided_batched(
            handle, "N", "N", 2, 2, 2, 1.0, d, 2, 4, d, 2, 4, 0.0, d, 2, 4, 0
        )
        assert handle.backend.calls.get("gemm_strided_batched", 0) == 1
        ompx.ompx_free(d, nvidia)


def upload_colmajor_complex(device, matrix):
    ptr = device.allocator.malloc(matrix.nbytes)
    device.allocator.memcpy_h2d(
        ptr, np.asfortranarray(matrix).ravel(order="K")
    )
    return ptr


class TestBackendRegistry:
    def test_three_default_vendors(self):
        backends = ompx.registered_backends()
        assert backends["nvidia"] is CublasSim
        assert backends["amd"] is RocblasSim
        assert backends["intel"] is OneMklSim

    def test_intel_gets_onemkl(self, intel):
        handle = ompx.ompxblas_create(intel)
        assert isinstance(handle.backend, OneMklSim)
        assert handle.backend_name == "oneMKL-sim"
        ompx.ompxblas_destroy(handle)

    def test_register_backend_replaces_and_restores(self, nvidia):
        class FancyBlas(CublasSim):
            name = "fancy-sim"

        ompx.register_backend("nvidia", FancyBlas)
        try:
            handle = ompx.ompxblas_create(nvidia)
            assert handle.backend_name == "fancy-sim"
        finally:
            ompx.register_backend("nvidia", CublasSim)
        assert ompx.registered_backends()["nvidia"] is CublasSim

    def test_register_rejects_non_backend(self):
        with pytest.raises(TypeError):
            ompx.register_backend("nvidia", dict)

    def test_snapshot_is_a_copy(self):
        snapshot = ompx.registered_backends()
        snapshot["nvidia"] = RocblasSim
        assert ompx.registered_backends()["nvidia"] is CublasSim

    def test_unknown_vendor_error_fields(self, nvidia, monkeypatch):
        monkeypatch.setattr(vendor_mod, "_BACKENDS", {})
        with pytest.raises(UnknownVendorError) as ei:
            ompx.ompxblas_create(nvidia)
        err = ei.value
        assert err.vendor == "nvidia"
        assert err.known == ()
        assert "register_backend" in str(err)


class TestHandleLifecycle:
    def test_use_after_destroy_raises(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        d = ompx.ompx_malloc(64, nvidia)
        ompx.ompxblas_destroy(handle)
        with pytest.raises(HandleDestroyedError) as ei:
            ompx.ompxblas_dscal(handle, 4, 1.0, d, 1)
        assert ei.value.op == "dscal"
        assert ei.value.device == nvidia.ordinal
        ompx.ompx_free(d, nvidia)

    def test_double_destroy_raises(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        ompx.ompxblas_destroy(handle)
        with pytest.raises(HandleDestroyedError) as ei:
            ompx.ompxblas_destroy(handle)
        assert ei.value.op == "destroy"

    def test_get_stream_after_destroy_raises(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        ompx.ompxblas_destroy(handle)
        with pytest.raises(HandleDestroyedError):
            ompx.ompxblas_get_stream(handle)


class TestStreamBinding:
    def test_default_is_unbound(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        assert ompx.ompxblas_get_stream(handle) is None
        ompx.ompxblas_destroy(handle)

    def test_set_and_clear(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        stream = Stream(nvidia, "blas")
        ompx.ompxblas_set_stream(handle, stream)
        assert ompx.ompxblas_get_stream(handle) is stream
        ompx.ompxblas_set_stream(handle, None)
        assert ompx.ompxblas_get_stream(handle) is None
        ompx.ompxblas_destroy(handle)

    def test_stream_must_match_device(self, nvidia, amd):
        handle = ompx.ompxblas_create(nvidia)
        foreign = Stream(amd, "wrong-device")
        with pytest.raises(VendorError, match="device"):
            ompx.ompxblas_set_stream(handle, foreign)
        ompx.ompxblas_destroy(handle)

    def test_bound_calls_order_with_stream_work(self, nvidia):
        """BLAS calls and plain stream ops interleave in FIFO order."""
        n = 4
        x = np.ones(n)
        handle = ompx.ompxblas_create(nvidia)
        alloc = nvidia.allocator
        d_x = alloc.malloc(x.nbytes)
        alloc.memcpy_h2d(d_x, x)
        stream = Stream(nvidia, "ordered")
        ompx.ompxblas_set_stream(handle, stream)
        log = []
        stream.enqueue(lambda: log.append("before"))
        ompx.ompxblas_dscal(handle, n, 3.0, d_x, 1)
        stream.enqueue(lambda: log.append("after"))
        stream.synchronize()
        assert log == ["before", "after"]
        out = np.zeros(n)
        alloc.memcpy_d2h(out, d_x)
        assert np.array_equal(out, 3.0 * x)
        ompx.ompxblas_destroy(handle)
        alloc.free(d_x)

    def test_scalar_result_synchronizes_the_stream(self, nvidia):
        """ddot with a host result pointer is a synchronization point."""
        n = 8
        x = np.arange(n, dtype=np.float64)
        handle = ompx.ompxblas_create(nvidia)
        alloc = nvidia.allocator
        d_x = alloc.malloc(x.nbytes)
        alloc.memcpy_h2d(d_x, x)
        stream = Stream(nvidia, "sync-point")
        ompx.ompxblas_set_stream(handle, stream)
        log = []
        stream.enqueue(lambda: log.append("queued"))
        value = ompx.ompxblas_ddot(handle, n, d_x, 1, d_x, 1)
        assert log == ["queued"]          # drained before the result returned
        assert np.isclose(value, x @ x)
        ompx.ompxblas_destroy(handle)
        alloc.free(d_x)

    def test_destroy_drains_bound_stream(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        stream = Stream(nvidia, "drain-me")
        ompx.ompxblas_set_stream(handle, stream)
        log = []
        stream.enqueue(lambda: log.append(1))
        ompx.ompxblas_destroy(handle)
        assert log == [1]


class TestTraceIntegration:
    def test_gemm_emits_vendor_span_and_counters(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        d = ompx.ompx_malloc(9 * 8, nvidia)
        with trace.tracing() as t:
            ompx.ompxblas_dgemm(
                handle, "N", "N", 3, 3, 3, 1.0, d, 3, d, 3, 0.0, d, 3
            )
        spans = [sp for sp in t.spans if sp.cat == "vendor"]
        assert len(spans) == 1
        (sp,) = spans
        assert sp.name == "vendor:dgemm"
        assert sp.args["backend"] == "cuBLAS-sim"
        assert sp.args["m"] == sp.args["n"] == sp.args["k"] == 3
        assert sp.args["flops"] == 2.0 * 27
        assert sp.args["modeled_s"] > 0
        assert t.counters["vendor_calls"] == 1
        assert t.counters["vendor_flops"] == 2.0 * 27
        assert t.counters["vendor_bytes"] > 0
        ompx.ompx_free(d, nvidia)

    def test_stream_bound_call_records_exec_span(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        d = ompx.ompx_malloc(64, nvidia)
        stream = Stream(nvidia, "traced")
        ompx.ompxblas_set_stream(handle, stream)
        with trace.tracing() as t:
            ompx.ompxblas_dscal(handle, 8, 2.0, d, 1)
            stream.synchronize()
        names = [sp.name for sp in t.spans if sp.cat == "vendor"]
        assert names == ["exec:vendor:dscal"]
        ompx.ompxblas_destroy(handle)
        ompx.ompx_free(d, nvidia)

    def test_untraced_calls_record_nothing(self, nvidia):
        handle = ompx.ompxblas_create(nvidia)
        d = ompx.ompx_malloc(64, nvidia)
        with trace.tracing() as t:
            pass
        before = len(t.spans)
        ompx.ompxblas_dscal(handle, 8, 2.0, d, 1)
        assert len(t.spans) == before
        ompx.ompx_free(d, nvidia)


class TestModeledPerformance:
    def test_library_beats_hand_kernel(self, nvidia):
        """§3.6's reason to exist: the tuned library wins on big GEMMs."""
        handle = ompx.ompxblas_create(nvidia)
        m = n = k = 2048
        library = handle.backend.modeled_gemm_seconds(m, n, k)
        hand = modeled_gemm_seconds(
            nvidia.spec, m, n, k, efficiency=HAND_KERNEL_EFFICIENCY
        )
        assert library < hand
        assert hand / library == pytest.approx(
            handle.backend.library_efficiency / HAND_KERNEL_EFFICIENCY
        )

    def test_backend_efficiency_ordering(self):
        assert CublasSim.library_efficiency > RocblasSim.library_efficiency
        assert RocblasSim.library_efficiency > OneMklSim.library_efficiency
        assert OneMklSim.library_efficiency > HAND_KERNEL_EFFICIENCY

    def test_complex_gemm_counts_four_times_the_flops(self):
        real = gemm_footprint(8, 8, 8, dtype=np.float64)
        cplx = gemm_footprint(8, 8, 8, dtype=np.complex128)
        assert cplx.flops_fp64 == 4 * real.flops_fp64

    def test_batch_scales_linearly(self):
        one = gemm_footprint(4, 4, 4)
        many = gemm_footprint(4, 4, 4, batch=7)
        assert many.flops_fp64 == 7 * one.flops_fp64
        assert many.global_read_bytes == 7 * one.global_read_bytes

    def test_fp32_lands_in_the_fp32_pipe(self):
        fp = gemm_footprint(4, 4, 4, dtype=np.float32)
        assert fp.flops_fp32 > 0 and fp.flops_fp64 == 0

    def test_abstract_backend_is_not_registered(self):
        assert BlasBackend not in ompx.registered_backends().values()
