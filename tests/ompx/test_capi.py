"""The C free-function device API (repro.ompx.capi)."""

import numpy as np
import pytest

from repro import ompx
from repro.errors import OpenMPError
from repro.ompx import capi


class TestBinding:
    def test_host_call_rejected(self):
        with pytest.raises(OpenMPError, match="inside a kernel"):
            capi.ompx_thread_id_x()

    def test_current_thread_rejected_on_host(self):
        with pytest.raises(OpenMPError):
            capi.current_thread()

    def test_binding_restored_after_kernel(self, nvidia):
        ompx.target_teams_bare(nvidia, 1, 2, lambda x: capi.ompx_thread_id_x())
        with pytest.raises(OpenMPError):
            capi.ompx_thread_id_x()

    def test_nested_binding_restores_outer(self, nvidia):
        """A device function launched... rather: re-entrant bound() nesting."""
        seen = []

        def region(x):
            with capi.bound(x):  # double binding, as a device fn would
                seen.append(capi.ompx_thread_id_x())
            # outer binding (from the adapter) still valid
            seen.append(capi.ompx_thread_id_x())

        ompx.target_teams_bare(nvidia, 1, 1, region)
        assert seen == [0, 0]


class TestEquivalence:
    def test_index_functions_match_facade(self, nvidia):
        mismatches = []

        def region(x):
            checks = [
                (capi.ompx_thread_id_x(), x.thread_id_x()),
                (capi.ompx_thread_id_y(), x.thread_id_y()),
                (capi.ompx_thread_id_z(), x.thread_id_z()),
                (capi.ompx_block_id_x(), x.block_id_x()),
                (capi.ompx_block_id_y(), x.block_id_y()),
                (capi.ompx_block_dim_x(), x.block_dim_x()),
                (capi.ompx_block_dim_y(), x.block_dim_y()),
                (capi.ompx_grid_dim_x(), x.grid_dim_x()),
                (capi.ompx_global_thread_id_x(), x.global_thread_id_x()),
                (capi.ompx_warp_size(), x.warp_size()),
                (capi.ompx_lane_id(), x.lane_id()),
                (capi.ompx_warp_id(), x.warp_id()),
                (capi.ompx_thread_id(1), x.thread_id_y()),
                (capi.ompx_block_id(0), x.block_id_x()),
                (capi.ompx_block_dim(2), x.block_dim_z()),
                (capi.ompx_grid_dim(1), x.grid_dim_y()),
            ]
            mismatches.extend([c for c in checks if c[0] != c[1]])

        ompx.target_teams_bare(nvidia, (2, 2), (4, 2), region)
        assert not mismatches

    def test_sync_and_shared_functions(self, nvidia):
        d_out = nvidia.allocator.malloc(16 * 8)

        def region(x):
            tile = capi.ompx_groupprivate("tile", 16, np.float64)
            tid = capi.ompx_thread_id_x()
            tile[tid] = tid * 2
            capi.ompx_sync_thread_block()
            capi.ompx_array(d_out, 16, np.float64)[tid] = tile[15 - tid]

        ompx.target_teams_bare(nvidia, 1, 16, region)
        out = np.zeros(16)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert np.array_equal(out, np.arange(15, -1, -1) * 2)
        nvidia.allocator.free(d_out)

    def test_warp_functions(self, nvidia):
        results = {}

        def region(x):
            lane = capi.ompx_lane_id()
            v = capi.ompx_shfl_down_sync(lane, 1)
            b = capi.ompx_ballot_sync(lane < 2)
            capi.ompx_sync_warp()
            u = capi.ompx_shfl_up_sync(lane, 1)
            w = capi.ompx_shfl_xor_sync(lane, 1)
            s = capi.ompx_shfl_sync(lane, 5)
            a = capi.ompx_any_sync(lane == 0)
            al = capi.ompx_all_sync(lane >= 0)
            results[lane] = (v, b, u, w, s, a, al)

        ompx.target_teams_bare(nvidia, 1, 32, region)
        assert results[0] == (1, 0b11, 0, 1, 5, True, True)
        assert results[31] == (31, 0b11, 30, 30, 5, True, True)

    def test_atomic_functions(self, nvidia):
        d_out = nvidia.allocator.malloc(6 * 8)

        def region(x):
            o = capi.ompx_array(d_out, 6, np.int64)
            capi.ompx_atomic_add(o, 0, 1)
            capi.ompx_atomic_sub(o, 1, 1)
            capi.ompx_atomic_max(o, 2, capi.ompx_thread_id_x())
            capi.ompx_atomic_min(o, 3, -capi.ompx_thread_id_x())
            if capi.ompx_thread_id_x() == 0:
                capi.ompx_atomic_exchange(o, 4, 9)
                capi.ompx_atomic_cas(o, 5, 0, 7)

        ompx.target_teams_bare(nvidia, 1, 8, region, ())
        out = np.zeros(6, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert list(out) == [8, -8, 7, -7, 9, 7]
        nvidia.allocator.free(d_out)

    def test_c_port_output_is_executable_style(self, nvidia):
        """The exact call shapes port_c_source emits all exist and work."""
        n = 64
        d_a = nvidia.allocator.malloc(n * 8)
        d_b = nvidia.allocator.malloc(n * 8)
        nvidia.allocator.memcpy_h2d(d_a, np.arange(n, dtype=np.float64))

        # the body below is what port_c_source produces for Figure 1
        def ported_body(x):
            shared = capi.ompx_groupprivate("shared", 32, np.float64)
            tid = capi.ompx_thread_id_x()
            if tid == 0:
                shared[:] = 1.0
            capi.ompx_sync_thread_block()
            idx = capi.ompx_block_id_x() * capi.ompx_block_dim_x() + tid
            if idx < n:
                a = capi.ompx_array(d_a, n, np.float64)
                b = capi.ompx_array(d_b, n, np.float64)
                b[idx] = a[idx] + shared[tid]

        ompx.target_teams_bare(nvidia, 2, 32, ported_body)
        out = np.zeros(n)
        nvidia.allocator.memcpy_d2h(out, d_b)
        assert np.array_equal(out, np.arange(n) + 1)
        for p in (d_a, d_b):
            nvidia.allocator.free(p)
