"""The ompx_bare construct (§3.1) and multi-dimensional launches (§3.2)."""

import numpy as np
import pytest

from repro import ompx
from repro.errors import LaunchError
from repro.openmp.data import data_environment


@pytest.fixture(autouse=True)
def clean_env(nvidia, amd):
    yield
    data_environment(nvidia).reset()
    data_environment(amd).reset()


class TestBareSemantics:
    def test_report_is_bare(self, any_device):
        report = ompx.target_teams_bare(any_device, 1, 8, lambda x: None)
        assert report.codegen.is_bare
        assert not report.codegen.runtime_init
        assert not report.codegen.state_machine

    def test_all_threads_of_all_teams_active(self, any_device):
        """Figure 4's comment: 'All threads in all teams/blocks are active.'"""
        teams, threads = 3, 16
        d_out = any_device.allocator.malloc(teams * threads * 8)

        @ompx.bare_kernel(sync_free=True)
        def k(x, out):
            i = x.block_id_x() * x.block_dim_x() + x.thread_id_x()
            x.array(out, 48, np.int64)[i] = 1

        ompx.target_teams_bare(any_device, teams, threads, k, (d_out,))
        out = np.zeros(teams * threads, dtype=np.int64)
        any_device.allocator.memcpy_d2h(out, d_out)
        assert (out == 1).all()
        any_device.allocator.free(d_out)

    def test_synchronous_by_default(self, nvidia):
        """§2.3: target is synchronous; results are visible on return."""
        d = nvidia.allocator.malloc(8)
        ompx.target_teams_bare(
            nvidia, 1, 1, lambda x: x.array(d, 1, np.int64).__setitem__(0, 5)
        )
        out = np.zeros(1, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d)  # no explicit sync needed
        assert out[0] == 5
        nvidia.allocator.free(d)

    def test_locals_not_globalized(self, nvidia):
        """Bare-region locals stay thread-private (each thread's counter)."""
        n = 32
        d_out = nvidia.allocator.malloc(n * 8)

        @ompx.bare_kernel(sync_free=True)
        def k(x, out):
            local_var = 0
            for _ in range(x.thread_id_x() + 1):
                local_var += 1
            x.array(out, 32, np.int64)[x.thread_id_x()] = local_var

        ompx.target_teams_bare(nvidia, 1, n, k, (d_out,))
        out = np.zeros(n, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert np.array_equal(out, np.arange(1, n + 1))
        nvidia.allocator.free(d_out)

    def test_plain_callable_accepted(self, nvidia):
        hits = []
        ompx.target_teams_bare(
            nvidia, 1, 4, lambda x: hits.append(x.thread_id_x())
        )
        assert sorted(hits) == [0, 1, 2, 3]

    def test_non_callable_rejected(self, nvidia):
        with pytest.raises(LaunchError, match="callable"):
            ompx.target_teams_bare(nvidia, 1, 4, 42)

    def test_groupprivate_shared_per_team(self, nvidia):
        """Figure 4: groupprivate gives team-shared storage under bare."""
        teams = 2
        d_out = nvidia.allocator.malloc(teams * 8)

        @ompx.bare_kernel
        def k(x, out):
            acc = x.groupprivate("acc", 1, np.int64)
            x.atomic_add(acc, 0, 1)
            x.sync_thread_block()
            if x.thread_id_x() == 0:
                x.array(out, 2, np.int64)[x.block_id_x()] = acc[0]

        ompx.target_teams_bare(nvidia, teams, 8, k, (d_out,))
        out = np.zeros(teams, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert (out == 8).all()
        nvidia.allocator.free(d_out)

    def test_maps_and_accessor(self, nvidia):
        a = np.arange(8, dtype=np.float64)
        b = np.zeros(8)

        def region(x, acc):
            i = x.thread_id_x()
            acc.mapped(b)[i] = acc.mapped(a)[i] * 2

        ompx.target_teams_bare(
            nvidia, 1, 8, region, maps=[(a, "to"), (b, "from")]
        )
        assert np.array_equal(b, a * 2)


class TestMultiDim:
    def test_three_dimensional_launch(self, nvidia):
        """num_teams(2,2,2) thread_limit(2,2,2) — 64 distinct positions."""
        d_out = nvidia.allocator.malloc(64 * 8)

        @ompx.bare_kernel(sync_free=True)
        def k(x, out):
            team = (x.block_id_z() * 2 + x.block_id_y()) * 2 + x.block_id_x()
            thread = (x.thread_id_z() * 2 + x.thread_id_y()) * 2 + x.thread_id_x()
            x.array(out, 64, np.int64)[team * 8 + thread] = team * 8 + thread

        report = ompx.target_teams_bare(nvidia, (2, 2, 2), (2, 2, 2), k, (d_out,))
        assert report.grid == 8 and report.block == 8
        out = np.zeros(64, dtype=np.int64)
        nvidia.allocator.memcpy_d2h(out, d_out)
        assert np.array_equal(out, np.arange(64))
        nvidia.allocator.free(d_out)

    def test_excess_dimensions_disregarded(self, nvidia):
        """§3.2: dims beyond device capability are disregarded (clamped)."""
        report = ompx.target_teams_bare(
            nvidia, 1, (1, 1, 1024), lambda x: None
        )
        assert report.block == nvidia.spec.max_block_dim.z

    def test_block_volume_still_enforced(self, nvidia):
        with pytest.raises(LaunchError, match="thread_limit"):
            ompx.target_teams_bare(nvidia, 1, (64, 64), lambda x: None)

    def test_dim_queries_match_launch(self, nvidia):
        seen = []

        def region(x):
            if x.thread_id_x() == 0 and x.thread_id_y() == 0 and x.block_id_x() == 0 and x.block_id_y() == 0:
                seen.append((x.grid_dim_x(), x.grid_dim_y(), x.block_dim_x(), x.block_dim_y()))

        ompx.target_teams_bare(nvidia, (3, 2), (4, 8), region)
        assert seen[0] == (3, 2, 4, 8)


class TestNowait:
    def test_nowait_returns_task(self, nvidia):
        hits = []
        task = ompx.target_teams_bare(
            nvidia, 1, 2,
            lambda x: hits.append(1) if x.thread_id_x() == 0 else None,
            nowait=True,
        )
        assert task.wait(timeout=5)
        assert hits == [1]

    def test_synchronous_with_depend_orders_after_tasks(self, nvidia):
        """A synchronous construct with depend still waits for conflicts."""
        import threading
        import time

        from repro.openmp import default_task_runtime

        loc = np.zeros(1)
        log = []
        runtime = default_task_runtime()
        runtime.submit(lambda: (time.sleep(0.02), log.append("task")),
                       depends=[("out", loc)])
        ompx.target_teams_bare(
            nvidia, 1, 1,
            lambda x: log.append("region"),
            depend=[("in", loc)],
        )
        assert log == ["task", "region"]
