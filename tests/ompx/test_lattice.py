"""Grid-style lattice expression templates lowering onto vendor BLAS."""

import numpy as np
import pytest

from repro import ompx
from repro.ompx.lattice import Add, LatticeField, MatMul, Scale


@pytest.fixture
def handle(nvidia):
    h = ompx.ompxblas_create(nvidia)
    yield h
    ompx.ompxblas_destroy(h)


def random_field(rng, sites):
    return (rng.standard_normal((sites, 3, 3))
            + 1j * rng.standard_normal((sites, 3, 3)))


class TestLaziness:
    def test_operators_build_trees_not_results(self, handle):
        rng = np.random.default_rng(1)
        a = LatticeField.from_host(handle, random_field(rng, 4))
        b = LatticeField.from_host(handle, random_field(rng, 4))
        expr = 2.0 * (a * b)
        assert isinstance(expr, Scale)
        assert isinstance(expr.expr, MatMul)
        assert isinstance(a * b + a, Add)
        # nothing ran: the backend saw no calls
        assert handle.backend.calls == {}
        for f in (a, b):
            f.free()

    def test_assign_is_one_fused_library_call(self, handle):
        rng = np.random.default_rng(2)
        sites = 6
        host_a = random_field(rng, sites)
        host_b = random_field(rng, sites)
        a = LatticeField.from_host(handle, host_a)
        b = LatticeField.from_host(handle, host_b)
        c = LatticeField(handle, sites)
        c.assign(a * b)
        assert handle.backend.calls == {"gemm_strided_batched": 1}
        out = c.to_host()
        assert np.allclose(out, host_a @ host_b)
        for f in (a, b, c):
            f.free()


class TestSemantics:
    def test_broadcast_link_matrix(self, handle):
        """A 1-site field multiplies every site (zero-stride operand)."""
        rng = np.random.default_rng(3)
        sites = 5
        host_a = random_field(rng, sites)
        link = random_field(rng, 1)
        a = LatticeField.from_host(handle, host_a)
        b = LatticeField.from_host(handle, link)
        c = LatticeField(handle, sites)
        c.assign(a * b)
        assert np.allclose(c.to_host(), host_a @ link[0])
        for f in (a, b, c):
            f.free()

    def test_alpha_and_beta_fuse(self, handle):
        rng = np.random.default_rng(4)
        sites = 4
        host_a = random_field(rng, sites)
        host_b = random_field(rng, sites)
        host_c = random_field(rng, sites)
        a = LatticeField.from_host(handle, host_a)
        b = LatticeField.from_host(handle, host_b)
        c = LatticeField.from_host(handle, host_c)
        c.assign(2.0 * (a * b) + 0.5 * c)
        assert handle.backend.calls == {"gemm_strided_batched": 1}
        assert np.allclose(c.to_host(), 2.0 * (host_a @ host_b) + 0.5 * host_c)
        for f in (a, b, c):
            f.free()

    def test_accumulate_order_is_commutative(self, handle):
        """``beta*c + alpha*(a*b)`` normalizes the same as the mirror."""
        rng = np.random.default_rng(5)
        sites = 3
        host_a = random_field(rng, sites)
        host_b = random_field(rng, sites)
        host_c = random_field(rng, sites)
        a = LatticeField.from_host(handle, host_a)
        b = LatticeField.from_host(handle, host_b)
        c = LatticeField.from_host(handle, host_c)
        c.assign(0.25 * c + a * b)
        assert np.allclose(c.to_host(), host_a @ host_b + 0.25 * host_c)
        for f in (a, b, c):
            f.free()

    def test_bit_identical_to_hand_triple_loop(self, handle):
        """The fused GEMM reproduces the MILC loop bit-for-bit."""
        rng = np.random.default_rng(6)
        sites = 8
        host_a = random_field(rng, sites)
        host_b = random_field(rng, sites)
        a = LatticeField.from_host(handle, host_a)
        b = LatticeField.from_host(handle, host_b)
        c = LatticeField(handle, sites)
        c.assign(a * b)
        hand = np.zeros_like(host_a)
        for s in range(sites):
            for row in range(3):
                for col in range(3):
                    acc = 0.0 + 0.0j
                    for k in range(3):
                        acc = acc + host_a[s, row, k] * host_b[s, k, col]
                    hand[s, row, col] = acc
        assert np.array_equal(c.to_host(), hand)
        for f in (a, b, c):
            f.free()


class TestRejections:
    def test_unfusable_sum_of_fields(self, handle):
        rng = np.random.default_rng(7)
        a = LatticeField.from_host(handle, random_field(rng, 2))
        b = LatticeField.from_host(handle, random_field(rng, 2))
        c = LatticeField(handle, 2)
        with pytest.raises(TypeError, match="fuse"):
            c.assign(a + b)
        for f in (a, b, c):
            f.free()

    def test_accumulator_must_be_the_target(self, handle):
        rng = np.random.default_rng(8)
        a = LatticeField.from_host(handle, random_field(rng, 2))
        b = LatticeField.from_host(handle, random_field(rng, 2))
        other = LatticeField.from_host(handle, random_field(rng, 2))
        c = LatticeField(handle, 2)
        with pytest.raises(TypeError, match="target"):
            c.assign(a * b + 2.0 * other)
        for f in (a, b, other, c):
            f.free()

    def test_nested_products_need_a_temporary(self, handle):
        rng = np.random.default_rng(9)
        a = LatticeField.from_host(handle, random_field(rng, 2))
        b = LatticeField.from_host(handle, random_field(rng, 2))
        c = LatticeField(handle, 2)
        with pytest.raises(TypeError, match="temporary"):
            c.assign((a * b) * a)
        for f in (a, b, c):
            f.free()

    def test_target_may_not_alias_an_operand(self, handle):
        rng = np.random.default_rng(10)
        a = LatticeField.from_host(handle, random_field(rng, 2))
        b = LatticeField.from_host(handle, random_field(rng, 2))
        with pytest.raises(TypeError, match="alias"):
            a.assign(a * b)
        for f in (a, b):
            f.free()

    def test_site_count_mismatch(self, handle):
        rng = np.random.default_rng(11)
        a = LatticeField.from_host(handle, random_field(rng, 4))
        b = LatticeField.from_host(handle, random_field(rng, 3))
        c = LatticeField(handle, 4)
        with pytest.raises(TypeError, match="sites"):
            c.assign(a * b)
        for f in (a, b, c):
            f.free()
