"""Tenant isolation: one tenant's fault never leaks into another's future.

The serving tier's hard correctness requirement, tested over a *plain*
(non-resilient) backend because that is the adversarial case: a kernel
fault poisons the device context, and without the service's own healing
and transparent redispatch the next tenant's job would inherit the
sticky context or a reset-drained queue.

The acceptance shape: a fault plan targets exactly one tenant's kernel;
that tenant's futures raise (with the KernelFault in the chain), every
bystander's result is bit-identical to a fault-free run, and zero
cross-tenant recovery events land in any bystander's report.
"""

import numpy as np
import pytest

from repro import faults
from repro.errors import KernelFault, ReproError
from repro.gpu.launch import LaunchConfig, launch_kernel
from repro.resilience.policy import exception_chain
from repro.serve import KernelService
from repro.trace import tracing

pytestmark = [pytest.mark.serve, pytest.mark.sched, pytest.mark.faults]

N = 64


def victim_kernel(ctx, n):
    """The targeted kernel; the fault plan fires inside its launch."""


def bystander_kernel(ctx, out, n):
    i = ctx.global_id_x
    view = ctx.deref(out, n, np.float64)
    if i < n:
        view[i] = float(i)


def _bystander_job(device):
    """Upload-launch-download cycle a bystander tenant runs as a host call."""
    out = np.zeros(N, dtype=np.float64)
    ptr = device.allocator.malloc(out.nbytes)
    try:
        launch_kernel(
            LaunchConfig.create((N + 31) // 32, 32),
            bystander_kernel, (ptr, N), device,
        )
        device.allocator.memcpy_d2h(out, ptr)
    finally:
        device.allocator.free(ptr)
    return out


_EXPECTED = np.arange(N, dtype=np.float64)


class TestIsolationAcceptance:
    def test_victim_fails_bystanders_bit_identical(self):
        # 1 victim + 6 bystander submissions race over a 2-device plain
        # pool while a fault plan fires inside the victim's kernel only.
        bystanders = 6
        with tracing() as tracer:
            with KernelService(devices=2, resilient=False) as service:
                bad = service.session("bad")
                goods = [
                    service.session(f"good{i}") for i in range(bystanders)
                ]
                with faults.inject(
                    "launch:kernel_fault,kernel=victim_kernel", seed=3
                ) as plan:
                    plan.bind_devices(
                        {i: d.ordinal
                         for i, d in enumerate(service.devices)}
                    )
                    victim = bad.submit(
                        victim_kernel, LaunchConfig.create(1, 32), N,
                        label="victim",
                    )
                    futures = [
                        g.submit_call(_bystander_job, label=f"by{i}")
                        for i, g in enumerate(goods)
                    ]
                    with pytest.raises(ReproError) as info:
                        victim.result(timeout=60)
                    results = [f.result(timeout=60) for f in futures]
                assert plan.fired >= 1, plan.summary()

                # The victim's failure is its own kernel fault.
                chain = list(exception_chain(info.value))
                assert any(isinstance(e, KernelFault) for e in chain)
                assert victim.tenant == "bad"

                # Bystanders: bit-identical results, no recovery events.
                for out in results:
                    np.testing.assert_array_equal(out, _EXPECTED)
                for good in goods:
                    assert good.report.total == 0, good.report.summary()
                    assert good.stats["failed"] == 0
                    assert good.stats["completed"] == 1

                # The victim's own report holds the heal (device reset).
                assert bad.report["resets"] >= 1
                counters = tracer.counters
            assert counters["serve_failed[bad]"] == 1
            assert counters.get("serve_failed[good0]", 0) == 0
            assert counters["serve_completed"] == bystanders

    def test_poisoned_device_is_healed_before_reuse(self):
        # After the victim's fault, the same (only) device must serve
        # the next tenant cleanly: the service reset it during the heal.
        with KernelService(devices=1, dispatchers=1) as service:
            bad = service.session("bad")
            good = service.session("good")
            with faults.inject(
                "launch:kernel_fault,kernel=victim_kernel", seed=3
            ) as plan:
                plan.bind_devices(
                    {i: d.ordinal for i, d in enumerate(service.devices)}
                )
                with pytest.raises(ReproError):
                    bad.run(
                        victim_kernel, LaunchConfig.create(1, 32), N,
                        timeout=60,
                    )
                assert plan.fired >= 1
            out = good.submit_call(
                _bystander_job, label="after-heal"
            ).result(timeout=60)
            np.testing.assert_array_equal(out, _EXPECTED)
            assert not any(d.is_poisoned for d in service.devices)
            assert good.report.total == 0
            assert bad.report["resets"] >= 1

    def test_resilient_backend_absorbs_the_fault_entirely(self):
        # Over a resilient backend even the *victim* succeeds: the
        # backend retries after healing, and the retry is attributed to
        # the victim's own report — bystanders still see nothing.
        with KernelService(devices=2, resilient=True, seed=3) as service:
            bad = service.session("bad")
            good = service.session("good")
            with faults.inject(
                "launch:kernel_fault@1,kernel=victim_kernel", seed=3
            ) as plan:
                plan.bind_devices(
                    {i: d.ordinal for i, d in enumerate(service.devices)}
                )
                stats = bad.run(
                    victim_kernel, LaunchConfig.create(1, 32), N,
                    timeout=120,
                )
                assert plan.fired == 1, plan.summary()
            assert stats.blocks_run >= 1
            out = good.submit_call(
                _bystander_job, label="clean"
            ).result(timeout=60)
            np.testing.assert_array_equal(out, _EXPECTED)
            assert bad.report["retries"] >= 1
            assert good.report.total == 0
