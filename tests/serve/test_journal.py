"""Submission journal: accepted/done bookkeeping and crash recovery."""

import json

import numpy as np
import pytest

from repro.apps import Adam, XSBench
from repro.ckpt import SubmissionJournal
from repro.errors import CheckpointError, ServeError
from repro.gpu.device import get_device
from repro.serve import KernelService

pytestmark = [pytest.mark.serve, pytest.mark.ckpt]


class TestJournalUnit:
    def test_accepted_then_done_is_not_pending(self, tmp_path):
        journal = SubmissionJournal(str(tmp_path))
        a = journal.record_accepted({"tenant": "t0", "key": "k1"})
        b = journal.record_accepted({"tenant": "t0", "key": "k2"})
        journal.record_done(a)
        pending = journal.pending()
        assert [e["id"] for e in pending] == [b]
        journal.close()

    def test_ids_are_monotonic_across_incarnations(self, tmp_path):
        first = SubmissionJournal(str(tmp_path))
        first.record_accepted({"key": "a"})
        first.close()
        second = SubmissionJournal(str(tmp_path))
        assert second.record_accepted({"key": "b"}) == 2
        second.close()

    def test_pending_dedupes_by_coalescing_key(self, tmp_path):
        journal = SubmissionJournal(str(tmp_path))
        journal.record_accepted({"tenant": "alice", "key": "K"})
        journal.record_accepted({"tenant": "bob", "key": "K"})
        journal.record_accepted({"tenant": "carol", "key": "other"})
        deduped = journal.pending()
        assert [e["tenant"] for e in deduped] == ["alice", "carol"]
        everything = journal.pending(dedupe=False)
        assert [e["tenant"] for e in everything] == ["alice", "bob", "carol"]
        journal.close()

    def test_keyless_entries_are_never_deduped(self, tmp_path):
        journal = SubmissionJournal(str(tmp_path))
        journal.record_accepted({"tenant": "a"})
        journal.record_accepted({"tenant": "b"})
        assert len(journal.pending()) == 2
        journal.close()

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        journal = SubmissionJournal(str(tmp_path))
        keep = journal.record_accepted({"key": "k"})
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"id": 2, "event": "acc')  # SIGKILL mid-write
        reopened = SubmissionJournal(str(tmp_path))
        assert [e["id"] for e in reopened.pending()] == [keep]
        reopened.close()

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        journal = SubmissionJournal(str(tmp_path))
        journal.record_accepted({"key": "k"})
        journal.close()
        lines = open(journal.path, encoding="utf-8").read()
        with open(journal.path, "w", encoding="utf-8") as handle:
            handle.write("garbage not json\n" + lines + lines)
        with pytest.raises(CheckpointError, match="mid-file"):
            SubmissionJournal(str(tmp_path)).pending()

    def test_reset_truncates(self, tmp_path):
        journal = SubmissionJournal(str(tmp_path))
        journal.record_accepted({"key": "k"})
        journal.reset()
        assert journal.pending() == []
        assert journal.record_accepted({"key": "k2"}) == 1
        journal.close()

    def test_journal_path_collision_is_a_checkpoint_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(CheckpointError):
            SubmissionJournal(str(blocker))


class TestServiceIntegration:
    def test_clean_drain_leaves_nothing_pending(self, tmp_path):
        with KernelService(devices=1, journal_dir=str(tmp_path)) as service:
            session = service.session("t0")
            future = session.submit_app(Adam(), variant="ompx")
            future.result(timeout=60)
        assert SubmissionJournal(str(tmp_path)).pending() == []

    def test_journal_records_the_coalescing_key(self, tmp_path):
        with KernelService(devices=1, journal_dir=str(tmp_path)) as service:
            session = service.session("t0")
            session.submit_app(Adam(), variant="ompx").result(timeout=60)
        lines = [
            json.loads(line)
            for line in open(tmp_path / "journal.jsonl", encoding="utf-8")
            if line.strip()
        ]
        accepted = [e for e in lines if e["event"] == "accepted"]
        assert accepted and accepted[0]["key"]
        assert accepted[0]["tenant"] == "t0"

    def test_recover_requires_a_journal(self):
        with KernelService(devices=1) as service:
            with pytest.raises(ServeError, match="journal_dir"):
                service.recover()

    def test_crash_window_recovery_is_effectively_once(self, tmp_path):
        app = XSBench()
        params = dict(app.functional_params())
        expected = app.run_single("ompx", params, get_device(0))

        # Simulate the crash window: two tenants' submissions accepted
        # (journaled) by a service that dies before running them.
        dead = SubmissionJournal(str(tmp_path))
        descriptor = {
            "app": [type(app).__module__, type(app).__qualname__],
            "variant": "ompx",
            "params": params,
            "key": "same-coalescing-key",
        }
        dead.record_accepted(dict(descriptor, tenant="alice"))
        dead.record_accepted(dict(descriptor, tenant="bob"))
        dead.close()

        # A fresh incarnation re-admits the deduped pending set.
        with KernelService(devices=2, journal_dir=str(tmp_path)) as service:
            futures = service.recover()
            assert len(futures) == 1  # alice+bob coalesced to one
            result = futures[0].result(timeout=120)
        np.testing.assert_array_equal(result.output, expected.output)

        # Both old entries were retired: a second restart has nothing
        # left to replay (effectively-once, not at-least-once).
        assert SubmissionJournal(str(tmp_path)).pending(dedupe=False) == []

    def test_unjournalable_params_skip_journaling_not_the_run(self, tmp_path):
        app = XSBench()
        params = dict(app.functional_params())
        params["note"] = np.zeros(4)  # ignored by the app, not JSON-able
        with KernelService(devices=1, journal_dir=str(tmp_path)) as service:
            session = service.session("t0")
            future = session.submit_app(app, variant="ompx", params=params)
            future.result(timeout=60)
        # Nothing journaled, nothing pending — and the run completed.
        assert SubmissionJournal(str(tmp_path)).pending(dedupe=False) == []
