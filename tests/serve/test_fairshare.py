"""Weighted fair share: stride scheduling over contended tenants.

Dispatch order is deterministic (virtual-time pass values, name
tiebreak), so the tests assert exact interleavings, not statistical
tendencies.
"""

import threading

import pytest

from repro.serve import KernelService, TenantQuota
from repro.serve.admission import AdmissionController, Request
from repro.serve.future import ServeFuture

pytestmark = [pytest.mark.serve, pytest.mark.sched]


def _enqueue(controller, tenant, count):
    for i in range(count):
        request = Request(
            kind="call", label=f"{tenant.name}-{i}", key=None,
            tenant_name=tenant.name,
            future=ServeFuture(tenant.name, f"{tenant.name}-{i}"),
            payload={},
        )
        controller.submit(tenant, request)


def _drain_order(controller, total):
    """Dispatch ``total`` requests one at a time, finishing each
    immediately (so inflight caps never gate the order)."""
    order = []
    for _ in range(total):
        request = controller.next_ready()
        order.append(request.tenant_name)
        controller.finish(request, elapsed_s=0.001, failed=False)
    return order


class TestStrideOrder:
    def test_equal_weights_alternate(self):
        controller = AdmissionController()
        alice = controller.register("alice", TenantQuota(max_queued=16))
        bob = controller.register("bob", TenantQuota(max_queued=16))
        _enqueue(controller, alice, 4)
        _enqueue(controller, bob, 4)
        order = _drain_order(controller, 8)
        # Strict alternation: same stride, name tiebreak puts alice first.
        assert order == ["alice", "bob"] * 4

    def test_double_weight_gets_double_bandwidth(self):
        controller = AdmissionController()
        heavy = controller.register(
            "heavy", TenantQuota(max_queued=32, weight=2.0)
        )
        light = controller.register(
            "light", TenantQuota(max_queued=32, weight=1.0)
        )
        _enqueue(controller, heavy, 12)
        _enqueue(controller, light, 12)
        order = _drain_order(controller, 18)
        assert order.count("heavy") == 12
        assert order.count("light") == 6
        # Proportionality holds in every window, not just at the end:
        # after any 3k dispatches, heavy has exactly 2k of them.
        for k in range(1, 7):
            window = order[: 3 * k]
            assert window.count("heavy") == 2 * k

    def test_late_joiner_neither_starves_nor_bursts(self):
        controller = AdmissionController()
        alice = controller.register("alice", TenantQuota(max_queued=64))
        _enqueue(controller, alice, 8)
        _drain_order(controller, 8)  # alice's pass has advanced far
        bob = controller.register("bob", TenantQuota(max_queued=64))
        _enqueue(controller, alice, 4)
        _enqueue(controller, bob, 4)
        order = _drain_order(controller, 8)
        # Bob joined at alice's current pass: fair interleave, no
        # catch-up burst of 4 bob dispatches in a row.
        assert order.count("bob") == 4
        assert order[:2].count("bob") <= 1

    def test_idle_tenant_does_not_block_dispatch(self):
        controller = AdmissionController()
        controller.register("idle", TenantQuota(max_queued=8))
        busy = controller.register("busy", TenantQuota(max_queued=8))
        _enqueue(controller, busy, 3)
        assert _drain_order(controller, 3) == ["busy"] * 3


class TestFairShareEndToEnd:
    def test_weighted_tenants_complete_proportionally(self):
        # One dispatcher, one device: dispatch order IS completion
        # order, so the first completions must skew toward the heavy
        # tenant 2:1.
        done_order = []
        done_lock = threading.Lock()
        gate = threading.Event()

        def job(tag):
            def run(device):
                with done_lock:
                    done_order.append(tag)
                return tag

            return run

        with KernelService(devices=1, dispatchers=1) as service:
            heavy = service.session(
                "heavy", quota=TenantQuota(max_queued=32, weight=2.0)
            )
            light = service.session(
                "light", quota=TenantQuota(max_queued=32, weight=1.0)
            )
            # Hold the dispatcher so every submission queues up before
            # any ordering decision is made.
            blocker = heavy.submit_call(
                lambda device: gate.wait(30), label="gate"
            )
            futures = []
            for i in range(9):
                futures.append(
                    heavy.submit_call(job("heavy"), label=f"h{i}")
                )
                futures.append(
                    light.submit_call(job("light"), label=f"l{i}")
                )
            gate.set()
            blocker.result(timeout=30)
            for future in futures:
                future.result(timeout=60)
        # Ignore the gate job (heavy's first dispatch): among the 18
        # contended jobs, every 3-window of the prefix is 2 heavy + 1
        # light until heavy's queue drains.
        contended = done_order
        assert contended.count("heavy") == 9
        assert contended.count("light") == 9
        first_nine = contended[:9]
        assert first_nine.count("heavy") >= 5  # heavy front-loaded
