"""Request coalescing: key structure, and shared executions end to end.

The acceptance bar: N identical concurrent submissions collapse onto
exactly one backend execution (observed through the serving-tier trace
counters) and every waiter receives the shared result; anything opaque
or failure-tainted de-coalesces.
"""

import threading

import numpy as np
import pytest

from repro.apps import XSBench
from repro.errors import ReproError
from repro.gpu.launch import LaunchConfig
from repro.serve import KernelService, TenantQuota
from repro.serve.coalesce import app_key, digest, kernel_key
from repro.trace import tracing

pytestmark = [pytest.mark.serve, pytest.mark.sched]


@pytest.fixture
def tracer():
    """Install a fresh tracer for counter assertions, restore after."""
    with tracing() as fresh:
        yield fresh


def _kernel(ctx, n):
    pass


class TestDigest:
    def test_equal_arrays_digest_equal(self):
        a = np.arange(16, dtype=np.float64)
        b = np.arange(16, dtype=np.float64)
        assert a is not b
        assert digest(a) == digest(b)

    def test_different_content_digests_differ(self):
        a = np.arange(16, dtype=np.float64)
        b = a.copy()
        b[3] += 1.0
        assert digest(a) != digest(b)

    def test_dtype_and_shape_matter(self):
        a = np.zeros(8, dtype=np.float32)
        b = np.zeros(8, dtype=np.float64)
        assert digest(a) != digest(b)
        assert digest(a.reshape(2, 4)) != digest(a)

    def test_scalars_strings_and_none(self):
        assert digest(3) == digest(3)
        assert digest(3) != digest(3.0)  # type-tagged, not just value
        assert digest("x") == digest("x")
        assert digest(None) == ("none",)
        assert digest(np.float64(2.5)) == digest(np.float64(2.5))

    def test_nested_containers_recurse(self):
        a = {"n": 4, "xs": [1.0, 2.0], "w": np.ones(3)}
        b = {"n": 4, "xs": [1.0, 2.0], "w": np.ones(3)}
        assert digest(a) == digest(b)
        b["xs"][1] = 9.0
        assert digest(a) != digest(b)

    def test_opaque_values_poison_the_digest(self):
        assert digest(object()) is None
        assert digest(lambda: None) is None
        assert digest([1, object()]) is None
        assert digest({"ok": 1, "bad": object()}) is None


class TestKeys:
    def test_identical_launches_share_a_key(self):
        config = LaunchConfig.create(4, 64)
        args = (np.arange(8.0), 8)
        first = kernel_key(_kernel, config, args)
        second = kernel_key(_kernel, LaunchConfig.create(4, 64),
                            (np.arange(8.0), 8))
        assert first is not None
        assert first == second

    def test_geometry_differences_split_keys(self):
        args = (8,)
        base = kernel_key(_kernel, LaunchConfig.create(4, 64), args)
        assert kernel_key(_kernel, LaunchConfig.create(8, 64), args) != base
        assert kernel_key(_kernel, LaunchConfig.create(4, 32), args) != base

    def test_stream_bound_launches_never_coalesce(self):
        from repro.gpu import get_device
        from repro.gpu.stream import Stream

        stream = Stream(get_device(0))
        config = LaunchConfig.create(4, 64, stream=stream)
        assert kernel_key(_kernel, config, (8,)) is None

    def test_opaque_arguments_never_coalesce(self):
        config = LaunchConfig.create(4, 64)
        assert kernel_key(_kernel, config, (object(),)) is None

    def test_app_keys_track_class_variant_and_params(self):
        app = XSBench()
        params = app.functional_params()
        same = app_key(XSBench(), "ompx", app.functional_params())
        assert app_key(app, "ompx", params) == same
        assert app_key(app, "serial", params) != same

    def test_app_key_none_params_still_coalesces(self):
        assert app_key(XSBench(), "ompx", None) is not None


class TestCoalescedExecution:
    def test_identical_submissions_share_one_execution(self, tracer):
        # The acceptance test: N identical in-flight app submissions
        # collapse onto exactly ONE backend execution; every waiter
        # receives the shared result.
        fanout = 6
        app = XSBench()
        params = app.functional_params()
        with KernelService(devices=1, dispatchers=1) as service:
            sessions = [
                service.session(f"tenant{i}",
                                quota=TenantQuota(max_queued=16))
                for i in range(fanout)
            ]
            futures = [
                s.submit_app(app, variant="ompx", params=params)
                for s in sessions
            ]
            results = [f.result(timeout=120) for f in futures]
        counters = tracer.counters
        assert counters["serve_submitted"] == fanout
        assert counters["serve_executions"] == 1
        assert counters["serve_coalesced"] == fanout - 1
        # Followers share the leader's result object outright.
        assert all(r is results[0] for r in results)
        assert sum(1 for f in futures if f.coalesced) == fanout - 1
        stats = service.stats()["service"]
        assert stats["executions"] == 1
        assert stats["completed"] == fanout

    def test_distinct_params_do_not_coalesce(self, tracer):
        app = XSBench()
        base = dict(app.functional_params())
        smaller = dict(base, lookups=base["lookups"] // 2)
        with KernelService(devices=1, dispatchers=1) as service:
            a = service.session("a")
            b = service.session("b")
            fa = a.submit_app(app, variant="ompx", params=base)
            fb = b.submit_app(app, variant="ompx", params=smaller)
            fa.result(timeout=120)
            fb.result(timeout=120)
        assert tracer.counters["serve_executions"] == 2
        assert tracer.counters.get("serve_coalesced", 0) == 0

    def test_coalesce_false_opts_out(self, tracer):
        app = XSBench()
        params = app.functional_params()
        with KernelService(devices=1, dispatchers=1) as service:
            session = service.session("t0")
            first = session.submit_app(app, variant="ompx", params=params)
            second = session.submit_app(app, variant="ompx", params=params,
                                        coalesce=False)
            first.result(timeout=120)
            second.result(timeout=120)
        assert tracer.counters["serve_executions"] == 2

    def test_failed_leader_does_not_poison_followers(self, tracer):
        # The leader's execution fails; the follower must NOT inherit
        # that failure — it is resubmitted privately and succeeds.
        state = {"raised": False}
        state_lock = threading.Lock()
        gate = threading.Event()

        def flaky(ctx, n):
            with state_lock:
                if not state["raised"]:
                    state["raised"] = True
                    raise ValueError(
                        "transient host bug in the leader's run"
                    )

        config = LaunchConfig.create(1, 8)
        with KernelService(devices=1, dispatchers=1) as service:
            alice = service.session("alice")
            bob = service.session("bob")
            # Hold the dispatcher so both submissions are in flight
            # together and the second coalesces onto the first.
            blocker = alice.submit_call(
                lambda device: gate.wait(30), label="gate"
            )
            leader = alice.submit(flaky, config, 8)
            follower = bob.submit(flaky, config, 8)
            assert follower.coalesced
            gate.set()
            blocker.result(timeout=30)
            with pytest.raises(ReproError):
                leader.result(timeout=60)
            stats = follower.result(timeout=60)
            assert stats.blocks_run >= 1
        # 3 executions total: the gate call, the shared (failed) leader
        # run, and the follower's private re-run.
        assert tracer.counters["serve_executions"] == 3
        assert tracer.counters["serve_failed[alice]"] == 1
        assert tracer.counters["serve_completed[bob]"] == 1
        assert tracer.counters["serve_redispatches"] == 1
