"""Admission control: quotas, backpressure refusals, retry-after guidance."""

import threading

import pytest

from repro.errors import QueueFull, ServeError
from repro.serve import KernelService, TenantQuota
from repro.serve.admission import AdmissionController, Request
from repro.serve.quota import STAT_KEYS, TenantState

pytestmark = [pytest.mark.serve, pytest.mark.sched]


def _request(label="job", key=None, tenant="t0"):
    from repro.serve.future import ServeFuture

    return Request(
        kind="call", label=label, key=key, tenant_name=tenant,
        future=ServeFuture(tenant, label), payload={},
    )


class TestQuotaValidation:
    def test_defaults_are_sane(self):
        quota = TenantQuota()
        assert quota.max_queued >= 1
        assert quota.max_inflight >= 1
        assert quota.weight > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queued": 0},
            {"max_inflight": 0},
            {"weight": 0.0},
            {"weight": -1.0},
        ],
    )
    def test_invalid_quota_is_refused(self, kwargs):
        with pytest.raises(ServeError):
            TenantQuota(**kwargs)

    def test_stat_keys_match_tenant_state(self):
        state = TenantState("t0", TenantQuota())
        snapshot = state.snapshot()
        for key in STAT_KEYS:
            assert snapshot[key] == 0
        assert snapshot["queued"] == 0
        assert snapshot["inflight"] == 0


class TestControllerUnit:
    def test_tenant_bound_refusal_carries_scope_and_estimate(self):
        controller = AdmissionController()
        tenant = controller.register("t0", TenantQuota(max_queued=2))
        assert controller.submit(tenant, _request("a")) == "queued"
        assert controller.submit(tenant, _request("b")) == "queued"
        with pytest.raises(QueueFull) as info:
            controller.submit(tenant, _request("c"))
        assert info.value.scope == "tenant"
        assert info.value.tenant == "t0"
        assert info.value.retry_after_s > 0
        assert tenant.stats["rejected"] == 1
        assert tenant.stats["submitted"] == 3

    def test_global_bound_refusal(self):
        controller = AdmissionController(global_max_queued=3)
        alice = controller.register("alice", TenantQuota(max_queued=8))
        bob = controller.register("bob", TenantQuota(max_queued=8))
        controller.submit(alice, _request("a1", tenant="alice"))
        controller.submit(alice, _request("a2", tenant="alice"))
        controller.submit(bob, _request("b1", tenant="bob"))
        with pytest.raises(QueueFull) as info:
            controller.submit(bob, _request("b2", tenant="bob"))
        assert info.value.scope == "global"
        assert info.value.retry_after_s > 0

    def test_dispatch_frees_queue_capacity(self):
        controller = AdmissionController()
        tenant = controller.register("t0", TenantQuota(max_queued=1))
        controller.submit(tenant, _request("a"))
        with pytest.raises(QueueFull):
            controller.submit(tenant, _request("b"))
        dispatched = controller.next_ready()
        assert dispatched.label == "a"
        assert controller.submit(tenant, _request("b")) == "queued"

    def test_max_inflight_gates_dispatch(self):
        controller = AdmissionController()
        tenant = controller.register("t0", TenantQuota(max_inflight=1))
        controller.submit(tenant, _request("a"))
        controller.submit(tenant, _request("b"))
        first = controller.next_ready()
        # With the tenant at its inflight cap, the second request must
        # wait even though it is queued; finishing the first releases it.
        done = threading.Event()
        picked = []

        def drain():
            picked.append(controller.next_ready())
            done.set()

        thread = threading.Thread(target=drain, daemon=True)
        thread.start()
        assert not done.wait(0.3)
        controller.finish(first, elapsed_s=0.001, failed=False)
        assert done.wait(10)
        assert picked[0].label == "b"

    def test_ewma_tracks_observed_service_time(self):
        controller = AdmissionController()
        tenant = controller.register("t0")
        before = controller._service_s
        request = _request("a")
        controller.submit(tenant, request)
        controller.next_ready()
        controller.finish(request, elapsed_s=1.0, failed=True)
        assert controller._service_s > before

    def test_closed_controller_refuses_submissions(self):
        controller = AdmissionController()
        tenant = controller.register("t0")
        controller.close()
        with pytest.raises(ServeError, match="closed"):
            controller.submit(tenant, _request("late"))
        assert controller.next_ready() is None

    def test_register_is_idempotent_and_quota_checked(self):
        controller = AdmissionController()
        first = controller.register("t0", TenantQuota(max_queued=4))
        again = controller.register("t0")
        assert again is first
        same = controller.register("t0", TenantQuota(max_queued=4))
        assert same is first
        with pytest.raises(ServeError, match="already registered"):
            controller.register("t0", TenantQuota(max_queued=8))


class TestServiceBackpressure:
    def test_queue_full_surfaces_to_the_client(self):
        release = threading.Event()
        started = threading.Event()
        quota = TenantQuota(max_queued=2, max_inflight=1)
        with KernelService(devices=1, dispatchers=1) as service:
            session = service.session("t0", quota=quota)
            try:
                session.submit_call(
                    lambda device: (started.set(), release.wait(30))[1],
                    label="hog",
                )
                assert started.wait(30)
                session.submit_call(lambda device: 1, label="q1")
                session.submit_call(lambda device: 2, label="q2")
                with pytest.raises(QueueFull) as info:
                    session.submit_call(lambda device: 3, label="overflow")
                assert info.value.tenant == "t0"
                assert info.value.retry_after_s > 0
                assert "retry_after=" in str(info.value)
            finally:
                release.set()
        assert session.stats["rejected"] == 1

    def test_retry_after_queue_drains_succeeds(self):
        quota = TenantQuota(max_queued=1, max_inflight=1)
        release = threading.Event()
        started = threading.Event()
        with KernelService(devices=1, dispatchers=1) as service:
            session = service.session("t0", quota=quota)
            session.submit_call(
                lambda device: (started.set(), release.wait(30))[1],
                label="hog",
            )
            assert started.wait(30)
            queued = session.submit_call(lambda device: "queued", label="q")
            with pytest.raises(QueueFull):
                session.submit_call(lambda device: "extra", label="extra")
            release.set()
            assert queued.result(timeout=30) == "queued"
            # Capacity freed: the retry is admitted now.
            retry = session.submit_call(lambda device: "retry", label="r")
            assert retry.result(timeout=30) == "retry"
