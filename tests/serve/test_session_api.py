"""Session/KernelService submission surface: futures, lifecycles, backends."""

import numpy as np
import pytest

from repro.apps import Adam, XSBench
from repro.errors import CancelledError, ServeError, SessionClosed
from repro.gpu.launch import LaunchConfig
from repro.resilience import ResilientPool
from repro.sched import DevicePool
from repro.serve import KernelService, ServeFuture, TenantQuota

pytestmark = [pytest.mark.serve, pytest.mark.sched]


def _noop_kernel(ctx, n):
    pass


class TestSubmission:
    def test_submit_call_resolves_on_a_pool_worker(self):
        with KernelService(devices=2) as service:
            session = service.session("t0")
            future = session.submit_call(
                lambda device: device.ordinal, label="whoami"
            )
            ordinal = future.result(timeout=30)
            assert ordinal in {d.ordinal for d in service.devices}
            assert future.done() and future.latency_s >= 0.0

    def test_submit_kernel_returns_kernel_stats(self):
        with KernelService(devices=1) as service:
            session = service.session("t0")
            stats = session.run(
                _noop_kernel, LaunchConfig.create(1, 32), 32, timeout=30
            )
            assert stats.blocks_run >= 1

    def test_submit_app_matches_direct_run(self):
        from repro.gpu import get_device

        app = XSBench()
        params = app.functional_params()
        direct = app.run_single("ompx", params, get_device(0))
        with KernelService(devices=2) as service:
            served = service.session("t0").run_app(
                app, variant="ompx", params=params, timeout=60
            )
        assert served.checksum == direct.checksum
        np.testing.assert_array_equal(served.output, direct.output)

    def test_run_is_submit_plus_result(self):
        with KernelService(devices=1) as service:
            session = service.session("t0")
            future = session.submit_app(Adam(), variant="ompx")
            assert isinstance(future, ServeFuture)
            assert future.result(timeout=60).checksum == pytest.approx(
                session.run_app(Adam(), variant="ompx", timeout=60).checksum
            )


class TestSessionLifecycle:
    def test_closed_session_refuses_submissions(self):
        with KernelService(devices=1) as service:
            session = service.session("t0")
            session.close()
            with pytest.raises(SessionClosed, match="t0"):
                session.submit_call(lambda device: None)

    def test_session_is_a_context_manager(self):
        with KernelService(devices=1) as service:
            with service.session("t0") as session:
                assert session.tenant == "t0"
            with pytest.raises(SessionClosed):
                session.submit_call(lambda device: None)

    def test_same_tenant_sessions_share_state(self):
        with KernelService(devices=1) as service:
            first = service.session("shared")
            second = service.session("shared")
            first.run(_noop_kernel, LaunchConfig.create(1, 32), 32, timeout=30)
            assert second.stats["completed"] == 1

    def test_quota_conflict_is_refused(self):
        with KernelService(devices=1) as service:
            service.session("t0", quota=TenantQuota(max_queued=4))
            with pytest.raises(ServeError, match="already registered"):
                service.session("t0", quota=TenantQuota(max_queued=8))

    def test_closed_service_refuses_sessions_and_submissions(self):
        service = KernelService(devices=1)
        session = service.session("t0")
        service.close()
        with pytest.raises(ServeError, match="closed"):
            service.session("t1")
        with pytest.raises(ServeError, match="closed"):
            session.submit_call(lambda device: None)

    def test_close_drain_false_cancels_queued_futures(self):
        # One dispatcher, one slow job holding it, a queued job behind it.
        with KernelService(devices=1, dispatchers=1) as service:
            session = service.session("t0")
            import threading

            release = threading.Event()
            started = threading.Event()
            blocker = session.submit_call(
                lambda device: (started.set(), release.wait(10))[1],
                label="blocker",
            )
            assert started.wait(30)  # blocker holds the only dispatcher
            queued = session.submit_call(lambda device: 42, label="queued")
            # close() joins the dispatcher, so release the blocker from a
            # timer once the flush has already cancelled the queued job.
            threading.Timer(0.5, release.set).start()
            service.close(drain=False)
            with pytest.raises(CancelledError, match="service closed"):
                queued.result(timeout=30)
            assert blocker.result(timeout=30) is True


class TestFutureSemantics:
    def test_cancel_while_queued_skips_execution(self):
        import threading

        ran = []
        release = threading.Event()
        with KernelService(devices=1, dispatchers=1) as service:
            session = service.session("t0")
            blocker = session.submit_call(
                lambda device: release.wait(10), label="blocker"
            )
            victim = session.submit_call(
                lambda device: ran.append(1), label="victim"
            )
            assert victim.cancel()
            release.set()
            blocker.result(timeout=30)
            with pytest.raises(CancelledError):
                victim.result(timeout=30)
        assert not ran  # the dispatcher skipped the fully-cancelled request

    def test_result_timeout_raises_serve_error(self):
        import threading

        release = threading.Event()
        with KernelService(devices=1) as service:
            session = service.session("t0")
            future = session.submit_call(
                lambda device: release.wait(10), label="slow"
            )
            with pytest.raises(ServeError, match="did not complete"):
                future.result(timeout=0.05)
            release.set()
            assert future.result(timeout=30) is True


class TestExternalBackends:
    def test_external_device_pool_is_served_and_not_closed(self):
        with DevicePool(2) as pool:
            with KernelService(backend=pool) as service:
                value = service.session("t0").run(
                    _noop_kernel, LaunchConfig.create(1, 32), 32, timeout=30
                )
                assert value.blocks_run >= 1
            # the service did not close the external pool
            fence = pool.submit_call(lambda device: "alive")
            assert fence.result(timeout=30) == "alive"

    def test_external_resilient_pool_is_served(self):
        from repro.gpu import get_device

        app = Adam()
        params = app.functional_params()
        direct = app.run_single("ompx", params, get_device(0))
        with DevicePool(2) as pool:
            with ResilientPool(pool) as rpool:
                with KernelService(backend=rpool) as service:
                    result = service.session("t0").run_app(
                        app, variant="ompx", params=params, timeout=60
                    )
        assert result.checksum == direct.checksum

    def test_non_pool_backend_is_refused(self):
        with pytest.raises(ServeError, match="PoolProtocol"):
            KernelService(backend=object())
