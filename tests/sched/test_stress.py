"""Concurrency stress: many host threads against one DevicePool.

The pool's contract under pressure: per-device allocators never bleed
into each other, results are deterministic regardless of interleaving,
and a fault targeted at one device (``device=`` selector) fires only on
that device's worker and poisons only that device.
"""

import threading

import numpy as np
import pytest

from repro import faults
from repro.errors import (
    KernelFault,
    LaunchError,
    OutOfMemoryError,
    StickyContextError,
)
from repro.gpu import LaunchConfig
from repro.ompx import ompx_memcpy_peer
from repro.sched import DevicePool, gather

pytestmark = [pytest.mark.sched, pytest.mark.timeout(120)]

HOST_THREADS = 8
N = 64


def fill_kernel(ctx, out, value, n):
    i = ctx.flat_thread_id
    view = ctx.deref(out, n, np.float64)
    if i < n:
        view[i] = value * (i + 1)


def _expected(value):
    return value * np.arange(1, N + 1, dtype=np.float64)


class TestHostThreadStress:
    def test_eight_threads_four_devices_deterministic(self):
        """8 host threads × 4 devices: exact results, no allocator bleed."""
        with DevicePool(4) as pool:
            baseline = [d.allocator.bytes_in_use for d in pool.devices]
            results = {}
            errors = []

            def worker(tid):
                try:
                    checks = []
                    for rep in range(3):
                        for di in range(len(pool)):
                            value = float(tid * 100 + rep * 10 + di + 1)
                            ptr = pool.submit_call(
                                lambda dev: dev.allocator.malloc(N * 8),
                                device=di,
                            ).result()
                            assert ptr.device_ordinal == pool.devices[di].ordinal
                            pool.submit(
                                fill_kernel, LaunchConfig.create(1, N),
                                ptr, value, N, device=di,
                                label=f"t{tid}r{rep}d{di}",
                            ).result()
                            out = np.zeros(N)
                            pool.devices[di].allocator.memcpy_d2h(out, ptr)
                            np.testing.assert_array_equal(out, _expected(value))
                            checks.append(float(out.sum()))
                            pool.submit_call(
                                lambda dev, p=ptr: dev.allocator.free(p),
                                device=di,
                            ).result()
                    results[tid] = checks
                except Exception as exc:  # surfaced below, not swallowed
                    errors.append((tid, exc))

            threads = [threading.Thread(target=worker, args=(t,))
                       for t in range(HOST_THREADS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert not errors, errors
            pool.synchronize()
            # Deterministic: each thread's checksums depend only on (tid,
            # rep, device-index), never on scheduling order.
            for tid, checks in results.items():
                expected = [
                    float(_expected(tid * 100 + rep * 10 + di + 1).sum())
                    for rep in range(3) for di in range(len(pool))
                ]
                assert checks == expected
            # No allocator bleed: every device is back at its baseline.
            after = [d.allocator.bytes_in_use for d in pool.devices]
            assert after == baseline

    def test_concurrent_peer_copies(self):
        """Threads shuttling buffers between pool devices stay coherent."""
        with DevicePool(4) as pool:
            errors = []

            def worker(tid):
                try:
                    src_dev = pool.devices[tid % 4]
                    dst_dev = pool.devices[(tid + 1) % 4]
                    host = np.full(N, float(tid + 1))
                    src = src_dev.allocator.malloc(N * 8)
                    dst = dst_dev.allocator.malloc(N * 8)
                    src_dev.allocator.memcpy_h2d(src, host)
                    ompx_memcpy_peer(dst, dst_dev, src, src_dev, N * 8)
                    out = np.zeros(N)
                    dst_dev.allocator.memcpy_d2h(out, dst)
                    np.testing.assert_array_equal(out, host)
                    src_dev.allocator.free(src)
                    dst_dev.allocator.free(dst)
                except Exception as exc:
                    errors.append((tid, exc))

            threads = [threading.Thread(target=worker, args=(t,))
                       for t in range(HOST_THREADS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors


class TestTargetedFaults:
    def test_oom_selector_hits_only_the_targeted_device(self):
        with DevicePool(4) as pool:
            victim = pool.devices[2]
            with faults.inject(f"malloc:oom,device={victim.ordinal}"):
                futures = [
                    pool.submit_call(
                        lambda dev: dev.allocator.malloc(256), device=i
                    )
                    for i in range(4)
                ]
                outcomes = [f.exception() for f in futures]
            assert isinstance(outcomes[2], OutOfMemoryError)
            for i in (0, 1, 3):
                assert outcomes[i] is None
                pool.submit_call(
                    lambda dev, p=futures[i].result(): dev.allocator.free(p),
                    device=i,
                ).result()

    def test_kernel_fault_poisons_only_the_targeted_worker(self):
        with DevicePool(3) as pool:
            victim = pool.devices[1]
            ptrs = gather([
                pool.submit_call(lambda dev: dev.allocator.malloc(N * 8),
                                 device=i)
                for i in range(3)
            ])
            spec = f"launch:kernel_fault@1,device={victim.ordinal}"
            with faults.inject(spec):
                futures = [
                    pool.submit(fill_kernel, LaunchConfig.create(1, N),
                                ptrs[i], 1.0, N, device=i)
                    for i in range(3)
                ]
                outcomes = [f.exception() for f in futures]
            # Only the targeted future failed, with the injected fault as
            # its cause; the device context is now poisoned.
            assert isinstance(outcomes[1], LaunchError)
            assert isinstance(outcomes[1].__cause__, KernelFault)
            assert outcomes[0] is None and outcomes[2] is None
            assert victim.is_poisoned
            # The poison is sticky on the victim only: its next submission
            # fails, the other devices keep working.
            sticky = pool.submit(fill_kernel, LaunchConfig.create(1, N),
                                 ptrs[1], 2.0, N, device=1)
            assert isinstance(sticky.exception(), StickyContextError)
            ok = pool.submit(fill_kernel, LaunchConfig.create(1, N),
                             ptrs[0], 3.0, N, device=0)
            assert ok.exception() is None
            # Reset recovers the victim (allocations are torn down by the
            # reset, like cudaDeviceReset, so re-allocate afterwards).
            victim.reset()
            fresh = pool.submit_call(
                lambda dev: dev.allocator.malloc(N * 8), device=1
            ).result()
            done = pool.submit(fill_kernel, LaunchConfig.create(1, N),
                               fresh, 4.0, N, device=1)
            assert done.exception() is None
            pool.submit_call(lambda dev, p=fresh: dev.allocator.free(p),
                             device=1).result()
            for i in (0, 2):
                pool.submit_call(lambda dev, p=ptrs[i]: dev.allocator.free(p),
                                 device=i).result()
