"""`resolve_placement`: the one device-resolution path for every ``device=``.

Every host API — ompx, cuda, hip, the launcher, the scheduler — now
funnels its ``device=`` argument through
:func:`repro.gpu.device.resolve_placement`, so ``int`` ordinals,
:class:`Device` objects, and ``None`` behave identically everywhere.
"""

import numpy as np
import pytest

from repro import hip
from repro.cuda.runtime import cudaGetDevice, cudaSetDevice
from repro.errors import GpuError
from repro.gpu import LaunchConfig, get_device, launch_kernel
from repro.gpu.device import current_device, resolve_placement, set_current_device

pytestmark = [pytest.mark.sched]


@pytest.fixture(autouse=True)
def _restore_thread_device():
    yield
    set_current_device(0)
    cudaSetDevice(None)
    hip.hipSetDevice(None)


class TestResolvePlacement:
    def test_none_resolves_to_current_device(self):
        set_current_device(1)
        assert resolve_placement(None) is get_device(1)

    def test_int_resolves_through_registry(self):
        assert resolve_placement(2) is get_device(2)
        assert resolve_placement(np.int64(1)) is get_device(1)

    def test_device_resolves_to_itself(self):
        device = get_device(0)
        assert resolve_placement(device) is device

    def test_garbage_is_a_gpu_error(self):
        with pytest.raises(GpuError, match="device="):
            resolve_placement("a100")
        with pytest.raises(GpuError, match="device="):
            resolve_placement(2.5)

    def test_default_callable_wins_over_current(self):
        set_current_device(0)
        assert resolve_placement(None, default=lambda: get_device(2)) is get_device(2)
        assert resolve_placement(None, default=get_device(1)) is get_device(1)


class TestFrontEndsShareThePath:
    def test_ompx_malloc_accepts_ordinal_and_device(self):
        from repro.ompx import ompx_free, ompx_malloc

        for placement in (1, get_device(1)):
            ptr = ompx_malloc(64, placement)
            assert ptr.device_ordinal == 1
            ompx_free(ptr, 1)

    def test_cuda_set_device_accepts_device_and_none(self):
        cudaSetDevice(get_device(2))
        assert cudaGetDevice() == 2
        cudaSetDevice(None)        # reset to the CUDA default (A100)
        assert cudaGetDevice() == 0

    def test_hip_set_device_accepts_device_and_none(self):
        hip.hipSetDevice(get_device(0))
        assert hip.hipGetDevice() == 0
        hip.hipSetDevice(None)     # reset to the HIP default (MI250)
        assert hip.hipGetDevice() == 1

    def test_hip_launch_honours_device_zero(self):
        """``device=0`` must target ordinal 0, not fall back to the default.

        The falsy ordinal is the regression trap: a ``device or default``
        resolution would silently send this launch to the MI250.
        """
        n = 8
        a100 = get_device(0)
        ptr = a100.allocator.malloc(n * 8)

        @hip.kernel(sync_free=True)
        def k(t, out, n):
            i = t.global_thread_id
            if i < n:
                t.array(out, n, np.float64)[i] = 7.0

        hip.launch(k, 1, n, (ptr, n), device=0)
        a100.synchronize()
        out = np.zeros(n)
        a100.allocator.memcpy_d2h(out, ptr)
        assert (out == 7.0).all()
        a100.allocator.free(ptr)

    def test_launch_kernel_accepts_int_placement(self):
        n = 4
        device = get_device(1)
        ptr = device.allocator.malloc(n * 8)

        def raw(ctx, out, n):
            i = ctx.flat_thread_id
            if i < n:
                ctx.deref(out, n, np.float64)[i] = i * 2.0

        launch_kernel(LaunchConfig.create(1, n), raw, (ptr, n), 1,
                      synchronous=True)
        out = np.zeros(n)
        device.allocator.memcpy_d2h(out, ptr)
        np.testing.assert_array_equal(out, [0.0, 2.0, 4.0, 6.0])
        device.allocator.free(ptr)
