"""DevicePool / KernelFuture / shard / gather: the execution service."""

import time

import numpy as np
import pytest

from repro.errors import GpuError, LaunchError, SchedulerError
from repro.gpu import LaunchConfig, get_device
from repro.gpu.device import A100_SPEC, MI250_SPEC, registered_devices
from repro.sched import DevicePool, KernelFuture, gather, shard

pytestmark = [pytest.mark.sched, pytest.mark.timeout(60)]


def fill_kernel(ctx, out, value, n):
    i = ctx.flat_thread_id
    view = ctx.deref(out, n, np.float64)
    if i < n:
        view[i] = value * (i + 1)


class TestConstruction:
    def test_pool_registers_fresh_ordinals(self):
        before = set(registered_devices())
        with DevicePool(2) as pool:
            assert len(pool) == 2
            fresh = {d.ordinal for d in pool.devices}
            assert fresh.isdisjoint(before)
            for device in pool.devices:
                assert get_device(device.ordinal) is device
        assert set(registered_devices()) == before

    def test_mixed_specs(self):
        with DevicePool(specs=[A100_SPEC, MI250_SPEC]) as pool:
            assert pool.devices[0].spec.vendor == "nvidia"
            assert pool.devices[1].spec.vendor == "amd"

    def test_devices_count_must_match_specs(self):
        with pytest.raises(SchedulerError, match="disagrees"):
            DevicePool(3, specs=[A100_SPEC])

    def test_needs_at_least_one_device(self):
        with pytest.raises(SchedulerError):
            DevicePool(0)
        with pytest.raises(SchedulerError):
            DevicePool(specs=[])

    def test_unknown_placement_policy(self):
        with pytest.raises(SchedulerError, match="placement"):
            DevicePool(1, placement="fastest")

    def test_close_is_idempotent(self):
        pool = DevicePool(1)
        pool.close()
        pool.close()

    def test_submit_after_close_raises(self):
        pool = DevicePool(1)
        pool.close()
        with pytest.raises(SchedulerError, match="closed"):
            pool.submit_call(lambda dev: None)


class TestFutures:
    def test_submit_kernel_resolves_to_stats(self):
        with DevicePool(1) as pool:
            device = pool.devices[0]
            ptr = pool.submit_call(lambda dev: dev.allocator.malloc(4 * 8)).result()
            future = pool.submit(fill_kernel, LaunchConfig.create(1, 4), ptr, 2.0, 4)
            stats = future.result()
            assert stats.threads_run == 4
            assert future.done() and future.exception() is None
            assert future.device is device
            assert future.track == f"device:{device.ordinal}"
            out = np.zeros(4)
            device.allocator.memcpy_d2h(out, ptr)
            np.testing.assert_allclose(out, [2.0, 4.0, 6.0, 8.0])
            pool.submit_call(lambda dev: dev.allocator.free(ptr)).result()

    def test_failure_preserves_original_exception(self):
        with DevicePool(1) as pool:
            future = pool.submit(
                fill_kernel, LaunchConfig.create(1, 8192), None, 0.0, 1
            )
            exc = future.exception()
            assert isinstance(exc, LaunchError)
            with pytest.raises(LaunchError):
                future.result()

    def test_result_timeout_raises_scheduler_error(self):
        with DevicePool(1) as pool:
            future = pool.submit_call(lambda dev: time.sleep(0.4))
            with pytest.raises(SchedulerError, match="did not complete"):
                future.exception(timeout=0.01)
            assert future.result(timeout=5) is None

    def test_wait_returns_false_on_timeout(self):
        with DevicePool(1) as pool:
            future = pool.submit_call(lambda dev: time.sleep(0.3))
            assert future.wait(timeout=0.01) is False
            assert future.wait(timeout=5) is True


class TestPlacement:
    def test_round_robin_cycles(self):
        with DevicePool(3) as pool:
            futures = [pool.submit_call(lambda dev: dev.ordinal) for _ in range(6)]
            placed = [f.device.ordinal for f in futures]
            expected = [d.ordinal for d in pool.devices] * 2
            assert placed == expected
            # The worker really ran on the placed device.
            assert [f.result() for f in futures] == placed

    def test_explicit_pool_index_and_device(self):
        with DevicePool(2) as pool:
            f0 = pool.submit_call(lambda dev: dev.ordinal, device=1)
            f1 = pool.submit_call(lambda dev: dev.ordinal, device=pool.devices[0])
            assert f0.result() == pool.devices[1].ordinal
            assert f1.result() == pool.devices[0].ordinal

    def test_explicit_index_out_of_range(self):
        with DevicePool(2) as pool:
            with pytest.raises(SchedulerError, match="out of range"):
                pool.submit_call(lambda dev: None, device=2)

    def test_foreign_device_rejected(self):
        with DevicePool(1) as pool:
            with pytest.raises(SchedulerError, match="does not belong"):
                pool.submit_call(lambda dev: None, device=get_device(0))

    def test_least_loaded_prefers_idle_device(self):
        with DevicePool(2, placement="least_loaded") as pool:
            # Occupy device 0 with a slow job; the next submission must
            # land on the idle device 1.
            slow = pool.submit_call(lambda dev: time.sleep(0.3), device=0)
            placed = pool.submit_call(lambda dev: None)
            assert placed.device is pool.devices[1]
            slow.wait()

    def test_callable_policy(self):
        with DevicePool(2, placement=lambda pool: pool.devices[1]) as pool:
            assert pool.submit_call(lambda dev: None).device is pool.devices[1]

    def test_callable_policy_must_return_pool_device(self):
        with DevicePool(1, placement=lambda pool: get_device(0)) as pool:
            with pytest.raises(SchedulerError, match="one of the pool's devices"):
                pool.submit_call(lambda dev: None)

    def test_synchronize_drains_every_queue(self):
        with DevicePool(2) as pool:
            seen = []
            for i in range(4):
                pool.submit_call(
                    lambda dev, i=i: (time.sleep(0.02), seen.append(i))
                )
            pool.synchronize()
            assert sorted(seen) == [0, 1, 2, 3]


class TestShardGather:
    def test_shard_round_trips(self):
        data = np.arange(11, dtype=np.float64)
        chunks = shard(data, 3)
        assert [len(c) for c in chunks] == [4, 4, 3]
        np.testing.assert_array_equal(np.concatenate(chunks), data)

    def test_shard_drops_empty_chunks(self):
        assert len(shard(np.arange(3), 5)) == 3

    def test_shard_rejects_bad_count(self):
        with pytest.raises(SchedulerError):
            shard(np.arange(4), 0)

    def test_gather_returns_in_submission_order(self):
        with DevicePool(2) as pool:
            futures = [
                pool.submit_call(lambda dev, i=i: (time.sleep(0.05 * (2 - i)), i)[1])
                for i in range(3)
            ]
            assert gather(futures) == [0, 1, 2]

    def test_gather_raises_first_failure_in_submission_order(self):
        with DevicePool(2) as pool:
            def boom(dev):
                raise GpuError("first failure")

            def boom2(dev):
                raise LaunchError("second failure")

            futures = [
                pool.submit_call(boom),
                pool.submit_call(boom2),
                pool.submit_call(lambda dev: 42),
            ]
            with pytest.raises(GpuError, match="first failure"):
                gather(futures)
            # Every future still completed (gather waits before raising).
            assert all(f.done() for f in futures)


class TestPoolIsFirstClass:
    def test_pool_pointers_resolve_per_device(self):
        """Allocations on different pool devices never bleed across."""
        with DevicePool(2) as pool:
            ptrs = gather([
                pool.submit_call(lambda dev: dev.allocator.malloc(8), device=i)
                for i in range(2)
            ])
            assert ptrs[0].device_ordinal != ptrs[1].device_ordinal
            for i, ptr in enumerate(ptrs):
                assert ptr.device_ordinal == pool.devices[i].ordinal
                pool.submit_call(
                    lambda dev, p=ptr: dev.allocator.free(p), device=i
                ).result()

    def test_closed_pool_invalidates_its_devices(self):
        pool = DevicePool(1)
        ordinal = pool.devices[0].ordinal
        pool.close()
        with pytest.raises(GpuError):
            get_device(ordinal)

    def test_default_device_ordinals_are_protected(self):
        from repro.gpu.device import remove_device

        with pytest.raises(GpuError):
            remove_device(0)

    def test_repr_and_future_repr(self):
        with DevicePool(1) as pool:
            assert "DevicePool" in repr(pool)
            future = pool.submit_call(lambda dev: None, label="probe")
            assert isinstance(future, KernelFuture)
            future.wait()
