"""KernelFuture.cancel and non-draining close: queued work can be abandoned.

The cancellation contract: only *queued* jobs are cancellable (a running
job cannot be interrupted — that is the watchdog's department), the
worker skips cancelled jobs instead of executing them, and
``close(drain=False)`` cancels everything still in the queues while the
in-flight jobs run to completion.  A worker that fails to join is
reported with the label of the job it is stuck on, never silently
abandoned.
"""

import threading
import time
import warnings

import pytest

from repro.errors import CancelledError
from repro.sched import DevicePool

pytestmark = [pytest.mark.sched, pytest.mark.timeout(60)]


def _blocker(gate: threading.Event, started: threading.Event = None):
    """A job that parks its worker until the test releases the gate.

    ``started`` (when given) is set the moment the worker picks the job
    up, so tests can wait for it to be genuinely in flight before racing
    a ``close()``/``cancel()`` against it.
    """

    def job(device):
        if started is not None:
            started.set()
        gate.wait(timeout=30)
        return "unblocked"

    return job


class TestCancel:
    def test_cancel_pending_job_skips_execution(self):
        gate = threading.Event()
        ran = []
        with DevicePool(1) as pool:
            head = pool.submit_call(_blocker(gate), label="head")
            queued = pool.submit_call(
                lambda dev: ran.append(dev.ordinal), label="victim"
            )
            assert queued.cancel("not needed anymore") is True
            assert queued.cancelled()
            gate.set()
            assert head.result(timeout=10) == "unblocked"
            pool.synchronize()
        exc = queued.exception()
        assert isinstance(exc, CancelledError)
        assert "victim" in str(exc)
        assert "not needed anymore" in str(exc)
        assert ran == []  # the worker dequeued it and skipped it

    def test_cancel_is_not_retryable_by_default(self):
        gate = threading.Event()
        with DevicePool(1) as pool:
            head = pool.submit_call(_blocker(gate), label="head")
            queued = pool.submit_call(lambda dev: None, label="victim")
            assert queued.cancel()
            gate.set()
            head.wait(10)
        assert queued.exception().retryable is False

    def test_cancel_retryable_flag_is_preserved(self):
        gate = threading.Event()
        with DevicePool(1) as pool:
            head = pool.submit_call(_blocker(gate), label="head")
            queued = pool.submit_call(lambda dev: None, label="victim")
            assert queued.cancel("rebalancing", retryable=True)
            gate.set()
            head.wait(10)
        assert queued.exception().retryable is True

    def test_cancel_running_job_returns_false(self):
        gate = threading.Event()
        started = threading.Event()

        def job(device):
            started.set()
            gate.wait(timeout=30)
            return 42

        with DevicePool(1) as pool:
            future = pool.submit_call(job, label="running")
            assert started.wait(10)
            assert future.cancel() is False
            gate.set()
            assert future.result(timeout=10) == 42
            assert not future.cancelled()

    def test_cancel_done_job_returns_false(self):
        with DevicePool(1) as pool:
            future = pool.submit_call(lambda dev: "done", label="quick")
            assert future.result(timeout=10) == "done"
            assert future.cancel() is False
            assert future.result() == "done"  # outcome unchanged


class TestCloseDrainFalse:
    def test_queued_jobs_are_cancelled_not_executed(self):
        gate = threading.Event()
        started = threading.Event()
        ran = []
        pool = DevicePool(1)
        head = pool.submit_call(_blocker(gate, started), label="head")
        # Wait until the worker has actually dequeued the blocker —
        # otherwise close(drain=False) can flush it along with the rest.
        assert started.wait(timeout=10)
        queued = [
            pool.submit_call(
                lambda dev, i=i: ran.append(i), label=f"queued{i}"
            )
            for i in range(3)
        ]

        closer = threading.Thread(target=pool.close, kwargs={"drain": False})
        closer.start()
        time.sleep(0.1)  # let close() mark the epochs before unblocking
        gate.set()
        closer.join(timeout=30)
        assert not closer.is_alive()

        assert head.result(timeout=10) == "unblocked"  # in-flight completes
        for future in queued:
            exc = future.exception(timeout=10)
            assert isinstance(exc, CancelledError)
            assert exc.retryable is True
        assert ran == []

    def test_drain_true_still_runs_everything(self):
        ran = []
        with DevicePool(1) as pool:
            for i in range(4):
                pool.submit_call(lambda dev, i=i: ran.append(i), label=f"j{i}")
        assert ran == [0, 1, 2, 3]


class TestCloseStuckWorker:
    def test_close_warns_with_the_stuck_job_label(self):
        gate = threading.Event()
        pool = DevicePool(1)
        pool.submit_call(_blocker(gate), label="wedged-kernel")
        time.sleep(0.05)  # ensure the worker has dequeued and started it
        with pytest.warns(RuntimeWarning, match="wedged-kernel"):
            pool.close(timeout=0.2)
        gate.set()  # let the daemon worker unwind

    def test_clean_close_does_not_warn(self):
        pool = DevicePool(2)
        pool.submit_call(lambda dev: None, label="quick").wait(10)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            pool.close()
