"""Data-parallel app execution: sharded results match single-device exactly.

The acceptance bar for the scheduler: for every one of the six paper
apps, ``run_sharded`` over an N-device pool produces the
*same checksum* as the single-device ``run_single`` — bit-identical
output, because sharding only partitions the problem axis and never
changes per-element arithmetic.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS, VersionLabel
from repro.errors import AppError
from repro.gpu import get_device
from repro.sched import DevicePool

pytestmark = [pytest.mark.sched, pytest.mark.timeout(300)]


@pytest.fixture(scope="module")
def pool():
    with DevicePool(3) as p:
        yield p


@pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda c: c.__name__.lower())
def test_sharded_checksum_matches_single_device(app_cls, pool):
    app = app_cls()
    params = app.functional_params()
    single = app.run_single(VersionLabel.OMPX, params, get_device(0))
    sharded = app.run_sharded(VersionLabel.OMPX, params, pool)
    assert sharded.checksum == single.checksum  # exact, not approx
    np.testing.assert_array_equal(sharded.output, single.output)
    assert app.verify(sharded, params)


def test_classic_omp_variant_cannot_be_sharded(pool):
    app = ALL_APPS[0]()
    with pytest.raises(AppError, match="cannot be sharded"):
        app.run_sharded(
            VersionLabel.OMP, app.functional_params(), pool
        )


def test_stencil_rejects_shards_thinner_than_the_radius():
    app = ALL_APPS[5]()
    params = dict(app.functional_params())
    params["n"] = 8               # 8 points over 4 devices: 2 < radius
    params["radius"] = 3
    params["iterations"] = 2
    with DevicePool(4) as pool:
        with pytest.raises(AppError, match="radius"):
            app.run_sharded(VersionLabel.OMPX, params, pool)
