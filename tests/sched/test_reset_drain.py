"""Regression: ``ompx_device_reset`` on a pooled device drains its queue.

Before the epoch mechanism, resetting a device that a pool worker was
serving raced the worker for the queue: jobs queued before the reset
could run against the torn-down context (stale allocator, cleared
streams) and fail nondeterministically.  Now the reset hook bumps the
device's epoch, every job queued under the old epoch resolves to a
*retryable* :class:`~repro.errors.CancelledError` instead of running,
and the in-flight job is allowed to finish before the teardown proceeds.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import CancelledError
from repro.gpu import LaunchConfig
from repro.gpu.launch import launch_kernel
from repro.ompx.host import ompx_device_reset
from repro.sched import DevicePool

pytestmark = [pytest.mark.sched, pytest.mark.timeout(60)]


def _fill(ctx, out, n):
    i = ctx.flat_thread_id
    view = ctx.deref(out, n, np.float64)
    if i < n:
        view[i] = float(i)


def test_reset_cancels_queued_jobs_deterministically():
    gate = threading.Event()
    ran = []
    with DevicePool(1) as pool:
        device = pool.devices[0]

        def blocker(dev):
            gate.wait(timeout=30)
            return "survived"

        head = pool.submit_call(blocker, label="in-flight")
        queued = [
            pool.submit_call(
                lambda dev, i=i: ran.append(i), label=f"stale{i}"
            )
            for i in range(3)
        ]

        # Release the in-flight job just after the reset starts waiting
        # for the worker to go idle.
        releaser = threading.Timer(0.2, gate.set)
        releaser.start()
        ompx_device_reset(device=device.ordinal)
        releaser.join()

        # The in-flight job was allowed to complete; everything queued
        # behind it was cancelled retryably, and none of it executed.
        assert head.result(timeout=10) == "survived"
        for future in queued:
            exc = future.exception(timeout=10)
            assert isinstance(exc, CancelledError)
            assert exc.retryable is True
            assert "reset" in str(exc)
        assert ran == []

        # The device is immediately usable again after the reset.
        after = pool.submit_call(lambda dev: dev.ordinal, label="after")
        assert after.result(timeout=10) == device.ordinal


def test_reset_from_the_worker_itself_does_not_deadlock():
    # A job calling ompx_device_reset on its *own* device must not wait
    # for its own worker to go idle (it never would); it still drains the
    # jobs queued behind it.
    with DevicePool(1) as pool:
        device = pool.devices[0]

        def self_reset(dev):
            time.sleep(0.05)  # let the stale job get queued behind us
            ompx_device_reset(device=dev.ordinal)
            return "reset-ok"

        head = pool.submit_call(self_reset, label="self-reset")
        stale = pool.submit_call(lambda dev: "should not run", label="stale")
        assert head.result(timeout=10) == "reset-ok"
        exc = stale.exception(timeout=10)
        assert isinstance(exc, CancelledError)
        assert exc.retryable is True


def test_jobs_submitted_after_the_reset_run_normally():
    with DevicePool(1) as pool:
        device = pool.devices[0]
        ompx_device_reset(device=device.ordinal)
        n = 8
        ptr = device.allocator.malloc(n * 8)
        pool.submit_call(
            lambda dev: launch_kernel(
                LaunchConfig.create(1, n), _fill, (ptr, n), dev
            ),
            device=0,
            label="post-reset-launch",
        ).result(timeout=10)
        out = np.zeros(n)
        device.allocator.memcpy_d2h(out, ptr)
        device.allocator.free(ptr)
        np.testing.assert_array_equal(out, np.arange(n, dtype=np.float64))
