"""Peer-to-peer transfers across the cuda / hip / ompx surfaces.

Covers the device-level peer-access state machine, the three
``*MemcpyPeer`` entry points, the ``cudaMemcpyDefault``-style direction
inference fix in ``ompx_memcpy``, and the interconnect cost model in
:mod:`repro.perf.transfer`.
"""

import numpy as np
import pytest

from repro import faults
from repro.errors import GpuError, MappingError
from repro.gpu.device import A100_SPEC, MI250_SPEC
from repro.perf.transfer import (
    INFINITY_FABRIC_PEER,
    NVLINK3,
    PCIE_P2P,
    peer_link_for,
    peer_transfer_seconds,
)
from repro.sched import DevicePool

pytestmark = [pytest.mark.sched, pytest.mark.timeout(60)]


@pytest.fixture
def pair():
    """Two pool devices (one NVIDIA, one AMD) with upload/download helpers."""
    with DevicePool(specs=[A100_SPEC, MI250_SPEC]) as pool:
        yield pool.devices[0], pool.devices[1]


def _upload(device, host):
    ptr = device.allocator.malloc(host.nbytes)
    device.allocator.memcpy_h2d(ptr, np.ascontiguousarray(host))
    return ptr


def _download(device, ptr, n):
    out = np.zeros(n, dtype=np.float64)
    device.allocator.memcpy_d2h(out, ptr)
    return out


class TestPeerAccessState:
    def test_enable_disable_round_trip(self, pair):
        a, b = pair
        assert a.can_access_peer(b) and b.can_access_peer(a)
        assert not a.has_peer_access(b)
        a.enable_peer_access(b)
        assert a.has_peer_access(b)
        assert not b.has_peer_access(a)       # directional, like CUDA
        a.disable_peer_access(b)
        assert not a.has_peer_access(b)

    def test_self_peer_access_is_rejected(self, pair):
        a, _ = pair
        assert not a.can_access_peer(a)
        with pytest.raises(GpuError, match="itself"):
            a.enable_peer_access(a)

    def test_double_enable_raises(self, pair):
        a, b = pair
        a.enable_peer_access(b)
        with pytest.raises(GpuError, match="already"):
            a.enable_peer_access(b)
        a.disable_peer_access(b)

    def test_disable_without_enable_raises(self, pair):
        a, b = pair
        with pytest.raises(GpuError, match="not"):
            a.disable_peer_access(b)


class TestMemcpyPeerApis:
    def test_cuda_memcpy_peer_moves_bytes(self, pair):
        from repro.cuda.runtime import cudaMemcpyPeer

        a, b = pair
        host = np.arange(16, dtype=np.float64)
        src = _upload(a, host)
        dst = b.allocator.malloc(host.nbytes)
        cudaMemcpyPeer(dst, b, src, a, host.nbytes)
        np.testing.assert_array_equal(_download(b, dst, 16), host)
        a.allocator.free(src)
        b.allocator.free(dst)

    def test_cuda_memcpy_peer_validates_ordinals(self, pair):
        from repro.cuda.runtime import cudaMemcpyPeer

        a, b = pair
        src = _upload(a, np.zeros(4))
        dst = b.allocator.malloc(32)
        # The classic porting bug: device arguments swapped.
        with pytest.raises(GpuError):
            cudaMemcpyPeer(dst, a, src, b, 32)
        a.allocator.free(src)
        b.allocator.free(dst)

    def test_hip_memcpy_peer_and_async(self, pair):
        from repro.hip import hipMemcpyPeer, hipMemcpyPeerAsync

        a, b = pair
        host = np.linspace(0.0, 1.0, 8)
        src = _upload(a, host)
        dst_sync = b.allocator.malloc(host.nbytes)
        dst_async = b.allocator.malloc(host.nbytes)
        hipMemcpyPeer(dst_sync, b, src, a, host.nbytes)
        stream = b.default_stream
        hipMemcpyPeerAsync(dst_async, b, src, a, host.nbytes, stream)
        stream.synchronize()
        np.testing.assert_array_equal(_download(b, dst_sync, 8), host)
        np.testing.assert_array_equal(_download(b, dst_async, 8), host)
        a.allocator.free(src)
        b.allocator.free(dst_sync)
        b.allocator.free(dst_async)

    def test_ompx_memcpy_peer_sync_and_stream(self, pair):
        from repro.ompx import ompx_memcpy_peer

        a, b = pair
        host = np.arange(8, dtype=np.float64) * 3.0
        src = _upload(a, host)
        dst = b.allocator.malloc(host.nbytes)
        ompx_memcpy_peer(dst, b, src, a, host.nbytes)
        np.testing.assert_array_equal(_download(b, dst, 8), host)
        # Stream form: completes after stream synchronize.
        dst2 = b.allocator.malloc(host.nbytes)
        stream = b.default_stream
        ompx_memcpy_peer(dst2, b, src, a, host.nbytes, stream=stream)
        stream.synchronize()
        np.testing.assert_array_equal(_download(b, dst2, 8), host)
        a.allocator.free(src)
        b.allocator.free(dst)
        b.allocator.free(dst2)

    def test_ompx_memcpy_peer_rejects_wrong_owner(self, pair):
        from repro.ompx import ompx_memcpy_peer

        a, b = pair
        src = _upload(a, np.zeros(4))
        dst = b.allocator.malloc(32)
        with pytest.raises(MappingError, match="belongs to device"):
            ompx_memcpy_peer(dst, a, src, b, 32)
        a.allocator.free(src)
        b.allocator.free(dst)


class TestOmpxMemcpyDirectionInference:
    """`ompx_memcpy` infers direction like ``cudaMemcpyDefault``."""

    def test_cross_device_pair_routes_through_peer_path(self, pair):
        from repro.ompx import ompx_memcpy
        from repro import trace

        a, b = pair
        host = np.arange(8, dtype=np.float64)
        src = _upload(a, host)
        dst = b.allocator.malloc(host.nbytes)
        with trace.tracing() as tracer:
            ompx_memcpy(dst, src, host.nbytes)
        np.testing.assert_array_equal(_download(b, dst, 8), host)
        p2p = [s for s in tracer.spans
               if s.args.get("direction") == "p2p"]
        assert p2p, "cross-device ompx_memcpy must ride the peer path"
        a.allocator.free(src)
        b.allocator.free(dst)

    def test_same_device_pair_stays_d2d(self, pair):
        from repro.ompx import ompx_memcpy

        a, _ = pair
        host = np.arange(8, dtype=np.float64)
        src = _upload(a, host)
        dst = a.allocator.malloc(host.nbytes)
        ompx_memcpy(dst, src, host.nbytes)
        np.testing.assert_array_equal(_download(a, dst, 8), host)
        a.allocator.free(src)
        a.allocator.free(dst)


class TestTransferModel:
    def test_link_selection_by_vendor(self):
        assert peer_link_for(A100_SPEC, A100_SPEC) is NVLINK3
        assert peer_link_for(MI250_SPEC, MI250_SPEC) is INFINITY_FABRIC_PEER
        assert peer_link_for(A100_SPEC, MI250_SPEC) is PCIE_P2P
        assert peer_link_for(A100_SPEC, A100_SPEC, enabled=False) is None

    def test_staged_copy_costs_more_than_direct(self):
        nbytes = 64 * 1024 * 1024
        direct = peer_transfer_seconds(nbytes, A100_SPEC, A100_SPEC, enabled=True)
        staged = peer_transfer_seconds(nbytes, A100_SPEC, A100_SPEC, enabled=False)
        assert staged > direct > 0

    def test_enabling_peer_access_changes_modeled_cost(self, pair):
        from repro import trace
        from repro.ompx import ompx_memcpy_peer

        a, b = pair
        src = _upload(a, np.zeros(1024))
        dst = b.allocator.malloc(8192)

        def modeled():
            with trace.tracing() as tracer:
                ompx_memcpy_peer(dst, b, src, a, 8192)
            (span,) = [s for s in tracer.spans if s.name == "ompx_memcpy_peer"]
            return span.args["path"], span.args["modeled_us"]

        staged_path, staged_s = modeled()
        b.enable_peer_access(a)
        direct_path, direct_s = modeled()
        b.disable_peer_access(a)
        assert staged_path == "staged" and direct_path == "direct"
        assert staged_s > direct_s
        a.allocator.free(src)
        b.allocator.free(dst)


class TestPeerFaults:
    def test_truncated_peer_copy(self, pair):
        from repro.ompx import ompx_memcpy_peer

        a, b = pair
        host = np.arange(8, dtype=np.float64) + 1.0
        src = _upload(a, host)
        dst = b.allocator.malloc(host.nbytes)
        b.allocator.memset(dst, 0, host.nbytes)
        with faults.inject("memcpy:truncate@1,bytes=16,direction=p2p"):
            ompx_memcpy_peer(dst, b, src, a, host.nbytes)
        out = _download(b, dst, 8)
        np.testing.assert_array_equal(out[:2], host[:2])
        assert (out[2:] == 0).all()
        a.allocator.free(src)
        b.allocator.free(dst)
