"""Stream / Event context managers and the positional-``stream=`` deprecation."""

import numpy as np
import pytest

from repro.errors import GpuError, LaunchError
from repro.gpu import LaunchConfig, get_device
from repro.gpu.stream import Event, Stream

pytestmark = [pytest.mark.sched, pytest.mark.timeout(60)]


class TestStreamContextManager:
    def test_exit_synchronizes(self, nvidia):
        ran = []
        with Stream(nvidia, name="cm-test") as s:
            s.enqueue(lambda: ran.append(1), label="probe")
        # The CM drained the queue: the op completed before exit returned.
        assert ran == [1]
        assert s.is_idle

    def test_exit_reraises_sticky_error(self, nvidia):
        def boom():
            raise GpuError("async failure")

        with pytest.raises(GpuError, match="queued work failed") as excinfo:
            with Stream(nvidia, name="cm-sticky") as s:
                s.enqueue(boom, label="boom")
        assert isinstance(excinfo.value.__cause__, GpuError)
        assert "async failure" in str(excinfo.value.__cause__)
        # Synchronizing at exit cleared the sticky slot; the stream is
        # reusable, like cudaStreamSynchronize after reporting.
        s.synchronize()

    def test_body_exception_is_not_masked(self, nvidia):
        def boom():
            raise GpuError("async failure")

        with pytest.raises(ValueError, match="host bug"):
            with Stream(nvidia, name="cm-mask") as s:
                s.enqueue(boom, label="boom")
                raise ValueError("host bug")
        # The sticky error is still there for the next sync point.
        with pytest.raises(GpuError, match="queued work failed"):
            s.synchronize()


class TestEventContextManager:
    def test_exit_waits_for_recorded_event(self, nvidia):
        ran = []
        s = Stream(nvidia, name="ev-cm")
        with Event("done") as done:
            s.enqueue(lambda: ran.append(1), label="probe")
            s.record_event(done)
        assert done.is_complete and ran == [1]

    def test_unrecorded_event_completes_trivially(self):
        with Event("fresh") as ev:
            pass
        assert not ev.is_complete  # never recorded; exit was a no-op

    def test_exit_reraises_recording_streams_sticky_error(self, nvidia):
        def boom():
            raise GpuError("event stream failure")

        s = Stream(nvidia, name="ev-sticky")
        with pytest.raises(GpuError, match="queued work failed"):
            with Event("after-boom") as ev:
                s.enqueue(boom, label="boom")
                s.record_event(ev)


class TestPositionalStreamRemoval:
    # The PR-4 DeprecationWarning shim completed its deprecation cycle:
    # positional stream/engine now raise LaunchError pointing at the
    # keyword form (see the README deprecation timeline).

    def test_positional_stream_raises(self, nvidia):
        with pytest.raises(LaunchError, match="keyword"):
            LaunchConfig.create(1, 32, 0, nvidia.default_stream)

    def test_positional_stream_and_engine_raise(self, nvidia):
        with pytest.raises(LaunchError, match="removed"):
            LaunchConfig.create(1, 32, 0, nvidia.default_stream, "scalar")

    def test_error_names_the_keyword_form(self, nvidia):
        with pytest.raises(LaunchError, match=r"stream=.*engine="):
            LaunchConfig.create(1, 32, 0, nvidia.default_stream)

    def test_keyword_form_is_silent(self, nvidia, recwarn):
        config = LaunchConfig.create(1, 32, stream=nvidia.default_stream)
        assert config.stream is nvidia.default_stream
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_mixing_legacy_and_keyword_raises(self, nvidia):
        with pytest.raises(LaunchError):
            LaunchConfig.create(1, 32, 0, nvidia.default_stream,
                                engine="scalar")

    def test_too_many_positionals_raise(self, nvidia):
        with pytest.raises(LaunchError, match="at most"):
            LaunchConfig.create(1, 32, 0, nvidia.default_stream, "scalar",
                                "extra")
