"""PoolProtocol: the structural contract both pool backends satisfy.

``isinstance(..., PoolProtocol)`` only proves the attributes exist
(runtime_checkable semantics); these tests pin the *signature-level*
agreement — same parameter names, kinds and defaults — so code written
against the protocol (``repro.apps.run``, the ``repro.serve``
dispatchers) can swap backends without keyword errors.
"""

import inspect

import numpy as np
import pytest

from repro.gpu import LaunchConfig
from repro.resilience import ResilientPool
from repro.sched import DevicePool, PoolProtocol

pytestmark = [pytest.mark.sched]


def fill_kernel(ctx, out, n):
    i = ctx.global_id_x
    view = ctx.deref(out, n, np.float64)
    if i < n:
        view[i] = float(i) + 1.0


class TestStructuralConformance:
    def test_device_pool_satisfies_the_protocol(self):
        with DevicePool(1) as pool:
            assert isinstance(pool, PoolProtocol)

    def test_resilient_pool_satisfies_the_protocol(self):
        with DevicePool(1) as pool:
            with ResilientPool(pool) as rpool:
                assert isinstance(rpool, PoolProtocol)

    def test_arbitrary_objects_do_not(self):
        assert not isinstance(object(), PoolProtocol)


def _params(cls, name):
    return inspect.signature(getattr(cls, name)).parameters


class TestSignatureCompatibility:
    @pytest.mark.parametrize("method", ["submit", "submit_call", "close"])
    def test_parameter_names_and_kinds_agree(self, method):
        plain = _params(DevicePool, method)
        resilient = _params(ResilientPool, method)
        assert list(plain) == list(resilient), (
            f"{method}: DevicePool{tuple(plain)} vs "
            f"ResilientPool{tuple(resilient)}"
        )
        for name in plain:
            assert plain[name].kind == resilient[name].kind, (
                f"{method}({name}): parameter kind differs"
            )

    def test_submit_call_has_the_shard_flag_on_both(self):
        for cls in (DevicePool, ResilientPool):
            params = _params(cls, "submit_call")
            assert "shard" in params
            assert params["shard"].default is False

    def test_close_keywords_agree(self):
        for cls in (DevicePool, ResilientPool):
            params = _params(cls, "close")
            assert "drain" in params and params["drain"].default is True
            assert "timeout" in params


class TestInterchangeability:
    def _run_on(self, backend):
        n = 16
        device = backend.devices[0]
        out = np.zeros(n, dtype=np.float64)
        ptr = device.allocator.malloc(out.nbytes)
        try:
            future = backend.submit(
                fill_kernel, LaunchConfig.create(1, 32), ptr, n,
                label="fill",
            )
            future.result(timeout=30)
            fence = backend.submit_call(
                lambda dev: dev.allocator.memcpy_d2h(out, ptr),
                device=0, label="readback", shard=False,
            )
            fence.result(timeout=30)
        finally:
            device.allocator.free(ptr)
        return out

    def test_same_driver_code_runs_on_both_backends(self):
        expected = np.arange(16, dtype=np.float64) + 1.0
        with DevicePool(1) as pool:
            np.testing.assert_array_equal(self._run_on(pool), expected)
        with DevicePool(1) as pool:
            with ResilientPool(pool) as rpool:
                np.testing.assert_array_equal(
                    self._run_on(rpool), expected
                )
