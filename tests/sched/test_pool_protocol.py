"""PoolProtocol: the structural contract all three pool backends satisfy.

``isinstance(..., PoolProtocol)`` only proves the attributes exist
(runtime_checkable semantics); these tests pin the *signature-level*
agreement — same parameter names, kinds and defaults — so code written
against the protocol (``repro.apps.run``, the ``repro.serve``
dispatchers) can swap backends without keyword errors.  The
:class:`~repro.cluster.ClusterPool` joined the contract in 1.2, so the
parametrizations cover it alongside :class:`DevicePool` and
:class:`ResilientPool`.
"""

import inspect

import numpy as np
import pytest

from repro.cluster import ClusterPool
from repro.gpu import LaunchConfig
from repro.resilience import ResilientPool
from repro.sched import DevicePool, PoolProtocol

pytestmark = [pytest.mark.sched]


def fill_kernel(ctx, out, n):
    i = ctx.global_id_x
    view = ctx.deref(out, n, np.float64)
    if i < n:
        view[i] = float(i) + 1.0


def spec_name_probe(device):
    """Picklable submit_call payload: reports which spec served it."""
    return device.spec.name


class TestStructuralConformance:
    def test_device_pool_satisfies_the_protocol(self):
        with DevicePool(1) as pool:
            assert isinstance(pool, PoolProtocol)

    def test_resilient_pool_satisfies_the_protocol(self):
        with DevicePool(1) as pool:
            with ResilientPool(pool) as rpool:
                assert isinstance(rpool, PoolProtocol)

    @pytest.mark.cluster
    def test_cluster_pool_satisfies_the_protocol(self):
        with ClusterPool(1) as cpool:
            assert isinstance(cpool, PoolProtocol)

    def test_arbitrary_objects_do_not(self):
        assert not isinstance(object(), PoolProtocol)


def _params(cls, name):
    return inspect.signature(getattr(cls, name)).parameters


class TestSignatureCompatibility:
    @pytest.mark.parametrize("other", [ResilientPool, ClusterPool])
    @pytest.mark.parametrize(
        "method", ["submit", "submit_call", "close", "distinct_specs"]
    )
    def test_parameter_names_and_kinds_agree(self, method, other):
        plain = _params(DevicePool, method)
        theirs = _params(other, method)
        assert list(plain) == list(theirs), (
            f"{method}: DevicePool{tuple(plain)} vs "
            f"{other.__name__}{tuple(theirs)}"
        )
        for name in plain:
            assert plain[name].kind == theirs[name].kind, (
                f"{method}({name}): parameter kind differs"
            )

    def test_submit_call_has_the_shard_flag_on_all(self):
        for cls in (DevicePool, ResilientPool, ClusterPool):
            params = _params(cls, "submit_call")
            assert "shard" in params
            assert params["shard"].default is False

    def test_close_keywords_agree(self):
        for cls in (DevicePool, ResilientPool, ClusterPool):
            params = _params(cls, "close")
            assert "drain" in params and params["drain"].default is True
            assert "timeout" in params


class TestInterchangeability:
    def _run_on(self, backend):
        n = 16
        device = backend.devices[0]
        out = np.zeros(n, dtype=np.float64)
        ptr = device.allocator.malloc(out.nbytes)
        try:
            future = backend.submit(
                fill_kernel, LaunchConfig.create(1, 32), ptr, n,
                label="fill",
            )
            future.result(timeout=30)
            fence = backend.submit_call(
                lambda dev: dev.allocator.memcpy_d2h(out, ptr),
                device=0, label="readback", shard=False,
            )
            fence.result(timeout=30)
        finally:
            device.allocator.free(ptr)
        return out

    def test_same_driver_code_runs_on_both_backends(self):
        expected = np.arange(16, dtype=np.float64) + 1.0
        with DevicePool(1) as pool:
            np.testing.assert_array_equal(self._run_on(pool), expected)
        with DevicePool(1) as pool:
            with ResilientPool(pool) as rpool:
                np.testing.assert_array_equal(
                    self._run_on(rpool), expected
                )

    @pytest.mark.cluster
    def test_portable_driver_code_runs_on_all_three_backends(self):
        # The cluster backend cannot ship raw DevicePointer arguments
        # across the process boundary, so the cross-backend driver here
        # sticks to the portable subset: picklable submit_call payloads,
        # ``shard=`` accounting, ``device=`` pinning and distinct_specs.
        def drive(backend):
            names = []
            for index in range(len(backend)):
                fut = backend.submit_call(
                    spec_name_probe, device=index,
                    label=f"probe:{index}", shard=True,
                )
                names.append(fut.result(timeout=30))
            backend.synchronize()
            distinct = {d.spec.name for d in backend.distinct_specs()}
            return sorted(names), distinct

        with DevicePool(2) as pool:
            in_process = drive(pool)
        with ClusterPool(2) as cpool:
            clustered = drive(cpool)
        assert clustered == in_process
