#!/usr/bin/env python3
"""The vendor-library wrapper layer (§3.6): one ompxblas call site, two
vendor backends.

The same ``ompxblas_dgemm`` call runs against the NVIDIA device (where the
wrapper dispatches to the cuBLAS stand-in) and the AMD device (rocBLAS
stand-in).  The call site never changes — only the offload target does,
which is exactly the portability §3.6 promises.

Run:  python examples/vendor_blas.py
"""

import numpy as np

from repro import ompx
from repro.gpu import get_device

M, K, N = 64, 48, 32


def gemm_on(device) -> np.ndarray:
    """C = 1.5*A@B - 0.5*C0 via the wrapper layer, column-major like BLAS."""
    rng = np.random.default_rng(17)
    a = rng.random((M, K))
    b = rng.random((K, N))
    c0 = rng.random((M, N))

    handle = ompx.ompxblas_create(device)
    print(f"  {device.spec.name}: dispatching to {handle.backend_name}")

    alloc = device.allocator
    d_a = alloc.malloc(a.nbytes)
    d_b = alloc.malloc(b.nbytes)
    d_c = alloc.malloc(c0.nbytes)
    # BLAS is column-major: upload the transposed row-major buffers.
    alloc.memcpy_h2d(d_a, np.asfortranarray(a).ravel(order="K"))
    alloc.memcpy_h2d(d_b, np.asfortranarray(b).ravel(order="K"))
    alloc.memcpy_h2d(d_c, np.asfortranarray(c0).ravel(order="K"))

    ompx.ompxblas_dgemm(
        handle, ompx.OMPXBLAS_OP_N, ompx.OMPXBLAS_OP_N,
        M, N, K, 1.5, d_a, M, d_b, K, -0.5, d_c, M,
    )

    out = np.zeros(M * N)
    ompx.ompx_memcpy(out, d_c, out.nbytes, device)
    ompx.ompxblas_destroy(handle)
    for ptr in (d_a, d_b, d_c):
        alloc.free(ptr)

    result = out.reshape(N, M).T  # back from column-major
    expected = 1.5 * (a @ b) - 0.5 * c0
    assert np.allclose(result, expected), "GEMM mismatch"
    return result


def main() -> None:
    print("ompxblas_dgemm through the §3.6 wrapper layer:")
    nvidia = gemm_on(get_device(0))
    amd = gemm_on(get_device(1))
    assert np.allclose(nvidia, amd)
    print(f"  both backends agree; C[0, :4] = {nvidia[0, :4].round(4)}")

    # Level-1 calls route the same way.
    dev = get_device(1)
    handle = ompx.ompxblas_create(dev)
    n = 1000
    x = np.arange(n, dtype=np.float64)
    d_x = ompx.ompx_malloc(x.nbytes, dev)
    ompx.ompx_memcpy(d_x, x, x.nbytes, dev)
    nrm = ompx.ompxblas_dnrm2(handle, n, d_x, 1)
    assert np.isclose(nrm, np.linalg.norm(x))
    print(f"  ompxblas_dnrm2 on {handle.backend_name}: {nrm:.3f}")
    print(f"  backend call counts: {handle.backend.calls}")


if __name__ == "__main__":
    main()
