#!/usr/bin/env python3
"""The vendor-library wrapper layer (§3.6): one ompxblas call site, three
vendor backends, a pluggable registry, streams, and expression templates.

The same ``ompxblas_dgemm`` call runs against the NVIDIA device (cuBLAS
stand-in), the AMD device (rocBLAS stand-in) and the Intel XeHPC preset
(oneMKL stand-in).  The call site never changes — only the offload target
does, which is exactly the portability §3.6 promises.  On top of the
plain wrappers this walks through:

* the backend *registry* (``register_backend``) a fourth vendor would
  plug into,
* *stream-bound* handles (``ompxblas_set_stream``, the
  ``cublasSetStream`` idiom) ordering BLAS calls with kernel launches,
* *strided-batched* GEMM, and the Grid-style lattice expression
  templates that lower ``c.assign(a * b)`` onto one such call.

Run:  python examples/vendor_blas.py
"""

import numpy as np

from repro import ompx
from repro.gpu import Stream, get_device
from repro.ompx.lattice import LatticeField
from repro.ompx.vendor import BlasBackend, register_backend, registered_backends

M, K, N = 64, 48, 32


def gemm_on(device) -> np.ndarray:
    """C = 1.5*A@B - 0.5*C0 via the wrapper layer, column-major like BLAS."""
    rng = np.random.default_rng(17)
    a = rng.random((M, K))
    b = rng.random((K, N))
    c0 = rng.random((M, N))

    handle = ompx.ompxblas_create(device)
    print(f"  {device.spec.name}: dispatching to {handle.backend_name}")

    alloc = device.allocator
    d_a = alloc.malloc(a.nbytes)
    d_b = alloc.malloc(b.nbytes)
    d_c = alloc.malloc(c0.nbytes)
    # BLAS is column-major: upload the transposed row-major buffers.
    alloc.memcpy_h2d(d_a, np.asfortranarray(a).ravel(order="K"))
    alloc.memcpy_h2d(d_b, np.asfortranarray(b).ravel(order="K"))
    alloc.memcpy_h2d(d_c, np.asfortranarray(c0).ravel(order="K"))

    ompx.ompxblas_dgemm(
        handle, ompx.OMPXBLAS_OP_N, ompx.OMPXBLAS_OP_N,
        M, N, K, 1.5, d_a, M, d_b, K, -0.5, d_c, M,
    )

    out = np.zeros(M * N)
    ompx.ompx_memcpy(out, d_c, out.nbytes, device)
    ompx.ompxblas_destroy(handle)
    for ptr in (d_a, d_b, d_c):
        alloc.free(ptr)

    result = out.reshape(N, M).T  # back from column-major
    expected = 1.5 * (a @ b) - 0.5 * c0
    assert np.allclose(result, expected), "GEMM mismatch"
    return result


def demo_registry() -> None:
    """A fourth vendor plugs in with one call — no wrapper changes."""
    print("backend registry (what a new vendor implements):")
    print(f"  registered: { {v: cls.name for v, cls in registered_backends().items()} }")

    class VerboseMkl(BlasBackend):
        name = "oneMKL-verbose"
        library_efficiency = 0.82

    saved = registered_backends()
    register_backend("intel", VerboseMkl)
    try:
        handle = ompx.ompxblas_create(get_device(3))
        print(f"  after register_backend('intel', ...): {handle.backend_name}")
        ompx.ompxblas_destroy(handle)
    finally:
        for vendor, cls in saved.items():
            register_backend(vendor, cls)


def demo_streams() -> None:
    """cublasSetStream: BLAS calls order with work on the same stream."""
    device = get_device(0)
    handle = ompx.ompxblas_create(device)
    stream = Stream(device, name="blas")
    ompx.ompxblas_set_stream(handle, stream)

    n = 4096
    x = np.full(n, 2.0)
    d_x = ompx.ompx_malloc(x.nbytes, device)
    ompx.ompx_memcpy(d_x, x, x.nbytes, device)
    ompx.ompxblas_dscal(handle, n, 3.0, d_x, 1)   # enqueued, not yet run
    nrm = ompx.ompxblas_dnrm2(handle, n, d_x, 1)  # scalar: drains stream
    assert np.isclose(nrm, np.linalg.norm(np.full(n, 6.0)))
    print(f"  dscal+dnrm2 on stream {stream.name!r}: ||x|| = {nrm:.3f}")
    ompx.ompxblas_destroy(handle)     # drains the bound stream first
    device.allocator.free(d_x)


def demo_lattice_expression_templates() -> None:
    """Grid-style: c.assign(a * b) fuses into ONE strided-batched ZGEMM."""
    device = get_device(0)
    handle = ompx.ompxblas_create(device)
    rng = np.random.default_rng(41)
    sites = 256

    def su3_field(count):
        return (rng.standard_normal((count, 3, 3))
                + 1j * rng.standard_normal((count, 3, 3)))

    h_a, h_link = su3_field(sites), su3_field(1)
    a = LatticeField.from_host(handle, h_a)
    link = LatticeField.from_host(handle, h_link)   # broadcast: stride 0
    c = LatticeField(handle, sites)

    c.assign(a * link)                 # one zgemm_strided_batched, batch=256
    assert handle.backend.calls == {"gemm_strided_batched": 1}
    assert np.array_equal(c.to_host(), _hand_site_loop(h_a, h_link[0]))
    print(f"  {sites} SU(3) site products -> "
          f"{handle.backend.calls['gemm_strided_batched']} library call "
          f"(bit-identical to the site loop)")

    for f in (a, link, c):
        f.free()
    ompx.ompxblas_destroy(handle)


def _hand_site_loop(h_a: np.ndarray, link: np.ndarray) -> np.ndarray:
    """The MILC-style per-site triple loop the ET layer replaces."""
    out = np.zeros_like(h_a)
    for s in range(h_a.shape[0]):
        for row in range(3):
            for col in range(3):
                acc = 0.0 + 0.0j
                for k in range(3):
                    acc = acc + h_a[s, row, k] * link[k, col]
                out[s, row, col] = acc
    return out


def main() -> None:
    print("ompxblas_dgemm through the §3.6 wrapper layer:")
    nvidia = gemm_on(get_device(0))
    amd = gemm_on(get_device(1))
    intel = gemm_on(get_device(3))    # XeHPC preset -> oneMKL stand-in
    assert np.allclose(nvidia, amd) and np.allclose(nvidia, intel)
    print(f"  all three backends agree; C[0, :4] = {nvidia[0, :4].round(4)}")

    demo_registry()

    print("stream-bound handles (cublasSetStream):")
    demo_streams()

    print("lattice expression templates over zgemm_strided_batched:")
    demo_lattice_expression_templates()

    # Level-1 calls route the same way.
    dev = get_device(1)
    handle = ompx.ompxblas_create(dev)
    n = 1000
    x = np.arange(n, dtype=np.float64)
    d_x = ompx.ompx_malloc(x.nbytes, dev)
    ompx.ompx_memcpy(d_x, x, x.nbytes, dev)
    nrm = ompx.ompxblas_dnrm2(handle, n, d_x, 1)
    assert np.isclose(nrm, np.linalg.norm(x))
    print(f"  ompxblas_dnrm2 on {handle.backend_name}: {nrm:.3f}")
    print(f"  backend call counts: {handle.backend.calls}")


if __name__ == "__main__":
    main()
