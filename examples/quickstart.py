#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 CUDA program and its ompx port, side
by side, on the simulated A100.

The CUDA half is a line-for-line rendering of Figure 1 (host allocation,
``cudaMalloc``/``cudaMemcpy``, a shared-memory kernel, chevron launch,
``cudaDeviceSynchronize``).  The ompx half is the same program after the
paper's "text replacement" port: ``ompx_malloc``/``ompx_memcpy`` (§3.4),
``target teams ompx_bare`` (§3.1), ``ompx_*`` device APIs (§3.3).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import cuda, ompx
from repro.gpu import get_device

N = 4096
BSIZE = 128


def use(a, b):
    """The __device__ helper from Figure 1."""
    return a + b


# --------------------------------------------------------------------------
# The CUDA version (paper Figure 1)
# --------------------------------------------------------------------------

@cuda.kernel
def kernel_cuda(t, a, b, n):
    shared = t.shared("shared", BSIZE, np.int32)
    tid = t.threadIdx.x
    if tid == 0:
        shared[:] = 41  # "initialize shared"
    t.syncthreads()
    idx = t.blockIdx.x * t.blockDim.x + tid
    if idx < n:
        av = t.array(a, n, np.int32)
        bv = t.array(b, n, np.int32)
        bv[idx] = use(av[idx], shared[tid])


def run_cuda() -> np.ndarray:
    cuda.cudaSetDevice(0)  # the NVIDIA A100 preset
    size = N * 4

    h_a = np.arange(N, dtype=np.int32)
    h_b = np.zeros(N, dtype=np.int32)

    d_a = cuda.cudaMalloc(size)
    d_b = cuda.cudaMalloc(size)
    cuda.cudaMemcpy(d_a, h_a, size, cuda.cudaMemcpyHostToDevice)

    gsize = (N + BSIZE - 1) // BSIZE
    cuda.launch(kernel_cuda, gsize, BSIZE, (d_a, d_b, N), device=get_device(0))

    cuda.cudaMemcpy(h_b, d_b, size, cuda.cudaMemcpyDeviceToHost)
    cuda.cudaDeviceSynchronize()

    cuda.cudaFree(d_a)
    cuda.cudaFree(d_b)
    return h_b


# --------------------------------------------------------------------------
# The ompx port — same structure, renamed spellings
# --------------------------------------------------------------------------

@ompx.bare_kernel
def kernel_ompx(x, a, b, n):
    shared = x.groupprivate("shared", BSIZE, np.int32)
    tid = x.thread_id_x()
    if tid == 0:
        shared[:] = 41
    x.sync_thread_block()
    idx = x.block_id_x() * x.block_dim_x() + tid
    if idx < n:
        av = x.array(a, n, np.int32)
        bv = x.array(b, n, np.int32)
        bv[idx] = use(av[idx], shared[tid])


def run_ompx() -> np.ndarray:
    dev = get_device(0)
    size = N * 4

    h_a = np.arange(N, dtype=np.int32)
    h_b = np.zeros(N, dtype=np.int32)

    d_a = ompx.ompx_malloc(size, dev)
    d_b = ompx.ompx_malloc(size, dev)
    ompx.ompx_memcpy(d_a, h_a, size, dev)   # direction inferred from types

    gsize = (N + BSIZE - 1) // BSIZE
    # #pragma omp target teams ompx_bare num_teams(gsize) thread_limit(BSIZE)
    ompx.target_teams_bare(dev, gsize, BSIZE, kernel_ompx, (d_a, d_b, N))

    ompx.ompx_memcpy(h_b, d_b, size, dev)

    ompx.ompx_free(d_a, dev)
    ompx.ompx_free(d_b, dev)
    return h_b


def main() -> None:
    expected = np.arange(N, dtype=np.int32) + 41
    out_cuda = run_cuda()
    out_ompx = run_ompx()
    assert np.array_equal(out_cuda, expected), "CUDA version produced wrong output"
    assert np.array_equal(out_ompx, expected), "ompx version produced wrong output"
    assert np.array_equal(out_cuda, out_ompx)
    print(f"CUDA and ompx versions agree on all {N} elements.")
    print(f"  first five: {out_cuda[:5]}")
    print("The two kernels differ only in spellings — that is the paper's point.")


if __name__ == "__main__":
    main()
