#!/usr/bin/env python3
"""Multi-dimensional grid/block launches (§3.2) — a tiled 2-D transpose.

CUDA expresses 2-D geometry as ``dim3 grid(gx, gy)``; the paper extends
``num_teams``/``thread_limit`` to take the same lists.  This example runs
a shared-memory tiled matrix transpose with a genuinely two-dimensional
launch — something classic OpenMP target offloading cannot express
(§2.3) — and shows the "excess dimensions are disregarded" clamping rule.

Run:  python examples/multidim_launch.py
"""

import numpy as np

from repro import ompx
from repro.gpu import get_device

TILE = 16
ROWS, COLS = 96, 64


@ompx.bare_kernel
def transpose_tiled(x, d_in, d_out, rows, cols):
    tile = x.groupprivate("tile", (TILE, TILE), np.float64)
    col = x.block_id_x() * TILE + x.thread_id_x()
    row = x.block_id_y() * TILE + x.thread_id_y()
    src = x.array(d_in, (rows, cols), np.float64)
    if row < rows and col < cols:
        tile[x.thread_id_y(), x.thread_id_x()] = src[row, col]
    x.sync_thread_block()
    # transposed coordinates: blocks swap roles on the way out
    out_col = x.block_id_y() * TILE + x.thread_id_x()
    out_row = x.block_id_x() * TILE + x.thread_id_y()
    dst = x.array(d_out, (cols, rows), np.float64)
    if out_row < cols and out_col < rows:
        dst[out_row, out_col] = tile[x.thread_id_x(), x.thread_id_y()]


def main() -> None:
    dev = get_device(0)
    rng = np.random.default_rng(5)
    h_in = rng.random((ROWS, COLS))

    alloc = dev.allocator
    d_in = alloc.malloc(h_in.nbytes)
    d_out = alloc.malloc(h_in.nbytes)
    alloc.memcpy_h2d(d_in, h_in)

    grid = ((COLS + TILE - 1) // TILE, (ROWS + TILE - 1) // TILE)   # (x, y)
    block = (TILE, TILE)
    # num_teams(gx, gy) thread_limit(TILE, TILE) — the §3.2 extension.
    report = ompx.target_teams_bare(dev, grid, block, transpose_tiled,
                                    (d_in, d_out, ROWS, COLS))
    print(f"launched {report.grid} teams x {report.block} threads "
          f"(grid={grid}, block={block})")

    out = np.zeros((COLS, ROWS))
    alloc.memcpy_d2h(out, d_out)
    assert np.array_equal(out, h_in.T), "transpose mismatch"
    print(f"transpose of a {ROWS}x{COLS} matrix verified.")

    # Excess dimensions are disregarded (clamped), not rejected: a z-block
    # dimension beyond the device's 64-deep limit is folded down.
    report = ompx.target_teams_bare(
        dev, (2, 2, 1), (4, 4, 128), lambda x: None, ()
    )
    print(f"over-deep thread_limit(4, 4, 128) clamped to "
          f"{report.block} threads per team (device z-limit is "
          f"{dev.spec.max_block_dim.z}).")

    for ptr in (d_in, d_out):
        alloc.free(ptr)


if __name__ == "__main__":
    main()
