#!/usr/bin/env python3
"""Grid-wide dot product with block collectives and an occupancy query.

Builds the classic two-level reduction out of the paper's §3.3.2
primitives: each block reduces its partial dot product with shuffle trees
and shared memory (``repro.ompx.block_reduce``), thread 0 of each block
atomically accumulates into the result, and the launch geometry comes
from the occupancy query API — the CUDA tuning workflow, spelled ompx.

Run:  python examples/block_reduction.py
"""

import numpy as np

from repro import ompx
from repro.gpu import get_device

N = 1 << 14
BLOCK = 128


@ompx.bare_kernel
def dot_kernel(x, d_a, d_b, d_out, n):
    i = x.global_thread_id_x()
    a = x.array(d_a, n, np.float64)
    b = x.array(d_b, n, np.float64)
    partial = a[i] * b[i] if i < n else 0.0
    total = ompx.block_reduce(x, partial)
    if x.thread_id_x() == 0:
        x.atomic_add(x.array(d_out, 1, np.float64), 0, total)


def main() -> None:
    dev = get_device(0)
    rng = np.random.default_rng(21)
    a = rng.random(N)
    b = rng.random(N)

    # How many of these blocks fit an SM?  (cudaOccupancy..., ompx-spelled.)
    resident = ompx.ompx_occupancy_max_active_blocks(dot_kernel, BLOCK, device=dev)
    print(f"occupancy query: {resident} blocks of {BLOCK} threads per SM "
          f"({resident * BLOCK} threads resident)")

    d_a = ompx.ompx_malloc(a.nbytes, dev)
    d_b = ompx.ompx_malloc(b.nbytes, dev)
    d_out = ompx.ompx_malloc(8, dev)
    ompx.ompx_memcpy(d_a, a, a.nbytes, dev)
    ompx.ompx_memcpy(d_b, b, b.nbytes, dev)

    grid = (N + BLOCK - 1) // BLOCK
    ompx.target_teams_bare(dev, grid, BLOCK, dot_kernel, (d_a, d_b, d_out, N))

    result = np.zeros(1)
    ompx.ompx_memcpy(result, d_out, 8, dev)
    expected = float(a @ b)
    assert np.isclose(result[0], expected), (result[0], expected)
    print(f"dot({N} elements) = {result[0]:.6f}  (numpy: {expected:.6f})")

    for ptr in (d_a, d_b, d_out):
        ompx.ompx_free(ptr, dev)
    print("two-level reduction verified against numpy.")


if __name__ == "__main__":
    main()
