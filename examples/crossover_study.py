#!/usr/bin/env python3
"""Beyond the paper's operating points: parameter sweeps with the model.

The paper evaluates each benchmark at one problem size.  An analytic
reproduction can ask the neighbouring questions for free:

1. Does the ompx advantage on XSBench survive across lookup counts?
2. Adam is launch-overhead-bound — how small does the parameter vector
   have to be before the ompx_bare savings (no runtime init) become
   visible against classic omp *without* the thread-limit bug?
3. Stencil-1D's omp collapse is a throughput ratio: confirm it is flat
   across three orders of magnitude of problem size.

Run:  python examples/crossover_study.py
"""

from repro.apps import Adam, Stencil1D, XSBench, VersionLabel
from repro.harness import sweep
from repro.perf import AMD_SYSTEM, NVIDIA_SYSTEM


def xsbench_lookup_sweep() -> None:
    print("=" * 70)
    app = XSBench()
    for system in (NVIDIA_SYSTEM, AMD_SYSTEM):
        result = sweep(app, system, "lookups",
                       [1_000_000, 4_000_000, 17_000_000, 68_000_000])
        print(result.render())
        ratios = result.ratio(system.native_language, "ompx")
        print(f"  native/ompx speedup of ompx: "
              f"{[f'{r:.3f}x' for r in ratios]}")
        assert all(r > 1.0 for r in ratios), "ompx advantage should persist"
        print()


def adam_size_sweep() -> None:
    print("=" * 70)
    app = Adam()
    result = sweep(app, NVIDIA_SYSTEM, "n", [1_000, 10_000, 100_000, 1_000_000])
    print(result.render())
    ratios = result.ratio("omp", "cuda")
    print(f"  omp slowdown vs cuda across sizes: {[f'{r:.1f}x' for r in ratios]}")
    print("  (the thread-limit bug costs ~8x at every size: it is a "
          "parallelism ratio, not a fixed overhead)")
    print()


def stencil_size_sweep() -> None:
    print("=" * 70)
    app = Stencil1D()
    result = sweep(app, NVIDIA_SYSTEM, "n", [1 << 20, 1 << 24, 134217728])
    print(result.render())
    ratios = result.ratio("omp", "cuda")
    print(f"  omp collapse across sizes: {[f'{r:.0f}x' for r in ratios]}")
    print()


def main() -> None:
    xsbench_lookup_sweep()
    adam_size_sweep()
    stencil_size_sweep()
    print("sweeps complete — the paper's relationships hold across scales.")


if __name__ == "__main__":
    main()
