#!/usr/bin/env python3
"""Run a scaled-down XSBench across all four Figure 8 versions.

Executes the Monte Carlo cross-section lookup functionally on the virtual
GPU in each programming model (ompx bare, classic OpenMP worksharing, and
the CUDA/HIP natives), verifies every variant against the NumPy golden
reference, then prices the paper-scale run with the performance model —
i.e. regenerates the Figure 8a/8g cells from Python.

Run:  python examples/montecarlo_lookup.py
"""

from repro.apps import VersionLabel, XSBench
from repro.gpu import get_device
from repro.harness import format_seconds
from repro.perf import AMD_SYSTEM, NVIDIA_SYSTEM

def main() -> None:
    app = XSBench()
    params = app.functional_params()

    print(f"functional run: {params['lookups']} lookups, "
          f"{params['n_isotopes']} isotopes, {params['n_gridpoints']} gridpoints")
    for device_ordinal, device_name in ((0, "A100"), (1, "MI250")):
        device = get_device(device_ordinal)
        for variant in app.functional_variants:
            result = app.run_single(variant, params, device)
            ok = app.verify(result, params)
            status = "ok" if ok else "MISMATCH"
            print(f"  [{device_name}] {variant:<12} checksum={result.checksum:14.4f}  {status}")
            assert ok

    print("\npaper-scale estimates (Figure 8a / 8g):")
    paper = app.paper_params()
    for system in (NVIDIA_SYSTEM, AMD_SYSTEM):
        row = []
        for label in VersionLabel.ALL:
            display = VersionLabel.display(label, system)
            if label == VersionLabel.OMP:
                row.append(f"{display}=excluded")  # invalid checksum in the paper's run
                continue
            tb = app.estimate(label, system, paper)
            row.append(f"{display}={format_seconds(app.reported_seconds(tb))}")
        print(f"  {system.name}: " + ", ".join(row))


if __name__ == "__main__":
    main()
