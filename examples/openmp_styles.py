#!/usr/bin/env python3
"""The paper's Figures 2, 3 and 4 side by side: three ways to write the
same GPU computation in OpenMP.

* **Figure 2** — the *typical* OpenMP port: directives do the work
  distribution (``target teams`` + ``parallel for``) and the map clauses
  move the data.
* **Figure 3** — the *SIMT-style* region classic OpenMP permits: explicit
  thread indices, ``groupprivate`` shared storage, a ``barrier`` — but
  still carrying the full device runtime and only 1-D launches.
* **Figure 4** — the paper's ``ompx_bare`` region: the same SIMT body in
  bare-metal mode, CUDA-equivalent APIs, no runtime.

All three produce identical results; the codegen report shows what each
style costs (runtime init, execution mode) — the §3.1 motivation in code.

Run:  python examples/openmp_styles.py
"""

import numpy as np

from repro import ompx, openmp
from repro.gpu import get_device

N = 2048
BSIZE = 128
GSIZE = (N + BSIZE - 1) // BSIZE


def use(a, b):
    """Figure 1/2's helper."""
    return a + b


def figure2_worksharing(device, a, b):
    """#pragma omp target teams ... map(to: a) map(from: b) + parallel for."""
    def vbody(indices, acc):
        shared_seed = 1.0  # the "shared" init of Figure 2, scalarized
        acc.mapped(b)[indices] = acc.mapped(a)[indices] + shared_seed

    return openmp.target_teams_distribute_parallel_for(
        device, N, vector_body=vbody,
        num_teams=GSIZE, thread_limit=BSIZE,
        maps=[(a, "to"), (b, "from")],
    )


def figure3_simt_region(device, a, b):
    """target teams + parallel with explicit indices (classic OpenMP)."""
    def region(omp, acc):
        shared = omp.groupprivate("shared", BSIZE, np.float64)
        thread_id = omp.omp_get_thread_num()
        if thread_id == 0:
            shared[:] = 1.0
        omp.barrier()
        block_id = omp.omp_get_team_num()
        block_dim = omp.omp_get_team_size()
        i = block_id * block_dim + thread_id
        if i < N:
            acc.mapped(b)[i] = use(acc.mapped(a)[i], shared[thread_id])

    return openmp.target_teams_parallel(
        device, GSIZE, BSIZE, region, maps=[(a, "to"), (b, "from")],
    )


def figure4_bare_region(device, a, b):
    """#pragma omp target teams ompx_bare — the paper's extension."""
    @ompx.bare_kernel
    def kernel(x, acc):
        shared = x.groupprivate("shared", BSIZE, np.float64)
        tid = x.thread_id_x()
        if tid == 0:
            shared[:] = 1.0
        x.sync_thread_block()
        i = x.block_id_x() * x.block_dim_x() + tid
        if i < N:
            acc.mapped(b)[i] = use(acc.mapped(a)[i], shared[tid])

    return ompx.target_teams_bare(
        device, GSIZE, BSIZE, kernel, maps=[(a, "to"), (b, "from")],
    )


def main() -> None:
    device = get_device(0)
    rng = np.random.default_rng(33)
    source = rng.random(N)
    expected = source + 1.0

    for label, runner in (
        ("Figure 2 (worksharing)", figure2_worksharing),
        ("Figure 3 (SIMT-style) ", figure3_simt_region),
        ("Figure 4 (ompx_bare)  ", figure4_bare_region),
    ):
        a = source.copy()
        b = np.zeros(N)
        report = runner(device, a, b)
        assert np.allclose(b, expected), label
        cg = report.codegen
        print(f"{label}: ok | mode={cg.mode:8s} runtime_init={cg.runtime_init} "
              f"state_machine={cg.state_machine}")

    print("\nAll three styles compute the same result; only the bare region")
    print("sheds the device runtime — that is what §3.1 is for.")


if __name__ == "__main__":
    main()
