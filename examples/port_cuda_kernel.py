#!/usr/bin/env python3
"""Mechanical CUDA -> ompx porting with ``repro.port`` (§6 future work).

Demonstrates both translators:

1. ``port_kernel`` rewrites a Python-DSL CUDA kernel's AST into the ompx
   dialect and returns a runnable bare kernel — we run original and port
   and compare bit-for-bit.
2. ``port_c_source`` rewrites actual CUDA C source text (the paper's
   Figure 1 kernel) into OpenMP + ompx source text.

Run:  python examples/port_cuda_kernel.py
"""

import numpy as np

from repro import cuda, ompx
from repro.gpu import get_device
from repro.port import port_c_source, port_kernel, port_kernel_source

N = 2048
BLOCK = 128


@cuda.kernel
def saxpy_warp_sum(t, xs, ys, out, n, alpha):
    """SAXPY followed by a warp-level reduction of each warp's results."""
    i = t.blockIdx.x * t.blockDim.x + t.threadIdx.x
    xv = t.array(xs, n, np.float64)
    yv = t.array(ys, n, np.float64)
    value = alpha * xv[i] + yv[i] if i < n else 0.0
    # tree reduction with shuffles — the §2.7 synchronization gap
    offset = t.warpSize // 2
    while offset > 0:
        value += t.shfl_down_sync(cuda.FULL_MASK, value, offset)
        offset //= 2
    if t.laneid == 0 and i < n:
        ov = t.array(out, (n + t.warpSize - 1) // t.warpSize, np.float64)
        ov[i // t.warpSize] = value


def run(kernel_obj, is_ompx: bool) -> np.ndarray:
    dev = get_device(0)
    rng = np.random.default_rng(3)
    h_x = rng.random(N)
    h_y = rng.random(N)
    warps = (N + dev.spec.warp_size - 1) // dev.spec.warp_size

    alloc = dev.allocator
    d_x = alloc.malloc(h_x.nbytes)
    d_y = alloc.malloc(h_y.nbytes)
    d_o = alloc.malloc(warps * 8)
    alloc.memcpy_h2d(d_x, h_x)
    alloc.memcpy_h2d(d_y, h_y)

    grid = (N + BLOCK - 1) // BLOCK
    if is_ompx:
        ompx.target_teams_bare(dev, grid, BLOCK, kernel_obj, (d_x, d_y, d_o, N, 2.5))
    else:
        cuda.launch(kernel_obj, grid, BLOCK, (d_x, d_y, d_o, N, 2.5), device=dev)
        dev.synchronize()

    out = np.zeros(warps)
    alloc.memcpy_d2h(out, d_o)
    for ptr in (d_x, d_y, d_o):
        alloc.free(ptr)
    return out


FIGURE1_CUDA_SOURCE = """
__device__ int use(int &a, int &b) { return a + b; }

__global__ void kernel(int *a, int *b, int n) {
  __shared__ int shared[128];
  int tid = threadIdx.x;
  if (tid == 0) {
    /* initialize shared */
  }
  __syncthreads();
  int idx = blockIdx.x * blockDim.x + tid;
  if (idx < n)
    b[idx] = use(a[idx], shared[tid]);
}

int main(int argc, char *argv[]) {
  int *d_a, *d_b;
  cudaMalloc(&d_a, size);
  cudaMalloc(&d_b, size);
  cudaMemcpy(d_a, h_a, size, cudaMemcpyHostToDevice);
  int bsize = 128;
  int gsize = (n + bsize - 1) / bsize;
  kernel<<<gsize, bsize>>>(d_a, d_b, n);
  cudaMemcpy(h_b, d_b, size, cudaMemcpyDeviceToHost);
  cudaDeviceSynchronize();
  cudaFree(d_a);
  cudaFree(d_b);
  return 0;
}
"""


def main() -> None:
    # --- 1. DSL round trip ---------------------------------------------------
    ported = port_kernel(saxpy_warp_sum)
    print("=== ported kernel source (ompx DSL) ===")
    print(port_kernel_source(saxpy_warp_sum))

    out_cuda = run(saxpy_warp_sum, is_ompx=False)
    out_ompx = run(ported, is_ompx=True)
    assert np.array_equal(out_cuda, out_ompx), "port changed the results!"
    print(f"original and ported kernels agree on all {len(out_cuda)} warp sums\n")

    # --- 2. C source rewriting -------------------------------------------------
    print("=== Figure 1's CUDA C, rewritten to OpenMP + ompx ===")
    print(port_c_source(FIGURE1_CUDA_SOURCE))


if __name__ == "__main__":
    main()
