#!/usr/bin/env python3
"""Asynchronous target regions on streams via ``depend(interopobj:)`` (§3.5).

Reproduces the paper's Figure 5 flow, then extends it into a two-stream
pipeline mixed with a stock ``in``/``out`` host-task dependence — the
"integrates with host OpenMP tasking" claim from the introduction:

* two interop objects = two streams; work on each stream is ordered,
  the streams themselves overlap;
* a finalize kernel carries a stock ``in`` dependence on both buffers,
  so it waits for *both* streams' producers regardless of stream order;
* ``taskwait depend(interopobj: obj)`` synchronizes one stream, exactly
  like ``cudaStreamSynchronize``.

Run:  python examples/streams_interop.py
"""

import numpy as np

from repro import ompx, openmp
from repro.gpu import get_device

N = 1 << 12
BLOCK = 128
GRID = (N + BLOCK - 1) // BLOCK


@ompx.bare_kernel(sync_free=True)
def fill(x, buf, n, value):
    i = x.global_thread_id_x()
    if i < n:
        x.array(buf, n, np.float64)[i] = value


@ompx.bare_kernel(sync_free=True)
def double_in_place(x, buf, n):
    i = x.global_thread_id_x()
    if i < n:
        x.array(buf, n, np.float64)[i] *= 2.0


@ompx.bare_kernel(sync_free=True)
def combine(x, a, b, out, n):
    i = x.global_thread_id_x()
    if i < n:
        av = x.array(a, n, np.float64)
        bv = x.array(b, n, np.float64)
        x.array(out, n, np.float64)[i] = av[i] + bv[i]


def main() -> None:
    dev = get_device(0)
    alloc = dev.allocator
    d_a = alloc.malloc(N * 8)
    d_b = alloc.malloc(N * 8)
    d_out = alloc.malloc(N * 8)

    # #pragma omp interop init(targetsync: obj_a) / (targetsync: obj_b)
    obj_a = openmp.interop_init(targetsync=True, device=dev)
    obj_b = openmp.interop_init(targetsync=True, device=dev)
    runtime = openmp.default_task_runtime()

    # Stream A: fill then double (ordered by the stream, Figure 5 style).
    ompx.target_teams_bare(dev, GRID, BLOCK, fill, (d_a, N, 10.0),
                           nowait=True, depend=[("interopobj", obj_a)])
    ompx.target_teams_bare(dev, GRID, BLOCK, double_in_place, (d_a, N),
                           nowait=True,
                           depend=[("interopobj", obj_a), ("out", d_a)])

    # Stream B runs concurrently with stream A.
    ompx.target_teams_bare(dev, GRID, BLOCK, fill, (d_b, N, 1.5),
                           nowait=True,
                           depend=[("interopobj", obj_b), ("out", d_b)])

    # The combine kernel depends on BOTH buffers through stock `in`
    # dependences — host tasking orders it after whichever stream
    # finishes last.
    task = ompx.target_teams_bare(
        dev, GRID, BLOCK, combine, (d_a, d_b, d_out, N),
        nowait=True,
        depend=[("in", d_a), ("in", d_b), ("interopobj", obj_a)],
    )

    # #pragma omp taskwait depend(interopobj: obj_a)  — stream sync.
    runtime.taskwait([("interopobj", obj_a)])
    task.wait()

    result = np.zeros(N)
    alloc.memcpy_d2h(result, d_out)
    expected = 10.0 * 2.0 + 1.5
    assert np.all(result == expected), result[:8]
    print(f"pipeline result verified: all {N} elements == {expected}")

    openmp.interop_destroy(obj_a)
    openmp.interop_destroy(obj_b)
    for ptr in (d_a, d_b, d_out):
        alloc.free(ptr)
    print("interop objects destroyed; streams drained.")


if __name__ == "__main__":
    main()
