"""Figures 8c / 8i: SU3 on both systems.

Paper shape: ompx ~9% behind Clang CUDA on the A100 (two extra registers,
29 KB-vs-3.9 KB device binary); ompx ~28% ahead of HIP on the MI250
(native scratch spills); ompx consistently ahead of classic omp.
"""

from conftest import figure8_row

from repro.apps import SU3, VersionLabel
from repro.gpu import get_device
from repro.perf import NVIDIA_SYSTEM


def test_fig8c_fig8i_estimates(benchmark):
    app = SU3()
    cells = benchmark(lambda: figure8_row(app))
    nv, amd = cells["NVIDIA"], cells["AMD"]
    # A100: ompx lags Clang CUDA by roughly 9%
    assert 1.02 < nv["ompx"] / nv["cuda"] < 1.25
    # MI250: ompx leads HIP by roughly 28%
    assert 1.10 < amd["hip"] / amd["ompx"] < 1.45
    # both: ompx beats omp
    assert nv["ompx"] < nv["omp"]
    assert amd["ompx"] < amd["omp"]


def test_fig8_su3_binary_size_artifact(benchmark):
    """§4.2.3's PTX observation: 29 KB ompx binary vs 3.9 KB CUDA."""
    app = SU3()
    params = app.paper_params()

    def compile_both():
        return (
            app.compiled_for(VersionLabel.OMPX, NVIDIA_SYSTEM, params),
            app.compiled_for(VersionLabel.NATIVE_LLVM, NVIDIA_SYSTEM, params),
        )

    ompx_ck, cuda_ck = benchmark(compile_both)
    assert 20_000 < ompx_ck.binary_bytes < 40_000     # paper: 29 KB
    assert cuda_ck.binary_bytes < 8_000               # paper: 3.9 KB
    assert ompx_ck.registers - cuda_ck.registers == 2  # paper: 26 vs 24


def test_fig8_su3_functional_kernel(benchmark):
    app = SU3()
    params = app.functional_params()
    device = get_device(0)
    result = benchmark(lambda: app.run_single(VersionLabel.OMPX, params, device))
    assert app.verify(result, params)
