"""Benchmark-harness fixtures.

Each ``test_fig8_*`` module regenerates one benchmark's Figure 8 row pair
(NVIDIA + AMD): it prints the same series the paper plots, asserts the
paper's qualitative claims for that benchmark, and uses pytest-benchmark
to time (a) the performance-model evaluation and (b) a reduced functional
simulation of the kernel — so ``pytest benchmarks/ --benchmark-only``
doubles as a performance regression suite for the simulator itself.
"""

from __future__ import annotations

import pytest

from repro.apps.common import BenchmarkApp, VersionLabel
from repro.gpu import get_device
from repro.harness.report import format_seconds, render_table
from repro.openmp.data import data_environment
from repro.perf.timing import AMD_SYSTEM, NVIDIA_SYSTEM


@pytest.fixture(autouse=True)
def clean_data_environments():
    yield
    for ordinal in (0, 1):
        data_environment(get_device(ordinal)).reset()


def figure8_row(app: BenchmarkApp, *, excluded_omp: bool = False) -> dict:
    """Compute and print one app's Figure 8 pair of cells."""
    params = app.paper_params()
    cells = {}
    for system in (NVIDIA_SYSTEM, AMD_SYSTEM):
        row = {}
        for label in VersionLabel.ALL:
            display = VersionLabel.display(label, system)
            if excluded_omp and label == VersionLabel.OMP:
                row[display] = None
                continue
            row[display] = app.reported_seconds(app.estimate(label, system, params))
        cells[system.name] = row
    unit = "per iteration" if app.reports == "per_launch" else "total"
    for system_name, row in cells.items():
        rows = [
            [label, format_seconds(v) if v is not None else "excluded (invalid checksum)"]
            for label, v in row.items()
        ]
        print()
        print(render_table(["version", f"time ({unit})"], rows,
                           title=f"{app.name} on {system_name} (paper Figure 8)"))
    return cells
