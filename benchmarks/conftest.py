"""Benchmark-harness fixtures.

Each ``test_fig8_*`` module regenerates one benchmark's Figure 8 row pair
(NVIDIA + AMD): it prints the same series the paper plots, asserts the
paper's qualitative claims for that benchmark, and uses pytest-benchmark
to time (a) the performance-model evaluation and (b) a reduced functional
simulation of the kernel — so ``pytest benchmarks/ --benchmark-only``
doubles as a performance regression suite for the simulator itself.

Snapshot artifacts: run with ``--bench-json DIR`` and every metric a
test pushed through the :func:`bench_record` fixture is written to
``DIR/BENCH_<rev>.json`` (``<rev>`` = short git revision, ``local``
outside a checkout) at session end — one file per revision, so future
PRs have a perf trajectory to diff against.
"""

from __future__ import annotations

import json
import os
import subprocess

import pytest

from repro.apps.common import BenchmarkApp, VersionLabel
from repro.gpu import get_device
from repro.harness.report import format_seconds, render_table
from repro.openmp.data import data_environment
from repro.perf.timing import AMD_SYSTEM, NVIDIA_SYSTEM

#: name -> {metric: value} records accumulated by bench_record this run.
_BENCH_RECORDS: dict = {}


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="DIR",
        help="write accumulated benchmark metrics to DIR/BENCH_<rev>.json "
             "at session end (throughput, overhead percentages, "
             "tuned-vs-untuned speedups)",
    )


@pytest.fixture
def bench_record():
    """Record named metrics into the ``--bench-json`` snapshot.

    ``bench_record("tune/xsbench", speedup=1.8, cold_search_s=0.4)``
    merges the keyword metrics under the given record name; repeated
    calls for one name accumulate.  Without ``--bench-json`` the records
    are still collected but simply never written.
    """

    def record(name: str, **metrics) -> None:
        _BENCH_RECORDS.setdefault(str(name), {}).update(
            {k: float(v) for k, v in metrics.items()}
        )

    return record


def _git_revision() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    except OSError:
        pass
    return "local"


def pytest_sessionfinish(session, exitstatus):
    target = session.config.getoption("--bench-json", default=None)
    if not target or not _BENCH_RECORDS:
        return
    os.makedirs(target, exist_ok=True)
    rev = _git_revision()
    path = os.path.join(target, f"BENCH_{rev}.json")
    payload = {"revision": rev, "metrics": dict(sorted(_BENCH_RECORDS.items()))}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    tr = session.config.pluginmanager.get_plugin("terminalreporter")
    if tr is not None:
        tr.write_line(f"benchmark snapshot written to {path}")


@pytest.fixture(autouse=True)
def clean_data_environments():
    yield
    for ordinal in (0, 1):
        data_environment(get_device(ordinal)).reset()


def figure8_row(app: BenchmarkApp, *, excluded_omp: bool = False) -> dict:
    """Compute and print one app's Figure 8 pair of cells."""
    params = app.paper_params()
    cells = {}
    for system in (NVIDIA_SYSTEM, AMD_SYSTEM):
        row = {}
        for label in VersionLabel.ALL:
            display = VersionLabel.display(label, system)
            if excluded_omp and label == VersionLabel.OMP:
                row[display] = None
                continue
            row[display] = app.reported_seconds(app.estimate(label, system, params))
        cells[system.name] = row
    unit = "per iteration" if app.reports == "per_launch" else "total"
    for system_name, row in cells.items():
        rows = [
            [label, format_seconds(v) if v is not None else "excluded (invalid checksum)"]
            for label, v in row.items()
        ]
        print()
        print(render_table(["version", f"time ({unit})"], rows,
                           title=f"{app.name} on {system_name} (paper Figure 8)"))
    return cells
