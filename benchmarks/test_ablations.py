"""Ablations: turn each modelled mechanism off and measure its share.

The paper attributes each Figure 8 anomaly to one mechanism; these
ablations run the model with a mechanism disabled and check that the
anomaly disappears — the model-level equivalent of the paper's profiling
narrative.
"""

import numpy as np
import pytest

from repro.apps import Adam, RSBench, Stencil1D, VersionLabel
from repro.compiler.compile import compile_kernel
from repro.openmp.codegen import RegionTraits, lower_region
from repro.perf import Footprint, NVIDIA_SYSTEM, estimate_time
from repro.perf.overheads import launch_overhead_seconds, throughput_scale


def omp_body(indices, acc):  # a stand-in region body for compilation
    pass


class TestHeapToSharedAblation:
    """§4.2.2: without heap-to-shared, the omp RSBench would spill like CUDA."""

    def _estimate(self, optimize: bool) -> float:
        app = RSBench()
        params = app.paper_params()
        traits = app.omp_region_traits(params)
        codegen = lower_region(traits, optimize_heap_to_shared=optimize)
        ck = compile_kernel(
            omp_body, NVIDIA_SYSTEM.gpu, language="omp", region_traits=traits
        )
        # Re-price with the ablated codegen by swapping the footprint the
        # same way footprint_ex does.
        fp = app.footprint(params, VersionLabel.OMP)
        if optimize:
            fp = Footprint(**{**fp.__dict__, "shared_bytes": fp.shared_bytes
                              + params["lookups"] * 2048.0 * 0.25})
        else:
            fp = fp.with_extra_global_bytes(params["lookups"] * 2048.0 * 0.25)
        teams, block = app.launch_geometry(params)
        return estimate_time(ck, fp, block_threads=block, teams=teams).total_s

    def test_optimization_is_the_advantage(self, benchmark):
        app = RSBench()
        params = app.paper_params()
        cuda_s = app.reported_seconds(
            app.estimate(VersionLabel.NATIVE_LLVM, NVIDIA_SYSTEM, params)
        )
        with_opt = self._estimate(optimize=True)
        without = benchmark(lambda: self._estimate(optimize=False))
        print(f"\nheap-to-shared ON: {with_opt:.3f} s, OFF: {without:.3f} s, "
              f"cuda: {cuda_s:.3f} s")
        # §4.2.2's claim is omp-beats-CUDA; with the optimization off, the
        # scratch goes back to global memory and the edge over CUDA is gone.
        assert with_opt < cuda_s
        assert without >= cuda_s * 0.97
        assert without > with_opt

    def test_codegen_flag_controls_it(self, benchmark):
        def lower_both():
            traits = RegionTraits(escaping_local_bytes=2048)
            return (
                lower_region(traits, optimize_heap_to_shared=True),
                lower_region(traits, optimize_heap_to_shared=False),
            )

        on, off = benchmark(lower_both)
        assert on.heap_to_shared_bytes == 2048 and on.globalized_heap_bytes == 0
        assert off.heap_to_shared_bytes == 0 and off.globalized_heap_bytes == 2048


class TestBareModeAblation:
    """§3.1's motivation: what ompx_bare deletes, per launch and per kernel."""

    def test_runtime_init_share(self, benchmark):
        def overheads():
            bare = lower_region(RegionTraits(style="bare"))
            spmd = lower_region(RegionTraits(spmd_amenable=True))
            generic = lower_region(RegionTraits(spmd_amenable=False))
            return [
                launch_overhead_seconds(cg, NVIDIA_SYSTEM.gpu)
                for cg in (bare, spmd, generic)
            ]

        bare_s, spmd_s, generic_s = benchmark(overheads)
        print(f"\nlaunch overhead: bare {bare_s*1e6:.2f} us, "
              f"spmd {spmd_s*1e6:.2f} us, generic {generic_s*1e6:.2f} us")
        assert bare_s < spmd_s < generic_s

    def test_bare_mode_matters_most_for_tiny_kernels(self, benchmark):
        """Adam-like kernels (microseconds) feel runtime init; stencil-like
        kernels (milliseconds) do not — the crossover the §3.1 design targets."""
        def delta():
            bare = lower_region(RegionTraits(style="bare"))
            generic = lower_region(RegionTraits(spmd_amenable=False))
            return (launch_overhead_seconds(generic, NVIDIA_SYSTEM.gpu)
                    - launch_overhead_seconds(bare, NVIDIA_SYSTEM.gpu))

        overhead_delta = benchmark(delta)
        adam_kernel_s = 2e-6
        stencil_kernel_s = 1.4e-3
        assert overhead_delta / adam_kernel_s > 1.0       # dominates Adam
        assert overhead_delta / stencil_kernel_s < 0.01   # noise for Stencil


class TestStateMachineAblation:
    """§4.2.6: the collapse scales with warps per block."""

    def test_penalty_scales_with_block(self, benchmark):
        def sweep_blocks():
            scales = {}
            for block in (32, 64, 128, 256, 512):
                generic_sm = lower_region(
                    RegionTraits(spmd_amenable=False, state_machine_rewritable=False,
                                 requested_thread_limit=block)
                )
                scales[block] = throughput_scale(
                    generic_sm, requested_block_threads=block, spec=NVIDIA_SYSTEM.gpu
                )
            return scales

        scales = benchmark(sweep_blocks)
        for block, scale in scales.items():
            assert scale == pytest.approx(1 / max(1, block // 32))

    def test_rewriting_removes_the_penalty(self, benchmark):
        def both():
            kept = lower_region(RegionTraits(spmd_amenable=False,
                                             state_machine_rewritable=False))
            rewritten = lower_region(RegionTraits(spmd_amenable=False,
                                                  state_machine_rewritable=True))
            return (
                throughput_scale(kept, requested_block_threads=256, spec=NVIDIA_SYSTEM.gpu),
                throughput_scale(rewritten, requested_block_threads=256, spec=NVIDIA_SYSTEM.gpu),
            )

        kept_scale, rewritten_scale = benchmark(both)
        assert kept_scale < 0.2
        assert rewritten_scale == 1.0


class TestThreadLimitBugAblation:
    """§4.2.5: fixing the bug recovers Adam's 8x."""

    def test_fixed_compiler_recovers_performance(self, benchmark):
        app = Adam()
        params = app.paper_params()

        def estimate(bugged: bool) -> float:
            traits = RegionTraits(
                style="worksharing", spmd_amenable=True,
                requested_thread_limit=params["block"],
                thread_limit_bug=bugged,
            )
            ck = compile_kernel(omp_body, NVIDIA_SYSTEM.gpu, language="omp",
                                region_traits=traits)
            teams, block = app.launch_geometry(params)
            return estimate_time(
                ck, app.footprint(params), block_threads=block, teams=teams,
                launches=app.launches(params),
            ).total_s

        bugged = estimate(True)
        fixed = benchmark(lambda: estimate(False))
        print(f"\nAdam omp: bugged {bugged*1e3:.3f} ms, fixed {fixed*1e3:.3f} ms")
        assert 4.0 < bugged / fixed < 12.0


class TestProblemSizeSweep:
    """Where does omp's stencil collapse kick in?  Everywhere — the penalty
    is a throughput ratio, not a fixed cost — but launch overheads also
    matter at tiny sizes.  The sweep regenerates the trend."""

    def test_stencil_ratio_stable_across_sizes(self, benchmark):
        app = Stencil1D()

        def sweep():
            ratios = []
            for n in (1 << 20, 1 << 24, 134217728):
                params = {**app.paper_params(), "n": n}
                omp = app.reported_seconds(app.estimate(VersionLabel.OMP, NVIDIA_SYSTEM, params))
                native = app.reported_seconds(
                    app.estimate(VersionLabel.NATIVE_LLVM, NVIDIA_SYSTEM, params))
                ratios.append(omp / native)
            return ratios

        ratios = benchmark(sweep)
        print(f"\nomp/native stencil ratios across sizes: {np.round(ratios, 1)}")
        assert all(r > 10 for r in ratios)
