"""Disabled fault hooks and memcheck must not slow down launches.

The robustness subsystems make the same zero-cost-when-disabled claim as
tracing: with no fault plan injected and no sanitizer active, every hook
is a single module-global read plus an ``is None`` test.  Same
methodology as ``test_trace_overhead.py``: launch a tiny kernel many
times with the instrumentation disabled and enabled, and assert the
disabled path stays within noise of (never above) the enabled path.
"""

from __future__ import annotations

import time

import pytest

from repro import faults
from repro.gpu import LaunchConfig, get_device, launch_kernel

LAUNCHES = 200
WARMUP = 20


def _noop(ctx):
    pass


# Pin the cheap map engine so the measurement is launch overhead, not
# engine execution.
_noop.sync_free = True
_noop.vectorize = False


def _time_launches(nvidia, n: int) -> float:
    cfg = LaunchConfig.create(1, 32)
    start = time.perf_counter()
    for _ in range(n):
        launch_kernel(cfg, _noop, (), nvidia)
    return time.perf_counter() - start


@pytest.mark.slow
@pytest.mark.faults
def test_disabled_fault_hooks_add_no_launch_overhead():
    nvidia = get_device(0)
    _time_launches(nvidia, WARMUP)  # warm caches/plan memo before timing

    assert faults.active_plan() is None
    assert faults.get_memcheck() is None
    disabled_s = _time_launches(nvidia, LAUNCHES)

    # Enabled: a live (never-firing) plan plus the sanitizer, so every
    # launch pays rule matching and every load/store pays bounds checks.
    with faults.inject("launch:kernel_fault,kernel=never-matches"):
        with faults.memcheck():
            enabled_s = _time_launches(nvidia, LAUNCHES)

    # The disabled path does strictly less work than the enabled path, so
    # it must be no slower (modulo scheduler noise; 1.5x + 2ms of slack
    # keeps this stable on loaded CI machines).
    assert disabled_s <= enabled_s * 1.5 + 2e-3, (
        f"disabled fault hooks cost {disabled_s:.4f}s for {LAUNCHES} "
        f"launches vs {enabled_s:.4f}s enabled — the disabled path is not "
        f"zero-cost"
    )
    per_launch_us = disabled_s / LAUNCHES * 1e6
    print(f"\ndisabled: {per_launch_us:.1f} us/launch, "
          f"enabled: {enabled_s / LAUNCHES * 1e6:.1f} us/launch")
