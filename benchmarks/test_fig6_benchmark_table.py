"""Figure 6: the benchmark table (name, description, command line)."""

from repro.apps import ALL_APPS
from repro.harness import figure6, render_figure6


def test_fig6_table_regenerates(benchmark):
    rows = benchmark(figure6)
    assert [r["Name"] for r in rows] == [a.name for a in ALL_APPS]
    by_name = {r["Name"]: r for r in rows}
    assert by_name["XSBench"]["Command Line"] == "-m event"
    assert by_name["RSBench"]["Command Line"] == "-m event"
    assert by_name["SU3"]["Command Line"] == "-i 1000 -l 32 -t 128 -v 3 -w 1"
    assert by_name["AIDW"]["Command Line"] == "100 0 100"
    assert by_name["Adam"]["Command Line"] == "10000 200 100"
    assert by_name["Stencil 1D"]["Command Line"] == "134217728 1000"
    print()
    print(render_figure6())


def test_fig6_every_command_line_parses(benchmark):
    def parse_all():
        return [cls.parse_args(cls.command_line.split()) for cls in ALL_APPS]

    parsed = benchmark(parse_all)
    assert len(parsed) == 6
