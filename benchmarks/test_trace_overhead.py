"""Disabled tracing must not slow down kernel launches.

The trace subsystem's zero-cost claim: with no tracer enabled, every
instrumentation hook is a single module-global read plus an ``is None``
test.  This benchmark launches a tiny kernel many times with tracing
disabled and enabled and asserts the disabled path is not measurably
slower than launching was before the subsystem existed — i.e. the
disabled path must stay within noise of (and never above) the enabled
path, which pays for real span bookkeeping.
"""

from __future__ import annotations

import time

import pytest

import repro.trace as trace
from repro.gpu import LaunchConfig, get_device, launch_kernel

LAUNCHES = 200
WARMUP = 20


def _noop(ctx):
    pass


# Pin the cheap map engine so the measurement is launch overhead, not
# engine execution.
_noop.sync_free = True
_noop.vectorize = False


def _time_launches(nvidia, n: int) -> float:
    cfg = LaunchConfig.create(1, 32)
    start = time.perf_counter()
    for _ in range(n):
        launch_kernel(cfg, _noop, (), nvidia)
    return time.perf_counter() - start


@pytest.mark.slow
def test_disabled_tracing_adds_no_launch_overhead():
    nvidia = get_device(0)
    trace.disable()
    _time_launches(nvidia, WARMUP)  # warm caches/plan memo before timing

    assert trace.get_tracer() is None
    disabled_s = _time_launches(nvidia, LAUNCHES)

    tracer = trace.enable()
    try:
        enabled_s = _time_launches(nvidia, LAUNCHES)
    finally:
        trace.disable()

    # Sanity: the enabled run really did record every launch.
    kernel_spans = [s for s in tracer.spans if s.cat == "kernel"]
    assert len(kernel_spans) == LAUNCHES
    assert tracer.counters["launches"] == LAUNCHES

    # The disabled path does strictly less work than the enabled path, so
    # it must be no slower (modulo scheduler noise; 1.5x + 2ms of slack
    # keeps this stable on loaded CI machines).
    assert disabled_s <= enabled_s * 1.5 + 2e-3, (
        f"disabled tracing cost {disabled_s:.4f}s for {LAUNCHES} launches "
        f"vs {enabled_s:.4f}s enabled — the disabled path is not zero-cost"
    )
    per_launch_us = disabled_s / LAUNCHES * 1e6
    print(f"\ndisabled: {per_launch_us:.1f} us/launch, "
          f"enabled: {enabled_s / LAUNCHES * 1e6:.1f} us/launch")
