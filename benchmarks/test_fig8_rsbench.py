"""Figures 8b / 8h: RSBench on both systems.

Paper shape: ompx beats the LLVM-compiled native on both systems, and the
classic omp version beats CUDA on the A100 (heap-to-shared moves the 2 KB
per-thread scratch into shared memory that the CUDA build spills).
"""

from conftest import figure8_row

from repro.apps import RSBench, VersionLabel
from repro.gpu import get_device


def test_fig8b_fig8h_estimates(benchmark):
    app = RSBench()
    cells = benchmark(lambda: figure8_row(app))
    # ompx exceeds native-LLVM on both systems
    assert cells["NVIDIA"]["ompx"] < cells["NVIDIA"]["cuda"]
    assert cells["AMD"]["ompx"] < cells["AMD"]["hip"]
    # the interesting one: omp outperforms CUDA on the A100...
    assert cells["NVIDIA"]["omp"] < cells["NVIDIA"]["cuda"]
    # ...but has no such advantage on the MI250 (no spill to rescue)
    assert cells["AMD"]["omp"] >= cells["AMD"]["hip"] * 0.85


def test_fig8_rsbench_heap_to_shared_mechanism(benchmark):
    """The §4.2.2 profiling detail: the omp build carries 2 KB of shared."""
    from repro.perf import NVIDIA_SYSTEM

    app = RSBench()
    params = app.paper_params()

    def compile_omp():
        return app.compiled_for(VersionLabel.OMP, NVIDIA_SYSTEM, params)

    ck = benchmark(compile_omp)
    assert ck.codegen.heap_to_shared_bytes == 2048
    assert ck.codegen.globalized_heap_bytes == 0


def test_fig8_rsbench_functional_kernel(benchmark):
    app = RSBench()
    params = app.functional_params()
    device = get_device(0)
    result = benchmark(lambda: app.run_single(VersionLabel.OMPX, params, device))
    assert app.verify(result, params)
