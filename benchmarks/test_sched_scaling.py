"""Modeled multi-device scaling curves (the acceptance plot for repro.sched).

Two claims, one per acceptance criterion:

* the *modeled* multi-device time beats single-device for XSBench (an
  embarrassingly parallel lookup sweep) and for Stencil-1D (halo traffic
  included) on both systems;
* a *functional* sharded run under the tracer produces one trace track
  per pool device, and the Perfetto export names those tracks.
"""

import json

import pytest

from repro import trace
from repro.apps import ALL_APPS, VersionLabel
from repro.apps.xsbench import XSBench
from repro.gpu.device import A100_SPEC, MI250_SPEC
from repro.harness.report import format_seconds
from repro.perf.timing import AMD_SYSTEM, NVIDIA_SYSTEM
from repro.sched import DevicePool, estimate_scaling

pytestmark = [pytest.mark.slow, pytest.mark.sched]

DEVICE_COUNTS = (1, 2, 4, 8)


def _scaling_curve(app, system, spec, *, peer_bytes=0, peer_transfers=0):
    params = app.paper_params()
    tb = app.estimate(VersionLabel.OMPX, system, params)
    single = app.reported_seconds(tb)
    curve = {}
    for n in DEVICE_COUNTS:
        est = estimate_scaling(
            single, n, spec,
            peer_bytes=peer_bytes, peer_transfers=peer_transfers,
        )
        curve[n] = est
    return single, curve


@pytest.mark.parametrize(
    "system,spec",
    [(NVIDIA_SYSTEM, A100_SPEC), (AMD_SYSTEM, MI250_SPEC)],
    ids=["nvidia", "amd"],
)
def test_xsbench_modeled_scaling_beats_single_device(system, spec):
    app = XSBench()
    single, curve = _scaling_curve(app, system, spec)
    print(f"\nXSBench ompx scaling on {system.name}:")
    for n, est in curve.items():
        print(f"  {n} device(s): {format_seconds(est.multi_seconds)}  "
              f"(speedup {est.speedup:.2f}x, efficiency {est.efficiency:.0%})")
    for n in DEVICE_COUNTS[1:]:
        assert curve[n].multi_seconds < single
        assert curve[n].speedup > 1.0
    # No communication: scaling is ideal and monotone.
    assert curve[4].multi_seconds < curve[2].multi_seconds


@pytest.mark.parametrize(
    "system,spec",
    [(NVIDIA_SYSTEM, A100_SPEC), (AMD_SYSTEM, MI250_SPEC)],
    ids=["nvidia", "amd"],
)
def test_stencil_modeled_scaling_beats_single_device(system, spec):
    app = ALL_APPS[5]()
    params = app.paper_params()
    peer_bytes = 2 * params["radius"] * 8
    peer_transfers = 2 if app.reports == "per_launch" \
        else 2 * params["iterations"]
    single, curve = _scaling_curve(
        app, system, spec,
        peer_bytes=peer_bytes, peer_transfers=peer_transfers,
    )
    print(f"\nStencil-1D ompx scaling on {system.name} "
          f"(halo {peer_bytes} B x {peer_transfers}):")
    for n, est in curve.items():
        print(f"  {n} device(s): {format_seconds(est.multi_seconds)}  "
              f"(speedup {est.speedup:.2f}x, comm "
              f"{format_seconds(est.comm_seconds)})")
    for n in DEVICE_COUNTS[1:]:
        assert curve[n].multi_seconds < single, (
            f"{n}-device stencil must beat single-device even with halo traffic"
        )
        assert curve[n].comm_seconds > 0  # the halo term is being charged


def test_functional_sharded_run_traces_one_track_per_device(tmp_path):
    app = ALL_APPS[5]()
    params = app.functional_params()
    out = tmp_path / "sched_trace.json"
    with DevicePool(3) as pool:
        expected_tracks = {f"device:{d.ordinal}" for d in pool.devices}
        with trace.tracing() as tracer:
            result = app.run_sharded(VersionLabel.OMPX, params, pool)
        assert app.verify(result, params)
        tracer.export_chrome(out)
    device_tracks = {s.track for s in tracer.spans
                     if s.track.startswith("device:")}
    assert expected_tracks <= device_tracks
    # The Perfetto export names each device track via thread_name metadata.
    exported = json.loads(out.read_text())
    events = exported["traceEvents"] if isinstance(exported, dict) else exported
    named = {e["args"]["name"] for e in events
             if e.get("ph") == "M" and e.get("name") == "thread_name"}
    assert expected_tracks <= named
