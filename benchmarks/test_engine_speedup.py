"""Engine throughput: the lane-batched WaveVectorEngine must beat the
scalar engines by an order of magnitude at paper-relevant thread counts.

These are wall-clock tests of the *simulator* (not the performance model),
so they are marked ``slow`` and excluded from the tier-1 run.  The
contract they pin down:

* a 1M-thread sync-free kernel runs >= 10x faster under ``"vector"`` than
  under ``"map"`` (same bits out);
* the XSBench lookup kernel sustains >= 10x the MapEngine's throughput at
  1M lookups;
* the Stencil-1D kernel sustains >= 10x the cooperative BlockThreadEngine's
  throughput at 1M threads under ``"wave"`` (MapEngine cannot legally run
  a barrier kernel, so the SIMT reference engine is the scalar baseline).
"""

import time

import numpy as np
import pytest

import repro.gpu.launch as launch_mod
from repro.apps import Stencil1D, XSBench
from repro.apps.common import VersionLabel
from repro.gpu import LaunchConfig, get_device, launch_kernel

pytestmark = pytest.mark.slow

_ONE_MILLION = 1 << 20


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


class _ForcedEngine:
    """Engine proxy pinning every launch in a block to one engine."""

    def __init__(self, engine):
        self._engine = engine

    @property
    def name(self):
        return self._engine.name

    def run(self, *args, **kwargs):
        return self._engine.run(*args, **kwargs)


def _run_forced(app, params, engine_name, device):
    """Time the app's CUDA variant with every launch pinned to one engine."""
    from repro.gpu.engine import _ENGINES_BY_NAME

    proxy = _ForcedEngine(_ENGINES_BY_NAME[engine_name])
    original = launch_mod.select_engine
    launch_mod.select_engine = lambda *a, **k: proxy
    try:
        return _timed(
            lambda: app.run_single(VersionLabel.NATIVE_LLVM, params, device)
        )
    finally:
        launch_mod.select_engine = original


def test_vector_beats_map_10x_on_1m_element_kernel():
    """The headline contract: 1M sync-free threads, >= 10x, same bits."""
    device = get_device(0)
    n, block = _ONE_MILLION, 256
    grid = n // block

    def saxpy(ctx, d_x, d_y, a, n):
        xv = ctx.deref(d_x, n, np.float64)
        yv = ctx.deref(d_y, n, np.float64)
        i = ctx.global_flat_id
        ctx.store(yv, i, a * ctx.load(xv, i) + ctx.load(yv, i))

    saxpy.sync_free = True
    rng = np.random.default_rng(11)
    h_x, h_y = rng.random(n), rng.random(n)
    alloc = device.allocator
    d_x, d_y = alloc.malloc(n * 8), alloc.malloc(n * 8)
    outputs, seconds = {}, {}
    try:
        for engine in ("map", "vector"):
            alloc.memcpy_h2d(d_x, h_x)
            alloc.memcpy_h2d(d_y, h_y)
            config = LaunchConfig.create(grid, block, engine=engine)
            stats, seconds[engine] = _timed(
                lambda: launch_kernel(config, saxpy, (d_x, d_y, 2.5, n), device)
            )
            assert stats.engine == engine and stats.threads_run == n
            out = np.zeros(n)
            alloc.memcpy_d2h(out, d_y)
            outputs[engine] = out
    finally:
        for ptr in (d_x, d_y):
            alloc.free(ptr)

    assert np.array_equal(outputs["vector"], outputs["map"])
    assert np.array_equal(outputs["vector"], 2.5 * h_x + h_y)
    speedup = seconds["map"] / seconds["vector"]
    print(
        f"\nsaxpy {n} threads: map {seconds['map']:.2f}s, "
        f"vector {seconds['vector']:.3f}s -> {speedup:.0f}x"
    )
    assert speedup >= 10.0


def test_xsbench_vector_10x_map_throughput_at_1m_lookups():
    device = get_device(0)
    app = XSBench()
    # Reduced table (so the MapEngine baseline finishes), full 1M lookups.
    mat_counts = (10, 3, 2, 2, 6, 5, 5, 5, 5, 5, 3, 3)
    params_big = {
        "n_isotopes": 64, "n_gridpoints": 512, "lookups": _ONE_MILLION,
        "block": 256, "mat_counts": mat_counts,
    }
    params_small = dict(params_big, lookups=1 << 15)

    big, t_vector = _run_forced(app, params_big, "vector", device)
    small_map, t_map = _run_forced(app, params_small, "map", device)
    small_vector, _ = _run_forced(app, params_small, "vector", device)

    # bit-identical: vector == map where both can run, vector == reference
    assert np.array_equal(small_vector.output, small_map.output)
    assert np.array_equal(big.output, app.reference(params_big))

    vector_rate = params_big["lookups"] / t_vector
    map_rate = params_small["lookups"] / t_map
    print(
        f"\nxsbench: vector {vector_rate:,.0f} lookups/s (1M in {t_vector:.2f}s), "
        f"map {map_rate:,.0f} lookups/s -> {vector_rate / map_rate:.0f}x"
    )
    assert vector_rate >= 10.0 * map_rate


def test_stencil_wave_10x_cooperative_throughput_at_1m_threads():
    device = get_device(0)
    app = Stencil1D()
    params_big = {"n": _ONE_MILLION, "iterations": 1, "radius": 4, "block": 256}
    params_small = dict(params_big, n=1 << 12)

    big, t_wave = _run_forced(app, params_big, "wave", device)
    small_coop, t_coop = _run_forced(app, params_small, "block-thread", device)
    small_wave, _ = _run_forced(app, params_small, "wave", device)

    # bit-identity holds across engines (the reference sums its window
    # with NumPy's pairwise order, so it is only approximately equal)
    assert np.array_equal(small_wave.output, small_coop.output)
    assert app.verify(big, params_big)

    wave_rate = params_big["n"] / t_wave
    coop_rate = params_small["n"] / t_coop
    print(
        f"\nstencil: wave {wave_rate:,.0f} threads/s (1M in {t_wave:.2f}s), "
        f"block-thread {coop_rate:,.0f} threads/s -> {wave_rate / coop_rate:.0f}x"
    )
    assert wave_rate >= 10.0 * coop_rate
