"""Figures 8f / 8l: Stencil 1D on both systems.

Paper shape: ompx beats the natives on both systems; the classic omp
version collapses by roughly two orders of magnitude because the
generic-mode state machine cannot be rewritten (bars annotated 145.6 ms
and 60.87 ms against ~1 ms natives).
"""

from conftest import figure8_row

from repro.apps import Stencil1D, VersionLabel
from repro.gpu import get_device
from repro.perf import NVIDIA_SYSTEM


def test_fig8f_fig8l_estimates(benchmark):
    app = Stencil1D()
    cells = benchmark(lambda: figure8_row(app))
    for system, native in (("NVIDIA", "cuda"), ("AMD", "hip")):
        row = cells[system]
        assert row["ompx"] < row[native], system
        assert row["omp"] > 10 * row[native], system
    # per-iteration magnitude on the A100: paper natives ~1.4 ms
    assert 0.5e-3 < cells["NVIDIA"]["cuda"] < 3e-3
    # omp collapse lands in the tens of milliseconds (paper: 145.6 ms)
    assert cells["NVIDIA"]["omp"] > 20e-3


def test_fig8_stencil_state_machine_mechanism(benchmark):
    """§4.2.6's cause: the omp build keeps its worker state machine."""
    app = Stencil1D()
    params = app.paper_params()

    def compile_omp():
        return app.compiled_for(VersionLabel.OMP, NVIDIA_SYSTEM, params)

    ck = benchmark(compile_omp)
    assert ck.codegen.state_machine
    assert ck.codegen.mode == "generic"


def test_fig8_stencil_functional_kernel(benchmark):
    app = Stencil1D()
    params = app.functional_params()
    device = get_device(0)
    result = benchmark(lambda: app.run_single(VersionLabel.OMPX, params, device))
    assert app.verify(result, params)
