#!/usr/bin/env python
"""Diff two ``BENCH_<rev>.json`` snapshots; exit non-zero on regression.

The perf-trajectory gate (ROADMAP item 5): every PR can run the slow
benchmark suite with ``--bench-json benchmarks/`` to produce a snapshot,
then::

    python benchmarks/compare_bench.py benchmarks/BENCH_old.json \\
        benchmarks/BENCH_new.json

compares metric by metric.  Each metric's *direction* is inferred from
its name (``*speedup*``/``*throughput*`` are higher-is-better;
``*_s``/``*_ms*``/``*overhead*``/``*_pct`` are lower-is-better; anything
unrecognized is reported but never gates), and a metric regresses when
it moves beyond the tolerance in the bad direction.  Tolerances are
per-metric-kind: timing metrics get a generous default because CI
machines are noisy; ratio metrics (speedups, overhead percentages) are
steadier and get a tighter one.  ``--tolerance-pct`` overrides both.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (suffix/fragment, direction, default tolerance %) — first match wins.
#: direction: +1 = higher is better, -1 = lower is better, 0 = informational.
_RULES = (
    ("speedup", +1, 15.0),
    ("throughput", +1, 25.0),
    ("ops_per_s", +1, 25.0),
    ("overhead_pct", -1, None),  # absolute-points rule, see below
    ("overhead", -1, 25.0),
    ("_pct", -1, None),
    ("_ms_per_run", -1, 30.0),
    ("_ms", -1, 30.0),
    ("_s", -1, 30.0),
)

#: Percentage-point slack for ``*_pct`` metrics (they hover near zero,
#: so relative tolerances are meaningless there).
_PCT_POINTS_SLACK = 10.0


def _classify(metric: str):
    for fragment, direction, tolerance in _RULES:
        if metric.endswith(fragment) or fragment in metric:
            return direction, tolerance
    return 0, None


def _load(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        sys.exit(f"cannot read snapshot {path}: {exc}")
    # bench_record snapshots nest under "metrics" (with a sibling
    # "revision"); accept "records" and bare objects for hand-rolled
    # fixtures.
    records = data.get("metrics", data.get("records", data))
    if not isinstance(records, dict):
        sys.exit(f"{path}: expected an object of records")
    return records


def compare(old: dict, new: dict, override_pct=None):
    """Yield (name, metric, old, new, verdict) rows; verdict in
    {'ok', 'regressed', 'improved', 'info', 'added', 'removed'}."""
    names = sorted(set(old) | set(new))
    for name in names:
        old_metrics = old.get(name)
        new_metrics = new.get(name)
        if old_metrics is None:
            for metric, value in sorted(new_metrics.items()):
                yield name, metric, None, value, "added"
            continue
        if new_metrics is None:
            for metric, value in sorted(old_metrics.items()):
                yield name, metric, value, None, "removed"
            continue
        for metric in sorted(set(old_metrics) | set(new_metrics)):
            before = old_metrics.get(metric)
            after = new_metrics.get(metric)
            if before is None or after is None:
                yield (name, metric, before, after,
                       "added" if before is None else "removed")
                continue
            direction, tolerance = _classify(metric)
            if override_pct is not None and tolerance is not None:
                tolerance = override_pct
            if direction == 0:
                yield name, metric, before, after, "info"
                continue
            if tolerance is None:
                # Percentage-point metric: absolute slack either side.
                slack = (_PCT_POINTS_SLACK if override_pct is None
                         else override_pct)
                delta = (after - before) * direction
                if delta < -slack:
                    verdict = "regressed"
                elif delta > slack:
                    verdict = "improved"
                else:
                    verdict = "ok"
                yield name, metric, before, after, verdict
                continue
            scale = abs(before) if before else 0.0
            if scale == 0.0:
                yield name, metric, before, after, "info"
                continue
            change_pct = (after - before) / scale * 100.0 * direction
            if change_pct < -tolerance:
                verdict = "regressed"
            elif change_pct > tolerance:
                verdict = "improved"
            else:
                verdict = "ok"
            yield name, metric, before, after, verdict


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare two BENCH_<rev>.json perf snapshots"
    )
    parser.add_argument("old", type=Path, help="baseline snapshot")
    parser.add_argument("new", type=Path, help="candidate snapshot")
    parser.add_argument(
        "--tolerance-pct", type=float, default=None, metavar="P",
        help="override every metric's tolerance with P percent "
             "(percentage-point metrics use P points)",
    )
    args = parser.parse_args(argv)

    # First run on a fresh branch/fork: git history holds no committed
    # BENCH_<rev>.json yet, so the CI gate hands us an empty or missing
    # baseline path.  There is nothing to regress against — warn and
    # pass rather than fail every first PR.  A missing *candidate* is
    # still an error: the suite that was supposed to produce it broke.
    if str(args.old) in ("", ".") or not args.old.exists():
        print(
            f"warning: no baseline snapshot found at {str(args.old)!r} "
            "(first run on this branch/fork); skipping comparison",
            file=sys.stderr,
        )
        if not args.new.exists():
            sys.exit(f"cannot read snapshot {args.new}: missing candidate")
        return 0

    rows = list(
        compare(_load(args.old), _load(args.new), args.tolerance_pct)
    )
    if not rows:
        print("no overlapping records; nothing to compare")
        return 0

    width = max(len(f"{name}.{metric}") for name, metric, *_ in rows)
    regressions = 0
    for name, metric, before, after, verdict in rows:
        key = f"{name}.{metric}"
        fmt = lambda v: "—" if v is None else f"{v:.4g}"
        marker = {
            "regressed": "REGRESSED", "improved": "improved",
            "ok": "ok", "info": "info",
            "added": "added", "removed": "removed",
        }[verdict]
        print(f"{key:<{width}}  {fmt(before):>10} -> {fmt(after):>10}  {marker}")
        if verdict == "regressed":
            regressions += 1

    if regressions:
        print(f"\n{regressions} metric(s) regressed beyond tolerance")
        return 1
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
