"""Figures 8a / 8g: XSBench on both systems.

Paper shape: ompx consistently beats both native builds; omp excluded
because the authors' run reported an invalid checksum.
"""

from conftest import figure8_row

from repro.apps import VersionLabel, XSBench
from repro.gpu import get_device
from repro.perf import NVIDIA_SYSTEM


def test_fig8a_fig8g_estimates(benchmark):
    app = XSBench()
    cells = benchmark(lambda: figure8_row(app, excluded_omp=True))
    for system, native in (("NVIDIA", "cuda"), ("AMD", "hip")):
        row = cells[system]
        assert row["ompx"] < row[native], system
        assert row["ompx"] < row[f"{native}-nvcc" if native == "cuda" else f"{native}-hipcc"], system
        assert row["omp"] is None  # excluded, as in the paper
    # magnitude: sub-second lookups on the A100 (paper ~0.4 s)
    assert 0.05 < cells["NVIDIA"]["ompx"] < 3.0


def test_fig8_xsbench_functional_kernel(benchmark):
    """Time the reduced functional simulation of the ompx variant."""
    app = XSBench()
    params = app.functional_params()
    device = get_device(0)

    def run():
        return app.run_single(VersionLabel.OMPX, params, device)

    result = benchmark(run)
    assert app.verify(result, params)
