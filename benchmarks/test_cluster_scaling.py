"""Zero-fault cluster overhead: process isolation must stay cheap.

The cluster tier's acceptance criterion: running the same sharded
workload over a pre-spawned 3-worker :class:`~repro.cluster.ClusterPool`
must stay within ~10% of the in-process ``DevicePool(3)`` path at steady
state.  Spawn cost is excluded deliberately — it is a one-time setup
price (measured separately below as a sanity metric), while the
steady-state tax is what a long serving or tuning session actually pays
per run: pickling job payloads, pipe transport, heartbeat bookkeeping.
"""

from __future__ import annotations

import time

import pytest

from repro.apps import Adam, ExecutionConfig, XSBench, run
from repro.cluster import ClusterPool
from repro.sched import DevicePool

ROUNDS = 6
WARMUP = 2
WORKERS = 3


def _time_runs(app, params, pool, rounds: int) -> float:
    config = ExecutionConfig(params=params, pool=pool)
    start = time.perf_counter()
    for _ in range(rounds):
        run(app, config)
    return time.perf_counter() - start


@pytest.mark.slow
@pytest.mark.cluster
def test_zero_fault_cluster_overhead_is_small(bench_record):
    # XSBench scaled to a compute-dense operating point: ~200 ms/run of
    # lookup arithmetic against a few-KB material table, so the pipe tax
    # (pickling scales with payload *bytes*, not with compute) is a
    # rounding error and the three worker processes' freedom from the
    # parent's GIL can actually show.  Transport-bound workloads (Adam's
    # multi-MB parameter vectors) pay proportionally more — that
    # trade-off is documented in EXPERIMENTS.md, not asserted here.
    app = XSBench()
    params = dict(app.functional_params())
    params["lookups"] = 40_000

    with DevicePool(WORKERS) as pool:
        _time_runs(app, params, pool, WARMUP)
        plain_s = _time_runs(app, params, pool, ROUNDS)

    spawn_start = time.perf_counter()
    with ClusterPool(WORKERS, heartbeat_s=0.25) as cpool:
        spawn_s = time.perf_counter() - spawn_start
        _time_runs(app, params, cpool, WARMUP)
        cluster_s = _time_runs(app, params, cpool, ROUNDS)
        assert cpool.report["workers_lost"] == 0  # genuinely zero-fault

    overhead_pct = (cluster_s / plain_s - 1.0) * 100.0
    bench_record(
        "cluster/zero_fault_overhead",
        plain_ms_per_run=plain_s / ROUNDS * 1e3,
        cluster_ms_per_run=cluster_s / ROUNDS * 1e3,
        overhead_pct=overhead_pct,
        spawn_s=spawn_s,
    )
    print(
        f"\nplain: {plain_s / ROUNDS * 1e3:.1f} ms/run, "
        f"cluster: {cluster_s / ROUNDS * 1e3:.1f} ms/run "
        f"({overhead_pct:+.1f}%), spawn {spawn_s:.2f}s"
    )
    # The target is <10% steady-state overhead (typically *negative*
    # here: worker processes escape the parent's GIL); the absolute
    # cushion keeps CI scheduler noise from flaking it while still
    # catching structural regressions (per-job respawns, sync-per-submit,
    # payload re-pickling in a loop).
    assert cluster_s <= plain_s * 1.10 + 50e-3, (
        f"clustered sharded run cost {cluster_s:.4f}s vs {plain_s:.4f}s "
        f"in-process over {ROUNDS} rounds — zero-fault overhead too high"
    )


@pytest.mark.slow
@pytest.mark.cluster
def test_recovery_latency_is_bounded(bench_record):
    """One SIGKILL mid-stream: time from kill to full readmission."""
    import os
    import signal

    app = Adam()
    params = app.functional_params()

    with ClusterPool(WORKERS, heartbeat_s=0.1, deadline_s=1.0) as pool:
        config = ExecutionConfig(params=params, pool=pool)
        run(app, config)  # warm

        victim = pool._handles[1]
        kill_at = time.perf_counter()
        os.kill(victim.proc.pid, signal.SIGKILL)
        run(app, config)  # must absorb the loss mid-stream

        deadline = time.monotonic() + 30
        while (
            time.monotonic() < deadline
            and pool.report["worker_restarts"] == 0
        ):
            time.sleep(0.01)
        recovery_s = time.perf_counter() - kill_at
        assert pool.report["workers_lost"] == 1
        assert pool.report["worker_restarts"] == 1

    bench_record("cluster/recovery", kill_to_readmit_s=recovery_s)
    print(f"\nkill-to-readmission: {recovery_s:.2f}s")
    assert recovery_s < 15.0
