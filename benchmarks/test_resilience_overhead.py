"""A fault-free resilient run must cost almost nothing over a plain pool.

The resilience layer's cheap-when-idle claim: with zero faults injected,
wrapping a DevicePool in a ResilientPool adds only per-submission
bookkeeping (round-robin over the health tracker, one watchdog table
entry, lazy resolution) — no retries, no healing, no resets.  Same
methodology as the trace/memcheck overhead benchmarks: run the same
sharded workload both ways and assert the resilient path stays within a
few percent of the plain path.
"""

from __future__ import annotations

import time

import pytest

from repro.apps import Adam, VersionLabel
from repro.resilience import ResilientPool
from repro.sched import DevicePool

ROUNDS = 6
WARMUP = 2


def _time_sharded(app, params, pool, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        app.run_sharded(VersionLabel.OMPX, params, pool)
    return time.perf_counter() - start


@pytest.mark.slow
@pytest.mark.resilience
def test_zero_fault_resilience_overhead_is_small():
    app = Adam()
    params = app.functional_params()

    with DevicePool(3) as pool:
        _time_sharded(app, params, pool, WARMUP)
        plain_s = _time_sharded(app, params, pool, ROUNDS)

        with ResilientPool(pool) as rpool:
            _time_sharded(app, params, rpool, WARMUP)
            resilient_s = _time_sharded(app, params, rpool, ROUNDS)
            assert rpool.report.total == 0  # nothing fired, nothing healed

    # The target is <5% overhead; the assertion leaves headroom (1.25x +
    # 5ms absolute) so scheduler noise on loaded CI machines cannot flake
    # it, while still catching accidental per-submission heavy lifting
    # (an eager shadow run, a canary per submit, a sleeping code path).
    assert resilient_s <= plain_s * 1.25 + 5e-3, (
        f"resilient sharded run cost {resilient_s:.4f}s vs {plain_s:.4f}s "
        f"plain over {ROUNDS} rounds — zero-fault overhead is too high"
    )
    print(
        f"\nplain: {plain_s / ROUNDS * 1e3:.1f} ms/run, "
        f"resilient: {resilient_s / ROUNDS * 1e3:.1f} ms/run "
        f"({(resilient_s / plain_s - 1) * 100:+.1f}%)"
    )
