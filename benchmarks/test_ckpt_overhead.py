"""Checkpointing at a sane cadence must cost almost nothing.

The checkpoint layer's cheap-when-idle claim: snapshotting once per wave
adds one pickle + fsync + rename of the completed-shard outputs —
bounded bookkeeping, not a second execution.  Same methodology as the
resilience/trace overhead benchmarks: run the same sharded workload
plain and checkpointed and assert the checkpointed path stays within a
few percent of the plain path (<5% target; the assertion leaves CI-noise
headroom).

The comparison holds the shard *schedule* fixed: both paths run
pool-width shards in one parallel wave, so the measured delta is exactly
the checkpoint machinery (session setup, identity digest, one snapshot
publication) and not a different launch count.  Cadence is wave-sized —
the sane setting for a workload this shape; per-shard cadence (``
checkpoint_every=1``) deliberately serializes the waves and is priced as
recovery granularity, not hidden in this gate.
"""

from __future__ import annotations

import time

import pytest

from repro.apps import Adam, VersionLabel
from repro.ckpt import CheckpointSession, run_checkpointed
from repro.sched import DevicePool

ROUNDS = 6
WARMUP = 2
POOL = 3


def _time_plain(app, params, pool, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        app.run_sharded(VersionLabel.OMPX, params, pool)
    return time.perf_counter() - start


def _time_checkpointed(app, params, pool, directory, rounds: int) -> float:
    start = time.perf_counter()
    for index in range(rounds):
        # A fresh session per round (fresh run, chain cleared); one
        # pool-width wave, snapshotted when it completes.
        session = CheckpointSession(str(directory / f"r{index}"), every=POOL)
        run_checkpointed(
            app, VersionLabel.OMPX, params, pool, session, shards=POOL
        )
    return time.perf_counter() - start


@pytest.mark.slow
@pytest.mark.ckpt
def test_checkpoint_overhead_at_sane_cadence_is_small(tmp_path, bench_record):
    app = Adam()
    # Scaled up from the tiny functional defaults so the per-run
    # snapshot cost (~1 ms) is priced against real work rather than
    # dominating a microsecond-scale run.
    params = dict(app.functional_params(), n=3000, steps=200, repeat=4)

    with DevicePool(POOL) as pool:
        _time_plain(app, params, pool, WARMUP)
        plain_s = _time_plain(app, params, pool, ROUNDS)

        _time_checkpointed(app, params, pool, tmp_path / "warm", WARMUP)
        ckpt_s = _time_checkpointed(app, params, pool, tmp_path, ROUNDS)

    # Target <5% overhead; assert 25% + 5ms absolute so loaded CI
    # machines cannot flake it while an accidental heavy path (pickling
    # the whole problem per shard, a sync chain rescan per submit) still
    # trips the gate.
    assert ckpt_s <= plain_s * 1.25 + 5e-3, (
        f"checkpointed run cost {ckpt_s:.4f}s vs {plain_s:.4f}s plain over "
        f"{ROUNDS} rounds — checkpoint overhead at wave cadence is too high"
    )
    overhead_pct = (ckpt_s / plain_s - 1) * 100 if plain_s else 0.0
    bench_record(
        "ckpt/overhead",
        plain_ms_per_run=plain_s / ROUNDS * 1e3,
        ckpt_ms_per_run=ckpt_s / ROUNDS * 1e3,
        overhead_pct=overhead_pct,
    )
    print(
        f"\nplain: {plain_s / ROUNDS * 1e3:.1f} ms/run, "
        f"checkpointed: {ckpt_s / ROUNDS * 1e3:.1f} ms/run "
        f"({overhead_pct:+.1f}%)"
    )
