"""Figure 7: the hardware/software configuration table."""

from repro.harness import figure7, render_figure7
from repro.perf import AMD_SYSTEM, NVIDIA_SYSTEM


def test_fig7_table_regenerates(benchmark):
    data = benchmark(figure7)
    assert data["NVIDIA"]["GPU"] == "NVIDIA A100 (40 GB)"
    assert data["NVIDIA"]["Memory"] == "512 GB"
    assert data["NVIDIA"]["SDK"] == "CUDA 11.8"
    assert "MI250" in data["AMD"]["GPU"]
    assert data["AMD"]["Memory"] == "256 GB"
    assert data["AMD"]["SDK"] == "ROCm 5.5"
    print()
    print(render_figure7())


def test_fig7_device_presets_are_consistent(benchmark):
    def check():
        assert NVIDIA_SYSTEM.gpu.warp_size == 32
        assert AMD_SYSTEM.gpu.warp_size == 64
        assert NVIDIA_SYSTEM.gpu.vendor == "nvidia"
        assert AMD_SYSTEM.gpu.vendor == "amd"
        return True

    assert benchmark(check)
