"""Serving-tier throughput: latency percentiles for a contended tenant mix.

The acceptance benchmark for ``repro.serve``: push >=1000 jobs through a
KernelService from >=4 concurrent tenants and report p50/p95/p99 of the
submit-to-completion latency every :class:`ServeFuture` stamps.  The
assertions are sanity bars (everything completed, fairness held, the
tail is not pathological relative to the median), not absolute numbers —
wall-clock on a simulated GPU says nothing about real hardware.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import KernelService, TenantQuota

JOBS = 1200
TENANTS = 6
WEIGHTS = (4.0, 2.0, 1.0, 1.0, 1.0, 1.0)


def _payload(device):
    """A small but non-trivial host job (keeps the dispatchers honest)."""
    x = np.arange(512, dtype=np.float64)
    return float(np.sum(np.sqrt(x + 1.0)))


@pytest.mark.slow
@pytest.mark.serve
def test_throughput_latency_percentiles():
    per_tenant = JOBS // TENANTS
    futures = []
    futures_lock = threading.Lock()

    with KernelService(
        devices=4, global_max_queued=2 * JOBS, dispatchers=4
    ) as service:
        sessions = [
            service.session(
                f"tenant{i}",
                quota=TenantQuota(
                    max_queued=JOBS, max_inflight=8, weight=WEIGHTS[i]
                ),
            )
            for i in range(TENANTS)
        ]

        def client(session):
            mine = []
            for j in range(per_tenant):
                mine.append(
                    session.submit_call(
                        _payload, label=f"{session.tenant}-{j}"
                    )
                )
            with futures_lock:
                futures.extend(mine)

        threads = [
            threading.Thread(target=client, args=(s,), daemon=True)
            for s in sessions
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)

        expected = float(np.sum(np.sqrt(np.arange(512.0) + 1.0)))
        for future in futures:
            assert future.result(timeout=120) == expected

        stats = service.stats()
        totals = stats["service"]
        assert len(futures) == TENANTS * per_tenant >= 1000
        assert totals["completed"] == len(futures)
        assert totals["failed"] == 0
        assert totals["rejected"] == 0
        for name, tenant in stats["tenants"].items():
            assert tenant["completed"] == per_tenant, name

    latencies = np.array(
        [f.latency_s for f in futures], dtype=np.float64
    )
    assert np.all(latencies >= 0.0)
    p50, p95, p99 = np.percentile(latencies, [50, 95, 99])
    mean = float(latencies.mean())
    print(
        f"\nserve throughput: {len(futures)} jobs, {TENANTS} tenants, "
        f"4 devices/dispatchers\n"
        f"  latency p50={p50 * 1e3:.2f} ms  p95={p95 * 1e3:.2f} ms  "
        f"p99={p99 * 1e3:.2f} ms  mean={mean * 1e3:.2f} ms"
    )
    # Tail sanity: p99 within two orders of magnitude of the median
    # catches a wedged dispatcher or a lost-wakeup stall without being
    # flakeable by CI noise.
    assert p99 <= max(p50 * 100.0, 1.0)


@pytest.mark.slow
@pytest.mark.serve
def test_coalescing_multiplies_effective_throughput():
    # The MPS effect measured end to end: when every tenant submits the
    # same app run, N tenants cost ~1 execution, so service throughput
    # in *delivered results* scales with the fan-out.
    from repro.apps import Adam

    fanout = 8
    app = Adam()
    params = app.functional_params()
    with KernelService(devices=2, dispatchers=2) as service:
        sessions = [
            service.session(f"t{i}", quota=TenantQuota(max_queued=64))
            for i in range(fanout)
        ]
        futures = [
            s.submit_app(app, variant="ompx", params=params)
            for s in sessions
        ]
        results = [f.result(timeout=300) for f in futures]
        stats = service.stats()["service"]
    assert all(r.checksum == results[0].checksum for r in results)
    # At least half the fan-out coalesced away (timing-dependent: a
    # follower arriving after the leader finished starts a new run).
    assert stats["coalesced"] >= fanout // 2
    assert stats["executions"] <= fanout - stats["coalesced"]
    print(
        f"\ncoalescing: {fanout} identical submissions -> "
        f"{stats['executions']} execution(s), "
        f"{stats['coalesced']} coalesced away"
    )
