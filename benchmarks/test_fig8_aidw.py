"""Figures 8d / 8j: AIDW on both systems.

Paper shape: parity with the natives on the MI250; on the A100 the ompx
version matches nvcc but trails the Clang CUDA build by ~5% (Clang demoted
the kernel's shared variables; the prototype did not).
"""

import pytest
from conftest import figure8_row

from repro.apps import AIDW, VersionLabel
from repro.gpu import get_device


def test_fig8d_fig8j_estimates(benchmark):
    app = AIDW()
    cells = benchmark(lambda: figure8_row(app))
    nv, amd = cells["NVIDIA"], cells["AMD"]
    # A100: ~5% behind Clang CUDA, dead even with nvcc
    assert 1.02 < nv["ompx"] / nv["cuda"] < 1.10
    assert nv["ompx"] == pytest.approx(nv["cuda-nvcc"], rel=0.02)
    # MI250: aligns closely with the native version, either compiler
    assert amd["ompx"] == pytest.approx(amd["hip"], rel=0.05)
    assert amd["ompx"] == pytest.approx(amd["hip-hipcc"], rel=0.05)


def test_fig8_aidw_special_function_gap(benchmark):
    """AIDW's pow/sqrt load makes the MI250 row visibly slower (the paper's
    8d vs 8j axis difference: ~85 ms vs ~230 ms)."""
    app = AIDW()

    def both():
        from repro.perf import AMD_SYSTEM, NVIDIA_SYSTEM

        params = app.paper_params()
        return (
            app.reported_seconds(app.estimate(VersionLabel.NATIVE_LLVM, NVIDIA_SYSTEM, params)),
            app.reported_seconds(app.estimate(VersionLabel.NATIVE_LLVM, AMD_SYSTEM, params)),
        )

    nv_time, amd_time = benchmark(both)
    assert amd_time > 1.5 * nv_time
    assert 0.02 < nv_time < 0.4  # paper: ~85 ms


def test_fig8_aidw_functional_kernel(benchmark):
    app = AIDW()
    params = app.functional_params()
    device = get_device(0)
    result = benchmark(lambda: app.run_single(VersionLabel.OMPX, params, device))
    assert app.verify(result, params)
