"""Vendor-library economics: the §3.6 wrap-don't-reimplement argument.

Two claims, one modeled and one measured:

1. **Modeled (roofline):** each simulated vendor library prices the
   paper-scale GEMMs below the portable hand kernel by exactly its
   ``library_efficiency / HAND_KERNEL_EFFICIENCY`` ratio — the gap the
   paper cites as the reason to wrap ``cublasDgemm`` rather than write a
   portable GEMM.  The per-backend speedups go into the ``--bench-json``
   snapshot so the trajectory is visible across PRs.
2. **Measured (simulator wall clock):** the expression-template SU(3)
   app, which fuses each direction into ONE strided-batched ZGEMM,
   must beat the per-site loop app inside the simulator too — four
   library calls against thousands of interpreted site loops.

Wall-clock numbers on a simulated GPU say nothing about hardware; the
assertions are ratios and sanity bars, not absolute seconds.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.apps import SU3, SU3ET, MLPStep, VersionLabel
from repro.gpu import get_device
from repro.ompx.vendor import (
    HAND_KERNEL_EFFICIENCY,
    gemm_footprint,
    modeled_gemm_seconds,
)

pytestmark = [pytest.mark.slow]

#: (name, ordinal) for the three vendor-backed default devices.
DEVICES = [("cublas", 0), ("rocblas", 1), ("onemkl", 3)]

#: The portfolio's paper-scale GEMM shapes: the SU(3) site product and
#: the largest MLPStep layer (batch x features -> hidden, per model).
SHAPES = {
    "su3_site_zgemm": dict(m=3, n=3, k=3, dtype=np.complex128, batch=32**4),
    "mlpstep_layer1": dict(m=128, n=128, k=64, dtype=np.float64, batch=1024),
}


class TestModeledLibrarySpeedup:
    @pytest.mark.parametrize("backend_name,ordinal", DEVICES)
    @pytest.mark.parametrize("shape_name", sorted(SHAPES))
    def test_library_beats_hand_kernel_by_its_efficiency_ratio(
        self, backend_name, ordinal, shape_name, bench_record
    ):
        device = get_device(ordinal)
        # Resolve the backend the registry would hand this device.
        from repro import ompx

        handle = ompx.ompxblas_create(device)
        try:
            backend = handle.backend
            shape = SHAPES[shape_name]
            hand_s = modeled_gemm_seconds(
                device.spec, shape["m"], shape["n"], shape["k"],
                dtype=shape["dtype"], batch=shape["batch"],
                efficiency=HAND_KERNEL_EFFICIENCY,
            )
            lib_s = backend.modeled_gemm_seconds(
                shape["m"], shape["n"], shape["k"],
                dtype=shape["dtype"], batch=shape["batch"],
            )
        finally:
            ompx.ompxblas_destroy(handle)

        assert lib_s < hand_s
        speedup = hand_s / lib_s
        expected = backend.library_efficiency / HAND_KERNEL_EFFICIENCY
        assert speedup == pytest.approx(expected), (
            f"{backend.name} on {shape_name}: modeled speedup {speedup:.3f}, "
            f"efficiency ratio {expected:.3f}"
        )
        bench_record(
            f"vendor/{backend_name}/{shape_name}",
            modeled_hand_s=hand_s,
            modeled_library_s=lib_s,
            modeled_speedup=speedup,
        )

    def test_paper_scale_su3_footprint_is_fp64_bound(self):
        fp = gemm_footprint(3, 3, 3, dtype=np.complex128, batch=32**4)
        assert fp.flops_fp64 > 0 and fp.flops_fp32 == 0
        # 2*m*n*k * 4 (complex) * batch
        assert fp.flops_fp64 == 2 * 27 * 4 * 32**4


class TestMeasuredFusionSpeedup:
    def test_et_fusion_beats_per_site_loops_in_the_simulator(
        self, bench_record
    ):
        """Four fused library calls vs. thousands of interpreted loops."""
        params = {"iterations": 2, "sites": 1024, "block": 128,
                  "verify": 0, "warmups": 0}
        device = get_device(0)

        begin = time.perf_counter()
        loop = SU3().run_single(VersionLabel.OMPX, params, device)
        loop_s = time.perf_counter() - begin

        begin = time.perf_counter()
        fused = SU3ET().run_single(VersionLabel.OMPX, params, device)
        fused_s = time.perf_counter() - begin

        assert np.array_equal(fused.output, loop.output)
        assert fused_s < loop_s, (
            f"fused ET run ({fused_s:.3f}s) not faster than per-site "
            f"loops ({loop_s:.3f}s)"
        )
        bench_record(
            "vendor/su3_et_fusion",
            loop_su3_s=loop_s,
            fused_su3_s=fused_s,
            measured_speedup=loop_s / fused_s,
        )

    def test_mlpstep_paper_run_reports_vendor_calls(self, bench_record):
        """The paper-shape MLPStep run leans on the library for its math:
        every GEMM is a vendor call, and the modeled GEMM time dominates
        the modeled elementwise time."""
        import repro.trace as trace

        app = MLPStep()
        params = dict(app.functional_params())
        params.update(models=8, batch=32, features=16, hidden=12, steps=3)
        t = trace.enable()
        try:
            app.run_single(VersionLabel.OMPX, params, get_device(0))
        finally:
            trace.disable()
        vendor = [s for s in t.spans if s.cat == "vendor"]
        gemm_s = sum(s.args["modeled_s"] for s in vendor
                     if "gemm" in s.name)
        assert t.counters["vendor_calls"] == len(vendor)
        assert gemm_s > 0
        bench_record(
            "vendor/mlpstep",
            vendor_calls=len(vendor),
            modeled_gemm_s=gemm_s,
            vendor_flops=t.counters["vendor_flops"],
        )
