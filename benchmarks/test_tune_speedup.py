"""Autotuning economics: cold-search cost, warm dispatch overhead, speedup.

The acceptance benchmark for ``repro.tune``, in three claims:

1. **Cold search is a bounded one-off.**  The first tuned run pays for
   its measurement probes; that cost is reported (and snapshotted via
   ``--bench-json``) so the trajectory is visible across PRs.
2. **Warm dispatch is cheap.**  With every plan cached, the per-launch
   dispatch overhead the session profiles must stay under 5% of the
   untuned per-launch wall time — consulting a dict must not cost what
   planning from scratch does.
3. **Tuning pays on engine-bound kernels.**  A deliberately mis-pinned
   engine is the counterfactual: the tuned run (free to pick the fast
   engine) must beat the slowest legal engine and match the untuned
   checksum bit-for-bit on xsbench + stencil1d.

Wall-clock numbers on a simulated GPU say nothing about hardware; the
assertions are ratios and sanity bars, not absolute seconds.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import ompx, tune
from repro.apps import Stencil1D, XSBench, run
from repro.gpu.device import get_device
from repro.gpu.launch import LaunchConfig, launch_kernel

pytestmark = [pytest.mark.slow, pytest.mark.tune]

N = 64 * 1024
CONFIG = LaunchConfig.create(64, 1024)
REPEATS = 20


@ompx.bare_kernel(sync_free=True)
def saxpy_flat(x, ptr, n):
    # Branch-free so every engine (including the 40-250x lane-batched
    # ones) is a legal candidate: this is the engine-bound case tuning
    # exists for.
    i = x.global_thread_id_x()
    a = x.array(ptr, n, np.float64)
    a[i] = a[i] * 1.000001 + 2.0


def _time_launches(device, ptr, repeats=REPEATS):
    begin = time.perf_counter()
    for _ in range(repeats):
        launch_kernel(CONFIG, saxpy_flat.entry, (ptr, N), device)
    return (time.perf_counter() - begin) / repeats


class TestDispatchEconomics:
    def test_cold_search_cost_and_warm_overhead(self, tmp_path, bench_record):
        device = get_device(0)
        ptr = device.allocator.malloc(N * 8)
        device.allocator.memcpy_h2d(ptr, np.zeros(N))
        try:
            untuned_s = _time_launches(device, ptr)

            # Cold: the first tuned launch pays for the search.
            with tune.tuning(str(tmp_path)):
                cold_begin = time.perf_counter()
                launch_kernel(CONFIG, saxpy_flat.entry, (ptr, N), device)
                cold_s = time.perf_counter() - cold_begin

            # Warm: a fresh session over the persisted cache.
            with tune.tuning(str(tmp_path)) as warm:
                warm_s = _time_launches(device, ptr)
                counters = warm.counters()
                dispatch_us = warm.overhead.summary()["mean_us"]
        finally:
            device.allocator.free(ptr)

        assert counters["tune_searches"] == 0, "warm run must not re-search"
        assert counters["tune_hits"] == REPEATS

        # Claim 2: warm dispatch overhead < 5% of untuned per-launch time.
        overhead_pct = 100.0 * (dispatch_us * 1e-6) / untuned_s
        assert overhead_pct < 5.0, (
            f"warm dispatch costs {overhead_pct:.2f}% of an untuned launch"
        )
        bench_record(
            "tune/dispatch",
            untuned_launch_s=untuned_s,
            cold_first_launch_s=cold_s,
            warm_launch_s=warm_s,
            warm_dispatch_us=dispatch_us,
            warm_overhead_pct=overhead_pct,
        )

    def test_tuned_beats_the_slowest_legal_engine(self, tmp_path, bench_record):
        device = get_device(0)
        ptr = device.allocator.malloc(N * 8)
        device.allocator.memcpy_h2d(ptr, np.zeros(N))
        pinned_slow = LaunchConfig.create(64, 1024, engine="block-thread")
        try:
            slow_begin = time.perf_counter()
            launch_kernel(pinned_slow, saxpy_flat.entry, (ptr, N), device)
            slow_s = time.perf_counter() - slow_begin

            with tune.tuning(str(tmp_path)):
                launch_kernel(CONFIG, saxpy_flat.entry, (ptr, N), device)  # search
            with tune.tuning(str(tmp_path)):
                tuned_begin = time.perf_counter()
                launch_kernel(CONFIG, saxpy_flat.entry, (ptr, N), device)
                tuned_s = time.perf_counter() - tuned_begin
        finally:
            device.allocator.free(ptr)

        speedup = slow_s / tuned_s
        # The PR-1 engine spread is 40-250x; even a conservative bar
        # proves the tuner picked a lane-batched engine.
        assert speedup > 2.0, (
            f"tuned launch only {speedup:.2f}x over the cooperative engine"
        )
        bench_record(
            "tune/engine_choice",
            pinned_block_thread_s=slow_s,
            tuned_launch_s=tuned_s,
            speedup=speedup,
        )


class TestEndToEndApps:
    @pytest.mark.parametrize("app_cls", [XSBench, Stencil1D],
                             ids=["xsbench", "stencil1d"])
    def test_tuned_app_speedup_and_bit_identity(self, app_cls, tmp_path,
                                                bench_record):
        app = app_cls()

        begin = time.perf_counter()
        untuned = run(app)
        untuned_s = time.perf_counter() - begin

        cold_begin = time.perf_counter()
        cold = run(app, tune=True, tune_cache=str(tmp_path))
        cold_s = time.perf_counter() - cold_begin

        warm_begin = time.perf_counter()
        warm = run(app, tune=True, tune_cache=str(tmp_path))
        warm_s = time.perf_counter() - warm_begin

        # Bit identity on both tuned generations.
        assert np.array_equal(np.asarray(cold.output), np.asarray(untuned.output))
        assert np.array_equal(np.asarray(warm.output), np.asarray(untuned.output))
        assert warm.tune_session.counters()["tune_searches"] == 0

        # The warm tuned run must not regress meaningfully against the
        # untuned run (generous 1.5x bar: at functional scale the apps
        # are already near the engine-selection optimum, so the claim is
        # "no regression", not a headline speedup).
        assert warm_s < untuned_s * 1.5, (
            f"warm tuned run {warm_s:.3f}s vs untuned {untuned_s:.3f}s"
        )
        key = f"tune/{app.name.lower().replace(' ', '')}"
        bench_record(
            key,
            untuned_s=untuned_s,
            cold_tuned_s=cold_s,
            warm_tuned_s=warm_s,
            warm_speedup=untuned_s / warm_s,
            cold_search_overhead_s=cold_s - untuned_s,
        )
