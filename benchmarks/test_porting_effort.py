"""The porting-effort table: the §1 "text replacement" claim, quantified.

Not a figure in the paper — the paper asserts the claim in prose ("often
reducing the porting process to text replacement", §1/§6).  This bench
regenerates the table that backs it for all six applications.
"""

from repro.apps.adam import adam_cuda_kernel, adam_ompx_kernel
from repro.apps.aidw import aidw_cuda_kernel, aidw_ompx_kernel
from repro.apps.rsbench import rsbench_cuda_kernel, rsbench_ompx_kernel
from repro.apps.stencil1d import stencil_cuda_kernel, stencil_ompx_kernel
from repro.apps.su3 import su3_cuda_kernel, su3_ompx_kernel
from repro.apps.xsbench import xsbench_cuda_kernel, xsbench_ompx_kernel
from repro.harness.report import render_table
from repro.port import measure_port_effort

PAIRS = {
    "XSBench": (xsbench_cuda_kernel, xsbench_ompx_kernel),
    "RSBench": (rsbench_cuda_kernel, rsbench_ompx_kernel),
    "SU3": (su3_cuda_kernel, su3_ompx_kernel),
    "AIDW": (aidw_cuda_kernel, aidw_ompx_kernel),
    "Adam": (adam_cuda_kernel, adam_ompx_kernel),
    "Stencil 1D": (stencil_cuda_kernel, stencil_ompx_kernel),
}


def test_porting_effort_table(benchmark):
    def measure_all():
        return {name: measure_port_effort(*pair) for name, pair in PAIRS.items()}

    efforts = benchmark(measure_all)

    rows = []
    for name, effort in efforts.items():
        rows.append([
            name,
            str(effort.total_lines),
            str(effort.changed_lines),
            f"{effort.changed_fraction:.0%}",
            "yes" if effort.is_text_replacement else "NO",
        ])
    print()
    print(render_table(
        ["Benchmark", "kernel lines", "changed", "changed %", "pure text replacement"],
        rows,
        title="Porting effort, CUDA -> ompx (the paper's §1 claim, measured)",
    ))

    # the claim must hold for every benchmark the paper ported
    assert all(e.is_text_replacement for e in efforts.values())
    # and the footprint of the change is genuinely small
    assert all(e.changed_fraction < 0.5 for e in efforts.values())
