"""Figures 8e / 8k: Adam on both systems.

Paper shape: ompx matches CUDA on the A100 and beats HIP on the MI250;
the classic omp version is ~8x slower because an LLVM issue launches only
32 threads per block (the bars annotated 1.6 ms / 1.59 ms).
"""

from conftest import figure8_row

from repro.apps import Adam, VersionLabel
from repro.gpu import get_device
from repro.perf import NVIDIA_SYSTEM


def test_fig8e_fig8k_estimates(benchmark):
    app = Adam()
    cells = benchmark(lambda: figure8_row(app))
    for system, native in (("NVIDIA", "cuda"), ("AMD", "hip")):
        row = cells[system]
        # omp is several times slower (paper: 8x)
        assert 4.0 < row["omp"] / row[native] < 12.0, system
        # ompx matches or beats the native
        assert row["ompx"] <= row[native] * 1.03, system
    # the measured section stays in the milliseconds (paper annotates 1.6 ms omp)
    assert cells["NVIDIA"]["omp"] < 0.02


def test_fig8_adam_thread_limit_bug_mechanism(benchmark):
    """§4.2.5's cause: the omp launch ends up with one warp per block."""
    app = Adam()
    params = app.paper_params()

    def compile_omp():
        return app.compiled_for(VersionLabel.OMP, NVIDIA_SYSTEM, params)

    ck = benchmark(compile_omp)
    assert ck.codegen.effective_thread_limit == 32
    assert params["block"] // ck.codegen.effective_thread_limit == 8  # the 8x


def test_fig8_adam_functional_kernel(benchmark):
    app = Adam()
    params = app.functional_params()
    device = get_device(0)
    result = benchmark(lambda: app.run_single(VersionLabel.OMPX, params, device))
    assert app.verify(result, params)
