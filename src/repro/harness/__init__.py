"""Regeneration harness for the paper's evaluation section."""

from .figures import (
    SYSTEMS,
    render_end_to_end,
    figure6,
    figure7,
    figure8,
    figure8_relations,
    paper_relations,
    render_figure6,
    render_figure7,
    render_figure8,
    render_figure8_bars,
)
from .report import format_seconds, render_bars, render_table
from .sweep import SweepResult, sweep
from .verification import VerificationCell, render_verification, verification_matrix

__all__ = [
    "SYSTEMS",
    "figure6",
    "figure7",
    "figure8",
    "figure8_relations",
    "paper_relations",
    "render_figure6",
    "render_figure7",
    "render_figure8",
    "render_figure8_bars",
    "render_end_to_end",
    "format_seconds",
    "render_bars",
    "render_table",
    "SweepResult",
    "sweep",
    "VerificationCell",
    "render_verification",
    "verification_matrix",
]
