"""Parameter sweeps over the performance model.

The paper reports single operating points; a reproduction with an analytic
model can also answer the neighbouring questions reviewers ask — *does the
ompx advantage survive at other problem sizes? where do the omp overheads
stop mattering?* — by sweeping a parameter and re-pricing every version.

:func:`sweep` produces a :class:`SweepResult` holding one series per
Figure 8 version label; :meth:`SweepResult.render` prints the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..apps.common import BenchmarkApp, VersionLabel
from ..errors import ReproError
from ..perf.timing import SystemConfig
from .report import format_seconds, render_table

__all__ = ["SweepResult", "sweep"]


@dataclass
class SweepResult:
    """Execution-time series over one swept parameter."""

    app_name: str
    system_name: str
    parameter: str
    values: List[object]
    #: label -> series of reported seconds (None for excluded cells)
    series: Dict[str, List[Optional[float]]] = field(default_factory=dict)

    def ratio(self, numerator: str, denominator: str) -> List[Optional[float]]:
        """Pointwise ratio between two version series."""
        out: List[Optional[float]] = []
        for a, b in zip(self.series[numerator], self.series[denominator]):
            out.append(None if (a is None or b is None or b == 0) else a / b)
        return out

    def render(self) -> str:
        """Render this result as an ASCII table."""
        headers = [self.parameter] + list(self.series)
        rows = []
        for i, value in enumerate(self.values):
            row = [str(value)]
            for label in self.series:
                cell = self.series[label][i]
                row.append("excluded" if cell is None else format_seconds(cell))
            rows.append(row)
        return render_table(
            headers, rows,
            title=f"{self.app_name} on {self.system_name}: sweep over {self.parameter}",
        )


def sweep(
    app: BenchmarkApp,
    system: SystemConfig,
    parameter: str,
    values: Sequence[object],
    *,
    labels: Sequence[str] = VersionLabel.ALL,
    base_params: Optional[Mapping[str, object]] = None,
) -> SweepResult:
    """Price every version of ``app`` across ``values`` of one parameter.

    ``parameter`` must be a key of the app's parameter mapping (e.g. ``n``
    for Stencil-1D, ``lookups`` for XSBench); the other parameters come
    from ``base_params`` (default: the paper's).
    """
    base = dict(base_params or app.paper_params())
    if parameter not in base:
        raise ReproError(
            f"{app.name} has no parameter {parameter!r}; available: {sorted(base)}"
        )
    excluded_omp = bool(getattr(app, "omp_excluded_in_paper", False))
    result = SweepResult(
        app_name=app.name,
        system_name=system.name,
        parameter=parameter,
        values=list(values),
    )
    for label in labels:
        display = VersionLabel.display(label, system)
        series: List[Optional[float]] = []
        for value in values:
            if label == VersionLabel.OMP and excluded_omp:
                series.append(None)
                continue
            params = {**base, parameter: value}
            series.append(app.reported_seconds(app.estimate(label, system, params)))
        result.series[display] = series
    return result
