"""Regeneration of every table and figure in the paper's evaluation (§4).

* :func:`figure6` — the benchmark table (name, description, command line).
* :func:`figure7` — the hardware/software configuration table.
* :func:`figure8` — the 12 execution-time bar groups: 6 applications x
  2 systems x 4 versions, priced by the performance model at the paper's
  parameters.  XSBench's ``omp`` bar is excluded, as in the paper
  (invalid checksum on the authors' run, §4.2.1).
* :func:`figure8_relations` — the qualitative claims §4.2 makes about
  each subplot, checked against the regenerated numbers.  This is the
  reproduction's actual deliverable: the *shape* of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..apps import ALL_APPS, VersionLabel
from ..apps.common import BenchmarkApp
from ..perf.timing import AMD_SYSTEM, NVIDIA_SYSTEM, SystemConfig
from .report import format_seconds, render_bars, render_table

__all__ = [
    "SYSTEMS",
    "figure6",
    "figure7",
    "figure8",
    "figure8_relations",
    "Relation",
    "render_figure6",
    "render_figure7",
    "render_figure8",
    "render_figure8_bars",
]

SYSTEMS: Tuple[SystemConfig, ...] = (NVIDIA_SYSTEM, AMD_SYSTEM)


# --- Figure 6 -----------------------------------------------------------------

def figure6() -> List[Dict[str, str]]:
    """Rows of the benchmark table."""
    return [
        {
            "Name": app.name,
            "Description": app.description,
            "Command Line": app.command_line,
        }
        for app in ALL_APPS
    ]


def render_figure6() -> str:
    """Figure 6 as an ASCII table."""
    rows = [[r["Name"], r["Description"], r["Command Line"]] for r in figure6()]
    return render_table(
        ["Name", "Description", "Command Line"],
        rows,
        title="Figure 6: Benchmarks including brief summary and command line arguments",
    )


# --- Figure 7 ---------------------------------------------------------------------

def figure7() -> Dict[str, Dict[str, str]]:
    """The hardware/software configuration, keyed by column (AMD/NVIDIA)."""
    out: Dict[str, Dict[str, str]] = {}
    for system in SYSTEMS:
        out[system.name] = {
            "GPU": system.gpu.name,
            "CPU": system.cpu,
            "Memory": f"{system.memory_gb} GB",
            "SDK": system.sdk,
        }
    return out

def render_figure7() -> str:
    """Figure 7 as an ASCII table."""
    data = figure7()
    fields = ["GPU", "CPU", "Memory", "SDK"]
    rows = [[f] + [data[s.name][f] for s in SYSTEMS] for f in fields]
    return render_table(
        [""] + [s.name for s in SYSTEMS],
        rows,
        title="Figure 7: Hardware and software configuration",
    )


# --- Figure 8 ------------------------------------------------------------------------

#: (app name, system name) pairs whose omp bar the paper excluded.
_EXCLUDED = {("XSBench", "NVIDIA"), ("XSBench", "AMD")}


def figure8(
    app: Optional[BenchmarkApp] = None,
    system: Optional[SystemConfig] = None,
) -> Dict[Tuple[str, str], Dict[str, Optional[float]]]:
    """Execution times (seconds) for each (app, system) cell of Figure 8.

    Keys are ``(app_name, system_name)``; values map the paper's bar
    labels to reported seconds (``None`` for an excluded bar).
    """
    apps = [app] if app is not None else [cls() for cls in ALL_APPS]
    systems = [system] if system is not None else list(SYSTEMS)
    results: Dict[Tuple[str, str], Dict[str, Optional[float]]] = {}
    for a in apps:
        params = a.paper_params()
        for s in systems:
            cell: Dict[str, Optional[float]] = {}
            for label in VersionLabel.ALL:
                display = VersionLabel.display(label, s)
                if label == VersionLabel.OMP and (a.name, s.name) in _EXCLUDED:
                    cell[display] = None
                    continue
                cell[display] = a.reported_seconds(a.estimate(label, s, params))
            results[(a.name, s.name)] = cell
    return results


def render_figure8() -> str:
    """All twelve Figure 8 panels as ASCII tables."""
    results = figure8()
    blocks = []
    subplot = ord("a")
    for s in SYSTEMS:
        for cls in ALL_APPS:
            app = cls()
            cell = results[(app.name, s.name)]
            rows = [
                [label, format_seconds(v) if v is not None else "excluded (invalid checksum)"]
                for label, v in cell.items()
            ]
            unit = "per iteration" if app.reports == "per_launch" else "total"
            blocks.append(
                render_table(
                    ["version", f"execution time ({unit})"],
                    rows,
                    title=f"Figure 8{chr(subplot)}: {app.name} on the {s.name} system",
                )
            )
            subplot += 1
    return "\n\n".join(blocks)


def render_end_to_end() -> str:
    """Kernel-only vs end-to-end (with host<->device transfers) times.

    The paper's Figure 8 reports device-side execution; this table adds
    the Figure 1-style memcpys around each measured section, priced over
    each system's host link (PCIe 4.0 x16 / Infinity Fabric).
    """
    rows = []
    for system in SYSTEMS:
        for cls in ALL_APPS:
            app = cls()
            params = app.paper_params()
            kernel_s = app.estimate(VersionLabel.OMPX, system, params).total_s
            e2e_s = app.estimate_end_to_end(VersionLabel.OMPX, system, params)
            share = (e2e_s - kernel_s) / e2e_s if e2e_s else 0.0
            rows.append([
                app.name, system.name,
                format_seconds(kernel_s), format_seconds(e2e_s), f"{share:.1%}",
            ])
    return render_table(
        ["benchmark", "system", "kernel (ompx)", "end-to-end", "transfer share"],
        rows,
        title="End-to-end estimates: measured section + host<->device transfers",
    )


def render_figure8_bars() -> str:
    """Figure 8 as ASCII bar panels (the paper's visual form)."""
    results = figure8()
    blocks = []
    subplot = ord("a")
    for s in SYSTEMS:
        for cls in ALL_APPS:
            app = cls()
            cell = results[(app.name, s.name)]
            unit = "per iteration" if app.reports == "per_launch" else "total"
            blocks.append(render_bars(
                cell,
                title=f"Figure 8{chr(subplot)}: {app.name} on {s.name} ({unit})",
            ))
            subplot += 1
    return "\n\n".join(blocks)


# --- the qualitative claims of §4.2 -----------------------------------------------------

@dataclass(frozen=True)
class Relation:
    """One qualitative claim the paper makes about a Figure 8 subplot."""

    app: str
    system: str
    claim: str
    #: Predicate over the cell mapping {bar label: seconds}.
    def check(self, cell: Mapping[str, Optional[float]], system: SystemConfig) -> bool:
        """Whether the claim holds for a Figure 8 cell."""
        raise NotImplementedError


def _resolve_label(template: str, system: SystemConfig) -> str:
    """Expand '{native}' / '{native}-vendor' into the Figure 8 bar label."""
    if template == "{native}-vendor":
        return f"{system.native_language}-{system.vendor_compiler}"
    return template.format(native=system.native_language)


@dataclass(frozen=True)
class Faster(Relation):
    a: str = ""
    b: str = ""
    #: minimum ratio b/a for the claim to hold (1.0 = merely faster).
    min_ratio: float = 1.0
    #: optional upper bound on b/a (e.g. "slower by about 9%" wants ~1.09).
    max_ratio: Optional[float] = None

    def check(self, cell, system) -> bool:
        """Whether the claim holds for a Figure 8 cell."""
        a = cell[_resolve_label(self.a, system)]
        b = cell[_resolve_label(self.b, system)]
        if a is None or b is None:
            return False
        ratio = b / a
        if ratio < self.min_ratio:
            return False
        if self.max_ratio is not None and ratio > self.max_ratio:
            return False
        return True


@dataclass(frozen=True)
class Excluded(Relation):
    label: str = "omp"

    def check(self, cell, system) -> bool:
        """Whether the claim holds for a Figure 8 cell."""
        return cell.get(self.label) is None


def paper_relations() -> List[Relation]:
    """Every §4.2 claim, as a checkable relation (tolerances are loose:
    the reproduction targets shape, not absolute numbers)."""
    rels: List[Relation] = []
    for system in ("NVIDIA", "AMD"):
        # §4.2.1 XSBench: ompx beats both natives; omp excluded.
        rels.append(Faster("XSBench", system, "ompx consistently outperforms the native versions",
                           a="ompx", b="{native}"))
        rels.append(Faster("XSBench", system, "ompx outperforms the vendor-compiled native",
                           a="ompx", b="{native}-vendor"))
        rels.append(Excluded("XSBench", system, "omp excluded: invalid checksum"))
        # §4.2.2 RSBench: ompx exceeds native-LLVM on both systems.
        rels.append(Faster("RSBench", system, "ompx exceeds the LLVM-compiled native",
                           a="ompx", b="{native}"))
        # §4.2.6 Stencil: ompx outperforms native on both; omp >> everything.
        rels.append(Faster("Stencil 1D", system, "ompx outperforms the native version",
                           a="ompx", b="{native}"))
        rels.append(Faster("Stencil 1D", system, "omp is dramatically slower (state machine)",
                           a="{native}", b="omp", min_ratio=10.0))
    # §4.2.2: omp outperforms CUDA on the A100 (heap-to-shared).
    rels.append(Faster("RSBench", "NVIDIA", "omp outperforms the CUDA version",
                       a="omp", b="{native}"))
    # §4.2.3 SU3: ompx ~9% slower than CUDA on A100; 28% faster than HIP on MI250.
    rels.append(Faster("SU3", "NVIDIA", "ompx lags CUDA by roughly 9%",
                       a="{native}", b="ompx", min_ratio=1.02, max_ratio=1.25))
    rels.append(Faster("SU3", "AMD", "ompx outperforms HIP by roughly 28%",
                       a="ompx", b="{native}", min_ratio=1.10, max_ratio=1.45))
    for system in ("NVIDIA", "AMD"):
        rels.append(Faster("SU3", system, "ompx consistently beats omp",
                           a="ompx", b="omp"))
    # §4.2.4 AIDW: ~5% slower than clang-CUDA on A100, parity elsewhere.
    rels.append(Faster("AIDW", "NVIDIA", "ompx ~5% slower than CUDA (Clang)",
                       a="{native}", b="ompx", min_ratio=1.01, max_ratio=1.12))
    rels.append(Faster("AIDW", "NVIDIA", "ompx matches nvcc",
                       a="{native}-vendor", b="ompx", min_ratio=0.97, max_ratio=1.03))
    rels.append(Faster("AIDW", "AMD", "parity with the native version on MI250",
                       a="{native}", b="ompx", min_ratio=0.95, max_ratio=1.05))
    # §4.2.5 Adam: omp is ~8x slower; ompx matches/beats native.
    for system in ("NVIDIA", "AMD"):
        rels.append(Faster("Adam", system, "omp ~8x slower (thread-limit bug)",
                           a="{native}", b="omp", min_ratio=3.0, max_ratio=16.0))
        rels.append(Faster("Adam", system, "ompx matches or beats the native",
                           a="ompx", b="{native}", min_ratio=0.97))
    return rels


def figure8_relations() -> List[Tuple[Relation, bool]]:
    """Evaluate every paper claim against the regenerated Figure 8."""
    results = figure8()
    out: List[Tuple[Relation, bool]] = []
    for rel in paper_relations():
        system = NVIDIA_SYSTEM if rel.system == "NVIDIA" else AMD_SYSTEM
        cell = results[(rel.app, rel.system)]
        out.append((rel, rel.check(cell, system)))
    return out
