"""Plain-text rendering of the reproduced tables and figures."""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = ["render_table", "format_seconds", "render_bars", "render_trace_summary"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table (the harness's one output format)."""
    columns = [list(col) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(str(cell)) for cell in col) for col in columns]

    def line(cells: Sequence[str]) -> str:
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    for row in rows:
        out.append(line(row))
    return "\n".join(out)


def format_seconds(seconds: float) -> str:
    """Render a duration with the unit the paper's plot for it uses."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def _format_bytes(nbytes: float) -> str:
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if nbytes >= scale:
            return f"{nbytes / scale:.2f} {unit}"
    return f"{int(nbytes)} B"


def render_trace_summary(records: Sequence[Dict[str, Any]]) -> str:
    """``nvprof``-style summary of :meth:`repro.trace.Tracer.to_records` output.

    Three sections, each present only when it has data: a per-kernel
    table (calls, total/mean/min/max, time share — the classic nvprof
    "GPU activities" block), a memcpy rollup by direction, and a
    predicted-vs-observed comparison joining the perf model's estimates
    onto measured launch spans.  This is the embedding point the harness
    report uses for traces; :meth:`repro.trace.Tracer.summary` calls it.
    """
    out: List[str] = ["==== repro.trace profile summary ===="]

    kernels: Dict[str, List[float]] = {}
    predicted: Dict[str, float] = {}
    for rec in records:
        if rec.get("cat") == "kernel":
            name = rec["name"][len("kernel:"):]
            kernels.setdefault(name, []).append(rec["dur_us"] / 1e6)
            if "predicted_per_launch_s" in rec.get("args", {}):
                predicted[name] = rec["args"]["predicted_per_launch_s"]
    if kernels:
        grand_total = sum(sum(durs) for durs in kernels.values())
        rows = []
        for name, durs in sorted(kernels.items(), key=lambda kv: -sum(kv[1])):
            total = sum(durs)
            share = 100.0 * total / grand_total if grand_total else 0.0
            rows.append([
                f"{share:.1f}%",
                format_seconds(total),
                str(len(durs)),
                format_seconds(total / len(durs)),
                format_seconds(min(durs)),
                format_seconds(max(durs)),
                name,
            ])
        out.append(render_table(
            ["time(%)", "total", "calls", "mean", "min", "max", "kernel"],
            rows, title="GPU activities (kernel launches)"))

    vendor: Dict[str, List[Dict[str, Any]]] = {}
    for rec in records:
        if rec.get("cat") == "vendor":
            name = rec["name"]
            if name.startswith("exec:"):
                name = name[len("exec:"):]
            if name.startswith("vendor:"):
                name = name[len("vendor:"):]
            backend = str(rec.get("args", {}).get("backend", "?"))
            vendor.setdefault(f"{name} [{backend}]", []).append(rec)
    if vendor:
        grand_total = sum(
            sum(r["dur_us"] for r in recs) for recs in vendor.values()
        )
        rows = []
        for name, recs in sorted(
            vendor.items(), key=lambda kv: -sum(r["dur_us"] for r in kv[1])
        ):
            durs = [r["dur_us"] / 1e6 for r in recs]
            total = sum(durs)
            share = 100.0 * total * 1e6 / grand_total if grand_total else 0.0
            gflops = sum(
                float(r.get("args", {}).get("flops", 0)) for r in recs
            ) / 1e9
            rows.append([
                f"{share:.1f}%",
                format_seconds(total),
                str(len(durs)),
                format_seconds(total / len(durs)),
                f"{gflops:.3g}",
                name,
            ])
        out.append("")
        out.append(render_table(
            ["time(%)", "total", "calls", "mean", "gflop", "library call"],
            rows, title="Vendor library calls (ompxblas)"))

    copies: Dict[str, List[Dict[str, Any]]] = {}
    for rec in records:
        if rec.get("cat") == "memcpy":
            direction = str(rec.get("args", {}).get("direction", "?"))
            copies.setdefault(direction, []).append(rec)
    if copies:
        rows = []
        for direction, recs in sorted(copies.items()):
            nbytes = sum(float(r.get("args", {}).get("bytes", 0)) for r in recs)
            total = sum(r["dur_us"] for r in recs) / 1e6
            rows.append([direction, str(len(recs)), _format_bytes(nbytes),
                         format_seconds(total)])
        out.append("")
        out.append(render_table(["direction", "count", "bytes", "total"],
                                rows, title="Memcpy rollup"))

    if predicted:
        rows = []
        for name, pred_s in sorted(predicted.items()):
            durs = kernels.get(name, [])
            observed = sum(durs) / len(durs) if durs else 0.0
            ratio = f"{pred_s / observed:.3g}x" if observed else "n/a"
            rows.append([name, format_seconds(pred_s),
                         format_seconds(observed), ratio])
        out.append("")
        out.append(render_table(
            ["kernel", "predicted/launch", "observed mean", "predicted/observed"],
            rows, title="Perf model vs simulator (per launch)"))

    prediction_only = [r for r in records if r.get("cat") == "prediction"]
    if prediction_only and not kernels:
        rows = [[r["name"][len("predict:"):],
                 format_seconds(float(r.get("args", {}).get("per_launch_s", 0.0))),
                 str(r.get("args", {}).get("launches", 1)),
                 format_seconds(float(r.get("args", {}).get("total_s", 0.0)))]
                for r in prediction_only]
        out.append("")
        out.append(render_table(
            ["kernel", "predicted/launch", "launches", "predicted total"],
            rows, title="Perf-model predictions (no simulated launches traced)"))

    if len(out) == 1:
        out.append("  (no trace records)")
    return "\n".join(out)


def render_bars(
    values: Mapping[str, Optional[float]],
    *,
    title: Optional[str] = None,
    width: int = 50,
    clip_ratio: float = 20.0,
) -> str:
    """ASCII bar chart in the spirit of the paper's Figure 8 panels.

    Bars scale to the largest *unclipped* value; values more than
    ``clip_ratio`` times the smallest are clipped and annotated with their
    number, exactly like the paper annotates the off-scale ``omp`` bars
    (e.g. "145.6ms").  ``None`` values render as excluded.
    """
    present = {k: v for k, v in values.items() if v is not None}
    out: List[str] = []
    if title:
        out.append(title)
    if not present:
        return "\n".join(out + ["  (no data)"])
    smallest = min(present.values())
    unclipped = {k: v for k, v in present.items() if v <= smallest * clip_ratio}
    scale_max = max(unclipped.values()) if unclipped else max(present.values())
    label_width = max(len(k) for k in values)
    for label, value in values.items():
        if value is None:
            out.append(f"  {label.ljust(label_width)} | excluded (invalid checksum)")
            continue
        if value > smallest * clip_ratio:
            bar = "#" * width
            out.append(
                f"  {label.ljust(label_width)} |{bar}> {format_seconds(value)} (off scale)"
            )
            continue
        bar = "#" * max(1, round(width * value / scale_max))
        out.append(f"  {label.ljust(label_width)} |{bar.ljust(width)}  {format_seconds(value)}")
    return "\n".join(out)
