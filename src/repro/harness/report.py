"""Plain-text rendering of the reproduced tables and figures."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["render_table", "format_seconds", "render_bars"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table (the harness's one output format)."""
    columns = [list(col) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(str(cell)) for cell in col) for col in columns]

    def line(cells: Sequence[str]) -> str:
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    for row in rows:
        out.append(line(row))
    return "\n".join(out)


def format_seconds(seconds: float) -> str:
    """Render a duration with the unit the paper's plot for it uses."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def render_bars(
    values: Mapping[str, Optional[float]],
    *,
    title: Optional[str] = None,
    width: int = 50,
    clip_ratio: float = 20.0,
) -> str:
    """ASCII bar chart in the spirit of the paper's Figure 8 panels.

    Bars scale to the largest *unclipped* value; values more than
    ``clip_ratio`` times the smallest are clipped and annotated with their
    number, exactly like the paper annotates the off-scale ``omp`` bars
    (e.g. "145.6ms").  ``None`` values render as excluded.
    """
    present = {k: v for k, v in values.items() if v is not None}
    out: List[str] = []
    if title:
        out.append(title)
    if not present:
        return "\n".join(out + ["  (no data)"])
    smallest = min(present.values())
    unclipped = {k: v for k, v in present.items() if v <= smallest * clip_ratio}
    scale_max = max(unclipped.values()) if unclipped else max(present.values())
    label_width = max(len(k) for k in values)
    for label, value in values.items():
        if value is None:
            out.append(f"  {label.ljust(label_width)} | excluded (invalid checksum)")
            continue
        if value > smallest * clip_ratio:
            bar = "#" * width
            out.append(
                f"  {label.ljust(label_width)} |{bar}> {format_seconds(value)} (off scale)"
            )
            continue
        bar = "#" * max(1, round(width * value / scale_max))
        out.append(f"  {label.ljust(label_width)} |{bar.ljust(width)}  {format_seconds(value)}")
    return "\n".join(out)
