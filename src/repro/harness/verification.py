"""The functional verification matrix: every app x variant x device.

The paper's benchmarks self-verify (XSBench's checksum is what got its
``omp`` bar excluded).  This module runs the reproduction's equivalent:
each application's reduced functional problem through every source
variant on both device presets, verified against the NumPy reference.
``repro-figures verify`` prints the matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..apps import ALL_APPS, VersionLabel
from ..gpu import get_device
from ..openmp.data import data_environment
from .report import render_table

__all__ = ["VerificationCell", "verification_matrix", "render_verification"]


@dataclass(frozen=True)
class VerificationCell:
    """One (app, variant, device) functional verification outcome."""

    app: str
    variant: str
    device: str
    passed: bool
    checksum: float
    error: Optional[str] = None


def verification_matrix() -> List[VerificationCell]:
    """Run and verify every app variant on both devices."""
    cells: List[VerificationCell] = []
    for app_cls in ALL_APPS:
        app = app_cls()
        params = app.functional_params()
        for ordinal, device_name in ((0, "A100"), (1, "MI250")):
            device = get_device(ordinal)
            for variant in app.functional_variants:
                try:
                    result = app.run_single(variant, params, device)
                    passed = app.verify(result, params)
                    cells.append(VerificationCell(
                        app=app.name, variant=variant, device=device_name,
                        passed=passed, checksum=result.checksum,
                    ))
                except Exception as exc:  # noqa: BLE001 - report, don't abort the matrix
                    cells.append(VerificationCell(
                        app=app.name, variant=variant, device=device_name,
                        passed=False, checksum=float("nan"), error=repr(exc),
                    ))
                finally:
                    data_environment(device).reset()
    return cells


def render_verification() -> str:
    """The verification matrix as an ASCII table."""
    cells = verification_matrix()
    rows = []
    for cell in cells:
        status = "ok" if cell.passed else f"FAIL ({cell.error or 'checksum'})"
        rows.append([cell.app, cell.variant, cell.device,
                     f"{cell.checksum:.4f}", status])
    failures = sum(1 for c in cells if not c.passed)
    table = render_table(
        ["benchmark", "variant", "device", "checksum", "verification"],
        rows,
        title="Functional verification matrix (reduced problems, virtual GPU)",
    )
    return f"{table}\n{failures} failure(s) across {len(cells)} cells"
