"""``repro-figures``: print every reproduced table and figure.

Usage::

    repro-figures            # Figures 6, 7, 8 and the §4.2 claim check
    repro-figures fig6       # just the benchmark table
    repro-figures fig7       # just the system configuration
    repro-figures fig8       # just the execution-time estimates
    repro-figures bars       # Figure 8 as ASCII bar panels
    repro-figures e2e        # kernel-only vs end-to-end (with transfers)
    repro-figures relations  # just the qualitative-claim check
    repro-figures verify     # functional verification matrix (runs kernels)
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence

from .figures import (
    figure8_relations,
    render_end_to_end,
    render_figure6,
    render_figure7,
    render_figure8,
    render_figure8_bars,
)
from .verification import render_verification

__all__ = ["main"]


def render_relations() -> str:
    lines = ["Paper claims (§4.2) vs. the regenerated Figure 8:"]
    failures = 0
    for rel, ok in figure8_relations():
        mark = "PASS" if ok else "FAIL"
        if not ok:
            failures += 1
        lines.append(f"  {mark}  [{rel.app} / {rel.system}] {rel.claim}")
    lines.append(f"{failures} failure(s)")
    return "\n".join(lines)


_SECTIONS = {
    "fig6": render_figure6,
    "fig7": render_figure7,
    "fig8": render_figure8,
    "bars": render_figure8_bars,
    "e2e": render_end_to_end,
    "relations": render_relations,
    "verify": render_verification,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point; returns a process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    if args and any(a in ("-h", "--help") for a in args):
        print(__doc__)
        return 0
    unknown = [a for a in args if a not in _SECTIONS]
    if unknown:
        print(f"unknown section(s): {unknown}; choose from {sorted(_SECTIONS)}", file=sys.stderr)
        return 2
    sections: List[str] = args or ["fig6", "fig7", "fig8", "relations"]  # verify is opt-in
    out = [_SECTIONS[name]() for name in sections]
    print("\n\n".join(out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
