"""OpenMP 5.1 interop: foreign-runtime objects carrying a stream.

§3.5 of the paper: ``#pragma omp interop init(targetsync: obj)`` hands the
user an object whose *targetsync* property is a native stream/queue of the
offload runtime.  Here the foreign runtime is the virtual GPU, so the
targetsync property is a :class:`repro.gpu.Stream`.

The property-query API follows OpenMP 5.2 (``omp_get_interop_*``); the
small enum subset covers what the paper's Figure 5 flow needs.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import InteropError
from ..gpu.device import Device, Placement, resolve_placement
from ..gpu.stream import Stream

__all__ = [
    "omp_interop_none",
    "InteropObj",
    "interop_init",
    "interop_use",
    "interop_destroy",
    "omp_get_interop_int",
    "omp_get_interop_ptr",
    "omp_get_interop_str",
]

#: The uninitialized interop value (``omp_interop_none`` in the spec).
omp_interop_none = None

_interop_ids = itertools.count(1)


class InteropObj:
    """A live ``omp_interop_t`` created with ``init(targetsync: obj)``."""

    def __init__(self, device: Device) -> None:
        self._id = next(_interop_ids)
        self.device = device
        self._stream: Optional[Stream] = Stream(device, name=f"interop-{self._id}")

    @property
    def targetsync(self) -> Stream:
        """The foreign synchronization object (the stream)."""
        if self._stream is None:
            raise InteropError("interop object used after omp_interop_destroy")
        return self._stream

    @property
    def is_destroyed(self) -> bool:
        return self._stream is None

    def _destroy(self) -> None:
        if self._stream is not None:
            self._stream.synchronize()
            self._stream.close()
            self._stream = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "destroyed" if self.is_destroyed else "live"
        return f"<omp_interop_t #{self._id} on {self.device.spec.name} ({state})>"


def interop_init(*, targetsync: bool = True, device: Placement = None) -> InteropObj:
    """``#pragma omp interop init(targetsync: obj) [device(...)]``.

    ``device`` follows the library-wide placement contract: an ``int``
    ordinal (the spec's ``device(n)`` clause literally takes one), a
    :class:`Device`, or ``None`` for the current default device.
    """
    if not targetsync:
        raise InteropError(
            "only init(targetsync: ...) is supported; the paper's extension "
            "is about streams, not contexts"
        )
    return InteropObj(resolve_placement(device))


def interop_use(obj: InteropObj) -> None:
    """``#pragma omp interop use(obj)`` — synchronize with the foreign queue."""
    obj.targetsync.synchronize()


def interop_destroy(obj: InteropObj) -> None:
    """``#pragma omp interop destroy(obj)``."""
    obj._destroy()


# --- property queries (OpenMP 5.2 API shapes) -------------------------------

def omp_get_interop_int(obj: InteropObj, prop: str) -> int:
    """Query an integer interop property (``device_num``)."""
    if prop == "device_num":
        return obj.device.ordinal
    raise InteropError(f"unknown integer interop property {prop!r}")


def omp_get_interop_ptr(obj: InteropObj, prop: str):
    """Query a pointer interop property (``targetsync``)."""
    if prop == "targetsync":
        return obj.targetsync
    raise InteropError(f"unknown pointer interop property {prop!r}")


def omp_get_interop_str(obj: InteropObj, prop: str) -> str:
    """Query a string interop property (``vendor``/``device``)."""
    if prop == "vendor":
        return obj.device.spec.vendor
    if prop == "device":
        return obj.device.spec.name
    raise InteropError(f"unknown string interop property {prop!r}")
