"""Model of the LLVM OpenMP host runtime and target offloading.

This is the paper's *baseline* programming model (its ``omp`` bars):
directive-style target regions, the device data environment, tasking with
``depend``, interop objects, and — crucially for the performance story — a
model of LLVM's device code generation (generic-mode state machines,
globalization, heap-to-shared) in :mod:`repro.openmp.codegen`.

The kernel-language *extensions* the paper proposes live in
:mod:`repro.ompx`, layered on top of this module.
"""

from .allocators import (
    Allocator,
    MemSpace,
    omp_alloc,
    omp_const_mem_alloc,
    omp_default_mem_alloc,
    omp_destroy_allocator,
    omp_free,
    omp_high_bw_mem_alloc,
    omp_init_allocator,
    omp_large_cap_mem_alloc,
    omp_low_lat_mem_alloc,
    omp_pteam_mem_alloc,
    omp_thread_mem_alloc,
)
from .codegen import CodegenInfo, ExecMode, RegionTraits, lower_region
from .data import (
    DeviceDataEnvironment,
    MapType,
    TargetData,
    data_environment,
    omp_target_alloc,
    omp_target_free,
    omp_target_is_present,
    omp_target_memcpy,
)
from .interop import (
    InteropObj,
    interop_destroy,
    interop_init,
    interop_use,
    omp_get_interop_int,
    omp_get_interop_ptr,
    omp_get_interop_str,
    omp_interop_none,
)
from .runtime import (
    OmpThread,
    omp_get_default_device,
    omp_get_initial_device,
    omp_get_num_devices,
    omp_set_default_device,
)
from .target import (
    TargetAccessor,
    TargetRegionReport,
    target,
    target_teams_distribute_parallel_for,
    target_teams_distribute_parallel_for_collapse,
    target_teams_parallel,
)
from .task import (
    DependType,
    Task,
    TaskRuntime,
    default_task_runtime,
    location_key,
    register_depend_handler,
)

__all__ = [
    "Allocator",
    "MemSpace",
    "omp_alloc",
    "omp_const_mem_alloc",
    "omp_default_mem_alloc",
    "omp_destroy_allocator",
    "omp_free",
    "omp_high_bw_mem_alloc",
    "omp_init_allocator",
    "omp_large_cap_mem_alloc",
    "omp_low_lat_mem_alloc",
    "omp_pteam_mem_alloc",
    "omp_thread_mem_alloc",
    "CodegenInfo",
    "ExecMode",
    "RegionTraits",
    "lower_region",
    "DeviceDataEnvironment",
    "MapType",
    "TargetData",
    "data_environment",
    "omp_target_alloc",
    "omp_target_free",
    "omp_target_is_present",
    "omp_target_memcpy",
    "InteropObj",
    "interop_destroy",
    "interop_init",
    "interop_use",
    "omp_get_interop_int",
    "omp_get_interop_ptr",
    "omp_get_interop_str",
    "omp_interop_none",
    "OmpThread",
    "omp_get_default_device",
    "omp_get_initial_device",
    "omp_get_num_devices",
    "omp_set_default_device",
    "TargetAccessor",
    "TargetRegionReport",
    "target",
    "target_teams_distribute_parallel_for",
    "target_teams_distribute_parallel_for_collapse",
    "target_teams_parallel",
    "DependType",
    "Task",
    "TaskRuntime",
    "default_task_runtime",
    "location_key",
    "register_depend_handler",
]
