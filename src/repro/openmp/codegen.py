"""Model of LLVM OpenMP device code generation.

The paper's performance story for the classic ``omp`` baseline rests on
documented LLVM OpenMP code-generation behaviours (its refs [5] and [9] —
Doerfert et al. IPDPS'22, Huber et al. CGO'22):

* **Execution modes.**  A target region compiles to *SPMD* mode when the
  compiler proves every thread executes the parallel region (``target
  teams`` immediately followed by ``parallel``); otherwise it compiles to
  *generic* mode, where one "main" thread runs serial team code and worker
  threads sit in a **state machine** waiting for parallel regions.  When
  the state machine cannot be rewritten/specialized, every parallel region
  pays a broadcast + barrier round trip — this is why the paper's Stencil
  ``omp`` version is ~100x slower (§4.2.6).
* **Globalization.**  Locals that may be shared across threads are moved
  ("globalized") from registers/stack to heap in global memory.  The
  CGO'22 *heap-to-shared* optimization relocates small globalized
  allocations into shared memory — which is why RSBench's ``omp`` version
  beats CUDA on the A100 (2 KB of shared memory, §4.2.2).
* **Runtime initialization.**  Generic/SPMD kernels start by initializing
  the device runtime; ``ompx_bare`` kernels skip it entirely (§3.1).
* **The Adam thread-limit bug.**  The paper reports (§4.2.5) an LLVM issue
  that launches only 32 threads per block for Adam's ``omp`` version,
  making it 8x slower.  Modelled as an explicit, opt-in defect flag.

:class:`RegionTraits` captures the structural facts of a region (what a
front end can see); :func:`lower_region` turns them into a
:class:`CodegenInfo` (what the backend emitted).  The performance model
consumes :class:`CodegenInfo`; nothing downstream hardcodes per-benchmark
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import CompileError

__all__ = ["ExecMode", "RegionTraits", "CodegenInfo", "lower_region"]


class ExecMode:
    """Device execution modes LLVM OpenMP can emit (plus the paper's bare)."""

    GENERIC = "generic"
    SPMD = "spmd"
    BARE = "bare"


@dataclass(frozen=True)
class RegionTraits:
    """Structural facts about a target region, as a front end sees them."""

    #: 'worksharing' = target teams distribute parallel for;
    #: 'simt' = explicit nested parallel in SIMT style (paper Figure 3);
    #: 'bare' = target teams ompx_bare (paper Figure 4).
    style: str = "worksharing"
    #: The compiler can prove all threads enter the parallel region with no
    #: observable serial team code in between -> SPMD mode.
    spmd_amenable: bool = True
    #: Serial team-code between `teams` and `parallel` contains runtime
    #: calls or side effects -> the generic state machine cannot be
    #: specialized away.
    state_machine_rewritable: bool = True
    #: Bytes of local variables per team that must be globalized because the
    #: compiler cannot prove they stay thread-private.
    escaping_local_bytes: int = 0
    #: Whether the kernel uses block-level synchronization.
    uses_barrier: bool = False
    #: Whether the region body calls device functions that resist inlining
    #: cleanup (drives binary-size differences, §4.2.3).
    device_fn_calls: int = 0
    #: Known-constant thread count requested via thread_limit.
    requested_thread_limit: Optional[int] = None
    #: Opt-in model of the LLVM issue behind Adam's 8x slowdown: thread
    #: limit inference fails and the launch defaults to one warp.
    thread_limit_bug: bool = False

    def __post_init__(self) -> None:
        if self.style not in ("worksharing", "simt", "bare"):
            raise CompileError(f"unknown region style {self.style!r}")
        if self.escaping_local_bytes < 0:
            raise CompileError("escaping_local_bytes must be >= 0")


@dataclass(frozen=True)
class CodegenInfo:
    """What the device backend emitted for one target region."""

    mode: str
    runtime_init: bool
    state_machine: bool
    #: Globalized bytes that stayed on the heap (global memory).
    globalized_heap_bytes: int
    #: Globalized bytes the heap-to-shared optimization moved to shared mem.
    heap_to_shared_bytes: int
    #: Threads per block the launch will actually use.
    effective_thread_limit: Optional[int]
    #: Extra registers the runtime presence costs each thread.
    register_overhead: int
    #: Extra bytes of device binary from runtime + unresolved device calls.
    binary_overhead_bytes: int

    @property
    def is_bare(self) -> bool:
        return self.mode == ExecMode.BARE


# Shared-memory budget the heap-to-shared optimization may claim per team
# (the CGO'22 implementation is similarly conservative).
_HEAP_TO_SHARED_BUDGET = 4 * 1024
# Device runtime footprint, in registers and binary bytes, for kernels that
# keep the runtime (SPMD) vs. also keep worker state machines (generic).
_RUNTIME_REGISTERS_SPMD = 6
_RUNTIME_REGISTERS_GENERIC = 14
_RUNTIME_BINARY_SPMD = 8 * 1024
_RUNTIME_BINARY_GENERIC = 24 * 1024
_UNRESOLVED_DEVICE_FN_BYTES = 4 * 1024


def lower_region(traits: RegionTraits, *, optimize_heap_to_shared: bool = True) -> CodegenInfo:
    """Lower a target region's traits to codegen facts.

    ``optimize_heap_to_shared`` corresponds to the CGO'22 optimization
    being enabled (it is, in the LLVM the paper builds on); tests flip it
    off to measure its contribution (an ablation the paper implies in
    §4.2.2).
    """
    if traits.style == "bare":
        # §3.1: no runtime init, no state machine, no globalization — local
        # variables keep their natural (private) storage.
        return CodegenInfo(
            mode=ExecMode.BARE,
            runtime_init=False,
            state_machine=False,
            globalized_heap_bytes=0,
            heap_to_shared_bytes=0,
            effective_thread_limit=traits.requested_thread_limit,
            register_overhead=0,
            binary_overhead_bytes=traits.device_fn_calls * _UNRESOLVED_DEVICE_FN_BYTES,
        )

    spmd = traits.spmd_amenable and not traits.thread_limit_bug
    mode = ExecMode.SPMD if spmd else ExecMode.GENERIC
    state_machine = mode == ExecMode.GENERIC and not traits.state_machine_rewritable

    to_shared = 0
    heap = traits.escaping_local_bytes
    if optimize_heap_to_shared and heap and heap <= _HEAP_TO_SHARED_BUDGET:
        to_shared, heap = heap, 0

    effective = traits.requested_thread_limit
    if traits.thread_limit_bug:
        # The LLVM issue the paper hit with Adam: the launch collapses to a
        # single warp per block.
        effective = 32 if effective is None else min(effective, 32)

    if mode == ExecMode.SPMD:
        reg_overhead = _RUNTIME_REGISTERS_SPMD
        bin_overhead = _RUNTIME_BINARY_SPMD
    else:
        reg_overhead = _RUNTIME_REGISTERS_GENERIC
        bin_overhead = _RUNTIME_BINARY_GENERIC

    return CodegenInfo(
        mode=mode,
        runtime_init=True,
        state_machine=state_machine,
        globalized_heap_bytes=heap,
        heap_to_shared_bytes=to_shared,
        effective_thread_limit=effective,
        register_overhead=reg_overhead,
        binary_overhead_bytes=bin_overhead
        + traits.device_fn_calls * _UNRESOLVED_DEVICE_FN_BYTES,
    )
