"""OpenMP memory allocators (the §2.5 ``allocate`` machinery).

§2.5 of the paper: CUDA names its memory spaces with keywords, while
"in OpenMP, the allocate directive, combined with the appropriate
allocator, serves a similar purpose".  This module implements that
host-side machinery: the predefined allocators of the OpenMP spec,
``omp_alloc``/``omp_free``, and ``omp_init_allocator`` with the trait
set that matters on GPUs (alignment, fallback, pinning).

Space mapping on a GPU target:

* default / large-cap / high-bandwidth spaces -> device global memory;
* constant space -> the device's constant bank is *host-initialized*
  (``ompx_memcpy_to_symbol``); allocating from it at run time is
  rejected, as real GPU targets do;
* pteam / cgroup / thread spaces -> team-shared or thread-private storage
  exists only inside a target region — the host-side allocator rejects
  them and points at ``groupprivate`` (the paper's footnote syntax).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..errors import OpenMPError, OutOfMemoryError
from ..gpu.device import Device, current_device
from ..gpu.memory import DevicePointer

__all__ = [
    "MemSpace",
    "Allocator",
    "omp_default_mem_alloc",
    "omp_large_cap_mem_alloc",
    "omp_high_bw_mem_alloc",
    "omp_const_mem_alloc",
    "omp_low_lat_mem_alloc",
    "omp_pteam_mem_alloc",
    "omp_cgroup_mem_alloc",
    "omp_thread_mem_alloc",
    "omp_init_allocator",
    "omp_destroy_allocator",
    "omp_alloc",
    "omp_free",
]


class MemSpace:
    """The predefined OpenMP memory spaces."""

    DEFAULT = "omp_default_mem_space"
    LARGE_CAP = "omp_large_cap_mem_space"
    CONST = "omp_const_mem_space"
    HIGH_BW = "omp_high_bw_mem_space"
    LOW_LAT = "omp_low_lat_mem_space"

    #: Spaces that land in device global memory on a GPU target.
    _GLOBAL = (DEFAULT, LARGE_CAP, HIGH_BW)


#: Trait keys this model understands (a subset of the spec's table).
_KNOWN_TRAITS = ("alignment", "fallback", "pinned", "pteam_scoped", "thread_scoped")
_FALLBACKS = ("null_fb", "abort_fb", "default_mem_fb")


@dataclass(frozen=True)
class Allocator:
    """An ``omp_allocator_handle_t``: a memory space plus traits."""

    name: str
    memspace: str
    traits: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key in self.traits:
            if key not in _KNOWN_TRAITS:
                raise OpenMPError(
                    f"unknown allocator trait {key!r}; supported: {_KNOWN_TRAITS}"
                )
        alignment = self.traits.get("alignment")
        if alignment is not None:
            if not isinstance(alignment, int) or alignment <= 0 or alignment & (alignment - 1):
                raise OpenMPError(
                    f"alignment trait must be a positive power of two, got {alignment!r}"
                )
        fallback = self.traits.get("fallback")
        if fallback is not None and fallback not in _FALLBACKS:
            raise OpenMPError(
                f"fallback trait must be one of {_FALLBACKS}, got {fallback!r}"
            )

    @property
    def alignment(self) -> int:
        """Requested alignment in bytes (default 16, the spec minimum)."""
        return int(self.traits.get("alignment", 16))


# --- the predefined allocators -------------------------------------------------

omp_default_mem_alloc = Allocator("omp_default_mem_alloc", MemSpace.DEFAULT)
omp_large_cap_mem_alloc = Allocator("omp_large_cap_mem_alloc", MemSpace.LARGE_CAP)
omp_high_bw_mem_alloc = Allocator("omp_high_bw_mem_alloc", MemSpace.HIGH_BW)
omp_const_mem_alloc = Allocator("omp_const_mem_alloc", MemSpace.CONST)
omp_low_lat_mem_alloc = Allocator("omp_low_lat_mem_alloc", MemSpace.LOW_LAT)
omp_pteam_mem_alloc = Allocator(
    "omp_pteam_mem_alloc", MemSpace.LOW_LAT, {"pteam_scoped": True}
)
omp_cgroup_mem_alloc = Allocator(
    "omp_cgroup_mem_alloc", MemSpace.LOW_LAT, {"pteam_scoped": True}
)
omp_thread_mem_alloc = Allocator(
    "omp_thread_mem_alloc", MemSpace.DEFAULT, {"thread_scoped": True}
)

_custom_allocators: Dict[int, Allocator] = {}
_custom_lock = threading.Lock()
_custom_counter = 0


def omp_init_allocator(memspace: str, traits: Optional[Mapping[str, object]] = None) -> Allocator:
    """``omp_init_allocator``: a custom allocator over a predefined space."""
    if memspace not in (
        MemSpace.DEFAULT, MemSpace.LARGE_CAP, MemSpace.CONST,
        MemSpace.HIGH_BW, MemSpace.LOW_LAT,
    ):
        raise OpenMPError(f"unknown memory space {memspace!r}")
    global _custom_counter
    with _custom_lock:
        _custom_counter += 1
        allocator = Allocator(f"custom-{_custom_counter}", memspace, dict(traits or {}))
        _custom_allocators[_custom_counter] = allocator
    return allocator


def omp_destroy_allocator(allocator: Allocator) -> None:
    """``omp_destroy_allocator``: forget a custom allocator (predefined ones
    are immortal, as in the spec)."""
    with _custom_lock:
        for key, value in list(_custom_allocators.items()):
            if value is allocator:
                del _custom_allocators[key]
                return


def omp_alloc(
    size: int,
    allocator: Allocator = omp_default_mem_alloc,
    device: Optional[Device] = None,
) -> DevicePointer:
    """``omp_alloc``: allocate from the allocator's memory space.

    On a GPU target the global-memory spaces map onto the device
    allocator; team-, thread- and constant-scoped requests are host-side
    errors (they only exist inside target regions / at program setup).
    The ``fallback`` trait governs failure: ``null_fb`` returns the null
    pointer instead of raising.
    """
    if size < 0:
        raise OpenMPError(f"allocation size must be >= 0, got {size}")
    device = device or current_device()
    if allocator.traits.get("pteam_scoped"):
        raise OpenMPError(
            f"{allocator.name} allocates team-shared storage, which exists "
            f"only inside a target region — use groupprivate there"
        )
    if allocator.traits.get("thread_scoped"):
        raise OpenMPError(
            f"{allocator.name} allocates thread-private storage, which exists "
            f"only inside a target region"
        )
    if allocator.memspace == MemSpace.CONST:
        raise OpenMPError(
            "the constant space is host-initialized; upload symbols with "
            "ompx_memcpy_to_symbol / cudaMemcpyToSymbol instead"
        )
    if allocator.memspace == MemSpace.LOW_LAT:
        raise OpenMPError(
            "the low-latency space maps to shared memory on GPU targets and "
            "is only allocatable inside a target region"
        )
    try:
        ptr = device.allocator.malloc(size)
    except OutOfMemoryError:
        fallback = allocator.traits.get("fallback", "default_mem_fb")
        if fallback == "null_fb":
            return DevicePointer(device.ordinal, 0)
        raise
    if ptr.address % allocator.alignment != 0:
        # The device allocator aligns to 256 B, which satisfies every
        # power-of-two alignment up to 256; larger requests are honoured by
        # construction because the base address is itself 4 KiB-aligned.
        raise OpenMPError(
            f"allocator {allocator.name!r} could not satisfy alignment "
            f"{allocator.alignment}"
        )
    return ptr


def omp_free(
    ptr: DevicePointer,
    allocator: Allocator = omp_default_mem_alloc,
    device: Optional[Device] = None,
) -> None:
    """``omp_free``: release an ``omp_alloc`` allocation (null is a no-op)."""
    if ptr.is_null:
        return
    (device or current_device()).allocator.free(ptr)
