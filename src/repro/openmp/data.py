"""OpenMP device data environment: map clauses and target memory APIs.

§2.6 of the paper: OpenMP manages host/device data either with directives
(``map(to: a[0:n])``, ``target update``) or with APIs
(``omp_target_alloc``, ``omp_target_memcpy``).  Both are implemented here
over the virtual GPU allocator, including the reference-counted *presence*
semantics of the OpenMP spec: mapping an already-present variable bumps a
refcount and transfers nothing; the transfer happens only on the 0->1
(``to``) and 1->0 (``from``) edges.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MappingError
from ..gpu.device import Device
from ..gpu.memory import DevicePointer

__all__ = [
    "MapType",
    "MapEntry",
    "DeviceDataEnvironment",
    "data_environment",
    "TargetData",
    "omp_target_alloc",
    "omp_target_free",
    "omp_target_memcpy",
    "omp_target_is_present",
]


class MapType:
    """Map-type modifiers of the ``map`` clause."""

    TO = "to"
    FROM = "from"
    TOFROM = "tofrom"
    ALLOC = "alloc"
    RELEASE = "release"
    DELETE = "delete"

    _ENTRY_KINDS = (TO, FROM, TOFROM, ALLOC)

    @classmethod
    def validate(cls, kind: str) -> str:
        if kind not in cls._ENTRY_KINDS:
            raise MappingError(
                f"unsupported map type {kind!r}; expected one of {cls._ENTRY_KINDS}"
            )
        return kind


def _host_key(array: np.ndarray) -> Tuple[int, int]:
    """Identity of a host buffer: (address of first element, nbytes)."""
    if not isinstance(array, np.ndarray):
        raise MappingError(f"map clauses take NumPy arrays, got {type(array).__name__}")
    if not array.flags.c_contiguous:
        raise MappingError(
            "mapped arrays must be C-contiguous (OpenMP maps contiguous "
            "storage; take .copy() of the slice first)"
        )
    return (array.__array_interface__["data"][0], array.nbytes)


@dataclass
class MapEntry:
    """One present variable in a device data environment."""

    device_ptr: DevicePointer
    refcount: int
    nbytes: int
    host_array: np.ndarray  # kept so `from` transfers know where to land


class DeviceDataEnvironment:
    """The per-device table of host->device correspondences."""

    def __init__(self, device: Device) -> None:
        self.device = device
        self._lock = threading.RLock()
        self._entries: Dict[Tuple[int, int], MapEntry] = {}

    # --- presence ------------------------------------------------------------
    def is_present(self, array: np.ndarray) -> bool:
        """Whether the host array is currently mapped to this device."""
        with self._lock:
            return _host_key(array) in self._entries

    def lookup(self, array: np.ndarray) -> DevicePointer:
        """Device pointer for a mapped host array (the inside-region view)."""
        with self._lock:
            entry = self._entries.get(_host_key(array))
            if entry is None:
                raise MappingError(
                    f"host array (shape={array.shape}, dtype={array.dtype}) is "
                    f"not mapped to {self.device.spec.name!r}"
                )
            return entry.device_ptr

    @property
    def num_present(self) -> int:
        with self._lock:
            return len(self._entries)

    def refcount(self, array: np.ndarray) -> int:
        """The array's current structured-region reference count."""
        with self._lock:
            entry = self._entries.get(_host_key(array))
            return entry.refcount if entry else 0

    # --- structured mapping ----------------------------------------------------
    def begin(self, maps: Sequence[Tuple[np.ndarray, str]]) -> List[DevicePointer]:
        """Enter a structured data region (``target data`` / implicit maps)."""
        pointers: List[DevicePointer] = []
        with self._lock:
            for array, kind in maps:
                kind = MapType.validate(kind)
                key = _host_key(array)
                entry = self._entries.get(key)
                if entry is None:
                    ptr = self.device.allocator.malloc(array.nbytes)
                    entry = MapEntry(ptr, 0, array.nbytes, array)
                    self._entries[key] = entry
                    if kind in (MapType.TO, MapType.TOFROM):
                        self.device.allocator.memcpy_h2d(ptr, array)
                entry.refcount += 1
                pointers.append(entry.device_ptr)
        return pointers

    def end(self, maps: Sequence[Tuple[np.ndarray, str]]) -> None:
        """Exit a structured data region; transfer/free on the last reference."""
        with self._lock:
            for array, kind in maps:
                kind = MapType.validate(kind)
                key = _host_key(array)
                entry = self._entries.get(key)
                if entry is None:
                    raise MappingError(
                        f"unmatched data-region end for array shape={array.shape}"
                    )
                entry.refcount -= 1
                if entry.refcount == 0:
                    if kind in (MapType.FROM, MapType.TOFROM):
                        self.device.allocator.memcpy_d2h(entry.host_array, entry.device_ptr)
                    self.device.allocator.free(entry.device_ptr)
                    del self._entries[key]

    # --- target update ------------------------------------------------------------
    def update_to(self, array: np.ndarray) -> None:
        """``target update to(array)`` — refresh the device copy."""
        with self._lock:
            self.device.allocator.memcpy_h2d(self.lookup(array), array)

    def update_from(self, array: np.ndarray) -> None:
        """``target update from(array)`` — refresh the host copy."""
        with self._lock:
            self.device.allocator.memcpy_d2h(array, self.lookup(array))

    # --- unstructured --------------------------------------------------------------
    def enter_data(self, maps: Sequence[Tuple[np.ndarray, str]]) -> None:
        """``target enter data`` (map types ``to``/``alloc``)."""
        for _, kind in maps:
            if kind not in (MapType.TO, MapType.ALLOC, MapType.TOFROM):
                raise MappingError(f"target enter data cannot take map type {kind!r}")
        self.begin(maps)

    def exit_data(self, maps: Sequence[Tuple[np.ndarray, str]]) -> None:
        """``target exit data`` (map types ``from``/``release``/``delete``)."""
        with self._lock:
            for array, kind in maps:
                key = _host_key(array)
                entry = self._entries.get(key)
                if entry is None:
                    if kind == MapType.DELETE:
                        continue
                    raise MappingError(
                        f"target exit data: array shape={array.shape} is not present"
                    )
                if kind == MapType.DELETE:
                    self.device.allocator.free(entry.device_ptr)
                    del self._entries[key]
                    continue
                if kind not in (MapType.FROM, MapType.RELEASE):
                    raise MappingError(f"target exit data cannot take map type {kind!r}")
                entry.refcount -= 1
                if entry.refcount == 0:
                    if kind == MapType.FROM:
                        self.device.allocator.memcpy_d2h(entry.host_array, entry.device_ptr)
                    self.device.allocator.free(entry.device_ptr)
                    del self._entries[key]

    def reset(self) -> None:
        """Drop all entries without transfers (test isolation)."""
        with self._lock:
            for entry in self._entries.values():
                self.device.allocator.free(entry.device_ptr)
            self._entries.clear()


# One environment per device, lazily created.
_environments: Dict[int, DeviceDataEnvironment] = {}
_env_lock = threading.Lock()


def data_environment(device: Device) -> DeviceDataEnvironment:
    """The (singleton) device data environment of ``device``."""
    with _env_lock:
        env = _environments.get(device.ordinal)
        if env is None or env.device is not device:
            env = DeviceDataEnvironment(device)
            _environments[device.ordinal] = env
        return env


class TargetData:
    """``#pragma omp target data map(...)`` as a context manager."""

    def __init__(self, device: Device, maps: Iterable[Tuple[np.ndarray, str]]) -> None:
        self.device = device
        self.maps = list(maps)
        self.env = data_environment(device)
        self.pointers: List[DevicePointer] = []

    def __enter__(self) -> "TargetData":
        self.pointers = self.env.begin(self.maps)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.env.end(self.maps)

    def device_ptr(self, array: np.ndarray) -> DevicePointer:
        """Device pointer of a mapped host array."""
        return self.env.lookup(array)


# --- API-style management (§2.6 "APIs such as omp_target_alloc") -------------

def omp_target_alloc(size: int, device: Device) -> DevicePointer:
    """Explicit device allocation (not entered in the data environment)."""
    return device.allocator.malloc(size)


def omp_target_free(ptr: DevicePointer, device: Device) -> None:
    """Release memory obtained from ``omp_target_alloc``."""
    device.allocator.free(ptr)


def omp_target_memcpy(
    dst,
    src,
    length: int,
    dst_offset: int = 0,
    src_offset: int = 0,
    dst_device: Optional[Device] = None,
    src_device: Optional[Device] = None,
) -> None:
    """``omp_target_memcpy``: any combination of host arrays / device pointers.

    A ``None`` device marks that side as the host (the initial device).
    """
    if isinstance(dst, DevicePointer) and dst_device is None:
        raise MappingError("device destination requires dst_device")
    if isinstance(src, DevicePointer) and src_device is None:
        raise MappingError("device source requires src_device")

    if isinstance(src, DevicePointer) and isinstance(dst, DevicePointer):
        if src_device is not dst_device:
            # Cross-device: stage through the host.
            staging = np.empty(length, dtype=np.uint8)
            src_device.allocator.memcpy_d2h(staging, src + src_offset)
            dst_device.allocator.memcpy_h2d(dst + dst_offset, staging)
        else:
            dst_device.allocator.memcpy_d2d(dst + dst_offset, src + src_offset, length)
    elif isinstance(src, DevicePointer):
        host = dst.view(np.uint8).reshape(-1)[dst_offset : dst_offset + length]
        src_device.allocator.memcpy_d2h(host, src + src_offset)
    elif isinstance(dst, DevicePointer):
        host = np.ascontiguousarray(src).view(np.uint8).reshape(-1)
        dst_device.allocator.memcpy_h2d(dst + dst_offset, host[src_offset : src_offset + length])
    else:
        dview = dst.view(np.uint8).reshape(-1)
        sview = np.ascontiguousarray(src).view(np.uint8).reshape(-1)
        dview[dst_offset : dst_offset + length] = sview[src_offset : src_offset + length]


def omp_target_is_present(array: np.ndarray, device: Device) -> bool:
    """``omp_target_is_present``: query the device data environment."""
    return data_environment(device).is_present(array)
