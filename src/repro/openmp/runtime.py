"""OpenMP host runtime: ICVs and device-query API.

The subset of the OpenMP 5.x API the paper's examples rely on, plus the
device-side query functions (``omp_get_team_num`` & co.) as they appear
inside target regions — those live on the :class:`OmpThread` façade since
they are per-thread state.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..gpu.context import ThreadCtx
from ..gpu.device import Device, get_device, registered_devices

__all__ = [
    "omp_get_num_devices",
    "omp_get_initial_device",
    "omp_get_default_device",
    "omp_set_default_device",
    "OmpThread",
]

_state = threading.local()
_INITIAL_DEVICE = -1  # the host, per OpenMP convention


def omp_get_num_devices() -> int:
    """Number of available non-host devices."""
    return len(registered_devices())


def omp_get_initial_device() -> int:
    """The host device number (we use -1, a common implementation choice)."""
    return _INITIAL_DEVICE


def omp_get_default_device() -> int:
    """The default-device ICV."""
    return getattr(_state, "default_device", 0)


def omp_set_default_device(ordinal: int) -> None:
    """Set the default-device ICV (validates the ordinal)."""
    get_device(ordinal)  # validate
    _state.default_device = ordinal


class OmpThread:
    """OpenMP-spelled device-side façade over one simulated GPU thread.

    This is what code inside a *classic* SIMT-style target region sees
    (the paper's Figure 3): ``omp_get_thread_num``, ``omp_get_team_num``,
    ``barrier`` — plus ``groupprivate`` for team-shared storage, using the
    proposed syntax from the paper's §2.5 footnote.
    """

    __slots__ = ("_ctx",)

    def __init__(self, ctx: ThreadCtx) -> None:
        self._ctx = ctx

    # --- OpenMP device API --------------------------------------------------
    def omp_get_thread_num(self) -> int:
        """Thread number within the team (flat, x fastest)."""
        return self._ctx.flat_thread_id

    def omp_get_num_threads(self) -> int:
        """Threads in the current team (``omp_get_num_threads``)."""
        return self._ctx.num_threads

    def omp_get_team_num(self) -> int:
        """This team's index (``omp_get_team_num``)."""
        return self._ctx.flat_block_id

    def omp_get_num_teams(self) -> int:
        """Number of teams in the league (``omp_get_num_teams``)."""
        return self._ctx.num_blocks

    def omp_get_team_size(self) -> int:
        """Alias of ``omp_get_num_threads`` at team scope (Figure 3 uses it)."""
        return self._ctx.num_threads

    def barrier(self) -> None:
        """``#pragma omp barrier`` inside a parallel region on the device."""
        self._ctx.sync_threads()

    # --- memory ---------------------------------------------------------------
    def groupprivate(self, name: str, shape, dtype):
        """``#pragma omp groupprivate(team: var)`` — team-shared storage."""
        return self._ctx.shared_array(name, shape, dtype)

    def deref(self, ptr, shape, dtype):
        """View global memory at a device pointer as an array."""
        return self._ctx.deref(ptr, shape, dtype)

    @property
    def ctx(self) -> ThreadCtx:
        return self._ctx
