"""OpenMP tasking: ``nowait`` target tasks, ``depend`` clauses, ``taskwait``.

§2.4 of the paper: asynchrony in OpenMP comes from ``nowait`` + ``depend``
+ ``taskwait``, executed (in LLVM) by *hidden helper threads* (the paper's
ref [26]).  This module implements that machinery:

* a :class:`TaskRuntime` with a fixed pool of hidden helper threads,
* ``in``/``out``/``inout`` dependence resolution over storage locations
  (the OpenMP rule: only the *location* of the list item matters — the
  exact limitation §3.5 calls out),
* ``taskwait``, optionally restricted by a ``depend`` clause.

The paper's §3.5 extension — ``depend(interopobj: obj)`` — is *not* here:
it is the contribution, so it lives in :mod:`repro.ompx.depend`, which
registers a handler through :func:`register_depend_handler`.  Stock
OpenMP rejects that dependence type, exactly as the paper describes.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import DependenceError
from ..gpu.memory import DevicePointer

__all__ = [
    "DependType",
    "Task",
    "TaskRuntime",
    "default_task_runtime",
    "register_depend_handler",
    "location_key",
]


class DependType:
    """Dependence types accepted by the ``depend`` clause."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"
    #: The paper's §3.5 extension; only usable once repro.ompx.depend has
    #: registered its handler.
    INTEROPOBJ = "interopobj"

    _STOCK = (IN, OUT, INOUT)


def location_key(item) -> Tuple:
    """The storage-location identity used for dependence matching.

    Per the OpenMP spec (and §3.5's complaint), only the location is used —
    not any semantics of the object.
    """
    if isinstance(item, np.ndarray):
        return ("host", item.__array_interface__["data"][0], item.nbytes)
    if isinstance(item, DevicePointer):
        return ("device", item.device_ordinal, item.address)
    return ("object", id(item))


_task_ids = itertools.count(1)


@dataclass(eq=False)
class Task:
    """One deferred task and its completion state (identity-hashed)."""

    fn: Callable[[], None]
    name: str
    depends: Tuple[Tuple[str, object], ...]
    task_id: int = field(default_factory=lambda: next(_task_ids))
    done: threading.Event = field(default_factory=threading.Event)
    error: Optional[BaseException] = None
    _pending: int = 0
    _dependents: List["Task"] = field(default_factory=list)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until released (all live threads arrived / task completed)."""
        return self.done.wait(timeout)


# Handlers for extension dependence types (type -> callable).  The ompx
# layer registers "interopobj" here; see repro/ompx/depend.py.
_depend_handlers: Dict[str, Callable] = {}


def register_depend_handler(depend_type: str, handler: Callable) -> None:
    """Register an extension dependence type (used by repro.ompx.depend)."""
    _depend_handlers[depend_type] = handler


class TaskRuntime:
    """Hidden-helper-thread execution of deferred tasks.

    LLVM OpenMP runs ``nowait`` target tasks on a dedicated team of hidden
    helper threads; we model that with a fixed worker pool pulling tasks
    whose predecessors have completed.
    """

    def __init__(self, num_helpers: int = 8) -> None:
        if num_helpers < 1:
            raise ValueError("need at least one hidden helper thread")
        self.num_helpers = num_helpers
        self._lock = threading.RLock()
        self._ready: "queue.Queue[Optional[Task]]" = queue.Queue()
        self._last_writer: Dict[Tuple, Task] = {}
        self._readers_since_write: Dict[Tuple, List[Task]] = {}
        self._outstanding: Set[Task] = set()
        self._all_done = threading.Condition(self._lock)
        self._workers = [
            threading.Thread(target=self._work, name=f"hidden-helper-{i}", daemon=True)
            for i in range(num_helpers)
        ]
        for worker in self._workers:
            worker.start()

    # --- worker loop ----------------------------------------------------------
    def _work(self) -> None:
        while True:
            task = self._ready.get()
            if task is None:
                break
            try:
                task.fn()
            except BaseException as exc:  # noqa: BLE001 - reported at wait
                task.error = exc
            finally:
                self._complete(task)

    def _complete(self, task: Task) -> None:
        with self._lock:
            task.done.set()
            for dependent in task._dependents:
                dependent._pending -= 1
                if dependent._pending == 0:
                    self._ready.put(dependent)
            self._outstanding.discard(task)
            if not self._outstanding:
                self._all_done.notify_all()

    # --- submission -----------------------------------------------------------
    def _predecessors(self, depends: Sequence[Tuple[str, object]]) -> Set[Task]:
        """OpenMP dependence matching against previously generated tasks."""
        preds: Set[Task] = set()
        for kind, item in depends:
            key = location_key(item)
            if kind == DependType.IN:
                writer = self._last_writer.get(key)
                if writer is not None:
                    preds.add(writer)
            elif kind in (DependType.OUT, DependType.INOUT):
                writer = self._last_writer.get(key)
                if writer is not None:
                    preds.add(writer)
                preds.update(self._readers_since_write.get(key, ()))
            else:
                raise DependenceError(
                    f"dependence type {kind!r} is not a stock OpenMP type; "
                    f"did you mean to use the ompx extension?"
                )
        return preds

    def _record(self, task: Task, depends: Sequence[Tuple[str, object]]) -> None:
        for kind, item in depends:
            key = location_key(item)
            if kind == DependType.IN:
                self._readers_since_write.setdefault(key, []).append(task)
            else:
                self._last_writer[key] = task
                self._readers_since_write[key] = []

    def submit(
        self,
        fn: Callable[[], None],
        depends: Sequence[Tuple[str, object]] = (),
        name: str = "",
    ) -> Task:
        """Generate a deferred task (a ``nowait`` construct with ``depend``).

        Extension dependence types (registered via
        :func:`register_depend_handler`) take over scheduling for the whole
        task — e.g. ``interopobj`` routes it into a stream.  Stock types go
        through the graph + hidden helper pool.
        """
        depends = tuple(depends)
        extension = [d for d in depends if d[0] in _depend_handlers]
        stock = [d for d in depends if d[0] not in _depend_handlers]
        for kind, _ in stock:
            if kind not in DependType._STOCK:
                raise DependenceError(
                    f"unknown dependence type {kind!r}: stock OpenMP supports "
                    f"{DependType._STOCK}; 'interopobj' needs the ompx extension "
                    f"(import repro.ompx)"
                )
        task = Task(fn=fn, name=name or fn.__name__, depends=depends)

        if extension:
            if len(extension) > 1:
                raise DependenceError(
                    "at most one extension dependence (e.g. interopobj) per task"
                )
            kind, item = extension[0]
            handler = _depend_handlers[kind]
            with self._lock:
                preds = self._predecessors(stock)
                self._record(task, stock)
                self._outstanding.add(task)
            # The handler owns execution; it must call runtime._complete-like
            # finalization through the provided callback.
            handler(self, task, item, preds)
            return task

        with self._lock:
            # A predecessor may already have completed (its entry lingers in
            # the location tables); registering on it would leave _pending
            # stuck, since completion notifications already went out.  The
            # done-check is race-free: _complete() sets done under this lock.
            preds = {p for p in self._predecessors(stock) if not p.done.is_set()}
            task._pending = len(preds)
            for pred in preds:
                pred._dependents.append(task)
            self._record(task, stock)
            self._outstanding.add(task)
            if task._pending == 0:
                self._ready.put(task)
        return task

    # Used by extension handlers (ompx.depend) to finish a task they ran.
    def finish_extension_task(self, task: Task, error: Optional[BaseException]) -> None:
        """Complete a task an extension handler executed (handler hook)."""
        task.error = error
        self._complete(task)

    # --- waiting -----------------------------------------------------------------
    def taskwait(self, depends: Optional[Sequence[Tuple[str, object]]] = None) -> None:
        """``#pragma omp taskwait`` — optionally with a ``depend`` clause.

        Without ``depends``, waits for all outstanding tasks.  With it,
        waits only for tasks that a new task with those dependences would
        have to wait for (the OpenMP 5.x semantics).
        """
        if depends is None:
            with self._lock:
                pending = set(self._outstanding)
        else:
            extension = [d for d in depends if d[0] in _depend_handlers]
            stock = [d for d in depends if d[0] not in _depend_handlers]
            for kind, item in extension:
                _depend_handlers[kind](self, None, item, set())  # None task = pure wait
            with self._lock:
                pending = self._predecessors(stock)
        for task in pending:
            task.wait()
        errors = [t for t in pending if t.error is not None]
        if errors:
            first = min(errors, key=lambda t: t.task_id)
            raise DependenceError(
                f"task {first.name!r} failed: {first.error!r}"
            ) from first.error

    def shutdown(self) -> None:
        """Stop the helper pool (test teardown)."""
        for _ in self._workers:
            self._ready.put(None)
        for worker in self._workers:
            worker.join(timeout=5)


_default_runtime: Optional[TaskRuntime] = None
_default_lock = threading.Lock()


def default_task_runtime() -> TaskRuntime:
    """The process-wide task runtime (lazily created)."""
    global _default_runtime
    with _default_lock:
        if _default_runtime is None:
            _default_runtime = TaskRuntime()
        return _default_runtime
