"""Classic OpenMP target offloading (the paper's ``omp`` baseline).

Two region shapes cover how HeCBench's OpenMP versions are written:

* :func:`target_teams_distribute_parallel_for` — the directive-based
  worksharing style of Figure 2: the runtime distributes a canonical loop
  over teams and threads.
* :func:`target_teams_parallel` — the SIMT style of Figure 3: an explicit
  ``parallel`` region in which every thread computes its own indices and
  may hit barriers; runs on the cooperative engine through the
  :class:`~repro.openmp.runtime.OmpThread` façade.

Every execution is lowered through :func:`repro.openmp.codegen.lower_region`
first, and the resulting :class:`CodegenInfo` is returned in the
:class:`TargetRegionReport` — the performance model prices the region from
it, and tests assert on it (e.g. that the ``omp`` Stencil keeps its state
machine while ``ompx_bare`` has none).

``nowait=True`` defers the region as an OpenMP task through
:mod:`repro.openmp.task`; ``depend=...`` takes ``(type, item)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..errors import OpenMPError
from ..gpu.device import Device, Placement, resolve_placement
from ..gpu.dim import DimLike, as_dim3
from ..gpu.engine import KernelStats
from ..gpu.launch import LaunchConfig, launch_kernel
from ..trace import get_tracer
from .codegen import CodegenInfo, RegionTraits, lower_region
from .data import DeviceDataEnvironment, data_environment
from .runtime import OmpThread
from .task import Task, TaskRuntime, default_task_runtime

__all__ = [
    "TargetAccessor",
    "TargetRegionReport",
    "target",
    "target_teams_distribute_parallel_for",
    "target_teams_distribute_parallel_for_collapse",
    "target_teams_parallel",
]


class TargetAccessor:
    """How a classic target-region body touches its mapped variables.

    ``acc.mapped(host_array)`` returns a NumPy view of the *device copy*
    of a mapped array — reads and writes go to device memory, and only a
    ``map(from:)``/``target update`` moves them back, so stale-host bugs
    reproduce faithfully.
    """

    def __init__(self, env: DeviceDataEnvironment) -> None:
        self._env = env

    def mapped(self, host_array: np.ndarray) -> np.ndarray:
        """NumPy view of the device copy of a mapped host array."""
        ptr = self._env.lookup(host_array)
        return self._env.device.allocator.view(ptr, host_array.shape, host_array.dtype)

    def device_ptr(self, host_array: np.ndarray):
        """Device pointer of a mapped host array."""
        return self._env.lookup(host_array)


@dataclass
class TargetRegionReport:
    """What one target-region execution did and how it was lowered."""

    codegen: CodegenInfo
    grid: int
    block: int
    stats: Optional[KernelStats] = None


def _with_maps(device: Device, maps, run: Callable[[TargetAccessor], TargetRegionReport]):
    # Every target construct (worksharing, SIMT, bare) funnels through
    # here, so this is where a poisoned device context refuses new work.
    device.check_poison()
    env = data_environment(device)
    maps = list(maps)
    env.begin(maps)
    try:
        return run(TargetAccessor(env))
    finally:
        env.end(maps)


def _maybe_defer(nowait: bool, depend, runtime: Optional[TaskRuntime], run: Callable[[], object], name: str):
    if not nowait:
        if depend:
            # A synchronous construct with depend still orders against tasks.
            (runtime or default_task_runtime()).taskwait(depend)
        return run()
    rt = runtime or default_task_runtime()
    return rt.submit(lambda: run(), depends=tuple(depend or ()), name=name)


def target(
    device: Placement,
    region: Callable[[TargetAccessor], None],
    *,
    maps: Sequence[Tuple[np.ndarray, str]] = (),
    nowait: bool = False,
    depend: Sequence[Tuple[str, object]] = (),
    task_runtime: Optional[TaskRuntime] = None,
):
    """``#pragma omp target map(...)`` — a serial region on the device.

    ``device`` takes an ``int`` ordinal (the spec's ``device(n)`` clause
    form), a :class:`Device`, or ``None`` for the current default.
    """
    device = resolve_placement(device)
    traits = RegionTraits(style="worksharing", spmd_amenable=False,
                          state_machine_rewritable=True, requested_thread_limit=1)
    codegen = lower_region(traits)

    def run():
        def body(acc: TargetAccessor) -> TargetRegionReport:
            region(acc)
            return TargetRegionReport(codegen=codegen, grid=1, block=1)

        return _with_maps(device, maps, body)

    return _maybe_defer(nowait, depend, task_runtime, run, region.__name__)


def target_teams_distribute_parallel_for(
    device: Placement,
    trip_count: int,
    body: Optional[Callable] = None,
    *,
    vector_body: Optional[Callable] = None,
    num_teams: Optional[int] = None,
    thread_limit: Optional[int] = None,
    maps: Sequence[Tuple[np.ndarray, str]] = (),
    traits: Optional[RegionTraits] = None,
    nowait: bool = False,
    depend: Sequence[Tuple[str, object]] = (),
    task_runtime: Optional[TaskRuntime] = None,
):
    """``#pragma omp target teams distribute parallel for``.

    Functional semantics: every iteration in ``[0, trip_count)`` executes
    exactly once.  ``body(i, acc)`` is the per-iteration form;
    ``vector_body(indices, acc)`` receives each team's iteration chunk as
    an index array (the idiomatic NumPy fast path — identical semantics,
    far faster in a Python simulator).

    The team/thread geometry is taken from the clauses when present,
    otherwise from the runtime defaults, after codegen lowering has had
    its say (the Adam bug can shrink ``thread_limit`` to one warp).
    """
    if (body is None) == (vector_body is None):
        raise OpenMPError("provide exactly one of body= or vector_body=")
    if trip_count < 0:
        raise OpenMPError(f"negative trip count {trip_count}")
    device = resolve_placement(device)

    traits = traits or RegionTraits(
        style="worksharing", requested_thread_limit=thread_limit
    )
    codegen = lower_region(traits)
    block = codegen.effective_thread_limit or thread_limit or 256
    if num_teams is not None:
        teams = num_teams
    else:
        teams = max(1, (trip_count + block - 1) // block)
    # The worksharing path executes as a host-side loop rather than going
    # through launch_kernel, but its geometry obeys the same device limits
    # (and reports the same structured LaunchError) as every other front
    # end.
    device.spec.validate_launch(as_dim3(teams), as_dim3(block))

    def run():
        def body_fn(acc: TargetAccessor) -> TargetRegionReport:
            def execute() -> None:
                if not trip_count:
                    return
                # Block-cyclic distribution over teams, like LLVM's
                # distribute schedule; functionally a permutation of the
                # iteration space, executed team by team.
                per_team = (trip_count + teams - 1) // teams
                for team in range(teams):
                    lb = team * per_team
                    ub = min(lb + per_team, trip_count)
                    if lb >= ub:
                        break
                    if vector_body is not None:
                        vector_body(np.arange(lb, ub), acc)
                    else:
                        for i in range(lb, ub):
                            body(i, acc)

            tracer = get_tracer()
            if tracer is None:
                execute()
            else:
                with tracer.span("region:target_teams_loop", cat="region",
                                 teams=teams, block=block,
                                 trip_count=trip_count):
                    execute()
            return TargetRegionReport(codegen=codegen, grid=teams, block=block)

        return _with_maps(device, maps, body_fn)

    return _maybe_defer(nowait, depend, task_runtime, run, "target_teams_loop")


def target_teams_distribute_parallel_for_collapse(
    device: Device,
    extents: Sequence[int],
    body: Optional[Callable] = None,
    *,
    vector_body: Optional[Callable] = None,
    num_teams: Optional[int] = None,
    thread_limit: Optional[int] = None,
    maps: Sequence[Tuple[np.ndarray, str]] = (),
    traits: Optional[RegionTraits] = None,
    nowait: bool = False,
    depend: Sequence[Tuple[str, object]] = (),
    task_runtime: Optional[TaskRuntime] = None,
):
    """``target teams distribute parallel for collapse(n)``.

    The ``collapse`` clause fuses a perfect loop nest of the given
    ``extents`` into one iteration space before distribution — the OpenMP
    answer to CUDA's multi-dimensional grids for *loops* (as opposed to
    §3.2's multi-dimensional *launches*).  ``body(i0, i1, ..., acc)``
    receives one multi-index per iteration; ``vector_body(idx0, idx1,
    ..., acc)`` receives the chunk's unraveled index arrays.
    """
    extents = tuple(int(e) for e in extents)
    if not extents or any(e < 0 for e in extents):
        raise OpenMPError(f"collapse extents must be non-negative, got {extents!r}")
    if (body is None) == (vector_body is None):
        raise OpenMPError("provide exactly one of body= or vector_body=")
    total = 1
    for extent in extents:
        total *= extent

    if body is not None:
        def flat_body(flat_index, acc):
            multi = np.unravel_index(flat_index, extents)
            body(*(int(m) for m in multi), acc)

        return target_teams_distribute_parallel_for(
            device, total, flat_body,
            num_teams=num_teams, thread_limit=thread_limit, maps=maps,
            traits=traits, nowait=nowait, depend=depend, task_runtime=task_runtime,
        )

    def flat_vector_body(flat_indices, acc):
        multi = np.unravel_index(flat_indices, extents)
        vector_body(*multi, acc)

    return target_teams_distribute_parallel_for(
        device, total, vector_body=flat_vector_body,
        num_teams=num_teams, thread_limit=thread_limit, maps=maps,
        traits=traits, nowait=nowait, depend=depend, task_runtime=task_runtime,
    )


def target_teams_parallel(
    device: Device,
    num_teams: DimLike,
    thread_limit: DimLike,
    region: Callable,
    args: Sequence = (),
    *,
    maps: Sequence[Tuple[np.ndarray, str]] = (),
    traits: Optional[RegionTraits] = None,
    shared_bytes: int = 0,
    nowait: bool = False,
    depend: Sequence[Tuple[str, object]] = (),
    task_runtime: Optional[TaskRuntime] = None,
):
    """SIMT-style ``target teams`` + ``parallel`` (the paper's Figure 3).

    ``region(t, *args)`` runs once per device thread with ``t`` an
    :class:`OmpThread`.  Classic OpenMP rules apply: grid/block must be
    one-dimensional (multi-dimensional launches are the §3.2 *extension*,
    available only through :mod:`repro.ompx`), and the region is lowered
    with the full runtime (never bare).
    """
    grid = as_dim3(num_teams)
    block = as_dim3(thread_limit)
    if grid.ndim != 1 or block.ndim != 1:
        raise OpenMPError(
            "classic OpenMP supports only one-dimensional num_teams/"
            "thread_limit (see paper §2.3); multi-dimensional launches need "
            "the ompx extension (repro.ompx.target_teams_bare)"
        )
    traits = traits or RegionTraits(
        style="simt", spmd_amenable=True, requested_thread_limit=block.x
    )
    if traits.style == "bare":
        raise OpenMPError("bare regions are an ompx extension; use repro.ompx")
    codegen = lower_region(traits)
    if codegen.effective_thread_limit is not None:
        block = as_dim3(min(block.x, codegen.effective_thread_limit))

    def adapter(ctx, *kargs):
        return region(OmpThread(ctx), *kargs)

    # What engine selection / compile analysis should look at is the
    # user's region, not this closure.
    adapter.fn = region
    adapter.vectorize = getattr(region, "vectorize", None)

    def run():
        def body_fn(acc: TargetAccessor) -> TargetRegionReport:
            config = LaunchConfig.create(grid, block, shared_bytes)
            stats = launch_kernel(config, adapter, (*args, acc) if _wants_acc(region, args) else tuple(args), device)
            return TargetRegionReport(codegen=codegen, grid=grid.volume, block=block.volume, stats=stats)

        return _with_maps(device, maps, body_fn)

    return _maybe_defer(nowait, depend, task_runtime, run, region.__name__)


def _wants_acc(region: Callable, args: Sequence) -> bool:
    """Pass the accessor as a trailing arg iff the region asks for one.

    Regions that only use explicit device pointers (API-style data
    management) don't need it; regions using map clauses take a final
    ``acc`` parameter.
    """
    try:
        import inspect

        params = list(inspect.signature(region).parameters)
    except (TypeError, ValueError):
        return False
    return bool(params) and params[-1] == "acc" and len(params) == len(args) + 2
