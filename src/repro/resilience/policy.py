"""Retry classification and deterministic backoff.

The policy answers two questions the recovery loop asks on every
failure: *is this worth retrying?* and *how long do we wait first?*
Both answers are deterministic — classification depends only on the
exception's cause chain, and backoff jitter is drawn from a seeded RNG
owned by the caller — so a seeded fault plan produces a byte-identical
recovery sequence on replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Iterator, Tuple, Type

from ..errors import (
    CancelledError,
    GpuError,
    KernelFault,
    LaunchError,
    MemcheckError,
    StickyContextError,
    WatchdogTimeout,
)

__all__ = ["RetryPolicy", "exception_chain"]


def exception_chain(exc: BaseException) -> Iterator[BaseException]:
    """Walk an exception and its causes (``__cause__`` over ``__context__``).

    Failure context in this library nests: a pool worker stores the
    stream's ``GpuError("queued work failed")`` whose cause is the
    ``LaunchError`` whose cause is the injected :class:`KernelFault`.
    Classification must see the innermost frames, and sticky-context
    errors additionally carry the original fault in ``.original``.
    """
    seen = set()
    stack = [exc]
    while stack:
        current = stack.pop()
        if current is None or id(current) in seen:
            continue
        seen.add(id(current))
        yield current
        stack.append(current.__cause__ or current.__context__)
        original = getattr(current, "original", None)
        if isinstance(original, BaseException):
            stack.append(original)


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) failed submissions are re-executed.

    ``max_attempts`` counts total tries, so ``3`` means one initial run
    plus up to two retries.  Backoff for retry *k* (1-based) is
    ``base_backoff_s * multiplier**(k-1)`` capped at ``max_backoff_s``,
    plus a jitter drawn uniformly from ``[0, jitter * backoff]`` using
    the caller-supplied seeded RNG — deterministic for a fixed seed,
    decorrelated across devices retrying at once.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.001
    multiplier: float = 2.0
    max_backoff_s: float = 0.05
    jitter: float = 0.5
    #: Exception classes never worth retrying, wherever they appear in
    #: the cause chain.  Memcheck violations are deterministic bugs in
    #: the kernel under test: re-running one just trips the sanitizer
    #: again, so surfacing it immediately is the only honest outcome.
    deny: Tuple[Type[BaseException], ...] = (MemcheckError,)

    def backoff_s(self, retry_number: int, rng: Random) -> float:
        """Seconds to sleep before retry ``retry_number`` (1-based)."""
        base = min(
            self.base_backoff_s * self.multiplier ** max(retry_number - 1, 0),
            self.max_backoff_s,
        )
        return base + rng.uniform(0.0, self.jitter * base)

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether a failure is worth re-executing (after healing).

        The decision walks the full cause chain:

        - any denied class (default: :class:`MemcheckError`) — never;
        - :class:`CancelledError` — only when the scheduler marked the
          cancellation ``retryable`` (a device reset draining its queue);
          an explicit user cancel stays cancelled;
        - :class:`WatchdogTimeout`, :class:`KernelFault`,
          :class:`StickyContextError` — yes; these are exactly the
          faults a device reset clears;
        - a :class:`LaunchError` *without* a kernel fault beneath it is a
          deterministic configuration error — retrying cannot help;
        - any other :class:`GpuError` (injected OOM, aborted enqueue,
          truncated memcpy detected by verification) — yes;
        - anything else (host-side bugs) — no.
        """
        chain = list(exception_chain(exc))
        if any(isinstance(e, self.deny) for e in chain):
            return False
        for e in chain:
            if isinstance(e, CancelledError):
                return e.retryable
        if any(
            isinstance(e, (WatchdogTimeout, KernelFault, StickyContextError))
            for e in chain
        ):
            return True
        if any(isinstance(e, LaunchError) for e in chain):
            return False
        return any(isinstance(e, GpuError) for e in chain)
