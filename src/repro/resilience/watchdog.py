"""The per-device watchdog: hung jobs become structured timeouts.

A single daemon thread polls the set of watched futures.  When a job
outlives its deadline the watchdog completes its future with a
:class:`~repro.errors.WatchdogTimeout` naming the kernel label, the
device and the deadline — first-writer-wins on the future, so a worker
that eventually finishes the job is recorded as a *stale completion*
rather than overwriting the timeout.  Worker threads cannot be killed
(this is Python, and real CUDA cannot abort a running kernel either);
what the watchdog guarantees is that *callers* get a prompt, structured
failure they can retry on another device, and that the hung device is
reported to the health machinery via ``on_timeout``.

Deadlines are measured from submission, not execution start: a job stuck
*behind* a hung kernel is just as undeliverable as the hung kernel
itself, and timing it out lets the retry layer move it to a healthy
device instead of waiting forever in line.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from ..errors import WatchdogTimeout
from ..sched import KernelFuture
from .report import RecoveryReport

__all__ = ["Watchdog"]


class Watchdog:
    """Deadline enforcement for pool futures.

    ``on_timeout(future)`` runs on the watchdog thread after the future
    has been failed; the resilient pool uses it to quarantine the device
    the job hung on.  ``poll_s`` bounds detection latency — with the
    simulated stack's millisecond kernels the default 5 ms keeps chaos
    tests fast while staying far above scheduler noise.
    """

    def __init__(
        self,
        *,
        report: RecoveryReport,
        on_timeout: Optional[Callable[[KernelFuture], None]] = None,
        poll_s: float = 0.005,
    ) -> None:
        self._report = report
        self._on_timeout = on_timeout
        self._poll_s = poll_s
        self._lock = threading.Lock()
        self._watched: Dict[int, Tuple[KernelFuture, float, float]] = {}
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # --- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Start the scan thread (idempotent; ``watch`` calls it too)."""
        with self._lock:
            if self._thread is not None:
                return
            self._thread = threading.Thread(
                target=self._run, name="resilience-watchdog", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Stop and join the scan thread; watched futures are left alone."""
        self._stop.set()
        self._wake.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "Watchdog":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # --- watching -----------------------------------------------------------
    def watch(self, future: KernelFuture, deadline_s: float) -> None:
        """Enforce ``deadline_s`` (from now) on ``future``."""
        if deadline_s <= 0:
            raise ValueError(f"watchdog deadline must be > 0, got {deadline_s}")
        with self._lock:
            self._watched[id(future)] = (
                future, time.monotonic() + deadline_s, deadline_s,
            )
        self._wake.set()
        self.start()

    def unwatch(self, future: KernelFuture) -> None:
        """Stop enforcing a deadline on ``future`` (idempotent)."""
        with self._lock:
            self._watched.pop(id(future), None)

    def watched(self) -> int:
        """How many futures currently have live deadlines."""
        with self._lock:
            return len(self._watched)

    # --- the scan loop ------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.clear()
            now = time.monotonic()
            with self._lock:
                entries = list(self._watched.items())
            for key, (future, deadline_ts, deadline_s) in entries:
                if future.done():
                    with self._lock:
                        self._watched.pop(key, None)
                    continue
                if now < deadline_ts:
                    continue
                timed_out = future._set_exception(
                    WatchdogTimeout(
                        f"job exceeded its {deadline_s}s watchdog deadline",
                        kernel=future.label,
                        device=future.device.ordinal,
                        deadline_s=deadline_s,
                    )
                )
                with self._lock:
                    self._watched.pop(key, None)
                if not timed_out:
                    continue  # lost the race to a real completion
                self._report.record(
                    "watchdog_timeouts",
                    f"{future.label} on device {future.device.ordinal} "
                    f"(deadline {deadline_s}s)",
                )
                if self._on_timeout is not None:
                    self._on_timeout(future)
            with self._lock:
                idle = not self._watched
            if idle:
                # Sleep until the next watch() instead of spinning.
                self._wake.wait(timeout=1.0)
            else:
                self._stop.wait(timeout=self._poll_s)
