"""The per-device health state machine.

``HEALTHY → SUSPECT → QUARANTINED → (HEALTHY | RETIRED)``: a device that
fails a job turns SUSPECT; a device whose context is actually poisoned
(or that hung past the watchdog deadline) is QUARANTINED — pulled from
placement until it is reset and probed.  A passing canary readmits it to
HEALTHY; a failing one retires it permanently.  RETIRED is terminal: the
scheduler never places work there again, and its shards move to the
survivors.

The tracker is pure bookkeeping — resetting and probing devices is the
:class:`~repro.resilience.pool.ResilientPool`'s job — so the transitions
can be tested without any device machinery.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from ..errors import SchedulerError
from .report import RecoveryReport

__all__ = ["HEALTHY", "SUSPECT", "QUARANTINED", "RETIRED", "HealthTracker"]

HEALTHY = "healthy"
SUSPECT = "suspect"
QUARANTINED = "quarantined"
RETIRED = "retired"

#: Allowed transitions.  SUSPECT may recover straight to HEALTHY (the
#: failure was transient, e.g. a one-shot injected OOM) or escalate to
#: QUARANTINED; QUARANTINED resolves to HEALTHY (canary passed) or
#: RETIRED (canary failed).  HEALTHY may jump directly to QUARANTINED
#: when the evidence is unambiguous (poisoned context, watchdog fire).
_TRANSITIONS = {
    HEALTHY: (SUSPECT, QUARANTINED),
    SUSPECT: (HEALTHY, QUARANTINED),
    QUARANTINED: (HEALTHY, RETIRED),
    RETIRED: (),
}


class HealthTracker:
    """Health states for a pool's devices, keyed by pool index.

    ``noun`` names what is being tracked in error messages: the
    resilience tier tracks ``"device"``\\ s, the cluster tier reuses the
    same state machine over whole worker processes (``noun="worker"``) —
    a lost worker is a quarantined *super-device*.
    """

    def __init__(
        self, count: int, *, report: RecoveryReport, noun: str = "device"
    ) -> None:
        if count < 1:
            raise SchedulerError(f"HealthTracker needs at least one {noun}")
        self._lock = threading.Lock()
        self._states: Dict[int, str] = {i: HEALTHY for i in range(count)}
        self._report = report
        self._noun = noun

    def state(self, index: int) -> str:
        """Current health state of one pool device."""
        with self._lock:
            return self._states[index]

    def active_indices(self) -> List[int]:
        """Pool indices eligible for placement (HEALTHY or SUSPECT).

        SUSPECT devices keep taking work: one failed job is evidence, not
        a verdict, and pulling a device on every transient would leave a
        chaos run with no pool at all.  Only QUARANTINED (being healed)
        and RETIRED (gone) are excluded.
        """
        with self._lock:
            return [
                i for i, s in sorted(self._states.items())
                if s in (HEALTHY, SUSPECT)
            ]

    def _transition(self, index: int, new_state: str) -> bool:
        """Move one device to ``new_state``; ``False`` if already there.

        Illegal transitions (anything out of RETIRED, or skipping the
        machine entirely) raise — a recovery layer that corrupts its own
        bookkeeping must fail loudly, not heal the wrong device.
        """
        with self._lock:
            current = self._states[index]
            if current == new_state:
                return False
            if new_state not in _TRANSITIONS[current]:
                raise SchedulerError(
                    f"illegal health transition for pool {self._noun} "
                    f"{index}: {current} -> {new_state}"
                )
            self._states[index] = new_state
            return True

    # Named transitions, so call sites read as intent and the report
    # records the right counter for each.
    def mark_suspect(self, index: int, detail: str = "") -> bool:
        """One failure observed: HEALTHY -> SUSPECT (stays placeable)."""
        return self._transition(index, SUSPECT)

    def mark_healthy(self, index: int, detail: str = "") -> bool:
        """Recover to HEALTHY; records a readmission when ``detail`` set."""
        changed = self._transition(index, HEALTHY)
        if changed and detail:
            self._report.record("readmissions", detail)
        return changed

    def quarantine(self, index: int, detail: str = "") -> bool:
        """Pull a device from placement for healing (counts a quarantine)."""
        changed = self._transition(index, QUARANTINED)
        if changed:
            self._report.record("quarantines", detail)
        return changed

    def retire(self, index: int, detail: str = "") -> bool:
        """Permanently remove a device that failed its canary probe."""
        changed = self._transition(index, RETIRED)
        if changed:
            self._report.record("retirements", detail)
        return changed

    def snapshot(self) -> Dict[int, str]:
        """Copy of the full state map (for reports and tests)."""
        with self._lock:
            return dict(self._states)
