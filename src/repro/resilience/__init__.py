"""``repro.resilience`` — fault-tolerant execution over the DevicePool.

PR 3 made failure injectable (:mod:`repro.faults`) and PR 4 made
execution multi-device (:mod:`repro.sched`); this package makes the
combination *survivable*.  It wraps a :class:`~repro.sched.DevicePool`
with the recovery plumbing a production GPU runtime carries:

- :class:`RetryPolicy` — which exception classes are worth retrying
  (sticky kernel faults after a reset: yes; memcheck violations: never),
  how many attempts, and a seeded deterministic exponential backoff.
- :class:`Watchdog` — converts hung jobs (``delay``/``abort`` fault
  actions, or anything past its deadline) into structured
  :class:`~repro.errors.WatchdogTimeout` failures naming the kernel
  label and device.
- :class:`HealthTracker` — the per-device ``HEALTHY → SUSPECT →
  QUARANTINED`` state machine; quarantined devices are pulled from
  placement, auto-reset via ``ompx_device_reset``, probed with a canary
  kernel, and either readmitted or permanently ``RETIRED``.
- :class:`ResilientPool` / :class:`ResilientFuture` — the
  ``submit``/``submit_call`` wrapper applying all of the above, plus
  self-healing whole-run re-execution (:meth:`ResilientPool.run_to_completion`)
  for workloads that drive devices directly (Stencil-1D's halo loop).
- :class:`RecoveryReport` — every retry, quarantine, watchdog fire and
  re-executed shard, counted and logged, mirrored into trace counters.

Everything is deterministic: backoff jitter comes from the policy's
seeded RNG, and the recovery path for a given seeded
:class:`~repro.faults.FaultPlan` replays identically.
"""

from .health import (
    HEALTHY,
    QUARANTINED,
    RETIRED,
    SUSPECT,
    HealthTracker,
)
from .policy import RetryPolicy
from .pool import ResilientFuture, ResilientPool
from .report import RecoveryReport
from .watchdog import Watchdog

__all__ = [
    "HEALTHY",
    "SUSPECT",
    "QUARANTINED",
    "RETIRED",
    "HealthTracker",
    "RetryPolicy",
    "ResilientFuture",
    "ResilientPool",
    "RecoveryReport",
    "Watchdog",
]
