"""ResilientPool: retries, quarantine, and self-healing over a DevicePool.

The wrapper keeps the DevicePool's submission API (``submit``,
``submit_call``, ``devices``, ``len``) so the app sharding layer runs on
either unchanged — but every submission comes back as a
:class:`ResilientFuture` that transparently re-executes retryable
failures, and ``devices`` exposes only the *healthy* devices, so a
sharded run started after a retirement decomposes over the survivors.

Recovery is synchronous and deterministic: retries happen on the thread
that waits on the future (there is no hidden retry executor racing the
caller), backoff jitter comes from one seeded RNG, and device healing is
serialized per device.  For workloads that drive devices directly
instead of going through futures — Stencil-1D enqueues its halo loop on
raw streams — :meth:`ResilientPool.run_to_completion` provides the outer
self-healing loop: heal every device, then re-execute the whole run.
"""

from __future__ import annotations

import threading
import time
from random import Random
from typing import Callable, List, Optional

import numpy as np

from ..errors import (
    GpuError,
    KernelFault,
    ReproError,
    SchedulerError,
    StickyContextError,
    WatchdogTimeout,
)
from ..gpu.device import Device
from ..gpu.launch import LaunchConfig, launch_kernel
from ..sched import DevicePool, KernelFuture
from .health import HEALTHY, QUARANTINED, RETIRED, SUSPECT, HealthTracker
from .policy import RetryPolicy, exception_chain
from .report import RecoveryReport
from .watchdog import Watchdog

__all__ = ["ResilientPool", "ResilientFuture"]

#: Cells in the canary buffer — big enough to exercise a full warp on
#: both vendor presets, small enough to probe in microseconds.
_CANARY_N = 64


def _canary_kernel(ctx, out, n):
    i = ctx.flat_thread_id
    view = ctx.deref(out, n, np.float64)
    if i < n:
        view[i] = float(i + 1)


def _canary_probe(device: Device):
    """malloc + launch + readback + compare: is this device usable again?"""
    alloc = device.allocator
    ptr = alloc.malloc(_CANARY_N * 8)
    try:
        launch_kernel(
            LaunchConfig.create(1, _CANARY_N), _canary_kernel,
            (ptr, _CANARY_N), device,
        )
        seen = np.zeros(_CANARY_N)
        alloc.memcpy_d2h(seen, ptr)
    finally:
        alloc.free(ptr)
    expected = np.arange(1, _CANARY_N + 1, dtype=np.float64)
    if not np.array_equal(seen, expected):
        raise GpuError(
            f"canary kernel mismatch on device {device.ordinal}: the "
            f"context answered but computed wrong values"
        )
    return True


def _digest(value):
    """A comparable fingerprint of a job result, or ``None`` if opaque.

    ``verify=2`` cross-checks a shard by running it twice and comparing
    digests — meaningful only for value-like results.  Timing-ish objects
    (KernelStats) and arbitrary objects digest to ``None`` and skip the
    comparison rather than reporting spurious mismatches.
    """
    if value is None:
        return ("none",)
    checksum = getattr(value, "checksum", None)
    output = getattr(value, "output", None)
    if checksum is not None and isinstance(output, np.ndarray):
        # FunctionalResult and friends: the strongest comparison we have.
        return ("functional", getattr(value, "variant", None),
                float(checksum), output.tobytes())
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, str(value.dtype), value.tobytes())
    if isinstance(value, (bool, int, float, str, bytes)):
        return ("scalar", value)
    return None


def _is_context_fault(exc: BaseException) -> bool:
    """Whether the failure implicates the device context itself."""
    return any(
        isinstance(e, (KernelFault, StickyContextError, WatchdogTimeout))
        for e in exception_chain(exc)
    )


class ResilientFuture:
    """A future whose failures are healed and retried before you see them.

    Resolution is lazy and runs on the waiting thread: ``wait``/
    ``result``/``exception`` drive the retry loop (heal the device,
    back off, resubmit) until the job succeeds, exhausts
    ``policy.max_attempts``, or fails un-retryably.  Compatible with
    :func:`repro.sched.gather`.
    """

    def __init__(
        self,
        rpool: "ResilientPool",
        fn: Callable[[Device], object],
        *,
        inner_index: Optional[int],
        label: str,
        shard: bool = False,
    ) -> None:
        self._rpool = rpool
        self._fn = fn
        self._pinned = inner_index
        self._shard = shard
        self.label = label
        self.attempts = 0
        self._resolve_lock = threading.Lock()
        self._outcome: Optional[tuple] = None
        self._inner = self._submit_attempt(inner_index)

    # --- submission ---------------------------------------------------------
    def _submit_attempt(self, inner_index: Optional[int]) -> KernelFuture:
        if inner_index is None:
            inner_index = self._rpool._next_active_index()
        # Remember which heal generation this attempt ran under, so a
        # failure does not re-heal a device another waiter already fixed.
        self._gen = self._rpool._generation(inner_index)
        future = self._rpool.pool.submit_call(
            self._fn, device=inner_index, label=self.label
        )
        self.attempts += 1
        self._rpool._watch(future)
        return future

    # --- introspection ------------------------------------------------------
    @property
    def device(self) -> Device:
        """The device of the most recent attempt."""
        return self._inner.device

    @property
    def track(self) -> str:
        return self._inner.track

    def done(self) -> bool:
        """Whether the retry sequence has reached a final outcome."""
        return self._outcome is not None

    # --- resolution ---------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Drive retries to a final outcome; ``False`` if an attempt
        out-waits ``timeout`` (the timeout bounds each attempt, not the
        whole retry sequence — healing and backoff are unbounded work)."""
        with self._resolve_lock:
            return self._resolve(timeout)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The final exception after retries (or ``None`` on success)."""
        if not self.wait(timeout):
            raise SchedulerError(
                f"resilient future {self.label!r} did not complete within "
                f"{timeout}s (attempt {self.attempts})"
            )
        kind, payload = self._outcome
        return payload if kind == "err" else None

    def result(self, timeout: Optional[float] = None):
        """The final value; re-raises the final (post-retry) exception."""
        exc = self.exception(timeout)
        if exc is not None:
            raise exc
        return self._outcome[1]

    def _resolve(self, timeout: Optional[float]) -> bool:
        while self._outcome is None:
            if not self._inner.wait(timeout):
                return False
            exc = self._inner.exception()
            if exc is None:
                value = self._inner.result()
                if self._verify_ok(value):
                    self._outcome = ("ok", value)
                continue
            self._on_failure(exc)
        return True

    def _on_failure(self, exc: BaseException) -> None:
        rpool = self._rpool
        policy = rpool.policy
        if not policy.is_retryable(exc) or self.attempts >= policy.max_attempts:
            self._outcome = ("err", exc)
            return
        failed_index = rpool._inner_index_of(self._inner.device)
        healed = rpool.heal_device(failed_index, exc, seen_generation=self._gen)
        if self._pinned is not None and not healed:
            # The job is pinned to device-resident state (buffers it set
            # up earlier); with that device retired the retry cannot
            # mean anything — surface the original failure and let the
            # run-level recovery re-decompose over the survivors.
            self._outcome = ("err", exc)
            return
        rpool.report.record(
            "retries",
            f"{self.label}: attempt {self.attempts} failed with "
            f"{type(exc).__name__}, retrying",
        )
        if self._shard:
            rpool.report.record("reexecuted_shards", self.label)
        time.sleep(rpool._backoff_s(self.attempts))
        try:
            self._inner = self._submit_attempt(self._pinned)
        except SchedulerError as placement_exc:
            # No healthy devices remain: the retry is impossible.
            placement_exc.__cause__ = exc
            self._outcome = ("err", placement_exc)

    # --- verify=2 shadow execution ------------------------------------------
    def _verify_ok(self, value) -> bool:
        """Dual-device cross-check; ``True`` when the result may stand."""
        rpool = self._rpool
        if rpool.verify < 2 or self._pinned is not None:
            return True  # pinned jobs are device-resident, not relocatable
        digest = _digest(value)
        if digest is None:
            return True
        primary = rpool._inner_index_of(self._inner.device)
        others = [i for i in rpool.health.active_indices() if i != primary]
        if not others:
            return True
        shadow_index = others[self.attempts % len(others)]
        shadow = rpool.pool.submit_call(
            self._fn, device=shadow_index, label=f"{self.label}#shadow"
        )
        rpool._watch(shadow)
        try:
            shadow_value = shadow.result()
        except ReproError as exc:
            # The shadow device failed, not the primary result: heal it
            # and accept the primary (it would have passed under verify=1).
            rpool.heal_device(shadow_index, exc)
            return True
        if _digest(shadow_value) == digest:
            return True
        rpool.report.record(
            "verify_mismatches",
            f"{self.label}: devices {self._inner.device.ordinal} and "
            f"{shadow.device.ordinal} disagree",
        )
        if self.attempts >= rpool.policy.max_attempts:
            self._outcome = (
                "err",
                GpuError(
                    f"verify=2 cross-check for {self.label!r} still "
                    f"disagrees after {self.attempts} attempts"
                ),
            )
            return False
        # Re-run the primary on a fresh placement; both devices are now
        # suspect, so neither result is trusted as-is.
        rpool.health.mark_suspect(primary)
        rpool.health.mark_suspect(shadow_index)
        self._inner = self._submit_attempt(None)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "pending" if self._outcome is None else self._outcome[0]
        return (
            f"<ResilientFuture {self.label!r} attempts={self.attempts} "
            f"({state})>"
        )


class ResilientPool:
    """The fault-tolerant face of a :class:`~repro.sched.DevicePool`.

    Does not own the wrapped pool's lifecycle — create the DevicePool as
    a context manager and wrap it — but does own the watchdog thread;
    use ``with ResilientPool(pool) as rpool`` (or call :meth:`close`) to
    stop it.

    ``verify=2`` additionally runs every relocatable (unpinned)
    submission on a second device and compares result digests, catching
    corruption (e.g. an injected truncated memcpy) that produces a wrong
    answer instead of an exception.
    """

    def __init__(
        self,
        pool: DevicePool,
        *,
        policy: Optional[RetryPolicy] = None,
        report: Optional[RecoveryReport] = None,
        verify: int = 1,
        seed: int = 0,
        watchdog_deadline_s: Optional[float] = 5.0,
        heal_timeout_s: float = 30.0,
    ) -> None:
        if verify not in (1, 2):
            raise SchedulerError(f"verify must be 1 or 2, got {verify}")
        self.pool = pool
        self.policy = policy or RetryPolicy()
        self.report = report or RecoveryReport()
        self.verify = verify
        self.health = HealthTracker(len(pool.devices), report=self.report)
        self.watchdog_deadline_s = watchdog_deadline_s
        self._heal_timeout_s = heal_timeout_s
        self._rng = Random(seed)
        self._lock = threading.Lock()
        self._rr = 0
        self._heal_locks = [threading.Lock() for _ in pool.devices]
        # Bumped every time a device completes a heal; attempts remember
        # the generation they ran under so concurrent waiters do not
        # re-heal a device that was already fixed after their failure.
        self._heal_gens = [0] * len(pool.devices)
        self.watchdog = Watchdog(
            report=self.report, on_timeout=self._on_watchdog_timeout
        )

    # --- DevicePool-compatible surface --------------------------------------
    @property
    def devices(self) -> List[Device]:
        """The devices currently eligible for work (healthy or suspect).

        Sharded runners enumerate ``pool.devices`` to decompose the
        problem; exposing only the active ones is what makes a re-run
        after a retirement decompose over the survivors.
        """
        return [self.pool.devices[i] for i in self.health.active_indices()]

    def __len__(self) -> int:
        return len(self.health.active_indices())

    def distinct_specs(self) -> List[Device]:
        """One representative *active* device per distinct spec.

        Mirrors :meth:`DevicePool.distinct_specs` but only over devices
        still eligible for placement, so ``repro.tune.warm`` never
        probes a quarantined or retired device.
        """
        seen = {}
        for device in self.devices:
            seen.setdefault(device.spec, device)
        return list(seen.values())

    def submit_call(
        self,
        fn: Callable[[Device], object],
        *,
        device=None,
        label: Optional[str] = None,
        shard: bool = False,
    ) -> ResilientFuture:
        """Like :meth:`DevicePool.submit_call`, with recovery.

        ``device`` (an index into :attr:`devices`, or one of them) *pins*
        the job: retries stay on that device after healing, and never
        relocate — pinned jobs touch device-resident state.  Unpinned
        jobs must be self-contained and may be re-placed or shadow-run
        freely.  ``shard=True`` marks the job as one shard of a sharded
        run, counting its retries as re-executed shards in the report.
        """
        return ResilientFuture(
            self,
            fn,
            inner_index=None if device is None else self._resolve_active(device),
            label=label or getattr(fn, "__name__", "call"),
            shard=shard,
        )

    def submit(
        self,
        kernel,
        config,
        *args,
        device=None,
        label: Optional[str] = None,
    ) -> ResilientFuture:
        """Like :meth:`DevicePool.submit`, with recovery."""
        entry = getattr(kernel, "entry", kernel)
        name = label or getattr(
            getattr(kernel, "fn", None) or kernel, "__name__", "kernel"
        )
        return self.submit_call(
            lambda dev: launch_kernel(config, entry, tuple(args), dev),
            device=device,
            label=name,
        )

    def synchronize(self) -> None:
        """Drain every queued job on the wrapped pool (fence per device)."""
        self.pool.synchronize()

    def close(self, *, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the watchdog; optionally drain the wrapped pool first.

        Signature-compatible with :meth:`DevicePool.close` (the
        :class:`~repro.sched.PoolProtocol` contract), so backends are
        interchangeable to layers like ``repro.serve``.  The wrapped
        pool's lifecycle still belongs to its owner: ``drain=True`` waits
        (bounded by ``timeout`` per device) for in-flight work before the
        watchdog stops, but the pool's workers and devices are torn down
        by :meth:`DevicePool.close`, not here.
        """
        if drain:
            for index in range(len(self.pool.devices)):
                self.pool.wait_idle(index, timeout=timeout)
        self.watchdog.stop()

    def __enter__(self) -> "ResilientPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # --- placement over healthy devices -------------------------------------
    def _resolve_active(self, device) -> int:
        """Resolve ``device=`` (active index or Device) to an inner index."""
        active = self.health.active_indices()
        if isinstance(device, Device):
            for inner in active:
                if self.pool.devices[inner] is device:
                    return inner
            raise SchedulerError(
                f"device {device.ordinal} is not an active device of this "
                f"resilient pool"
            )
        index = int(device)
        if not 0 <= index < len(active):
            raise SchedulerError(
                f"active-device index {index} out of range (pool has "
                f"{len(active)} active devices)"
            )
        return active[index]

    def _next_active_index(self) -> int:
        active = self.health.active_indices()
        if not active:
            raise SchedulerError(
                "no healthy devices remain in the resilient pool"
            )
        with self._lock:
            chosen = active[self._rr % len(active)]
            self._rr += 1
        return chosen

    def _inner_index_of(self, device: Device) -> int:
        return self.pool.devices.index(device)

    def _generation(self, index: int) -> int:
        with self._lock:
            return self._heal_gens[index]

    def _bump_generation(self, index: int) -> None:
        with self._lock:
            self._heal_gens[index] += 1

    def _backoff_s(self, retry_number: int) -> float:
        with self._lock:
            return self.policy.backoff_s(retry_number, self._rng)

    def _watch(self, future: KernelFuture) -> None:
        if self.watchdog_deadline_s is not None:
            future.stale_callback = lambda: self.report.record(
                "stale_completions", future.label
            )
            self.watchdog.watch(future, self.watchdog_deadline_s)

    def _on_watchdog_timeout(self, future: KernelFuture) -> None:
        # Evidence, not yet a verdict: the retry path (or run-level
        # healing) escalates to quarantine and actually resets the device.
        try:
            self.health.mark_suspect(self._inner_index_of(future.device))
        except ValueError:  # device no longer in the pool (close race)
            pass

    # --- healing ------------------------------------------------------------
    def heal_device(
        self,
        index: int,
        exc: BaseException,
        *,
        seen_generation: Optional[int] = None,
    ) -> bool:
        """Restore one device after a failure; ``True`` if it may be used.

        Transient failures (injected OOM, aborted enqueue) leave the
        context intact: the device is marked SUSPECT and stays in
        placement.  Context faults (kernel fault / sticky poison /
        watchdog fire) quarantine the device: wait for its worker to go
        idle, ``ompx_device_reset`` it (which also cancels its queued
        jobs deterministically), then probe with a canary kernel —
        readmit on success, retire permanently on failure.

        ``seen_generation`` (from :meth:`_generation` at submit time)
        makes healing idempotent per fault: a waiter whose failure
        predates an already-completed heal skips the redundant
        reset/probe cycle.
        """
        device = self.pool.devices[index]
        with self._heal_locks[index]:
            state = self.health.state(index)
            if state == RETIRED:
                return False
            if (
                seen_generation is not None
                and self._generation(index) != seen_generation
            ):
                return state in (HEALTHY, SUSPECT)
            if not device.is_poisoned and not _is_context_fault(exc):
                self.health.mark_suspect(index)
                return True
            if state != QUARANTINED:
                self.health.quarantine(
                    index,
                    f"device {device.ordinal}: {type(exc).__name__}",
                )
            self.pool.wait_idle(index, timeout=self._heal_timeout_s)
            self._reset_device(index)
            self._bump_generation(index)
            return self._probe(index)

    def _reset_device(self, index: int) -> None:
        from ..ompx.host import ompx_device_reset

        device = self.pool.devices[index]
        ompx_device_reset(device=device.ordinal)
        self.report.record("resets", f"device {device.ordinal}")

    def _probe(self, index: int) -> bool:
        """Canary-probe a quarantined device; readmit or retire it."""
        device = self.pool.devices[index]
        canary = self.pool.submit_call(
            _canary_probe, device=index, label=f"canary:dev{device.ordinal}"
        )
        deadline = self.watchdog_deadline_s or 5.0
        self.watchdog.watch(canary, deadline)
        try:
            canary.result(timeout=deadline * 2)
        except ReproError as exc:
            self.health.retire(
                index,
                f"device {device.ordinal}: canary failed "
                f"({type(exc).__name__}: {exc})",
            )
            return False
        self.health.mark_healthy(
            index, f"device {device.ordinal}: canary passed"
        )
        return True

    # --- whole-run self-healing ---------------------------------------------
    def run_to_completion(
        self,
        fn: Callable[["ResilientPool"], object],
        *,
        label: str = "run",
        shards: Optional[int] = None,
    ):
        """Execute ``fn(self)``, healing and re-running on retryable failure.

        The outer recovery loop for workloads that drive devices directly
        (raw streams, peer copies) where a mid-run fault escapes the
        future layer.  Before each re-run every non-retired device is
        reset — poisoned ones through the full quarantine/canary cycle,
        clean ones with a plain reset to reclaim buffers and peer links
        the aborted run leaked — so the re-execution starts from the same
        state the first run did.  ``shards`` sets how many re-executed
        shards each re-run counts (default: the surviving device count).
        """
        attempt = 1
        while True:
            try:
                return fn(self)
            except ReproError as exc:
                if (
                    attempt >= self.policy.max_attempts
                    or not self.policy.is_retryable(exc)
                ):
                    raise
                self.report.record(
                    "runs_reexecuted",
                    f"{label}: attempt {attempt} failed with "
                    f"{type(exc).__name__}",
                )
                self._heal_all(exc)
                count = shards if shards is not None \
                    else len(self.health.active_indices())
                self.report.record(
                    "reexecuted_shards",
                    f"{label}: re-running {count} shard(s)",
                    count=count,
                )
                time.sleep(self._backoff_s(attempt))
                attempt += 1

    def _heal_all(self, exc: BaseException) -> None:
        """Bring every non-retired device back to a clean, probed state."""
        for index, device in enumerate(self.pool.devices):
            state = self.health.state(index)
            if state == RETIRED:
                continue
            if device.is_poisoned:
                with self._heal_locks[index]:
                    if self.health.state(index) != QUARANTINED:
                        self.health.quarantine(
                            index,
                            f"device {device.ordinal}: poisoned "
                            f"({type(exc).__name__})",
                        )
                    self.pool.wait_idle(index, timeout=self._heal_timeout_s)
                    self._reset_device(index)
                    self._bump_generation(index)
                    self._probe(index)
            else:
                # Clean but mid-aborted-run: reclaim leaked buffers, peer
                # enablement and queued stream work for a fresh start.
                self.pool.wait_idle(index, timeout=self._heal_timeout_s)
                self._reset_device(index)
                self._bump_generation(index)
                if state == SUSPECT:
                    self.health.mark_healthy(index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ResilientPool over {self.pool!r} "
            f"health={self.health.snapshot()}>"
        )
