"""The post-run recovery report: what resilience actually did.

Counts and logs every recovery action — retries, quarantines,
readmissions, retirements, watchdog fires, re-executed shards — and
mirrors each one into the process tracer (counter ``resilience_<kind>``
plus an instant span on the ``resilience`` track), so a Perfetto export
shows recovery activity interleaved with the kernels it recovered.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Tuple

__all__ = ["RecoveryReport"]

#: Event kinds, in the order the summary prints their counters.
KINDS = (
    "retries",
    "watchdog_timeouts",
    "quarantines",
    "readmissions",
    "retirements",
    "resets",
    "cancelled_jobs",
    "reexecuted_shards",
    "runs_reexecuted",
    "verify_mismatches",
    "stale_completions",
)


class RecoveryReport:
    """Thread-safe counters + event log for one resilient run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = {kind: 0 for kind in KINDS}
        self.events: List[Tuple[int, str, str]] = []

    def ensure_kinds(self, kinds) -> None:
        """Register additional event kinds (zero-initialized).

        Layers that extend recovery across new failure domains — the
        cluster tier counts lost workers and cross-process redispatches —
        add their counters here instead of subclassing, so one report
        instance can observe a whole stacked run (worker-local device
        healing *and* cluster supervision).  Known kinds are untouched.
        """
        with self._lock:
            for kind in kinds:
                self.counts.setdefault(str(kind), 0)

    def record(self, kind: str, detail: str = "", *, count: int = 1) -> None:
        """Count one recovery action (and trace it).

        ``kind`` must be one of the known counters (the module
        :data:`KINDS` plus anything added via :meth:`ensure_kinds`);
        ``count`` lets bulk actions (re-executing N shards) land as one
        event with weight N.
        """
        if kind not in self.counts:
            raise KeyError(
                f"unknown recovery event kind {kind!r}; known: "
                f"{tuple(self.counts)}"
            )
        with self._lock:
            self.counts[kind] += count
            entry = (len(self.events), kind, detail)
            self.events.append(entry)
        tracer = _get_tracer()
        if tracer is not None:
            tracer.counter(f"resilience_{kind}", delta=float(count))
            tracer.add_span(
                f"resilience:{kind}", "resilience", "resilience",
                tracer.now_us(), 0.0,
                {"detail": detail, "count": count, "seq": entry[0]},
            )

    def __getitem__(self, kind: str) -> int:
        with self._lock:
            return self.counts[kind]

    @property
    def total(self) -> int:
        """Total recovery actions recorded (event count, not weights)."""
        with self._lock:
            return len(self.events)

    def summary(self) -> str:
        """Human-readable report, printed by the CLI after resilient runs."""
        with self._lock:
            counts = dict(self.counts)
            events = list(self.events)
        if not events:
            return "recovery report: no recovery actions (clean run)"
        nonzero = ", ".join(
            f"{kind}={count}" for kind, count in counts.items() if count
        )
        lines = [f"recovery report: {nonzero}"]
        for seq, kind, detail in events:
            lines.append(f"  #{seq}: {kind}" + (f" — {detail}" if detail else ""))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nonzero = {k: v for k, v in self.counts.items() if v}
        return f"RecoveryReport({nonzero})"


def _get_tracer():
    # Lazy: keeps this module importable without dragging trace state in
    # at import time (mirrors repro.faults.plan).
    from ..trace import get_tracer

    return get_tracer()
