"""Trace exporters: Chrome ``trace_event`` JSON, records, text summary.

Three consumers, three shapes:

* :func:`export_chrome` — a JSON array of Chrome ``trace_event`` objects
  that loads directly in ``chrome://tracing`` and https://ui.perfetto.dev
  (``ph: "X"`` complete events on named tracks, plus ``"M"`` metadata
  events naming the tracks and ``"C"`` counter events).
* :func:`to_records` — plain dicts for programmatic use; the harness
  report embeds these (:func:`repro.harness.report.render_trace_summary`).
* :func:`summary` — the ``nvprof``-style per-kernel table with a memcpy
  rollup and, when the perf model ran under tracing, a
  predicted-vs-observed comparison.

Perf-model predictions are *joined* onto observed spans here: a
``kernel:<name>`` span whose name matches a recorded prediction gains a
``predicted_per_launch_s`` arg, so a Perfetto click (or a records
consumer) sees model and measurement side by side.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .tracer import Tracer

__all__ = [
    "to_records",
    "export_chrome",
    "summary",
    "validate_trace_events",
    "validate_chrome_trace",
]

#: The one process id the simulated stack reports (there is one process).
_PID = 1

#: Event phases the exporter emits (and the validator accepts).
_PHASES = {"X", "M", "C"}


def to_records(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten a tracer into structured record dicts.

    Every record has ``name``, ``cat``, ``track``, ``ts_us``, ``dur_us``
    and ``args``; span records additionally carry ``id``/``parent_id``.
    Prediction records use ``cat="prediction"`` on the ``perf-model``
    track with ``dur_us`` equal to the predicted total seconds, so even a
    pure ``--estimate`` run produces a renderable trace.
    """
    predictions = tracer.predictions
    by_kernel = {p["name"]: p for p in predictions}
    records: List[Dict[str, Any]] = []
    for sp in tracer.spans:
        args = dict(sp.args)
        if sp.cat == "kernel":
            pred = by_kernel.get(sp.name[len("kernel:"):])
            if pred is not None and "per_launch_s" in pred:
                args["predicted_per_launch_s"] = pred["per_launch_s"]
        records.append({
            "name": sp.name,
            "cat": sp.cat,
            "track": sp.track,
            "ts_us": sp.ts_us,
            "dur_us": sp.dur_us,
            "args": args,
            "id": sp.id,
            "parent_id": sp.parent_id,
        })
    for pred in predictions:
        args = {k: v for k, v in pred.items() if k not in ("name", "ts_us")}
        records.append({
            "name": f"predict:{pred['name']}",
            "cat": "prediction",
            "track": "perf-model",
            "ts_us": pred["ts_us"],
            "dur_us": float(pred.get("total_s", 0.0)) * 1e6,
            "args": args,
        })
    records.sort(key=lambda r: r["ts_us"])
    return records


def _chrome_events(tracer: Tracer) -> List[Dict[str, Any]]:
    tids: Dict[str, int] = {}
    meta: List[Dict[str, Any]] = []

    def tid_for(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
            meta.append({
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tids[track],
                "ts": 0,
                "args": {"name": track},
            })
        return tids[track]

    events: List[Dict[str, Any]] = []
    for rec in to_records(tracer):
        events.append({
            "name": rec["name"],
            "cat": rec["cat"],
            "ph": "X",
            "ts": rec["ts_us"],
            "dur": rec["dur_us"],
            "pid": _PID,
            "tid": tid_for(rec["track"]),
            "args": rec["args"],
        })
    for name, value in sorted(tracer.counters.items()):
        events.append({
            "name": name,
            "cat": "counter",
            "ph": "C",
            "ts": tracer.now_us(),
            "pid": _PID,
            "tid": tid_for("counters"),
            "args": {"value": value},
        })
    return meta + events


def export_chrome(tracer: Tracer, path: str) -> str:
    """Write the tracer's contents as a Chrome ``trace_event`` JSON array."""
    events = _chrome_events(tracer)
    validate_trace_events(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(events, fh, indent=1)
        fh.write("\n")
    return path


def validate_trace_events(events: Any) -> None:
    """Check ``events`` is a well-formed ``trace_event`` array; raise ``ValueError``.

    What "well-formed" means here (and what the CI smoke test asserts):
    a JSON array of objects, each with a known ``ph``, integer ``pid`` and
    ``tid``, numeric non-negative ``ts``; complete (``"X"``) events must
    additionally carry ``name``, ``cat``, numeric non-negative ``dur`` and
    a dict ``args``.
    """
    if not isinstance(events, list):
        raise ValueError(f"trace must be a JSON array, got {type(events).__name__}")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i}: not an object")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"event {i}: unknown phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise ValueError(f"event {i}: {key} must be an integer")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {i}: ts must be a non-negative number")
        if ph == "X":
            if not isinstance(ev.get("name"), str) or not ev["name"]:
                raise ValueError(f"event {i}: X event needs a name")
            if not isinstance(ev.get("cat"), str):
                raise ValueError(f"event {i}: X event needs a cat")
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {i}: dur must be a non-negative number")
            if not isinstance(ev.get("args"), dict):
                raise ValueError(f"event {i}: X event needs dict args")


def validate_chrome_trace(path: str) -> List[Dict[str, Any]]:
    """Load ``path`` and validate it; returns the event list."""
    with open(path, "r", encoding="utf-8") as fh:
        events = json.load(fh)
    validate_trace_events(events)
    return events


def summary(tracer: Tracer) -> str:
    """nvprof-style summary of the tracer, rendered by the harness report."""
    from ..harness.report import render_trace_summary

    return render_trace_summary(to_records(tracer))
