"""The :class:`Tracer` — thread-safe span/counter recording.

A tracer is a monotonic-clock event recorder in the mould of CUPTI /
rocprof's activity APIs: instrumented call sites open *spans* (named,
categorised intervals on a *track*), bump *counters*, and attach
arbitrary ``args`` to each span.  Spans nest — a ``kernel:`` span opened
inside a stream ``exec:`` span records the latter as its parent — and
recording is safe from any thread (stream workers, block threads, the
host thread) because the finished-span list is guarded by a lock.

Tracks
------
Every span lives on a track, the unit Perfetto renders as one horizontal
row.  By default the track is ``host:<thread name>``; the stream layer
overrides it (via :meth:`Tracer.on_track`) so everything a stream worker
executes lands on that stream's ``stream:<name>`` row, which is what
makes cross-stream overlap visible.

Zero cost when disabled
-----------------------
The tracer itself never decides whether tracing is on.  Instrumented
call sites ask :func:`repro.trace.get_tracer` and skip *all* of this
module when it returns ``None`` — the disabled path is a single global
read and an ``is None`` test.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One recorded interval: what ran, where, for how long.

    ``ts_us``/``dur_us`` are microseconds relative to the tracer's epoch
    (the monotonic clock at construction), matching the Chrome
    ``trace_event`` convention.  ``args`` carries the span's structured
    payload (engine name, byte counts, harvested KernelStats, ...).
    """

    name: str
    cat: str
    track: str
    ts_us: float
    dur_us: float = 0.0
    args: Dict[str, Any] = field(default_factory=dict)
    id: int = 0
    parent_id: Optional[int] = None


class Tracer:
    """Thread-safe recorder of spans, counters and perf-model predictions.

    Use :meth:`span` as a context manager around the work to be timed;
    the yielded :class:`Span` is mutable, so instrumentation can attach
    results that only exist afterwards (e.g. a launch's
    :class:`~repro.gpu.engine.KernelStats` counters)::

        with tracer.span("kernel:saxpy", cat="kernel", engine="vector") as sp:
            stats = engine.run(...)
            sp.args["threads_run"] = stats.threads_run

    Exporters live in :mod:`repro.trace.export`; :meth:`to_records`,
    :meth:`export_chrome` and :meth:`summary` are thin forwards so the
    tracer object is the whole user-facing surface.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._predictions: List[Dict[str, Any]] = []
        self._counters: Dict[str, float] = {}
        self._ids = itertools.count(1)
        self._local = threading.local()

    # --- clock / tracks ---------------------------------------------------
    def now_us(self) -> float:
        """Microseconds since this tracer's epoch (monotonic)."""
        return (self._clock() - self._epoch) * 1e6

    def _current_track(self) -> str:
        override = getattr(self._local, "track", None)
        if override is not None:
            return override
        return f"host:{threading.current_thread().name}"

    @contextmanager
    def on_track(self, track: str) -> Iterator[None]:
        """Route this thread's spans onto ``track`` for the duration.

        The stream worker uses this so nested spans (kernel runs, copies)
        land on the stream's row rather than the worker thread's.
        """
        prev = getattr(self._local, "track", None)
        self._local.track = track
        try:
            yield
        finally:
            self._local.track = prev

    # --- recording --------------------------------------------------------
    @contextmanager
    def span(self, name: str, cat: str = "host", track: Optional[str] = None,
             **args: Any) -> Iterator[Span]:
        """Record the enclosed interval as a span; yields the mutable span."""
        sp = Span(
            name=name,
            cat=cat,
            track=track or self._current_track(),
            ts_us=self.now_us(),
            args=dict(args),
            id=next(self._ids),
        )
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        if stack:
            sp.parent_id = stack[-1].id
        stack.append(sp)
        try:
            yield sp
        finally:
            stack.pop()
            sp.dur_us = max(self.now_us() - sp.ts_us, 0.0)
            with self._lock:
                self._spans.append(sp)

    def add_span(self, name: str, cat: str, track: str, ts_us: float,
                 dur_us: float, args: Optional[Dict[str, Any]] = None) -> Span:
        """Record a span retroactively from explicit timestamps.

        The stream layer uses this for ``queued:`` spans — the interval
        between enqueue and execution start is only known once execution
        begins, after the interval has already elapsed.
        """
        sp = Span(name=name, cat=cat, track=track, ts_us=ts_us,
                  dur_us=max(dur_us, 0.0), args=dict(args or {}),
                  id=next(self._ids))
        with self._lock:
            self._spans.append(sp)
        return sp

    def counter(self, name: str, delta: float = 1.0) -> None:
        """Bump a named monotonic counter (e.g. ``launches``)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + delta

    def prediction(self, name: str, **fields: Any) -> None:
        """Record the perf model's predicted seconds for a kernel.

        ``name`` must be the compiled kernel's name so exporters can join
        the prediction onto the matching observed ``kernel:`` spans
        (predicted-vs-observed, per Figure 8 cell).
        """
        rec = {"name": name, "ts_us": self.now_us()}
        rec.update(fields)
        with self._lock:
            self._predictions.append(rec)

    # --- snapshots --------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Snapshot of every finished span (copy; safe to iterate)."""
        with self._lock:
            return list(self._spans)

    @property
    def predictions(self) -> List[Dict[str, Any]]:
        """Snapshot of recorded perf-model predictions."""
        with self._lock:
            return [dict(p) for p in self._predictions]

    @property
    def counters(self) -> Dict[str, float]:
        """Snapshot of the counter table."""
        with self._lock:
            return dict(self._counters)

    def clear(self) -> None:
        """Drop everything recorded so far (tests, long-lived sessions)."""
        with self._lock:
            self._spans.clear()
            self._predictions.clear()
            self._counters.clear()

    # --- export forwards --------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        """Structured record list (see :func:`repro.trace.export.to_records`)."""
        from .export import to_records

        return to_records(self)

    def export_chrome(self, path: str) -> str:
        """Write a Chrome/Perfetto ``trace_event`` JSON file; returns ``path``."""
        from .export import export_chrome

        return export_chrome(self, path)

    def summary(self) -> str:
        """nvprof-style text summary (per-kernel table + memcpy rollup)."""
        from .export import summary

        return summary(self)
