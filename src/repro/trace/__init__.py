"""repro.trace — nvprof/rocprof-style profiling & tracing for the stack.

The paper's evaluation is a *measurement* exercise: Figures 6–8 exist
because CUPTI (``nvprof``/``nsys``) and rocprof could observe what the
native runtimes did.  This package is the same observability layer for
the simulated stack: with tracing enabled, every kernel launch, stream
operation, ompx host API call and perf-model estimate records a span,
and the result exports as a Chrome/Perfetto trace, an ``nvprof``-style
text summary, or plain records the harness report can embed.

Quickstart
----------
::

    import repro.trace as trace

    with trace.tracing() as tracer:          # or trace.enable()/disable()
        app.run_single("ompx", params, device)
    tracer.export_chrome("out.json")         # load in ui.perfetto.dev
    print(tracer.summary())                  # nvprof-style table
    records = tracer.to_records()            # structured, for reports

or from the command line (any Figure 6 app)::

    python -m repro.apps stencil1d --run --trace out.json

What gets recorded
------------------
* ``kernel:<name>`` spans (cat ``kernel``) for every
  :func:`~repro.gpu.launch.launch_kernel` — the selected engine,
  grid/block geometry and the harvested
  :class:`~repro.gpu.engine.KernelStats` counters, identically for all
  four front ends (CUDA chevron, HIP, ``target teams``, ``ompx_bare``).
* ``queued:<op>`` / ``exec:<op>`` span pairs on each stream's track —
  the wait in the queue versus the execution, which is what makes
  cross-stream overlap (and ``depend(interopobj:)`` enqueues) visible.
* ``ompx_malloc`` / ``ompx_memcpy`` / ``ompx_memset`` spans with byte
  counts and inferred copy direction (cat ``memcpy``/``host-api``).
* perf-model predictions (:func:`~repro.perf.timing.estimate_time`),
  joined onto matching kernel spans as ``predicted_per_launch_s`` so
  predicted-vs-observed can be diffed per Figure 8 cell.

Enabling and cost
-----------------
One process-wide tracer is installed with :func:`enable` (idempotent in
spirit: the last installed wins) and removed with :func:`disable`;
:func:`get_tracer` returns it or ``None``.  Instrumented call sites test
``get_tracer() is None`` and skip everything else — with tracing
disabled the stack records nothing and pays one global read per hook
(asserted by ``benchmarks/test_trace_overhead.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .export import (
    export_chrome,
    summary,
    to_records,
    validate_chrome_trace,
    validate_trace_events,
)
from .tracer import Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "enable",
    "disable",
    "get_tracer",
    "tracing",
    "to_records",
    "export_chrome",
    "summary",
    "validate_trace_events",
    "validate_chrome_trace",
]

#: The process-wide active tracer; ``None`` means tracing is disabled.
_active: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The active :class:`Tracer`, or ``None`` when tracing is disabled.

    This is the hook every instrumented call site uses; the disabled
    path is a single module-global read.
    """
    return _active


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer.

    Pass an existing :class:`Tracer` to resume recording into it, e.g.
    across several measured sections of one session.
    """
    global _active
    _active = tracer if tracer is not None else Tracer()
    return _active


def disable() -> Optional[Tracer]:
    """Uninstall the active tracer and return it (``None`` if none was)."""
    global _active
    tracer, _active = _active, None
    return tracer


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Context manager: tracing enabled inside, restored state outside.

    Nesting restores the previously active tracer on exit rather than
    disabling tracing outright, so a traced harness can wrap traced
    helpers safely.
    """
    global _active
    prev = _active
    installed = enable(tracer)
    try:
        yield installed
    finally:
        _active = prev
