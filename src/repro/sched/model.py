"""Modeled multi-device scaling: does sharding actually pay?

The functional pool executes in simulated-Python time, so the scaling
*claim* — N devices beat one — is priced with the same analytic machinery
as everything else in :mod:`repro.perf`: per-device compute is the
single-device estimate divided by the shard count, communication is the
halo/merge traffic over the modeled interconnect
(:func:`repro.perf.transfer.peer_transfer_seconds`), and whatever cannot
be sharded stays serial (Amdahl's term).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulerError
from ..gpu.device import DeviceSpec
from ..perf.transfer import peer_transfer_seconds

__all__ = ["ScalingEstimate", "estimate_scaling"]


@dataclass(frozen=True)
class ScalingEstimate:
    """Modeled single- vs multi-device wall clock for one app config."""

    devices: int
    single_seconds: float
    multi_seconds: float
    comm_seconds: float
    serial_seconds: float

    @property
    def speedup(self) -> float:
        return self.single_seconds / self.multi_seconds

    @property
    def efficiency(self) -> float:
        """Speedup per device (1.0 = perfect linear scaling)."""
        return self.speedup / self.devices


def estimate_scaling(
    single_seconds: float,
    devices: int,
    spec: DeviceSpec,
    *,
    peer_spec: DeviceSpec = None,
    peer_bytes: float = 0.0,
    peer_transfers: int = 0,
    peer_enabled: bool = True,
    serial_seconds: float = 0.0,
) -> ScalingEstimate:
    """Price a data-parallel run of a ``single_seconds`` workload.

    ``peer_bytes``/``peer_transfers`` is the per-step halo or merge
    traffic *per device* (e.g. Stencil-1D sends ``2 * radius * 8`` bytes
    to each neighbour per iteration); ``peer_enabled=False`` prices the
    staged-through-host path instead of the direct link.
    ``serial_seconds`` is the unshardable remainder (setup, merge on one
    device), the Amdahl term that keeps the curve honest.
    """
    if devices <= 0:
        raise SchedulerError(f"devices must be >= 1, got {devices}")
    if single_seconds < 0 or serial_seconds < 0:
        raise SchedulerError("times must be >= 0")
    comm = 0.0
    if devices > 1 and (peer_bytes or peer_transfers):
        comm = peer_transfer_seconds(
            peer_bytes,
            spec,
            peer_spec or spec,
            enabled=peer_enabled,
            transfers=peer_transfers,
        )
    multi = single_seconds / devices + serial_seconds + comm
    return ScalingEstimate(
        devices=devices,
        single_seconds=single_seconds + serial_seconds,
        multi_seconds=multi,
        comm_seconds=comm,
        serial_seconds=serial_seconds,
    )
