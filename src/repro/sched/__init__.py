"""``repro.sched`` — multi-device scheduling over the simulated GPU stack.

The ROADMAP's "sharding, batching, async, multi-backend" north star,
built on the primitives the rest of the library already provides:
registry devices, the unified :func:`~repro.gpu.launch.launch_kernel`
choke point, streams/events for cross-device ordering, peer memcpys for
halo exchange, and the fault/trace subsystems (which see pool workers as
first-class devices).

- :class:`DevicePool` / :class:`KernelFuture` — N devices, one worker
  thread each, futures-based submission with pluggable placement.
- :func:`shard` / :func:`gather` — data-parallel decomposition helpers;
  ``python -m repro.apps xsbench --devices 4`` is built from them.
- :func:`estimate_scaling` — the modeled single- vs multi-device wall
  clock (compute/Amdahl/interconnect), for the scaling benchmarks.
"""

from .model import ScalingEstimate, estimate_scaling
from .pool import DevicePool, KernelFuture
from .shard import gather, shard

__all__ = [
    "DevicePool",
    "KernelFuture",
    "ScalingEstimate",
    "estimate_scaling",
    "gather",
    "shard",
]
