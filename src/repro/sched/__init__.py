"""``repro.sched`` — multi-device scheduling over the simulated GPU stack.

The ROADMAP's "sharding, batching, async, multi-backend" north star,
built on the primitives the rest of the library already provides:
registry devices, the unified :func:`~repro.gpu.launch.launch_kernel`
choke point, streams/events for cross-device ordering, peer memcpys for
halo exchange, and the fault/trace subsystems (which see pool workers as
first-class devices).

- :class:`DevicePool` / :class:`KernelFuture` — N devices, one worker
  thread each, futures-based submission with pluggable placement.
- :class:`PoolProtocol` — the structural typing surface both
  :class:`DevicePool` and :class:`~repro.resilience.ResilientPool`
  satisfy, so layers above (the app sharding helpers, ``repro.serve``)
  can treat either as an interchangeable backend.
- :func:`shard` / :func:`gather` — data-parallel decomposition helpers;
  ``python -m repro.apps xsbench --devices 4`` is built from them.
- :func:`estimate_scaling` — the modeled single- vs multi-device wall
  clock (compute/Amdahl/interconnect), for the scaling benchmarks.
"""

from typing import Callable, List, Optional, Protocol, runtime_checkable

from .model import ScalingEstimate, estimate_scaling
from .pool import DevicePool, KernelFuture
from .shard import gather, shard

__all__ = [
    "DevicePool",
    "KernelFuture",
    "PoolProtocol",
    "ScalingEstimate",
    "estimate_scaling",
    "gather",
    "shard",
]


@runtime_checkable
class PoolProtocol(Protocol):
    """What a submission backend must look like (structural, not nominal).

    :class:`DevicePool` and :class:`~repro.resilience.ResilientPool`
    both satisfy this protocol with *signature-compatible* methods: the
    same keyword names for ``submit``/``submit_call`` (including the
    ``shard=`` accounting flag), the same ``close(drain=..., timeout=...)``
    spelling, and context-manager semantics that call :meth:`close`.
    Code written against the protocol — ``repro.apps.run`` and the
    ``repro.serve`` dispatchers — runs on either without caring whether
    futures self-heal.

    ``isinstance(obj, PoolProtocol)`` checks attribute presence only
    (:func:`typing.runtime_checkable` semantics); the signature-level
    agreement is asserted by ``tests/sched/test_pool_protocol.py``.
    """

    @property
    def devices(self) -> List:  # pragma: no cover - protocol declaration
        ...

    def submit(
        self, kernel, config, *args, device=None, label: Optional[str] = None
    ):  # pragma: no cover - protocol declaration
        """Enqueue a kernel launch; return a future resolving to its stats."""
        ...

    def submit_call(
        self,
        fn: Callable,
        *,
        device=None,
        label: Optional[str] = None,
        shard: bool = False,
    ):  # pragma: no cover - protocol declaration
        """Enqueue ``fn(device)`` as a host job; return a result future."""
        ...

    def synchronize(self) -> None:  # pragma: no cover - protocol declaration
        """Block until every job submitted so far has finished."""
        ...

    def distinct_specs(self) -> List:  # pragma: no cover - protocol declaration
        """One representative device per distinct spec (for tune warm-up)."""
        ...

    def close(
        self, *, drain: bool = True, timeout: float = 10.0
    ) -> None:  # pragma: no cover - protocol declaration
        """Shut the pool down, draining queued work unless ``drain=False``."""
        ...

    def __len__(self) -> int:  # pragma: no cover - protocol declaration
        ...
