"""The multi-device execution service: :class:`DevicePool` + futures.

A pool owns N fresh :class:`~repro.gpu.device.Device` instances (mixed
A100/MI250 presets allowed) registered in the global device registry, so
everything that keys off ordinals — :class:`DevicePointer` ownership,
``faults.inject(device=...)`` selectors, trace spans — works inside pool
workers exactly as it does on the default devices.  One worker thread per
device drains a FIFO of jobs; ``submit`` returns a :class:`KernelFuture`
the caller can block on, interrogate for the failure, or hand to
:func:`repro.sched.gather`.

Placement is pluggable: ``round_robin`` (default), ``least_loaded``
(fewest queued-or-running jobs), a callable ``pool -> Device``, or an
explicit ``device=`` per submission (a pool-relative index or one of the
pool's devices).

Futures are single-assignment: the first writer (worker result, worker
exception, :meth:`KernelFuture.cancel`, or a watchdog timeout from
:mod:`repro.resilience`) wins and later completions are dropped as
stale.  Queued-but-unstarted jobs can be cancelled — explicitly, by
``close(drain=False)``, or by a device reset, which drains that device's
queue deterministically instead of racing the worker thread.

Tracing: each worker runs its jobs under a ``device:<ordinal>`` track, so
the Perfetto export of a multi-device run shows one row per device with
the kernels (and their queued/exec stream spans) nested under it.
"""

from __future__ import annotations

import itertools
import queue
import threading
import warnings
from typing import Callable, List, Optional, Sequence, Union

from ..errors import CancelledError, SchedulerError
from ..gpu.device import (
    A100_SPEC,
    Device,
    DeviceSpec,
    add_device,
    remove_device,
)
from ..gpu.launch import LaunchConfig, launch_kernel
from ..trace import get_tracer

__all__ = ["KernelFuture", "DevicePool"]

_future_ids = itertools.count(1)

#: What ``DevicePool(placement=...)`` accepts.
PlacementPolicy = Union[str, Callable[["DevicePool"], Device]]

#: Future lifecycle states (internal).
_PENDING, _RUNNING, _DONE = "pending", "running", "done"


class KernelFuture:
    """The result handle for one pool submission.

    Resolves to the job's return value (for kernel submissions, the
    :class:`~repro.gpu.engine.KernelStats`) or to its exception — which is
    the *original* error, not a wrapper, so a sticky-context failure on
    one pool device looks exactly like it would on a single-device run.
    ``device`` and ``track`` record where the job ran (``track`` is the
    trace track pool workers span under, for joining futures against a
    Perfetto export).

    Completion is first-writer-wins: once the future is done its result
    never changes, so a worker finishing a job the watchdog already timed
    out (or a caller already cancelled) is recorded as a stale completion
    rather than a second answer.
    """

    def __init__(self, label: str, device: Device) -> None:
        self.label = label
        self.device = device
        self.track = f"device:{device.ordinal}"
        self._id = next(_future_ids)
        self._done = threading.Event()
        self._result = None
        self._exception: Optional[BaseException] = None
        self._state = _PENDING
        self._state_lock = threading.Lock()
        #: Invoked (no args) when a completion arrives after the future
        #: is already done — e.g. the worker finishing a job the watchdog
        #: timed out.  The resilience layer counts these.
        self.stale_callback: Optional[Callable[[], None]] = None
        self._callbacks: List[Callable[["KernelFuture"], None]] = []

    # --- worker side --------------------------------------------------------
    def _start(self) -> bool:
        """Transition pending -> running; ``False`` if already cancelled."""
        with self._state_lock:
            if self._state != _PENDING:
                return False
            self._state = _RUNNING
            return True

    def _set_result(self, value) -> bool:
        """Record success; ``False`` (stale, dropped) if already done."""
        with self._state_lock:
            if self._state == _DONE:
                self._notify_stale()
                return False
            self._state = _DONE
            self._result = value
        self._done.set()
        self._invoke_callbacks()
        return True

    def _set_exception(self, exc: BaseException) -> bool:
        """Record failure; ``False`` (stale, dropped) if already done."""
        with self._state_lock:
            if self._state == _DONE:
                self._notify_stale()
                return False
            self._state = _DONE
            self._exception = exc
        self._done.set()
        self._invoke_callbacks()
        return True

    def _notify_stale(self) -> None:
        callback = self.stale_callback
        if callback is not None:
            callback()

    def _invoke_callbacks(self) -> None:
        with self._state_lock:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                warnings.warn(
                    f"KernelFuture done-callback for {self.label!r} raised "
                    f"{type(exc).__name__}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    # --- completion notification -------------------------------------------
    def add_done_callback(self, fn: Callable[["KernelFuture"], None]) -> None:
        """Invoke ``fn(future)`` when the job completes.

        Runs on the thread that completes the future (the pool worker, or
        the canceller); if the future is already done, ``fn`` runs
        immediately on the calling thread.  Callback exceptions are
        reported as :class:`RuntimeWarning`\\ s rather than crashing the
        pool worker.  The cluster tier uses this to stream results back
        over a pipe without a waiter thread per job.
        """
        with self._state_lock:
            if self._state != _DONE:
                self._callbacks.append(fn)
                return
        fn(self)

    # --- caller side --------------------------------------------------------
    def cancel(self, reason: str = "cancelled", *, retryable: bool = False) -> bool:
        """Cancel the job if it has not started executing yet.

        Returns ``True`` when the future now resolves to
        :class:`~repro.errors.CancelledError`; ``False`` when the job is
        already running or finished (a running job cannot be interrupted —
        that is the watchdog's department).  The owning worker skips
        cancelled jobs when it dequeues them.
        """
        with self._state_lock:
            if self._state != _PENDING:
                return False
            self._state = _DONE
            self._exception = CancelledError(
                f"job {self.label!r} on device {self.device.ordinal}: {reason}",
                retryable=retryable,
            )
        self._done.set()
        self._invoke_callbacks()
        return True

    def cancelled(self) -> bool:
        """Whether the future resolved to a :class:`CancelledError`."""
        return self._done.is_set() and isinstance(self._exception, CancelledError)

    def done(self) -> bool:
        """Whether the job has finished (successfully or not)."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; ``False`` on timeout."""
        return self._done.wait(timeout)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The job's exception (or ``None``), waiting for completion first."""
        if not self._done.wait(timeout):
            raise SchedulerError(
                f"future {self.label!r} on device {self.device.ordinal} did "
                f"not complete within {timeout}s"
            )
        return self._exception

    def result(self, timeout: Optional[float] = None):
        """The job's return value; re-raises the job's exception."""
        exc = self.exception(timeout)
        if exc is not None:
            raise exc
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "pending" if not self._done.is_set()
            else "cancelled" if self.cancelled()
            else "failed" if self._exception is not None
            else "done"
        )
        return f"<KernelFuture #{self._id} {self.label!r} on dev{self.device.ordinal} ({state})>"


class DevicePool:
    """N simulated devices, one worker thread each, futures-based submit.

    ``DevicePool(4)`` builds four A100s; ``DevicePool(specs=[A100_SPEC,
    MI250_SPEC])`` builds a mixed pool.  The pool's devices are fresh
    registry entries (ordinals above the Figure-7 defaults), torn down
    again by :meth:`close` — use the pool as a context manager.
    """

    def __init__(
        self,
        devices: int = 0,
        *,
        specs: Optional[Sequence[DeviceSpec]] = None,
        placement: PlacementPolicy = "round_robin",
    ) -> None:
        if specs is None:
            if devices <= 0:
                raise SchedulerError(
                    "DevicePool needs devices >= 1 (or an explicit specs= list)"
                )
            specs = [A100_SPEC] * devices
        elif devices and devices != len(specs):
            raise SchedulerError(
                f"devices={devices} disagrees with len(specs)={len(specs)}"
            )
        if not specs:
            raise SchedulerError("DevicePool needs at least one device spec")
        if isinstance(placement, str) and placement not in ("round_robin", "least_loaded"):
            raise SchedulerError(
                f"unknown placement policy {placement!r}; use 'round_robin', "
                f"'least_loaded', or a callable"
            )
        self._placement = placement
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._closed = False
        self._rr = 0
        self.devices: List[Device] = [add_device(spec) for spec in specs]
        self._pending = {d.ordinal: 0 for d in self.devices}
        # Epoch per device: a device reset bumps it, and the worker
        # cancels any dequeued job carrying a stale epoch — that is how
        # "reset drains the queue" is implemented without two threads
        # racing for the same queue items.
        self._epochs = {d.ordinal: 0 for d in self.devices}
        self._running_label = {d.ordinal: None for d in self.devices}
        self._queues = {
            d.ordinal: queue.Queue() for d in self.devices
        }
        self._workers = []
        self._worker_by_ordinal = {}
        for device in self.devices:
            worker = threading.Thread(
                target=self._run_worker,
                args=(device, self._queues[device.ordinal]),
                name=f"pool-dev{device.ordinal}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
            self._worker_by_ordinal[device.ordinal] = worker
            device.add_reset_hook(self._on_device_reset)

    # --- worker loop --------------------------------------------------------
    def _run_worker(self, device: Device, jobs: "queue.Queue") -> None:
        while True:
            item = jobs.get()
            if item is None:
                break
            future, fn, epoch = item
            try:
                with self._lock:
                    stale = epoch != self._epochs[device.ordinal]
                if stale:
                    future.cancel(
                        "device reset while the job was queued", retryable=True
                    )
                    continue
                if not future._start():
                    continue  # cancelled while queued
                with self._lock:
                    self._running_label[device.ordinal] = future.label
                tracer = get_tracer()
                try:
                    if tracer is None:
                        result = fn(device)
                    else:
                        # Everything the job does (launches, memcpys, stream
                        # spans via on_track inheritance) lands on this
                        # device's own track.
                        track = f"device:{device.ordinal}"
                        with tracer.on_track(track):
                            with tracer.span(
                                f"pool:{future.label}", cat="sched", track=track,
                                device=device.ordinal,
                            ):
                                result = fn(device)
                except BaseException as exc:  # noqa: BLE001 - handed to the future
                    future._set_exception(exc)
                else:
                    future._set_result(result)
            finally:
                with self._lock:
                    self._pending[device.ordinal] -= 1
                    self._running_label[device.ordinal] = None
                    if self._pending[device.ordinal] == 0:
                        self._idle.notify_all()

    # --- device reset coordination -----------------------------------------
    def _on_device_reset(self, device: Device) -> None:
        """Quiesce one pool worker ahead of a device reset.

        Bumps the device's epoch so every job queued before the reset is
        cancelled (:class:`CancelledError`, ``retryable=True``) instead of
        running against the torn-down context, then waits for the worker
        to drain — including the in-flight job, which is allowed to
        finish so the teardown never pulls the allocator out from under
        it.  No-op when the reset comes from the worker itself (a job
        calling ``ompx_device_reset`` on its own device) or when the pool
        is already closed.
        """
        with self._lock:
            if self._closed or device.ordinal not in self._epochs:
                return
            self._epochs[device.ordinal] += 1
        if threading.current_thread() is self._worker_by_ordinal.get(device.ordinal):
            return  # the worker is resetting its own device; don't self-join
        if not self.wait_idle(device, timeout=30.0):
            warnings.warn(
                f"device {device.ordinal} reset proceeding while its pool "
                f"worker is still running "
                f"{self._running_label.get(device.ordinal)!r}",
                RuntimeWarning,
                stacklevel=3,
            )

    def wait_idle(self, device, timeout: Optional[float] = None) -> bool:
        """Block until a pool device has no queued or running jobs."""
        target = self._resolve_pool_device(device)
        with self._idle:
            return self._idle.wait_for(
                lambda: self._pending[target.ordinal] == 0, timeout
            )

    # --- placement ----------------------------------------------------------
    def _resolve_pool_device(self, device) -> Device:
        """An explicit ``device=``: a pool index or one of our devices."""
        if isinstance(device, Device):
            if device not in self.devices:
                raise SchedulerError(
                    f"device {device.ordinal} does not belong to this pool"
                )
            return device
        try:
            index = int(device)
        except (TypeError, ValueError):
            raise SchedulerError(
                f"submit(device=...) takes a pool index or a pool Device, "
                f"got {device!r}"
            ) from None
        if not 0 <= index < len(self.devices):
            raise SchedulerError(
                f"pool index {index} out of range (pool has "
                f"{len(self.devices)} devices)"
            )
        return self.devices[index]

    def _place(self, device) -> Device:
        if device is not None:
            return self._resolve_pool_device(device)
        if callable(self._placement):
            chosen = self._placement(self)
            if chosen not in self.devices:
                raise SchedulerError(
                    "placement callable must return one of the pool's devices"
                )
            return chosen
        with self._lock:
            if self._placement == "round_robin":
                chosen = self.devices[self._rr % len(self.devices)]
                self._rr += 1
                return chosen
            # least_loaded: fewest queued-or-running jobs; ties go to the
            # lowest ordinal so placement is deterministic.
            return min(self.devices, key=lambda d: (self._pending[d.ordinal], d.ordinal))

    def load(self, device: Device) -> int:
        """Queued-or-running job count for one pool device."""
        with self._lock:
            return self._pending[device.ordinal]

    def distinct_specs(self) -> List[Device]:
        """One representative device per distinct :class:`DeviceSpec`.

        Plan-cache entries are keyed per device *spec*, not per device,
        so warming a launch on the devices this returns (see
        :func:`repro.tune.warm`) is enough for every pool worker to
        dispatch from the cache — a mixed A100/MI250 pool yields one
        device of each.  Order follows the pool's device order, so the
        first device of each spec is the representative.
        """
        seen = set()
        representatives = []
        for device in self.devices:
            if device.spec not in seen:
                seen.add(device.spec)
                representatives.append(device)
        return representatives

    # --- submission ---------------------------------------------------------
    def _submit(self, fn: Callable[[Device], object], device, label: str) -> KernelFuture:
        with self._lock:
            if self._closed:
                raise SchedulerError("submit on a closed DevicePool")
        target = self._place(device)
        future = KernelFuture(label, target)
        with self._lock:
            if self._closed:
                raise SchedulerError("submit on a closed DevicePool")
            self._pending[target.ordinal] += 1
            epoch = self._epochs[target.ordinal]
        self._queues[target.ordinal].put((future, fn, epoch))
        return future

    def submit(
        self,
        kernel,
        config: LaunchConfig,
        *args,
        device=None,
        label: Optional[str] = None,
    ) -> KernelFuture:
        """Launch ``kernel`` with ``config`` on a pool device; return a future.

        ``kernel`` is anything :func:`~repro.gpu.launch.launch_kernel`
        accepts (a raw engine callable or a front-end ``KernelFunction``
        with an ``.entry``).  The future resolves to the launch's
        :class:`~repro.gpu.engine.KernelStats`.
        """
        entry = getattr(kernel, "entry", kernel)
        name = label or getattr(
            getattr(kernel, "fn", None) or kernel, "__name__", "kernel"
        )
        return self._submit(
            lambda dev: launch_kernel(config, entry, tuple(args), dev),
            device,
            name,
        )

    def submit_call(
        self,
        fn: Callable[[Device], object],
        *,
        device=None,
        label: Optional[str] = None,
        shard: bool = False,
    ) -> KernelFuture:
        """Run ``fn(device)`` on a pool worker; return a future.

        The host-side escape hatch the app sharding layer uses: the
        callable gets the placed :class:`Device` and may malloc, memcpy,
        launch and synchronize against it — all on the worker thread, so
        per-device fault selectors and trace tracks see the right device.

        ``shard`` exists for signature compatibility with
        :meth:`repro.resilience.ResilientPool.submit_call` (where it
        marks the job for re-executed-shard accounting); a plain pool has
        no recovery report, so here it is accepted and ignored.
        """
        del shard  # accounting flag; meaningful only on a ResilientPool
        name = label or getattr(fn, "__name__", "call")
        return self._submit(fn, device, name)

    # --- lifecycle ----------------------------------------------------------
    def synchronize(self) -> None:
        """Block until every queued job has finished on every device.

        Implemented as a fence job per worker: FIFO order guarantees the
        fence runs only after everything submitted before it.
        """
        fences = [
            self.submit_call(lambda dev: None, device=i, label="pool-fence")
            for i in range(len(self.devices))
        ]
        for fence in fences:
            fence.wait()

    def close(self, *, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the workers and unregister the pool's devices.

        With ``drain=True`` (the default) outstanding futures finish
        first; with ``drain=False`` every queued-but-unstarted job is
        cancelled (its future resolves to
        :class:`~repro.errors.CancelledError`) and only the jobs already
        executing run to completion.  A worker that fails to join within
        ``timeout`` seconds is reported with the label of the job it is
        stuck on (:class:`RuntimeWarning`) instead of being silently
        abandoned.  Pool :class:`DevicePointer` handles become invalid,
        as after ``cudaDeviceReset``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                # Stale-epoch jobs are cancelled by the worker as it
                # drains to the shutdown sentinel.
                for ordinal in self._epochs:
                    self._epochs[ordinal] += 1
        for device in self.devices:
            self._queues[device.ordinal].put(None)
        stuck = []
        for device, worker in zip(self.devices, self._workers):
            worker.join(timeout=timeout)
            if worker.is_alive():
                with self._lock:
                    label = self._running_label.get(device.ordinal)
                stuck.append((device.ordinal, label))
        if stuck:
            detail = ", ".join(
                f"device {ordinal} (stuck on {label!r})" for ordinal, label in stuck
            )
            warnings.warn(
                f"DevicePool.close: {len(stuck)} worker(s) failed to join "
                f"within {timeout}s: {detail}",
                RuntimeWarning,
                stacklevel=2,
            )
        for device in self.devices:
            device.remove_reset_hook(self._on_device_reset)
            remove_device(device.ordinal)

    def __enter__(self) -> "DevicePool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(f"dev{d.ordinal}" for d in self.devices)
        return f"<DevicePool [{names}] placement={self._placement!r}>"
