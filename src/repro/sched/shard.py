"""Data-parallel helpers: split arrays across devices, collect futures.

The two verbs the sharded app runner is written in: ``shard`` cuts a
problem axis into per-device contiguous chunks, ``gather`` waits for the
per-shard futures and either returns every result (submission order) or
re-raises the first failure — so a sticky context on one pool device
surfaces as that shard's original error, not as a pile of secondary ones.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import SchedulerError
from .pool import KernelFuture

__all__ = ["shard", "gather"]


def shard(array, n: int) -> List[np.ndarray]:
    """Split ``array`` into at most ``n`` contiguous chunks along axis 0.

    Chunk sizes differ by at most one (``np.array_split`` semantics) and
    empty chunks are dropped — a 3-element array sharded 4 ways yields 3
    shards, so no device ever receives an empty (unlaunchable) problem.
    Concatenating the shards in order reproduces the input exactly, which
    is what makes sharded checksums bit-identical to single-device runs.
    """
    if n <= 0:
        raise SchedulerError(f"shard count must be >= 1, got {n}")
    return [c for c in np.array_split(np.asarray(array), n) if c.size]


def gather(futures: Sequence[KernelFuture], timeout: Optional[float] = None) -> list:
    """Wait for every future; return their results in submission order.

    All futures are waited on (so no worker is left running against a
    buffer the caller is about to free) before the *first* failure — in
    submission order, for determinism — is re-raised.
    """
    for future in futures:
        future.wait(timeout)
    for future in futures:
        exc = future.exception(timeout)
        if exc is not None:
            raise exc
    return [future.result(timeout) for future in futures]
